// Ablation: §6.3 — "protocols like multicast DNS work in home environments
// but cause broadcast issues at campus scale". Broadcast frames ship at the
// basic rate so every client decodes them; chatter that rounds to zero at
// home becomes real airtime on a flat campus L2 domain.
#include <cstdio>

#include "traffic/broadcast.hpp"

int main() {
  using namespace wlm;
  std::printf("=== Ablation: broadcast chatter vs L2 domain size (paper SS6.3) ===\n\n");
  const traffic::BroadcastProfile raw;
  const auto suppressed = traffic::with_mdns_suppression(raw);

  std::printf("%-10s %-22s %-22s %-22s\n", "clients", "duty @1Mb/s basic",
              "duty @24Mb/s basic", "duty, mDNS proxied");
  for (int clients : {10, 100, 500, 1000, 2500, 5000}) {
    const auto slow = traffic::broadcast_load(clients, raw, phy::Modulation::kDsss1);
    const auto fast = traffic::broadcast_load(clients, raw, phy::Modulation::kOfdm24);
    const auto clean = traffic::broadcast_load(clients, suppressed, phy::Modulation::kDsss1);
    std::printf("%-10d %20.2f%% %20.2f%% %20.2f%%\n", clients, slow.airtime_duty * 100.0,
                fast.airtime_duty * 100.0, clean.airtime_duty * 100.0);
  }
  std::printf("\n10%%-duty client limits: raw @1Mb/s = %d clients; raising the basic rate "
              "-> %d; proxying mDNS/SSDP -> %d\n",
              traffic::broadcast_client_limit(raw, phy::Modulation::kDsss1),
              traffic::broadcast_client_limit(raw, phy::Modulation::kOfdm24),
              traffic::broadcast_client_limit(suppressed, phy::Modulation::kDsss1));
  return 0;
}
