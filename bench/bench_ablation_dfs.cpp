// Ablation: why the DFS bands sit nearly empty in Figure 2 — auto-channel
// fleets under radar pressure drain out of UNII-2/UNII-2e even when those
// channels are no busier than the rest.
#include <cstdio>
#include <map>

#include "core/rng.hpp"
#include "scan/dfs.hpp"

int main(int argc, char** argv) {
  using namespace wlm;
  const int fleet = argc > 1 ? std::atoi(argv[1]) : 400;
  std::printf("=== Ablation: DFS radar pressure vs 5 GHz channel occupancy ===\n");
  std::printf("(%d auto-channel APs, uniform utilization everywhere, 4 simulated weeks)\n\n",
              fleet);

  auto run_fleet = [&](double radar_per_hour) {
    scan::DfsPolicy dfs;
    dfs.radar_prob_per_hour = radar_per_hour;
    Rng rng(404);
    // Uniform scan: every channel equally busy, so planning alone is neutral.
    std::vector<scan::ChannelScanResult> scan;
    for (const auto& channel : phy::ChannelPlan::us().band_channels(phy::Band::k5GHz)) {
      scan::ChannelScanResult r;
      r.channel = channel;
      r.counters.cycle_us = 1'000'000;
      r.counters.busy_us = 100'000;
      scan.push_back(r);
    }
    const auto& channels = phy::ChannelPlan::us().band_channels(phy::Band::k5GHz);
    std::map<std::string, int> where;
    std::uint64_t evacuations = 0;
    for (int a = 0; a < fleet; ++a) {
      // Start uniformly across all 5 GHz channels.
      const auto start = channels[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
      scan::AutoChannelAgent ap(start, scan::PlannerPolicy{}, dfs);
      SimTime t;
      for (int h = 0; h < 24 * 28; ++h) {
        (void)ap.tick(t, Duration::hours(1), scan, rng);
        t += Duration::hours(1);
      }
      ++where[std::string(phy::unii_name(ap.current().unii))];
      evacuations += ap.radar_evacuations();
    }
    return std::make_pair(where, evacuations);
  };

  for (double pressure : {0.0, 0.02, 0.08}) {
    const auto [where, evac] = run_fleet(pressure);
    std::printf("radar %.2f/hr (%llu evacuations): ", pressure,
                static_cast<unsigned long long>(evac));
    for (const auto& [band, count] : where) {
      std::printf("%s %.0f%%  ", band.c_str(), 100.0 * count / fleet);
    }
    std::printf("\n");
  }
  std::printf("\npaper Figure 2: nearly all 5 GHz networks sit in UNII-1/UNII-3; the\n"
              "DFS-free bands fill up because radar events evict everyone else.\n");
  return 0;
}
