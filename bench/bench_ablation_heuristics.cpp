// Ablation: device-typing heuristics, 2014 vs 2015 revisions (paper §3.2:
// "the reduction in unknown devices between January 2014 and 2015 is due to
// improvements in our heuristics").
#include <cstdio>

#include "classify/classifier.hpp"
#include "classify/dhcp_fingerprint.hpp"
#include "classify/oui.hpp"
#include "classify/user_agent.hpp"
#include "core/rng.hpp"
#include "deploy/population.hpp"

int main(int argc, char** argv) {
  using namespace wlm;
  const int n = argc > 1 ? std::atoi(argv[1]) : 50'000;
  std::printf("=== Ablation: OS heuristics 2014 vs 2015 (%d devices) ===\n\n", n);

  const deploy::PopulationModel population(deploy::Epoch::kJan2015);
  Rng rng(42);
  int unknown_2014 = 0;
  int unknown_2015 = 0;
  int correct_2014 = 0;
  int correct_2015 = 0;
  for (int i = 0; i < n; ++i) {
    const auto dev = population.sample(ClientId{static_cast<std::uint32_t>(i)}, rng);
    classify::ClientEvidence evidence;
    evidence.mac = dev.mac;
    if (dev.os != classify::OsType::kUnknown) {
      // Realistic evidence capture: DHCP usually seen, UA sometimes, and
      // some stacks append vendor options that defeat exact matching.
      if (rng.chance(0.9)) {
        auto params = classify::canonical_dhcp_params(dev.os);
        if (rng.chance(0.3)) params.push_back(224);  // vendor suffix
        evidence.dhcp_fingerprints.push_back(params);
      }
      if (rng.chance(0.6)) {
        evidence.user_agents.push_back(
            classify::canonical_user_agent(dev.os, static_cast<unsigned>(rng.next_u64() & 3)));
      }
    }
    const auto os14 = classify::classify_os(evidence, classify::HeuristicsVersion::k2014);
    const auto os15 = classify::classify_os(evidence, classify::HeuristicsVersion::k2015);
    unknown_2014 += os14 == classify::OsType::kUnknown;
    unknown_2015 += os15 == classify::OsType::kUnknown;
    correct_2014 += os14 == dev.os;
    correct_2015 += os15 == dev.os;
  }
  std::printf("heuristics  unknown-share  accuracy\n");
  std::printf("2014        %6.1f%%        %6.1f%%\n", 100.0 * unknown_2014 / n,
              100.0 * correct_2014 / n);
  std::printf("2015        %6.1f%%        %6.1f%%\n", 100.0 * unknown_2015 / n,
              100.0 * correct_2015 / n);
  std::printf("\npaper: Unknown clients shrank 8.9%% year-over-year while every other "
              "population grew,\nattributed to heuristic improvements (prefix matching, "
              "vendor priors).\n");
  return 0;
}
