// Ablation: bounded vs unbounded link tables under the paper's §6.1
// "skyscraper" failure mode — an AP in a Manhattan high-rise decoding
// beacons from miles away grows its neighbor state without limit until the
// 64 MB platform OOMs and reboots.
#include <cstdio>

#include "core/rng.hpp"
#include "probe/link_table.hpp"

int main(int argc, char** argv) {
  using namespace wlm;
  const int distinct_links = argc > 1 ? std::atoi(argv[1]) : 20'000;
  std::printf("=== Ablation: bounded link table vs unbounded growth ===\n");
  std::printf("(a skyscraper AP hears %d distinct foreign transmitters)\n\n", distinct_links);

  Rng rng(7);
  const std::size_t caps[] = {256, 1024, static_cast<std::size_t>(distinct_links) * 2};
  std::printf("%-12s %-10s %-11s %-16s\n", "capacity", "tracked", "evictions", "approx memory");
  for (const auto cap : caps) {
    probe::LinkTable table(cap);
    SimTime t;
    for (int round = 0; round < 3; ++round) {
      for (int link = 0; link < distinct_links; ++link) {
        table.record(probe::LinkKey{ApId{static_cast<std::uint32_t>(link)},
                                    phy::Band::k2_4GHz},
                     t, rng.chance(0.5));
        t += Duration::millis(10);
      }
    }
    // Rough per-entry footprint: window deque (20 entries) + map/list nodes.
    const double mem_kb = static_cast<double>(table.size()) * 0.4;
    std::printf("%-12zu %-10zu %-11llu %8.0f kB %s\n", cap, table.size(),
                static_cast<unsigned long long>(table.evictions()), mem_kb,
                cap > static_cast<std::size_t>(distinct_links)
                    ? "<- unbounded: the OOM-reboot configuration"
                    : "");
  }
  std::printf("\nbounded tables trade eviction churn for a hard memory ceiling; the\n"
              "production fix after the §6.1 incident was exactly this shape.\n");
  return 0;
}
