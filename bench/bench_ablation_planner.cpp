// Ablation: channel planning by measured utilization vs by counting visible
// networks (the paper's conclusion: "channel planning using a utilization
// measure", because Figures 7/8 show the count does not predict busyness).
#include <cstdio>

#include "core/stats.hpp"
#include "scan/channel_planner.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace wlm;
  const int networks = argc > 1 ? std::atoi(argv[1]) : 150;
  std::printf("=== Ablation: utilization-driven vs count-driven channel planning ===\n");
  std::printf("(%d networks, MR18 scan data, 2.4 GHz)\n\n", networks);

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = networks;
  config.fleet.model = deploy::ApModel::kMr18;
  config.seed = 77;
  sim::World world(config);

  const auto scanner = scan::default_mr18_scanner();
  RunningStats by_util;
  RunningStats by_count;
  RunningStats incumbent;
  for (auto& ap : world.aps()) {
    const auto env = ap.environment(14.0);
    auto activities = env.activities_all(phy::ChannelPlan::us(), 14.0);
    auto results = scanner.scan_window(activities, phy::noise_floor(20.0), world.rng());

    scan::PlannerPolicy util_policy;
    scan::PlannerPolicy count_policy;
    count_policy.strategy = scan::PlannerStrategy::kFewestNetworks;
    const auto util_pick = scan::recommend_channel(results, phy::Band::k2_4GHz, util_policy);
    const auto count_pick =
        scan::recommend_channel(results, phy::Band::k2_4GHz, count_policy);
    if (!util_pick || !count_pick) continue;

    // Outcome metric: the true utilization of the chosen channel.
    auto true_util = [&](int number) {
      for (const auto& r : results) {
        if (r.channel.band == phy::Band::k2_4GHz && r.channel.number == number) {
          return r.counters.utilization();
        }
      }
      return 0.0;
    };
    by_util.add(true_util(util_pick->channel.number));
    by_count.add(true_util(count_pick->channel.number));
    incumbent.add(true_util(ap.config().channel_24));
  }

  std::printf("strategy             mean achieved utilization\n");
  std::printf("least-utilization    %6.1f%%\n", by_util.mean() * 100.0);
  std::printf("fewest-networks      %6.1f%%\n", by_count.mean() * 100.0);
  std::printf("incumbent (no plan)  %6.1f%%\n", incumbent.mean() * 100.0);
  std::printf("\nutilization-driven planning beats the naive count heuristic by %.0f%%\n",
              (by_count.mean() / std::max(1e-9, by_util.mean()) - 1.0) * 100.0);
  return 0;
}
