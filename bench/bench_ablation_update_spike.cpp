// Ablation: the paper's §6.2 software-update surges — "software updates
// from Apple and Microsoft would drive large downloads across large numbers
// of clients, sometimes causing sudden increases totaling tens or hundreds
// of gigabytes".
#include <cstdio>
#include <vector>

#include "backend/aggregate.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace wlm;
  const int networks = argc > 1 ? std::atoi(argv[1]) : 60;
  std::printf("=== Ablation: vendor software-update spike (paper SS6.2) ===\n\n");

  auto run_week = [&](const std::vector<traffic::UpdateSpike>& spikes) {
    sim::WorldConfig config;
    config.fleet.epoch = deploy::Epoch::kJan2015;
    config.fleet.network_count = networks;
    config.seed = 31337;
    sim::World world(config);
    world.run_usage_week(7, spikes);
    world.harvest();
    // Daily fleet download bytes from the report store.
    std::vector<double> daily(7, 0.0);
    world.store().for_each([&](const wire::ApReport& report) {
      const auto day = static_cast<std::size_t>(
          report.timestamp_us / Duration::days(1).as_micros());
      if (day >= daily.size()) return;
      for (const auto& u : report.usage) daily[day] += static_cast<double>(u.rx_bytes);
    });
    return daily;
  };

  traffic::UpdateSpike spike;
  spike.start = SimTime::epoch() + Duration::days(3) + Duration::hours(10);
  spike.duration = Duration::hours(8);
  spike.affects_apple = true;
  spike.download_multiplier = 9.0;

  const auto baseline = run_week({});
  const auto spiked = run_week({spike});

  std::printf("day   baseline GB   with-iOS-release GB   delta\n");
  for (int d = 0; d < 7; ++d) {
    const double base = baseline[static_cast<std::size_t>(d)] / 1e9;
    const double with = spiked[static_cast<std::size_t>(d)] / 1e9;
    std::printf("%-5d %11.2f %21.2f   %+5.1f%%%s\n", d, base, with,
                base > 0 ? (with / base - 1.0) * 100.0 : 0.0,
                d == 3 ? "   <- release day" : "");
  }
  return 0;
}
