// Checkpoint/restore cost: what the crash-insurance of src/ckpt actually
// costs, against the campaign work it protects.
//
// Runs the standard seeded week campaign (faulted, so tunnels, the fault
// injector, and the loss ledger all carry state), then measures:
//   - serialize: save_campaign() to bytes, at every phase boundary depth
//   - restore:   rebuild-and-overlay at 1, 2, and 8 worker threads
//   - fidelity:  the restored runner re-serializes to the same bytes
//
// Timings land in the profiler ("checkpoint_*" phases) and the JSON record
// goes to $WLM_BENCH_JSON (default ./BENCH_checkpoint.json).
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "ckpt/campaign.hpp"
#include "sim/fleet_runner.hpp"

int main(int argc, char** argv) {
  using namespace wlm;
  setenv("WLM_BENCH_JSON", "BENCH_checkpoint.json", /*overwrite=*/0);
  const analysis::ScenarioScale scale = bench::scale_from_args(argc, argv, 40);
  bench::print_header("Checkpoint/restore cost and fidelity", scale);

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = scale.networks;
  config.fleet.seed = scale.seed;
  config.seed = scale.seed + 1;
  config.client_scale = scale.client_scale;
  config.threads = scale.threads;
  config.faults.outage_rate_per_week = 2.0;
  config.faults.outage_mean_hours = 12.0;
  config.faults.reboot_rate_per_week = 1.0;
  config.faults.corrupt_probability = 0.01;

  sim::FleetRunner runner(config);
  ckpt::CampaignProgress progress;
  progress.label = "bench_checkpoint";

  const struct {
    const char* name;
    void (*run)(sim::FleetRunner&);
  } phases[] = {
      {"usage_week", [](sim::FleetRunner& r) { r.run_usage_week(); }},
      {"mr16",
       [](sim::FleetRunner& r) {
         r.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
       }},
      {"harvest", [](sim::FleetRunner& r) { r.harvest(); }},
  };

  std::printf("phase        campaign_s     save_s   ckpt_bytes\n");
  std::vector<std::uint8_t> last;
  for (const auto& phase : phases) {
    double campaign_s = 0.0;
    {
      const bench::Timer t(std::string("campaign_") + phase.name);
      phase.run(runner);
      campaign_s = t.seconds();
    }
    progress.phases_done.emplace_back(phase.name);
    double save_s = 0.0;
    {
      const bench::Timer t(std::string("checkpoint_save_") + phase.name);
      last = ckpt::save_campaign(runner, progress);
      save_s = t.seconds();
    }
    std::printf("%-12s %10.3f %10.4f %12zu\n", phase.name, campaign_s, save_s,
                last.size());
  }

  std::printf("\nrestore (rebuild + overlay), from the post-harvest checkpoint:\n");
  std::printf("threads    restore_s   fidelity\n");
  for (const int threads : {1, 2, 8}) {
    ckpt::RestoredCampaign restored;
    double restore_s = 0.0;
    {
      const bench::Timer t("checkpoint_restore_t" + std::to_string(threads));
      if (const auto err = ckpt::restore_campaign(last, threads, restored)) {
        std::fprintf(stderr, "bench_checkpoint: restore failed: %s\n",
                     err.detail.c_str());
        return 1;
      }
      restore_s = t.seconds();
    }
    // Fidelity: the restored runner must re-serialize to the same bytes the
    // checkpoint held — the save/restore pair is a fixed point.
    const auto again = ckpt::save_campaign(*restored.runner, restored.progress);
    const bool identical = again == last;
    std::printf("%7d %11.4f   %s\n", threads, restore_s,
                identical ? "byte-identical" : "DIVERGED");
    if (!identical) return 1;
  }
  return 0;
}
