#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

namespace wlm::bench {

analysis::ScenarioScale scale_from_args(int argc, char** argv, int default_networks) {
  analysis::ScenarioScale scale;
  scale.networks = default_networks;
  if (argc > 1) scale.networks = std::atoi(argv[1]);
  if (argc > 2) scale.client_scale = std::atof(argv[2]);
  if (argc > 3) scale.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  return scale;
}

void print_header(const char* experiment, const analysis::ScenarioScale& scale) {
  std::printf("=== %s ===\n(simulated fleet: %d networks, client scale %.2f, seed %llu)\n\n",
              experiment, scale.networks, scale.client_scale,
              static_cast<unsigned long long>(scale.seed));
}

}  // namespace wlm::bench
