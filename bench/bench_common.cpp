#include "bench_common.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/campaign.hpp"

namespace wlm::bench {

namespace {

// Bookkeeping for the JSON trace written at exit. Plain globals: each bench
// binary calls print_header exactly once, from main. The total-run Timer
// lives here too; its destructor fires after the atexit hook, so the hook
// reads it explicitly instead of waiting for the record.
std::string g_experiment;
analysis::ScenarioScale g_scale;
std::optional<Timer> g_total;

void write_bench_json() {
  const double seconds = g_total ? g_total->seconds() : 0.0;
  telemetry::global_profiler().record("bench_total", seconds);
  const char* path = std::getenv("WLM_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fleetrunner.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  // Throughput = deterministic work count / wall clock. The tally (fragments
  // classified by shards + report frames harvested by the poller) is fixed by
  // the scenario, so run-to-run and thread-count comparisons divide the same
  // numerator — only `seconds` moves.
  const auto& tally = telemetry::work_tally();
  const std::uint64_t fragments = tally.fragments.load(std::memory_order_relaxed);
  const std::uint64_t frames = tally.frames.load(std::memory_order_relaxed);
  std::fprintf(out,
               "{\"bench\": \"%s\", \"networks\": %d, \"client_scale\": %.3f, "
               "\"seed\": %llu, \"threads\": %d, \"seconds\": %.3f, "
               "\"fragments\": %llu, \"frames\": %llu, %s, "
               "\"telemetry\": %s}\n",
               g_experiment.c_str(), g_scale.networks, g_scale.client_scale,
               static_cast<unsigned long long>(g_scale.seed), g_scale.threads, seconds,
               static_cast<unsigned long long>(fragments),
               static_cast<unsigned long long>(frames),
               rate_rss_fields(fragments + frames, seconds).c_str(),
               telemetry::global_profiler().to_json().c_str());
  std::fclose(out);
}

// Auto-checkpointing: with $WLM_CHECKPOINT_DIR set, every bench campaign
// checkpoints itself at phase boundaries (throttled by
// $WLM_CHECKPOINT_EVERY_SIM_HOURS, default: every boundary), so a killed
// sweep resumes from <dir>/<bench>.wlmckpt instead of replaying from zero.
// The save cost lands in the profiler under "checkpoint_save", so the
// BENCH_*.json record shows what the insurance costs.
void install_auto_checkpoint() {
  const char* dir = std::getenv("WLM_CHECKPOINT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const char* every_env = std::getenv("WLM_CHECKPOINT_EVERY_SIM_HOURS");
  const double every = every_env != nullptr ? std::atof(every_env) : 0.0;
  std::string name = g_experiment;
  for (auto& c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  const std::string path = std::string(dir) + "/" + name + ".wlmckpt";
  sim::FleetRunner::set_campaign_phase_hook(
      [path, every, last_runner = static_cast<sim::FleetRunner*>(nullptr),
       progress = ckpt::CampaignProgress{}, last_hours = 0.0](
          sim::FleetRunner& runner, const char* phase) mutable {
        if (&runner != last_runner) {
          // A new campaign started (bench binaries often run several);
          // restart the progress record for it.
          last_runner = &runner;
          progress = {};
          progress.label = g_experiment;
          last_hours = 0.0;
        }
        progress.phases_done.emplace_back(phase);
        if (every > 0.0 && runner.campaign_sim_hours() - last_hours < every) return;
        const Timer timer("checkpoint_save");
        if (const auto err = ckpt::save_campaign_file(path, runner, progress)) {
          std::fprintf(stderr, "bench: checkpoint to %s failed: %s\n", path.c_str(),
                       err.detail.c_str());
          return;
        }
        last_hours = runner.campaign_sim_hours();
      });
}

}  // namespace

std::string rate_rss_fields(std::uint64_t work_items, double seconds) {
  const double per_sec =
      seconds > 0.0 ? static_cast<double>(work_items) / seconds : 0.0;
  // Linux reports ru_maxrss in kilobytes.
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  const unsigned long long peak_rss_bytes =
      static_cast<unsigned long long>(usage.ru_maxrss) * 1024ULL;
  char fields[96];
  std::snprintf(fields, sizeof fields,
                "\"fragments_frames_per_sec\": %.1f, \"peak_rss_bytes\": %llu",
                per_sec, peak_rss_bytes);
  return fields;
}

analysis::ScenarioScale scale_from_args(int argc, char** argv, int default_networks) {
  analysis::ScenarioScale scale;
  scale.networks = default_networks;
  if (argc > 1) scale.networks = std::atoi(argv[1]);
  if (argc > 2) scale.client_scale = std::atof(argv[2]);
  if (argc > 3) scale.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  if (argc > 4) scale.threads = std::atoi(argv[4]);
  return scale;
}

void print_header(const char* experiment, const analysis::ScenarioScale& scale) {
  std::printf(
      "=== %s ===\n(simulated fleet: %d networks, client scale %.2f, seed %llu, "
      "%d worker thread%s)\n\n",
      experiment, scale.networks, scale.client_scale,
      static_cast<unsigned long long>(scale.seed), scale.threads,
      scale.threads == 1 ? "" : "s");
  g_experiment = experiment;
  g_scale = scale;
  // The Timer's own destructor records "bench_total" again after the atexit
  // hook runs; that late duplicate is never serialized.
  g_total.emplace("bench_total");
  std::atexit(write_bench_json);
  install_auto_checkpoint();
}

}  // namespace wlm::bench
