#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace wlm::bench {

namespace {

// Wall-clock bookkeeping for the JSON trace written at exit. Plain globals:
// each bench binary calls print_header exactly once, from main.
std::string g_experiment;
analysis::ScenarioScale g_scale;
std::chrono::steady_clock::time_point g_start;

void write_bench_json() {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - g_start).count();
  const char* path = std::getenv("WLM_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fleetrunner.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"bench\": \"%s\", \"networks\": %d, \"client_scale\": %.3f, "
               "\"seed\": %llu, \"threads\": %d, \"seconds\": %.3f}\n",
               g_experiment.c_str(), g_scale.networks, g_scale.client_scale,
               static_cast<unsigned long long>(g_scale.seed), g_scale.threads, seconds);
  std::fclose(out);
}

}  // namespace

analysis::ScenarioScale scale_from_args(int argc, char** argv, int default_networks) {
  analysis::ScenarioScale scale;
  scale.networks = default_networks;
  if (argc > 1) scale.networks = std::atoi(argv[1]);
  if (argc > 2) scale.client_scale = std::atof(argv[2]);
  if (argc > 3) scale.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  if (argc > 4) scale.threads = std::atoi(argv[4]);
  return scale;
}

void print_header(const char* experiment, const analysis::ScenarioScale& scale) {
  std::printf(
      "=== %s ===\n(simulated fleet: %d networks, client scale %.2f, seed %llu, "
      "%d worker thread%s)\n\n",
      experiment, scale.networks, scale.client_scale,
      static_cast<unsigned long long>(scale.seed), scale.threads,
      scale.threads == 1 ? "" : "s");
  g_experiment = experiment;
  g_scale = scale;
  g_start = std::chrono::steady_clock::now();
  std::atexit(write_bench_json);
}

}  // namespace wlm::bench
