#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

namespace wlm::bench {

namespace {

// Bookkeeping for the JSON trace written at exit. Plain globals: each bench
// binary calls print_header exactly once, from main. The total-run Timer
// lives here too; its destructor fires after the atexit hook, so the hook
// reads it explicitly instead of waiting for the record.
std::string g_experiment;
analysis::ScenarioScale g_scale;
std::optional<Timer> g_total;

void write_bench_json() {
  const double seconds = g_total ? g_total->seconds() : 0.0;
  telemetry::global_profiler().record("bench_total", seconds);
  const char* path = std::getenv("WLM_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fleetrunner.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"bench\": \"%s\", \"networks\": %d, \"client_scale\": %.3f, "
               "\"seed\": %llu, \"threads\": %d, \"seconds\": %.3f, "
               "\"telemetry\": %s}\n",
               g_experiment.c_str(), g_scale.networks, g_scale.client_scale,
               static_cast<unsigned long long>(g_scale.seed), g_scale.threads, seconds,
               telemetry::global_profiler().to_json().c_str());
  std::fclose(out);
}

}  // namespace

analysis::ScenarioScale scale_from_args(int argc, char** argv, int default_networks) {
  analysis::ScenarioScale scale;
  scale.networks = default_networks;
  if (argc > 1) scale.networks = std::atoi(argv[1]);
  if (argc > 2) scale.client_scale = std::atof(argv[2]);
  if (argc > 3) scale.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  if (argc > 4) scale.threads = std::atoi(argv[4]);
  return scale;
}

void print_header(const char* experiment, const analysis::ScenarioScale& scale) {
  std::printf(
      "=== %s ===\n(simulated fleet: %d networks, client scale %.2f, seed %llu, "
      "%d worker thread%s)\n\n",
      experiment, scale.networks, scale.client_scale,
      static_cast<unsigned long long>(scale.seed), scale.threads,
      scale.threads == 1 ? "" : "s");
  g_experiment = experiment;
  g_scale = scale;
  // The Timer's own destructor records "bench_total" again after the atexit
  // hook runs; that late duplicate is never serialized.
  g_total.emplace("bench_total");
  std::atexit(write_bench_json);
}

}  // namespace wlm::bench
