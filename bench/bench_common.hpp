// Shared helpers for the experiment-regeneration binaries.
#pragma once

#include "analysis/experiments.hpp"

namespace wlm::bench {

/// Scale from argv: bench_x [networks] [client_scale] [seed] [threads].
/// Benches default to a smaller fleet than the integration tests so that
/// `for b in build/bench/*; do $b; done` finishes in minutes.
[[nodiscard]] analysis::ScenarioScale scale_from_args(int argc, char** argv,
                                                      int default_networks = 250);

/// Prints a standard header naming the experiment and starts the wall-clock
/// measurement. At process exit a line-delimited JSON record
///   {"bench": ..., "networks": ..., "threads": ..., "seconds": ...}
/// is appended to $WLM_BENCH_JSON (default ./BENCH_fleetrunner.json), so a
/// sweep over thread counts leaves a machine-readable speedup trace.
void print_header(const char* experiment, const analysis::ScenarioScale& scale);

}  // namespace wlm::bench
