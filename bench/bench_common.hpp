// Shared helpers for the experiment-regeneration binaries.
#pragma once

#include <string>

#include "analysis/experiments.hpp"
#include "telemetry/profile.hpp"

namespace wlm::bench {

/// Wall-clock phase timer for bench mains, built on the telemetry profiler:
/// construction starts the clock, destruction records the elapsed seconds
/// under `phase` in telemetry::global_profiler() — the same sink FleetRunner
/// feeds its build/campaign/harvest phases into, so everything a bench
/// times lands in the one `telemetry` section of its BENCH_*.json record.
class Timer {
 public:
  explicit Timer(std::string phase) : phase_(std::move(phase)) {}
  ~Timer() { telemetry::global_profiler().record(phase_, watch_.seconds()); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  [[nodiscard]] double seconds() const { return watch_.seconds(); }
  [[nodiscard]] const std::string& phase() const { return phase_; }

 private:
  std::string phase_;
  telemetry::Stopwatch watch_;
};

/// Scale from argv: bench_x [networks] [client_scale] [seed] [threads].
/// Benches default to a smaller fleet than the integration tests so that
/// `for b in build/bench/*; do $b; done` finishes in minutes.
[[nodiscard]] analysis::ScenarioScale scale_from_args(int argc, char** argv,
                                                      int default_networks = 250);

/// Renders the two fields every BENCH_*.json record carries regardless of
/// shape — `"fragments_frames_per_sec": R, "peak_rss_bytes": B` (no braces,
/// so emitters splice it into their own records). `work_items` is the
/// record's own deterministic work count and `seconds` its own wall clock;
/// peak RSS is the process high-water mark from getrusage.
[[nodiscard]] std::string rate_rss_fields(std::uint64_t work_items, double seconds);

/// Prints a standard header naming the experiment and starts the wall-clock
/// measurement. At process exit a line-delimited JSON record
///   {"bench": ..., "networks": ..., "threads": ..., "seconds": ...,
///    "fragments": ..., "frames": ..., "fragments_frames_per_sec": ...,
///    "peak_rss_bytes": ..., "telemetry": {"phases": [...]}}
/// is appended to $WLM_BENCH_JSON (default ./BENCH_fleetrunner.json).
/// `fragments`/`frames` come from telemetry::work_tally() — deterministic
/// work counts, so `fragments_frames_per_sec` is the scenario's fixed work
/// divided by this run's wall clock, and `peak_rss_bytes` is getrusage
/// ru_maxrss. The
/// `telemetry` section is the global profiler's phase breakdown (fleet
/// build, each campaign, harvest drain/merge, plus any bench::Timer the
/// binary ran), so a sweep over thread counts leaves a machine-readable
/// trace of where the time went, not just how much there was.
///
/// Also arms auto-checkpointing: with $WLM_CHECKPOINT_DIR set, every
/// campaign the bench runs writes <dir>/<bench>.wlmckpt at each phase
/// boundary (throttle with $WLM_CHECKPOINT_EVERY_SIM_HOURS), and the save
/// cost is profiled under "checkpoint_save".
void print_header(const char* experiment, const analysis::ScenarioScale& scale);

}  // namespace wlm::bench
