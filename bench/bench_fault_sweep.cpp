// Fault sweep: how telemetry yield degrades as disruption intensity rises.
//
// Sweeps the two orthogonal loss processes — WAN outage rate (queue-and-
// catch-up territory, paper §2) and wire corruption probability — and
// records where each generated report ended up. Each cell runs the same
// seeded week campaign, so the sweep isolates the fault knobs: deltas
// between cells are injector effects, not workload noise.
//
// Besides the stdout tables, each cell appends a JSON line to
// $WLM_BENCH_JSON (default ./BENCH_fault_sweep.json) with the full ledger,
// so a plotting script can recover delivery/loss curves.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "sim/fleet_runner.hpp"

namespace {

using namespace wlm;

struct CellResult {
  fault::LossLedger ledger;
  /// Fragments + frames this cell added to the global work tally, and its
  /// own wall clock — the shared-schema throughput inputs.
  std::uint64_t work = 0;
  double seconds = 0.0;
};

std::uint64_t work_tally_total() {
  const auto& tally = telemetry::work_tally();
  return tally.fragments.load(std::memory_order_relaxed) +
         tally.frames.load(std::memory_order_relaxed);
}

CellResult run_cell(const analysis::ScenarioScale& scale,
                    const fault::FaultSpec& faults) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = scale.networks;
  config.fleet.seed = scale.seed;
  config.seed = scale.seed + 1;
  config.client_scale = scale.client_scale;
  config.threads = scale.threads;
  config.faults = faults;
  CellResult cell;
  const std::uint64_t tally_before = work_tally_total();
  const telemetry::Stopwatch watch;
  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.run_mr16_interference(SimTime::epoch() + Duration::days(3));
  runner.harvest(sim::HarvestMode::kFinal);
  cell.ledger = runner.loss_ledger();
  cell.seconds = watch.seconds();
  cell.work = work_tally_total() - tally_before;
  return cell;
}

void append_json(const char* axis, double intensity, const CellResult& cell) {
  const fault::LossLedger& ledger = cell.ledger;
  const char* path = std::getenv("WLM_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fault_sweep.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"bench\": \"fault_sweep\", \"axis\": \"%s\", \"intensity\": %.4f, "
               "\"generated\": %llu, \"delivered\": %llu, \"shed\": %llu, "
               "\"lost_reboot\": %llu, \"lost_corruption\": %llu, "
               "\"in_flight\": %llu, \"conserved\": %s, %s}\n",
               axis, intensity, static_cast<unsigned long long>(ledger.generated),
               static_cast<unsigned long long>(ledger.delivered),
               static_cast<unsigned long long>(ledger.shed),
               static_cast<unsigned long long>(ledger.lost_reboot),
               static_cast<unsigned long long>(ledger.lost_corruption),
               static_cast<unsigned long long>(ledger.in_flight),
               ledger.conserved() ? "true" : "false",
               bench::rate_rss_fields(cell.work, cell.seconds).c_str());
  std::fclose(out);
}

void print_row(double intensity, const fault::LossLedger& ledger) {
  const double g = ledger.generated > 0 ? static_cast<double>(ledger.generated) : 1.0;
  std::printf("%9.3f %10llu %10.1f%% %7.1f%% %8.1f%% %9.1f%%   %s\n", intensity,
              static_cast<unsigned long long>(ledger.generated),
              100.0 * ledger.delivery_ratio(),
              100.0 * static_cast<double>(ledger.shed) / g,
              100.0 * static_cast<double>(ledger.lost_reboot) / g,
              100.0 * static_cast<double>(ledger.lost_corruption) / g,
              ledger.conserved() ? "ok" : "NOT CONSERVED");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlm;
  const analysis::ScenarioScale scale = bench::scale_from_args(argc, argv, 40);
  bench::print_header("Fault sweep: loss accounting vs disruption intensity", scale);

  std::printf("-- WAN outage sweep (mean 12h outages, bounded 64-frame queues) --\n");
  std::printf("rate/week  generated   delivered    shed   reboot   corrupt   invariant\n");
  for (const double rate : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    fault::FaultSpec faults;
    faults.outage_rate_per_week = rate;
    faults.outage_mean_hours = 12.0;
    faults.reboot_rate_per_week = rate / 2.0;
    faults.tunnel_queue_limit = 64;
    const auto cell = run_cell(scale, faults);
    print_row(rate, cell.ledger);
    append_json("outage_rate", rate, cell);
  }

  std::printf("\n-- Corruption sweep (bit flips caught by the framing CRC) --\n");
  std::printf("p(flip)    generated   delivered    shed   reboot   corrupt   invariant\n");
  for (const double p : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    fault::FaultSpec faults;
    faults.corrupt_probability = p;
    const auto cell = run_cell(scale, faults);
    print_row(p, cell.ledger);
    append_json("corrupt_probability", p, cell);
  }

  std::printf(
      "\nEvery row satisfies generated == delivered + shed + lost + in-flight;\n"
      "the corruption column tracks p(flip) because CRC32 catches every\n"
      "single-bit flip (no silent acceptance at any intensity).\n");
  return 0;
}
