// Regenerates Figure 10: fraction of channel busy time that is decodable 802.11.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 200);
  wlm::bench::print_header("Figure 10: decodable 802.11 fraction", scale);
  const auto run = wlm::analysis::run_utilization_study(scale);
  std::fputs(wlm::analysis::render_fig10(run).c_str(), stdout);
  return 0;
}
