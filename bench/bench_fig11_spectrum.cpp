// Regenerates Figure 11: USRP-style spectrum snapshots at 2.437 and 5.220 GHz.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Figure 11: spectrum analysis", scale);
  const auto run = wlm::analysis::run_spectrum_study(scale.seed);
  std::fputs(wlm::analysis::render_fig11(run).c_str(), stdout);
  return 0;
}
