// Regenerates Figure 1: distribution of client signal strength by band.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Figure 1: client RSSI distribution", scale);
  const auto run = wlm::analysis::run_snapshot_study(scale);
  std::fputs(wlm::analysis::render_fig1(run).c_str(), stdout);
  return 0;
}
