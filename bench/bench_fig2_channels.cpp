// Regenerates Figure 2: nearby networks by channel number.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Figure 2: nearby networks by channel", scale);
  const auto run = wlm::analysis::run_neighbor_study(scale);
  std::fputs(wlm::analysis::render_fig2(run).c_str(), stdout);
  return 0;
}
