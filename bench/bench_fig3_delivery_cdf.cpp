// Regenerates Figure 3: link delivery ratio CDFs, both bands, two epochs.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 300);
  wlm::bench::print_header("Figure 3: link delivery ratio CDFs", scale);
  const auto run = wlm::analysis::run_link_study(scale);
  std::fputs(wlm::analysis::render_fig3(run).c_str(), stdout);
  return 0;
}
