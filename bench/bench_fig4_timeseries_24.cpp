// Regenerates Figure 4: 2.4 GHz link delivery variation over a week.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 60);
  wlm::bench::print_header("Figure 4: weekly delivery variation, 2.4 GHz", scale);
  const auto run = wlm::analysis::run_link_study(scale);
  std::fputs(wlm::analysis::render_fig4(run).c_str(), stdout);
  return 0;
}
