// Regenerates Figure 6: channel utilization CDFs as seen by MR16 radios.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 200);
  wlm::bench::print_header("Figure 6: MR16 channel utilization", scale);
  const auto run = wlm::analysis::run_utilization_study(scale);
  std::fputs(wlm::analysis::render_fig6(run).c_str(), stdout);
  return 0;
}
