// Regenerates Figure 7: utilization vs nearby-AP count, 2.4 GHz.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 200);
  wlm::bench::print_header("Figure 7: utilization vs nearby APs (2.4 GHz)", scale);
  const auto run = wlm::analysis::run_utilization_study(scale);
  std::fputs(wlm::analysis::render_fig7(run).c_str(), stdout);
  return 0;
}
