// Regenerates Figure 8: utilization vs nearby-AP count, 5 GHz.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 200);
  wlm::bench::print_header("Figure 8: utilization vs nearby APs (5 GHz)", scale);
  const auto run = wlm::analysis::run_utilization_study(scale);
  std::fputs(wlm::analysis::render_fig8(run).c_str(), stdout);
  return 0;
}
