// Regenerates Figure 9: day vs night channel utilization (MR18 scans).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 200);
  wlm::bench::print_header("Figure 9: day/night utilization", scale);
  const auto run = wlm::analysis::run_utilization_study(scale);
  std::fputs(wlm::analysis::render_fig9(run).c_str(), stdout);
  return 0;
}
