// Full-scale campaign: the paper's entire fleet (Table 2: 20,667 networks)
// through the streaming tsdb harvest, in bounded memory.
//
// Four runs of the same seeded campaign, in this order:
//   1. primary   — jobs 1, the configured memory ceiling. Wall clock, the
//      process peak-RSS high-water mark (asserted <= the ceiling), and the
//      segment store's compression ratio (asserted >= 3x vs raw wire
//      bytes) are measured here, before any later run can move ru_maxrss.
//   2. spill     — jobs 1, a deliberately tiny ceiling so sealed segments
//      spill to disk mid-campaign.
//   3/4. jobs 2/8 — the primary configuration at other worker counts.
// Every run must produce the same output signature (CRC32 of the harvested
// report stream in canonical order, of the Prometheus metrics export, and
// of the campaign checkpoint bytes): that is the determinism contract —
// byte-identical output across --jobs and with/without spill — enforced,
// not just claimed. Identity failures, an RSS over the ceiling, or a
// compression ratio under 3x exit nonzero.
//
// The JSON record appends to $WLM_BENCH_JSON (default ./BENCH_fullscale.json)
// alongside the standard bench_common record. Knobs:
//   argv:                        [networks] [client_scale] [seed] [threads]
//   $WLM_FULLSCALE_CEILING_MB    primary ceiling, MiB (default 10240)
//   $WLM_FULLSCALE_SPILL_CEILING_MB  spill-forcing ceiling (default 512)
//   $WLM_FULLSCALE_SPILL_DIR     where spill files land (default
//                                ./bench_fullscale_spill)
#include <sys/resource.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include "bench_common.hpp"
#include "ckpt/campaign.hpp"
#include "core/checksum.hpp"
#include "sim/fleet_runner.hpp"
#include "telemetry/export.hpp"
#include "wire/messages.hpp"

namespace {

using namespace wlm;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

unsigned long long peak_rss_bytes_now() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<unsigned long long>(usage.ru_maxrss) * 1024ULL;
}

std::uint32_t crc_str(const std::string& s) {
  return crc32(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

/// The output signature one campaign produces: everything the acceptance
/// contract requires to be byte-identical is reduced to a CRC each.
struct Signature {
  std::uint32_t reports_crc = 0;
  std::uint32_t prometheus_crc = 0;
  std::uint32_t checkpoint_crc = 0;
  bool operator==(const Signature&) const = default;
};

struct RunResult {
  Signature sig;
  double seconds = 0.0;
  tsdb::FleetStoreStats stats;
};

RunResult run_campaign(const analysis::ScenarioScale& scale, std::uint64_t ceiling_mb,
                       const std::string& spill_dir, int threads, const char* phase) {
  mkdir(spill_dir.c_str(), 0755);  // EEXIST is fine
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = scale.networks;
  config.fleet.seed = scale.seed;
  config.seed = scale.seed + 1;
  config.client_scale = scale.client_scale;
  config.threads = threads;
  config.mem_ceiling_mb = ceiling_mb;
  config.spill_dir = spill_dir;

  RunResult r;
  const bench::Timer timer(phase);
  sim::FleetRunner runner(config);
  runner.run_usage_week();
  runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner.run_link_windows(SimTime::epoch() + Duration::hours(14));
  runner.harvest();
  r.seconds = timer.seconds();
  r.stats = runner.fleet_tsdb().stats();

  std::uint32_t reports_crc = 0;
  runner.reports().for_each([&](const wire::ApReport& report) {
    reports_crc = crc32_update(reports_crc, wire::encode_report(report));
  });
  r.sig.reports_crc = reports_crc;
  r.sig.prometheus_crc = crc_str(telemetry::to_prometheus(runner.metrics()));
  ckpt::CampaignProgress progress;
  progress.label = "bench_fullscale";
  progress.phases_done = {"usage_week", "mr16", "link_windows", "harvest"};
  r.sig.checkpoint_crc = crc32(ckpt::save_campaign(runner, progress));
  return r;
}

bool check_identity(const char* what, const Signature& want, const Signature& got) {
  if (want == got) {
    std::printf("  %-18s identical (reports %08x, prometheus %08x, checkpoint %08x)\n",
                what, got.reports_crc, got.prometheus_crc, got.checkpoint_crc);
    return true;
  }
  std::fprintf(stderr,
               "bench_fullscale: %s DIVERGED: reports %08x/%08x, prometheus "
               "%08x/%08x, checkpoint %08x/%08x\n",
               what, want.reports_crc, got.reports_crc, want.prometheus_crc,
               got.prometheus_crc, want.checkpoint_crc, got.checkpoint_crc);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlm;
  setenv("WLM_BENCH_JSON", "BENCH_fullscale.json", /*overwrite=*/0);
  const analysis::ScenarioScale scale =
      bench::scale_from_args(argc, argv, analysis::paper_network_count());
  bench::print_header("Full-scale campaign in bounded memory", scale);

  const std::uint64_t ceiling_mb = env_u64("WLM_FULLSCALE_CEILING_MB", 10240);
  const std::uint64_t spill_ceiling_mb = env_u64("WLM_FULLSCALE_SPILL_CEILING_MB", 512);
  const char* spill_base = std::getenv("WLM_FULLSCALE_SPILL_DIR");
  const std::string spill_dir =
      (spill_base != nullptr && *spill_base != '\0') ? spill_base
                                                     : "bench_fullscale_spill";
  mkdir(spill_dir.c_str(), 0755);  // parent for the per-run subdirs

  const auto& tally = telemetry::work_tally();
  const std::uint64_t work_before = tally.fragments.load(std::memory_order_relaxed) +
                                    tally.frames.load(std::memory_order_relaxed);
  std::printf("primary run: %d networks, jobs 1, ceiling %llu MiB\n", scale.networks,
              static_cast<unsigned long long>(ceiling_mb));
  const RunResult primary = run_campaign(scale, ceiling_mb, spill_dir + "/primary",
                                         /*threads=*/1, "fullscale_primary");
  const std::uint64_t work_primary = tally.fragments.load(std::memory_order_relaxed) +
                                     tally.frames.load(std::memory_order_relaxed) -
                                     work_before;
  // Snapshot the high-water mark NOW: ru_maxrss is process-lifetime
  // monotone, so this is the primary run's peak and later runs can't
  // retroactively inflate the bounded-memory claim.
  const unsigned long long primary_peak_rss = peak_rss_bytes_now();
  const bool rss_ok = primary_peak_rss <= ceiling_mb * 1024ULL * 1024ULL;
  const double ratio = primary.stats.compression_ratio();
  const bool ratio_ok = ratio >= 3.0;
  std::printf(
      "  %.1fs, peak RSS %.1f MiB (%s ceiling), %llu reports in %llu segments, "
      "%.2fx compression (%llu raw -> %llu segment bytes)\n",
      primary.seconds, static_cast<double>(primary_peak_rss) / (1024.0 * 1024.0),
      rss_ok ? "under" : "OVER", static_cast<unsigned long long>(primary.stats.reports),
      static_cast<unsigned long long>(primary.stats.segments_sealed), ratio,
      static_cast<unsigned long long>(primary.stats.raw_wire_bytes),
      static_cast<unsigned long long>(primary.stats.segment_bytes()));
  if (!rss_ok) {
    std::fprintf(stderr, "bench_fullscale: peak RSS exceeds the %llu MiB ceiling\n",
                 static_cast<unsigned long long>(ceiling_mb));
  }
  if (!ratio_ok) {
    std::fprintf(stderr, "bench_fullscale: compression ratio %.2fx is under 3x\n", ratio);
  }

  std::printf("spill run: ceiling %llu MiB, jobs 1\n",
              static_cast<unsigned long long>(spill_ceiling_mb));
  const RunResult spilled = run_campaign(scale, spill_ceiling_mb, spill_dir + "/spill",
                                         /*threads=*/1, "fullscale_spill");
  if (spilled.stats.segments_spilled == 0) {
    std::fprintf(stderr,
                 "bench_fullscale: warning: spill run never spilled (resident stayed "
                 "under %llu MiB / 4) — the spill-identity check is vacuous\n",
                 static_cast<unsigned long long>(spill_ceiling_mb));
  } else {
    std::printf("  %.1fs, %llu segments spilled across %llu files\n", spilled.seconds,
                static_cast<unsigned long long>(spilled.stats.segments_spilled),
                static_cast<unsigned long long>(spilled.stats.spill_files));
  }

  std::printf("worker-count runs: ceiling %llu MiB, jobs 2 and 8\n",
              static_cast<unsigned long long>(ceiling_mb));
  const RunResult jobs2 = run_campaign(scale, ceiling_mb, spill_dir + "/jobs2",
                                       /*threads=*/2, "fullscale_jobs2");
  const RunResult jobs8 = run_campaign(scale, ceiling_mb, spill_dir + "/jobs8",
                                       /*threads=*/8, "fullscale_jobs8");

  std::printf("output identity vs the primary run:\n");
  const bool spill_same = check_identity("spill-vs-resident", primary.sig, spilled.sig);
  const bool jobs2_same = check_identity("jobs 2", primary.sig, jobs2.sig);
  const bool jobs8_same = check_identity("jobs 8", primary.sig, jobs8.sig);

  const char* path = std::getenv("WLM_BENCH_JSON");
  std::FILE* out = std::fopen(path, "a");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\"bench\": \"fullscale\", \"networks\": %d, \"seed\": %llu, "
        "\"mem_ceiling_mb\": %llu, \"seconds\": %.3f, "
        "\"primary_peak_rss_bytes\": %llu, \"rss_under_ceiling\": %s, "
        "\"reports\": %llu, \"segments_sealed\": %llu, \"raw_wire_bytes\": %llu, "
        "\"segment_bytes\": %llu, \"compression_ratio\": %.3f, "
        "\"spill_run\": {\"mem_ceiling_mb\": %llu, \"segments_spilled\": %llu, "
        "\"spill_files\": %llu, \"seconds\": %.3f}, "
        "\"identity\": {\"spill_vs_resident\": %s, \"jobs2\": %s, \"jobs8\": %s, "
        "\"reports_crc\": %u, \"prometheus_crc\": %u, \"checkpoint_crc\": %u}, %s}\n",
        scale.networks, static_cast<unsigned long long>(scale.seed),
        static_cast<unsigned long long>(ceiling_mb), primary.seconds, primary_peak_rss,
        rss_ok ? "true" : "false",
        static_cast<unsigned long long>(primary.stats.reports),
        static_cast<unsigned long long>(primary.stats.segments_sealed),
        static_cast<unsigned long long>(primary.stats.raw_wire_bytes),
        static_cast<unsigned long long>(primary.stats.segment_bytes()), ratio,
        static_cast<unsigned long long>(spill_ceiling_mb),
        static_cast<unsigned long long>(spilled.stats.segments_spilled),
        static_cast<unsigned long long>(spilled.stats.spill_files), spilled.seconds,
        spill_same ? "true" : "false", jobs2_same ? "true" : "false",
        jobs8_same ? "true" : "false", primary.sig.reports_crc,
        primary.sig.prometheus_crc, primary.sig.checkpoint_crc,
        bench::rate_rss_fields(work_primary, primary.seconds).c_str());
    std::fclose(out);
  }

  if (!rss_ok || !ratio_ok || !spill_same || !jobs2_same || !jobs8_same) return 1;
  std::printf("\nall identity, memory, and compression gates passed\n");
  return 0;
}
