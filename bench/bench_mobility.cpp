// Mobility bench: what the waypoint walk + per-step handoff evaluation adds
// to a usage week, measured as an off/on pair at the same seed and scale so
// the delta is the mobility layer alone, not workload noise.
//
// Each cell appends a JSON line to $WLM_BENCH_JSON (default
// ./BENCH_mobility.json) with the unified fragments_frames_per_sec /
// peak_rss_bytes throughput fields plus the cell's roam counters.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "sim/fleet_runner.hpp"

namespace {

using namespace wlm;

std::uint64_t work_tally_total() {
  const auto& tally = telemetry::work_tally();
  return tally.fragments.load(std::memory_order_relaxed) +
         tally.frames.load(std::memory_order_relaxed);
}

struct CellResult {
  double seconds = 0.0;
  std::uint64_t work = 0;
  std::uint64_t walkers = 0;
  std::uint64_t active_steps = 0;
  std::uint64_t roams = 0;
  std::uint64_t band_switches = 0;
};

CellResult run_cell(const analysis::ScenarioScale& scale, bool mobility_on) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = scale.networks;
  config.fleet.seed = scale.seed;
  config.seed = scale.seed + 1;
  config.client_scale = scale.client_scale;
  config.threads = scale.threads;
  config.mobility = scale.mobility;
  config.mobility.enabled = mobility_on;

  CellResult cell;
  const std::uint64_t tally_before = work_tally_total();
  const telemetry::Stopwatch watch;
  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.harvest(sim::HarvestMode::kFinal);
  cell.seconds = watch.seconds();
  cell.work = work_tally_total() - tally_before;
  const auto& metrics = runner.metrics();
  cell.walkers = metrics.counter_value("wlm_mobility_clients_walking_total");
  cell.active_steps = metrics.counter_value("wlm_mobility_steps_active_total");
  cell.roams = metrics.counter_value("wlm_mobility_roams_total");
  cell.band_switches = metrics.counter_value("wlm_mobility_band_switches_total");
  return cell;
}

void append_json(const char* mode, const CellResult& cell) {
  const char* path = std::getenv("WLM_BENCH_JSON");
  if (path == nullptr) path = "BENCH_mobility.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"bench\": \"mobility\", \"mode\": \"%s\", \"walkers\": %llu, "
               "\"active_steps\": %llu, \"roams\": %llu, \"band_switches\": %llu, "
               "\"seconds\": %.3f, %s}\n",
               mode, static_cast<unsigned long long>(cell.walkers),
               static_cast<unsigned long long>(cell.active_steps),
               static_cast<unsigned long long>(cell.roams),
               static_cast<unsigned long long>(cell.band_switches), cell.seconds,
               bench::rate_rss_fields(cell.work, cell.seconds).c_str());
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlm;
  const analysis::ScenarioScale scale = bench::scale_from_args(argc, argv, 40);
  bench::print_header("Mobility: waypoint-walk + handoff overhead (off/on pair)", scale);

  const CellResult off = run_cell(scale, /*mobility_on=*/false);
  const CellResult on = run_cell(scale, /*mobility_on=*/true);
  append_json("off", off);
  append_json("on", on);

  std::printf("mobility off: %.2fs\n", off.seconds);
  std::printf("mobility on:  %.2fs  (%llu walkers, %llu active steps, %llu roams, "
              "%llu band switches)\n",
              on.seconds, static_cast<unsigned long long>(on.walkers),
              static_cast<unsigned long long>(on.active_steps),
              static_cast<unsigned long long>(on.roams),
              static_cast<unsigned long long>(on.band_switches));
  const double base = off.seconds > 0.0 ? off.seconds : 1.0;
  std::printf("walk overhead: %+.1f%% wall clock\n",
              100.0 * (on.seconds - base) / base);
  return 0;
}
