// Micro-benchmarks of the hot pipeline stages: flow classification, wire
// encode/decode, framing, medium observation, and the probe window.
//
// The custom main additionally runs the two-tier classification contrast
// (RuleIndex + VerdictCache vs the kReference linear engine on the same
// fragment stream) and appends one JSON record to $WLM_CLASSIFY_BENCH_JSON
// (default ./BENCH_classify.json): flows/s in both modes, the speedup, the
// cache hit/miss/evict counters, and the slow-path latency histogram.
// $WLM_CLASSIFY_BENCH_FLOWS overrides the stream size.
//
// It also runs the SINR->PER table contrast (guarded table draws vs the
// scalar oracle on one decision stream, identical decisions enforced) and
// appends a record to $WLM_PER_BENCH_JSON (default ./BENCH_per.json);
// $WLM_PER_BENCH_EVALS overrides that stream size.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "backend/poller.hpp"
#include "classify/classifier.hpp"
#include "classify/verdict_cache.hpp"
#include "mac/medium.hpp"
#include "phy/modulation.hpp"
#include "phy/per_table.hpp"
#include "probe/window.hpp"
#include "scan/spectral.hpp"
#include "traffic/flowgen.hpp"
#include "wire/framing.hpp"
#include "wire/messages.hpp"

namespace {

using namespace wlm;

std::vector<classify::FlowSample> make_samples(std::size_t n) {
  traffic::FlowGenerator gen{Rng{42}};
  Rng rng{7};
  std::vector<classify::FlowSample> samples;
  const auto catalog = classify::app_catalog();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& info = catalog[1 + rng.next_u64() % (catalog.size() - 1)];
    samples.push_back(
        gen.make_flow(info.id, classify::OsType::kWindows, 1000, 9000).sample);
  }
  return samples;
}

void BM_ClassifyFlow(benchmark::State& state) {
  const auto samples = make_samples(512);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify::classify_flow(samples[i++ % samples.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifyFlow);

// The same fragment stream the fleet runtime feeds the classifier: flows
// with volume-derived fragment counts and per-flow keys.
struct FragmentStream {
  std::vector<traffic::GeneratedFlow> flows;
  std::vector<classify::FlowKey> keys;
  std::size_t fragments = 0;
};

FragmentStream make_fragment_stream(std::size_t n_flows) {
  traffic::FlowGenerator gen{Rng{2015}};
  Rng rng{99991};
  FragmentStream stream;
  const auto& catalog = classify::app_catalog();
  for (std::size_t i = 0; i < n_flows; ++i) {
    const auto& info = catalog[rng.next_u64() % catalog.size()];
    const auto os = static_cast<classify::OsType>(i % classify::kOsTypeCount);
    stream.flows.push_back(gen.make_flow(info.id, os, rng.next_u64() % (1u << 22),
                                         rng.next_u64() % (1u << 26)));
    const auto& flow = stream.flows.back();
    stream.keys.push_back(classify::FlowKey{
        0xB16'0000'0000ULL + i, static_cast<std::uint32_t>(i % 251), flow.dst_host,
        flow.src_port, flow.sample.dst_port,
        flow.sample.transport == classify::Transport::kUdp ? std::uint8_t{17}
                                                           : std::uint8_t{6}});
    stream.fragments += flow.fragments;
  }
  return stream;
}

std::uint64_t run_stream(classify::TwoTierClassifier& tier, const FragmentStream& stream) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < stream.flows.size(); ++i) {
    const auto& flow = stream.flows[i];
    for (std::uint16_t f = 0; f < flow.fragments; ++f) {
      acc += static_cast<std::uint64_t>(tier.classify(stream.keys[i], flow.sample));
    }
  }
  return acc;
}

void BM_ClassifyTwoTierIndexed(benchmark::State& state) {
  const auto stream = make_fragment_stream(512);
  for (auto _ : state) {
    classify::TwoTierClassifier tier(classify::ClassifierMode::kIndexed);
    benchmark::DoNotOptimize(run_stream(tier, stream));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.fragments));
}
BENCHMARK(BM_ClassifyTwoTierIndexed);

void BM_ClassifyTwoTierReference(benchmark::State& state) {
  const auto stream = make_fragment_stream(512);
  for (auto _ : state) {
    classify::TwoTierClassifier tier(classify::ClassifierMode::kReference);
    benchmark::DoNotOptimize(run_stream(tier, stream));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.fragments));
}
BENCHMARK(BM_ClassifyTwoTierReference);

// The JSON contrast record the CI smoke checks: one timed pass per mode
// over an identical stream, verdict checksums compared as a sanity gate.
void emit_classify_contrast() {
  std::size_t n_flows = 50'000;
  if (const char* env = std::getenv("WLM_CLASSIFY_BENCH_FLOWS")) {
    n_flows = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const auto stream = make_fragment_stream(n_flows);

  const auto timed = [&](classify::TwoTierClassifier& tier) {
    const auto start = std::chrono::steady_clock::now();
    const auto checksum = run_stream(tier, stream);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return std::pair<std::uint64_t, double>{checksum, static_cast<double>(ns) / 1e9};
  };

  classify::TwoTierClassifier indexed(classify::ClassifierMode::kIndexed);
  classify::TwoTierClassifier reference(classify::ClassifierMode::kReference);
  const auto [sum_fast, s_fast] = timed(indexed);
  const auto [sum_ref, s_ref] = timed(reference);
  if (sum_fast != sum_ref) {
    std::fprintf(stderr, "bench_classify: verdict checksum mismatch (%llu != %llu)\n",
                 static_cast<unsigned long long>(sum_fast),
                 static_cast<unsigned long long>(sum_ref));
    std::exit(1);
  }

  const double fps_fast = static_cast<double>(stream.fragments) / s_fast;
  const double fps_ref = static_cast<double>(stream.fragments) / s_ref;
  const auto& stats = indexed.cache().stats();
  const auto& profile = indexed.profile();

  const char* path = std::getenv("WLM_CLASSIFY_BENCH_JSON");
  if (path == nullptr) path = "BENCH_classify.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_classify: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(out,
               "{\"bench\": \"classify_two_tier\", \"flows\": %zu, \"fragments\": %zu, "
               "\"reference_fragments_per_s\": %.0f, \"indexed_fragments_per_s\": %.0f, "
               "\"speedup\": %.2f, \"cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu, \"pinned\": %llu}, "
               "\"slow_path_ns\": {\"count\": %llu, \"mean\": %.1f, \"log2_buckets\": [",
               stream.flows.size(), stream.fragments, fps_ref, fps_fast, fps_fast / fps_ref,
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.evictions),
               static_cast<unsigned long long>(stats.pinned),
               static_cast<unsigned long long>(profile.count), profile.mean_ns());
  for (std::size_t b = 0; b < classify::SlowPathProfile::kBuckets; ++b) {
    std::fprintf(out, "%s%llu", b == 0 ? "" : ", ",
                 static_cast<unsigned long long>(profile.buckets[b]));
  }
  // Shared-schema fields (see bench_common print_header): this record's
  // unit of work is one fragment classified; both engines ran the stream
  // once each, so the rate divides double the stream over both passes.
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  const unsigned long long peak_rss_bytes =
      static_cast<unsigned long long>(usage.ru_maxrss) * 1024ULL;
  const double both_per_sec =
      static_cast<double>(2 * stream.fragments) / (s_fast + s_ref);
  std::fprintf(out,
               "]}, \"fragments_frames_per_sec\": %.1f, \"peak_rss_bytes\": %llu}\n",
               both_per_sec, peak_rss_bytes);
  std::fclose(out);

  std::printf("classify two-tier: %zu flows / %zu fragments\n", stream.flows.size(),
              stream.fragments);
  std::printf("  reference: %12.0f fragments/s\n", fps_ref);
  std::printf("  indexed:   %12.0f fragments/s  (%.2fx)\n", fps_fast, fps_fast / fps_ref);
  std::printf("  cache: %llu hits / %llu misses / %llu evictions, slow-path mean %.0f ns\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions), profile.mean_ns());
}

// --- SINR->PER lookup table vs the scalar oracle --------------------------

// One frame-error decision stream: (modulation, SINR, uniform draw) tuples
// shaped like the mesh-probe loop's queries (on-grid SINRs, probe payload).
struct PerStream {
  std::vector<phy::Modulation> mods;
  std::vector<double> sinrs;
  std::vector<double> draws;
};

PerStream make_per_stream(std::size_t n) {
  Rng rng{0x9E12015};
  PerStream stream;
  stream.mods.reserve(n);
  stream.sinrs.reserve(n);
  stream.draws.reserve(n);
  const auto& rates = phy::all_rates();
  for (std::size_t i = 0; i < n; ++i) {
    stream.mods.push_back(rates[rng.next_u64() % rates.size()].modulation);
    stream.sinrs.push_back(
        rng.uniform(phy::PerTable::kGridMinDb, phy::PerTable::kGridMaxDb));
    stream.draws.push_back(rng.uniform());
  }
  return stream;
}

void BM_PerScalar(benchmark::State& state) {
  const auto stream = make_per_stream(512);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto j = i++ % stream.mods.size();
    benchmark::DoNotOptimize(
        stream.draws[j] < phy::packet_error_rate(stream.mods[j], stream.sinrs[j], 60));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PerScalar);

void BM_PerTableGuarded(benchmark::State& state) {
  const auto stream = make_per_stream(512);
  const phy::PerTableSet tables(60);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto j = i++ % stream.mods.size();
    benchmark::DoNotOptimize(
        tables.table(stream.mods[j]).chance_error(stream.sinrs[j], stream.draws[j]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PerTableGuarded);

// The JSON contrast record the CI smoke gates on: same decision stream
// through both paths, identical decisions required (the guarded-exact
// contract), table speedup reported. $WLM_PER_BENCH_EVALS overrides the
// stream size; the record appends to $WLM_PER_BENCH_JSON.
void emit_per_contrast() {
  std::size_t n = 2'000'000;
  if (const char* env = std::getenv("WLM_PER_BENCH_EVALS")) {
    n = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const auto stream = make_per_stream(n);
  const phy::PerTableSet tables(60);  // built outside the timed region

  const auto start_ref = std::chrono::steady_clock::now();
  std::uint64_t errors_ref = 0;
  for (std::size_t i = 0; i < n; ++i) {
    errors_ref += stream.draws[i] < phy::packet_error_rate(stream.mods[i],
                                                           stream.sinrs[i], 60);
  }
  const double s_ref = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                     start_ref)
                           .count();

  const auto start_tab = std::chrono::steady_clock::now();
  std::uint64_t errors_tab = 0;
  for (std::size_t i = 0; i < n; ++i) {
    errors_tab += tables.table(stream.mods[i]).chance_error(stream.sinrs[i],
                                                            stream.draws[i]);
  }
  const double s_tab = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                     start_tab)
                           .count();

  if (errors_ref != errors_tab) {
    std::fprintf(stderr, "bench_per: decision mismatch (%llu != %llu)\n",
                 static_cast<unsigned long long>(errors_ref),
                 static_cast<unsigned long long>(errors_tab));
    std::exit(1);
  }

  const double eps_ref = static_cast<double>(n) / s_ref;
  const double eps_tab = static_cast<double>(n) / s_tab;
  const char* path = std::getenv("WLM_PER_BENCH_JSON");
  if (path == nullptr) path = "BENCH_per.json";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_per: cannot open %s\n", path);
    std::exit(1);
  }
  // Shared-schema fields (see bench_common print_header): this bench's unit
  // of work is one frame-error decision, so the throughput field carries
  // the fast (table) path's decision rate.
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  const unsigned long long peak_rss_bytes =
      static_cast<unsigned long long>(usage.ru_maxrss) * 1024ULL;
  std::fprintf(out,
               "{\"bench\": \"per_table\", \"evals\": %zu, "
               "\"reference_evals_per_s\": %.0f, \"table_evals_per_s\": %.0f, "
               "\"speedup\": %.2f, \"frame_errors\": %llu, "
               "\"fragments_frames_per_sec\": %.1f, \"peak_rss_bytes\": %llu}\n",
               n, eps_ref, eps_tab, eps_tab / eps_ref,
               static_cast<unsigned long long>(errors_tab), eps_tab,
               peak_rss_bytes);
  std::fclose(out);

  std::printf("per table: %zu guarded draws, decisions identical\n", n);
  std::printf("  scalar: %12.0f evals/s\n", eps_ref);
  std::printf("  table:  %12.0f evals/s  (%.2fx)\n", eps_tab, eps_tab / eps_ref);
}

wire::ApReport make_report(int clients) {
  wire::ApReport report;
  report.ap_id = 17;
  report.timestamp_us = 123456789;
  for (int i = 0; i < clients; ++i) {
    wire::ClientUsage u;
    u.client = MacAddress::from_u64(0x3c0754000000ULL + static_cast<std::uint64_t>(i));
    u.app_id = static_cast<std::uint32_t>(i % 40);
    u.tx_bytes = 1000 + static_cast<std::uint64_t>(i);
    u.rx_bytes = 9000 + static_cast<std::uint64_t>(i);
    report.usage.push_back(u);
  }
  return report;
}

void BM_WireEncode(benchmark::State& state) {
  const auto report = make_report(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_report(report));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WireEncode)->Arg(8)->Arg(64)->Arg(512);

void BM_WireDecode(benchmark::State& state) {
  const auto bytes = wire::encode_report(make_report(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_report(bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_WireDecode)->Arg(8)->Arg(64)->Arg(512);

void BM_Framing(benchmark::State& state) {
  const auto payload = wire::encode_report(make_report(64));
  for (auto _ : state) {
    std::vector<std::uint8_t> stream;
    wire::append_frame(stream, payload);
    benchmark::DoNotOptimize(wire::decode_stream(stream));
  }
}
BENCHMARK(BM_Framing);

void BM_MediumObserve(benchmark::State& state) {
  std::vector<mac::ActivitySource> sources;
  Rng rng{5};
  for (int i = 0; i < 60; ++i) {
    mac::ActivitySource s;
    s.kind = mac::SourceKind::kWifi;
    s.rx_power = PowerDbm{rng.uniform(-90.0, -50.0)};
    s.duty_cycle = rng.uniform(0.0, 0.05);
    s.plcp_decode_prob = 0.9;
    sources.push_back(s);
  }
  const mac::MediumObserver observer{PowerDbm{-95.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(observer.observe(Duration::minutes(5), sources, 0.01));
  }
}
BENCHMARK(BM_MediumObserve);

void BM_ProbeWindow(benchmark::State& state) {
  probe::SlidingDeliveryWindow window;
  SimTime t;
  Rng rng{3};
  for (auto _ : state) {
    window.record(t, rng.chance(0.7));
    t += Duration::seconds(15);
    benchmark::DoNotOptimize(window.ratio());
  }
}
BENCHMARK(BM_ProbeWindow);

void BM_Fft4096(benchmark::State& state) {
  Rng rng{11};
  std::vector<std::complex<double>> data(4096);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto copy = data;
    scan::fft_inplace(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fft4096);

}  // namespace

// Custom main: the google-benchmark suite plus the two-tier JSON contrast
// (which always runs — pass --benchmark_filter=^$ to get only the record).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emit_classify_contrast();
  emit_per_contrast();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
