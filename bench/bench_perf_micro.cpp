// Micro-benchmarks of the hot pipeline stages: flow classification, wire
// encode/decode, framing, medium observation, and the probe window.
#include <benchmark/benchmark.h>

#include "backend/poller.hpp"
#include "classify/classifier.hpp"
#include "mac/medium.hpp"
#include "probe/window.hpp"
#include "scan/spectral.hpp"
#include "traffic/flowgen.hpp"
#include "wire/framing.hpp"
#include "wire/messages.hpp"

namespace {

using namespace wlm;

std::vector<classify::FlowSample> make_samples(std::size_t n) {
  traffic::FlowGenerator gen{Rng{42}};
  Rng rng{7};
  std::vector<classify::FlowSample> samples;
  const auto catalog = classify::app_catalog();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& info = catalog[1 + rng.next_u64() % (catalog.size() - 1)];
    samples.push_back(
        gen.make_flow(info.id, classify::OsType::kWindows, 1000, 9000).sample);
  }
  return samples;
}

void BM_ClassifyFlow(benchmark::State& state) {
  const auto samples = make_samples(512);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify::classify_flow(samples[i++ % samples.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifyFlow);

wire::ApReport make_report(int clients) {
  wire::ApReport report;
  report.ap_id = 17;
  report.timestamp_us = 123456789;
  for (int i = 0; i < clients; ++i) {
    wire::ClientUsage u;
    u.client = MacAddress::from_u64(0x3c0754000000ULL + static_cast<std::uint64_t>(i));
    u.app_id = static_cast<std::uint32_t>(i % 40);
    u.tx_bytes = 1000 + static_cast<std::uint64_t>(i);
    u.rx_bytes = 9000 + static_cast<std::uint64_t>(i);
    report.usage.push_back(u);
  }
  return report;
}

void BM_WireEncode(benchmark::State& state) {
  const auto report = make_report(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_report(report));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WireEncode)->Arg(8)->Arg(64)->Arg(512);

void BM_WireDecode(benchmark::State& state) {
  const auto bytes = wire::encode_report(make_report(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_report(bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_WireDecode)->Arg(8)->Arg(64)->Arg(512);

void BM_Framing(benchmark::State& state) {
  const auto payload = wire::encode_report(make_report(64));
  for (auto _ : state) {
    std::vector<std::uint8_t> stream;
    wire::append_frame(stream, payload);
    benchmark::DoNotOptimize(wire::decode_stream(stream));
  }
}
BENCHMARK(BM_Framing);

void BM_MediumObserve(benchmark::State& state) {
  std::vector<mac::ActivitySource> sources;
  Rng rng{5};
  for (int i = 0; i < 60; ++i) {
    mac::ActivitySource s;
    s.kind = mac::SourceKind::kWifi;
    s.rx_power = PowerDbm{rng.uniform(-90.0, -50.0)};
    s.duty_cycle = rng.uniform(0.0, 0.05);
    s.plcp_decode_prob = 0.9;
    sources.push_back(s);
  }
  const mac::MediumObserver observer{PowerDbm{-95.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(observer.observe(Duration::minutes(5), sources, 0.01));
  }
}
BENCHMARK(BM_MediumObserve);

void BM_ProbeWindow(benchmark::State& state) {
  probe::SlidingDeliveryWindow window;
  SimTime t;
  Rng rng{3};
  for (auto _ : state) {
    window.record(t, rng.chance(0.7));
    t += Duration::seconds(15);
    benchmark::DoNotOptimize(window.ratio());
  }
}
BENCHMARK(BM_ProbeWindow);

void BM_Fft4096(benchmark::State& state) {
  Rng rng{11};
  std::vector<std::complex<double>> data(4096);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto copy = data;
    scan::fft_inplace(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fft4096);

}  // namespace

BENCHMARK_MAIN();
