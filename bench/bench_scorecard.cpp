// The whole reproduction, checked mechanically: every qualitative claim
// from the paper's evaluation against a fresh simulation run.
#include <cstdio>

#include "analysis/scorecard.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 150);
  wlm::bench::print_header("Reproduction scorecard (all tables & figures)", scale);
  const auto card = wlm::analysis::run_scorecard(scale);
  std::fputs(wlm::analysis::render_scorecard(card).c_str(), stdout);
  return card.all_passed() ? 0 : 1;
}
