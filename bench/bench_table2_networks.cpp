// Regenerates Table 2: network deployment types by industry.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Table 2: network deployment types", scale);
  std::fputs(wlm::analysis::render_table2(scale).c_str(), stdout);
  return 0;
}
