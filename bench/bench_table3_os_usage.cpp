// Regenerates Table 3: usage by operating system, with year-over-year growth.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Table 3: usage by operating system", scale);
  const auto run = wlm::analysis::run_usage_study(scale);
  std::fputs(wlm::analysis::render_table3(run).c_str(), stdout);
  return 0;
}
