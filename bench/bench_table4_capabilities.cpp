// Regenerates Table 4: client 802.11 capabilities, Jan 2014 vs Jan 2015.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Table 4: client capabilities", scale);
  const auto run = wlm::analysis::run_snapshot_study(scale);
  std::fputs(wlm::analysis::render_table4(run).c_str(), stdout);
  return 0;
}
