// Regenerates Table 5: top applications by bytes transferred.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Table 5: top applications by usage", scale);
  const auto run = wlm::analysis::run_usage_study(scale);
  std::fputs(wlm::analysis::render_table5(run).c_str(), stdout);
  return 0;
}
