// Regenerates Table 6: usage by application category.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Table 6: usage by application category", scale);
  const auto run = wlm::analysis::run_usage_study(scale);
  std::fputs(wlm::analysis::render_table6(run).c_str(), stdout);
  return 0;
}
