// Regenerates Table 7: nearby networks per AP, now vs six months ago.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv);
  wlm::bench::print_header("Table 7: nearby networks growth", scale);
  const auto run = wlm::analysis::run_neighbor_study(scale);
  std::fputs(wlm::analysis::render_table7(run).c_str(), stdout);
  return 0;
}
