// Checks the paper's §2 claim: ~1 kbit/s of telemetry per access point,
// with a realistic full reporting cadence.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto scale = wlm::bench::scale_from_args(argc, argv, 100);
  wlm::bench::print_header("Telemetry wire overhead", scale);
  const auto run = wlm::analysis::run_wire_overhead_study(scale);
  std::fputs(wlm::analysis::render_wire_overhead_full(run).c_str(), stdout);
  // Also report the classification stats from the usage pipeline.
  const auto usage = wlm::analysis::run_usage_study(scale);
  std::fputs(wlm::analysis::render_wire_overhead(usage).c_str(), stdout);
  return 0;
}
