file(REMOVE_RECURSE
  "../bench/bench_ablation_broadcast"
  "../bench/bench_ablation_broadcast.pdb"
  "CMakeFiles/bench_ablation_broadcast.dir/bench_ablation_broadcast.cpp.o"
  "CMakeFiles/bench_ablation_broadcast.dir/bench_ablation_broadcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
