file(REMOVE_RECURSE
  "../bench/bench_ablation_dfs"
  "../bench/bench_ablation_dfs.pdb"
  "CMakeFiles/bench_ablation_dfs.dir/bench_ablation_dfs.cpp.o"
  "CMakeFiles/bench_ablation_dfs.dir/bench_ablation_dfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
