# Empty compiler generated dependencies file for bench_ablation_dfs.
# This may be replaced when dependencies are built.
