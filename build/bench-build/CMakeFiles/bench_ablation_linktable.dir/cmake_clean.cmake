file(REMOVE_RECURSE
  "../bench/bench_ablation_linktable"
  "../bench/bench_ablation_linktable.pdb"
  "CMakeFiles/bench_ablation_linktable.dir/bench_ablation_linktable.cpp.o"
  "CMakeFiles/bench_ablation_linktable.dir/bench_ablation_linktable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linktable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
