# Empty dependencies file for bench_ablation_linktable.
# This may be replaced when dependencies are built.
