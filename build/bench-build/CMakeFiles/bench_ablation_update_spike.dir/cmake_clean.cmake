file(REMOVE_RECURSE
  "../bench/bench_ablation_update_spike"
  "../bench/bench_ablation_update_spike.pdb"
  "CMakeFiles/bench_ablation_update_spike.dir/bench_ablation_update_spike.cpp.o"
  "CMakeFiles/bench_ablation_update_spike.dir/bench_ablation_update_spike.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_update_spike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
