# Empty compiler generated dependencies file for bench_ablation_update_spike.
# This may be replaced when dependencies are built.
