file(REMOVE_RECURSE
  "../bench/bench_fig10_decodable"
  "../bench/bench_fig10_decodable.pdb"
  "CMakeFiles/bench_fig10_decodable.dir/bench_fig10_decodable.cpp.o"
  "CMakeFiles/bench_fig10_decodable.dir/bench_fig10_decodable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_decodable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
