# Empty dependencies file for bench_fig10_decodable.
# This may be replaced when dependencies are built.
