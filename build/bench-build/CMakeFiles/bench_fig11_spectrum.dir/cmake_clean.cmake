file(REMOVE_RECURSE
  "../bench/bench_fig11_spectrum"
  "../bench/bench_fig11_spectrum.pdb"
  "CMakeFiles/bench_fig11_spectrum.dir/bench_fig11_spectrum.cpp.o"
  "CMakeFiles/bench_fig11_spectrum.dir/bench_fig11_spectrum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
