# Empty dependencies file for bench_fig11_spectrum.
# This may be replaced when dependencies are built.
