# Empty dependencies file for bench_fig1_rssi.
# This may be replaced when dependencies are built.
