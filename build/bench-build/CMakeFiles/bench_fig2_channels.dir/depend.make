# Empty dependencies file for bench_fig2_channels.
# This may be replaced when dependencies are built.
