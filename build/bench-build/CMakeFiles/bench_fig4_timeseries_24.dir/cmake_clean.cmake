file(REMOVE_RECURSE
  "../bench/bench_fig4_timeseries_24"
  "../bench/bench_fig4_timeseries_24.pdb"
  "CMakeFiles/bench_fig4_timeseries_24.dir/bench_fig4_timeseries_24.cpp.o"
  "CMakeFiles/bench_fig4_timeseries_24.dir/bench_fig4_timeseries_24.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_timeseries_24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
