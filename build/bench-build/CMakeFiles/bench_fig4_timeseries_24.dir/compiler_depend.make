# Empty compiler generated dependencies file for bench_fig4_timeseries_24.
# This may be replaced when dependencies are built.
