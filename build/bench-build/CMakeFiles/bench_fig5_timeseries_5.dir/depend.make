# Empty dependencies file for bench_fig5_timeseries_5.
# This may be replaced when dependencies are built.
