file(REMOVE_RECURSE
  "../bench/bench_fig7_scatter_24"
  "../bench/bench_fig7_scatter_24.pdb"
  "CMakeFiles/bench_fig7_scatter_24.dir/bench_fig7_scatter_24.cpp.o"
  "CMakeFiles/bench_fig7_scatter_24.dir/bench_fig7_scatter_24.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scatter_24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
