# Empty dependencies file for bench_fig7_scatter_24.
# This may be replaced when dependencies are built.
