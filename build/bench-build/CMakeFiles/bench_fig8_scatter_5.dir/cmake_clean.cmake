file(REMOVE_RECURSE
  "../bench/bench_fig8_scatter_5"
  "../bench/bench_fig8_scatter_5.pdb"
  "CMakeFiles/bench_fig8_scatter_5.dir/bench_fig8_scatter_5.cpp.o"
  "CMakeFiles/bench_fig8_scatter_5.dir/bench_fig8_scatter_5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scatter_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
