file(REMOVE_RECURSE
  "../bench/bench_fig9_day_night"
  "../bench/bench_fig9_day_night.pdb"
  "CMakeFiles/bench_fig9_day_night.dir/bench_fig9_day_night.cpp.o"
  "CMakeFiles/bench_fig9_day_night.dir/bench_fig9_day_night.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_day_night.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
