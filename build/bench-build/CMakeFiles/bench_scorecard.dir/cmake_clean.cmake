file(REMOVE_RECURSE
  "../bench/bench_scorecard"
  "../bench/bench_scorecard.pdb"
  "CMakeFiles/bench_scorecard.dir/bench_scorecard.cpp.o"
  "CMakeFiles/bench_scorecard.dir/bench_scorecard.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
