# Empty dependencies file for bench_scorecard.
# This may be replaced when dependencies are built.
