file(REMOVE_RECURSE
  "../bench/bench_table2_networks"
  "../bench/bench_table2_networks.pdb"
  "CMakeFiles/bench_table2_networks.dir/bench_table2_networks.cpp.o"
  "CMakeFiles/bench_table2_networks.dir/bench_table2_networks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
