file(REMOVE_RECURSE
  "../bench/bench_table3_os_usage"
  "../bench/bench_table3_os_usage.pdb"
  "CMakeFiles/bench_table3_os_usage.dir/bench_table3_os_usage.cpp.o"
  "CMakeFiles/bench_table3_os_usage.dir/bench_table3_os_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_os_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
