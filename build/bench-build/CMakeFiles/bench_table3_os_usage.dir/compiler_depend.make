# Empty compiler generated dependencies file for bench_table3_os_usage.
# This may be replaced when dependencies are built.
