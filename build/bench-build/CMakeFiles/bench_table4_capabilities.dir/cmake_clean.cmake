file(REMOVE_RECURSE
  "../bench/bench_table4_capabilities"
  "../bench/bench_table4_capabilities.pdb"
  "CMakeFiles/bench_table4_capabilities.dir/bench_table4_capabilities.cpp.o"
  "CMakeFiles/bench_table4_capabilities.dir/bench_table4_capabilities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
