# Empty compiler generated dependencies file for bench_table5_top_apps.
# This may be replaced when dependencies are built.
