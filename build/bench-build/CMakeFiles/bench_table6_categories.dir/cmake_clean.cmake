file(REMOVE_RECURSE
  "../bench/bench_table6_categories"
  "../bench/bench_table6_categories.pdb"
  "CMakeFiles/bench_table6_categories.dir/bench_table6_categories.cpp.o"
  "CMakeFiles/bench_table6_categories.dir/bench_table6_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
