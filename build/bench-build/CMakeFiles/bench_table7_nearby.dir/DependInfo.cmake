
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table7_nearby.cpp" "bench-build/CMakeFiles/bench_table7_nearby.dir/bench_table7_nearby.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table7_nearby.dir/bench_table7_nearby.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/wlm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/bench-build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wlm_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/wlm_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/wlm_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/wlm_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wlm_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wlm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/wlm_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/wlm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/wlm_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
