file(REMOVE_RECURSE
  "../bench/bench_table7_nearby"
  "../bench/bench_table7_nearby.pdb"
  "CMakeFiles/bench_table7_nearby.dir/bench_table7_nearby.cpp.o"
  "CMakeFiles/bench_table7_nearby.dir/bench_table7_nearby.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_nearby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
