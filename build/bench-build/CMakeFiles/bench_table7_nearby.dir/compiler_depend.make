# Empty compiler generated dependencies file for bench_table7_nearby.
# This may be replaced when dependencies are built.
