file(REMOVE_RECURSE
  "../bench/bench_wire_overhead"
  "../bench/bench_wire_overhead.pdb"
  "CMakeFiles/bench_wire_overhead.dir/bench_wire_overhead.cpp.o"
  "CMakeFiles/bench_wire_overhead.dir/bench_wire_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
