file(REMOVE_RECURSE
  "CMakeFiles/link_monitor.dir/link_monitor.cpp.o"
  "CMakeFiles/link_monitor.dir/link_monitor.cpp.o.d"
  "link_monitor"
  "link_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
