# Empty compiler generated dependencies file for link_monitor.
# This may be replaced when dependencies are built.
