file(REMOVE_RECURSE
  "CMakeFiles/traffic_audit.dir/traffic_audit.cpp.o"
  "CMakeFiles/traffic_audit.dir/traffic_audit.cpp.o.d"
  "traffic_audit"
  "traffic_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
