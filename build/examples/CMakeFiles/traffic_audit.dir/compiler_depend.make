# Empty compiler generated dependencies file for traffic_audit.
# This may be replaced when dependencies are built.
