file(REMOVE_RECURSE
  "CMakeFiles/wlm_analysis.dir/experiments_radio.cpp.o"
  "CMakeFiles/wlm_analysis.dir/experiments_radio.cpp.o.d"
  "CMakeFiles/wlm_analysis.dir/experiments_spectrum.cpp.o"
  "CMakeFiles/wlm_analysis.dir/experiments_spectrum.cpp.o.d"
  "CMakeFiles/wlm_analysis.dir/experiments_usage.cpp.o"
  "CMakeFiles/wlm_analysis.dir/experiments_usage.cpp.o.d"
  "CMakeFiles/wlm_analysis.dir/export.cpp.o"
  "CMakeFiles/wlm_analysis.dir/export.cpp.o.d"
  "CMakeFiles/wlm_analysis.dir/scorecard.cpp.o"
  "CMakeFiles/wlm_analysis.dir/scorecard.cpp.o.d"
  "libwlm_analysis.a"
  "libwlm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
