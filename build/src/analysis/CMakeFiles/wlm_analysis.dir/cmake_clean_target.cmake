file(REMOVE_RECURSE
  "libwlm_analysis.a"
)
