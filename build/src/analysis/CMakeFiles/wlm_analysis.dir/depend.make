# Empty dependencies file for wlm_analysis.
# This may be replaced when dependencies are built.
