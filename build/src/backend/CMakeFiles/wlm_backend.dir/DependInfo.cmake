
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/aggregate.cpp" "src/backend/CMakeFiles/wlm_backend.dir/aggregate.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/aggregate.cpp.o.d"
  "/root/repo/src/backend/anonymize.cpp" "src/backend/CMakeFiles/wlm_backend.dir/anonymize.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/anonymize.cpp.o.d"
  "/root/repo/src/backend/health.cpp" "src/backend/CMakeFiles/wlm_backend.dir/health.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/health.cpp.o.d"
  "/root/repo/src/backend/poller.cpp" "src/backend/CMakeFiles/wlm_backend.dir/poller.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/poller.cpp.o.d"
  "/root/repo/src/backend/store.cpp" "src/backend/CMakeFiles/wlm_backend.dir/store.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/store.cpp.o.d"
  "/root/repo/src/backend/timeseries.cpp" "src/backend/CMakeFiles/wlm_backend.dir/timeseries.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/timeseries.cpp.o.d"
  "/root/repo/src/backend/tunnel.cpp" "src/backend/CMakeFiles/wlm_backend.dir/tunnel.cpp.o" "gcc" "src/backend/CMakeFiles/wlm_backend.dir/tunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/wlm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/wlm_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
