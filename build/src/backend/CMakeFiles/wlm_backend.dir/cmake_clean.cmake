file(REMOVE_RECURSE
  "CMakeFiles/wlm_backend.dir/aggregate.cpp.o"
  "CMakeFiles/wlm_backend.dir/aggregate.cpp.o.d"
  "CMakeFiles/wlm_backend.dir/anonymize.cpp.o"
  "CMakeFiles/wlm_backend.dir/anonymize.cpp.o.d"
  "CMakeFiles/wlm_backend.dir/health.cpp.o"
  "CMakeFiles/wlm_backend.dir/health.cpp.o.d"
  "CMakeFiles/wlm_backend.dir/poller.cpp.o"
  "CMakeFiles/wlm_backend.dir/poller.cpp.o.d"
  "CMakeFiles/wlm_backend.dir/store.cpp.o"
  "CMakeFiles/wlm_backend.dir/store.cpp.o.d"
  "CMakeFiles/wlm_backend.dir/timeseries.cpp.o"
  "CMakeFiles/wlm_backend.dir/timeseries.cpp.o.d"
  "CMakeFiles/wlm_backend.dir/tunnel.cpp.o"
  "CMakeFiles/wlm_backend.dir/tunnel.cpp.o.d"
  "libwlm_backend.a"
  "libwlm_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
