file(REMOVE_RECURSE
  "libwlm_backend.a"
)
