# Empty dependencies file for wlm_backend.
# This may be replaced when dependencies are built.
