
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/apps.cpp" "src/classify/CMakeFiles/wlm_classify.dir/apps.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/apps.cpp.o.d"
  "/root/repo/src/classify/classifier.cpp" "src/classify/CMakeFiles/wlm_classify.dir/classifier.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/classifier.cpp.o.d"
  "/root/repo/src/classify/dhcp.cpp" "src/classify/CMakeFiles/wlm_classify.dir/dhcp.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/dhcp.cpp.o.d"
  "/root/repo/src/classify/dhcp_fingerprint.cpp" "src/classify/CMakeFiles/wlm_classify.dir/dhcp_fingerprint.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/dhcp_fingerprint.cpp.o.d"
  "/root/repo/src/classify/dns.cpp" "src/classify/CMakeFiles/wlm_classify.dir/dns.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/dns.cpp.o.d"
  "/root/repo/src/classify/http.cpp" "src/classify/CMakeFiles/wlm_classify.dir/http.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/http.cpp.o.d"
  "/root/repo/src/classify/os.cpp" "src/classify/CMakeFiles/wlm_classify.dir/os.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/os.cpp.o.d"
  "/root/repo/src/classify/oui.cpp" "src/classify/CMakeFiles/wlm_classify.dir/oui.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/oui.cpp.o.d"
  "/root/repo/src/classify/rules.cpp" "src/classify/CMakeFiles/wlm_classify.dir/rules.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/rules.cpp.o.d"
  "/root/repo/src/classify/tls.cpp" "src/classify/CMakeFiles/wlm_classify.dir/tls.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/tls.cpp.o.d"
  "/root/repo/src/classify/user_agent.cpp" "src/classify/CMakeFiles/wlm_classify.dir/user_agent.cpp.o" "gcc" "src/classify/CMakeFiles/wlm_classify.dir/user_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
