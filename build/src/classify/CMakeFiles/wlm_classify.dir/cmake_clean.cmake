file(REMOVE_RECURSE
  "CMakeFiles/wlm_classify.dir/apps.cpp.o"
  "CMakeFiles/wlm_classify.dir/apps.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/classifier.cpp.o"
  "CMakeFiles/wlm_classify.dir/classifier.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/dhcp.cpp.o"
  "CMakeFiles/wlm_classify.dir/dhcp.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/dhcp_fingerprint.cpp.o"
  "CMakeFiles/wlm_classify.dir/dhcp_fingerprint.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/dns.cpp.o"
  "CMakeFiles/wlm_classify.dir/dns.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/http.cpp.o"
  "CMakeFiles/wlm_classify.dir/http.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/os.cpp.o"
  "CMakeFiles/wlm_classify.dir/os.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/oui.cpp.o"
  "CMakeFiles/wlm_classify.dir/oui.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/rules.cpp.o"
  "CMakeFiles/wlm_classify.dir/rules.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/tls.cpp.o"
  "CMakeFiles/wlm_classify.dir/tls.cpp.o.d"
  "CMakeFiles/wlm_classify.dir/user_agent.cpp.o"
  "CMakeFiles/wlm_classify.dir/user_agent.cpp.o.d"
  "libwlm_classify.a"
  "libwlm_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
