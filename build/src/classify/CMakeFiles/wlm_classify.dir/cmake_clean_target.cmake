file(REMOVE_RECURSE
  "libwlm_classify.a"
)
