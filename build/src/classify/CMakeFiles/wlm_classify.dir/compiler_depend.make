# Empty compiler generated dependencies file for wlm_classify.
# This may be replaced when dependencies are built.
