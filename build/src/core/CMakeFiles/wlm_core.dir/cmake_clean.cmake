file(REMOVE_RECURSE
  "CMakeFiles/wlm_core.dir/chart.cpp.o"
  "CMakeFiles/wlm_core.dir/chart.cpp.o.d"
  "CMakeFiles/wlm_core.dir/checksum.cpp.o"
  "CMakeFiles/wlm_core.dir/checksum.cpp.o.d"
  "CMakeFiles/wlm_core.dir/ids.cpp.o"
  "CMakeFiles/wlm_core.dir/ids.cpp.o.d"
  "CMakeFiles/wlm_core.dir/rng.cpp.o"
  "CMakeFiles/wlm_core.dir/rng.cpp.o.d"
  "CMakeFiles/wlm_core.dir/stats.cpp.o"
  "CMakeFiles/wlm_core.dir/stats.cpp.o.d"
  "CMakeFiles/wlm_core.dir/table.cpp.o"
  "CMakeFiles/wlm_core.dir/table.cpp.o.d"
  "CMakeFiles/wlm_core.dir/time.cpp.o"
  "CMakeFiles/wlm_core.dir/time.cpp.o.d"
  "CMakeFiles/wlm_core.dir/units.cpp.o"
  "CMakeFiles/wlm_core.dir/units.cpp.o.d"
  "libwlm_core.a"
  "libwlm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
