file(REMOVE_RECURSE
  "libwlm_core.a"
)
