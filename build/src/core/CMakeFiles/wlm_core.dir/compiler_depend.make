# Empty compiler generated dependencies file for wlm_core.
# This may be replaced when dependencies are built.
