
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deploy/capabilities.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/capabilities.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/capabilities.cpp.o.d"
  "/root/repo/src/deploy/epoch.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/epoch.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/epoch.cpp.o.d"
  "/root/repo/src/deploy/generator.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/generator.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/generator.cpp.o.d"
  "/root/repo/src/deploy/industry.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/industry.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/industry.cpp.o.d"
  "/root/repo/src/deploy/neighbors.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/neighbors.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/neighbors.cpp.o.d"
  "/root/repo/src/deploy/population.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/population.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/population.cpp.o.d"
  "/root/repo/src/deploy/site.cpp" "src/deploy/CMakeFiles/wlm_deploy.dir/site.cpp.o" "gcc" "src/deploy/CMakeFiles/wlm_deploy.dir/site.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/wlm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/wlm_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
