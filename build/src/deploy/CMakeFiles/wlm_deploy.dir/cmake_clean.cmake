file(REMOVE_RECURSE
  "CMakeFiles/wlm_deploy.dir/capabilities.cpp.o"
  "CMakeFiles/wlm_deploy.dir/capabilities.cpp.o.d"
  "CMakeFiles/wlm_deploy.dir/epoch.cpp.o"
  "CMakeFiles/wlm_deploy.dir/epoch.cpp.o.d"
  "CMakeFiles/wlm_deploy.dir/generator.cpp.o"
  "CMakeFiles/wlm_deploy.dir/generator.cpp.o.d"
  "CMakeFiles/wlm_deploy.dir/industry.cpp.o"
  "CMakeFiles/wlm_deploy.dir/industry.cpp.o.d"
  "CMakeFiles/wlm_deploy.dir/neighbors.cpp.o"
  "CMakeFiles/wlm_deploy.dir/neighbors.cpp.o.d"
  "CMakeFiles/wlm_deploy.dir/population.cpp.o"
  "CMakeFiles/wlm_deploy.dir/population.cpp.o.d"
  "CMakeFiles/wlm_deploy.dir/site.cpp.o"
  "CMakeFiles/wlm_deploy.dir/site.cpp.o.d"
  "libwlm_deploy.a"
  "libwlm_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
