file(REMOVE_RECURSE
  "libwlm_deploy.a"
)
