# Empty dependencies file for wlm_deploy.
# This may be replaced when dependencies are built.
