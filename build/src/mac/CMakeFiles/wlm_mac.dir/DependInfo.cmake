
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/association.cpp" "src/mac/CMakeFiles/wlm_mac.dir/association.cpp.o" "gcc" "src/mac/CMakeFiles/wlm_mac.dir/association.cpp.o.d"
  "/root/repo/src/mac/beacon.cpp" "src/mac/CMakeFiles/wlm_mac.dir/beacon.cpp.o" "gcc" "src/mac/CMakeFiles/wlm_mac.dir/beacon.cpp.o.d"
  "/root/repo/src/mac/beacon_frame.cpp" "src/mac/CMakeFiles/wlm_mac.dir/beacon_frame.cpp.o" "gcc" "src/mac/CMakeFiles/wlm_mac.dir/beacon_frame.cpp.o.d"
  "/root/repo/src/mac/frame.cpp" "src/mac/CMakeFiles/wlm_mac.dir/frame.cpp.o" "gcc" "src/mac/CMakeFiles/wlm_mac.dir/frame.cpp.o.d"
  "/root/repo/src/mac/medium.cpp" "src/mac/CMakeFiles/wlm_mac.dir/medium.cpp.o" "gcc" "src/mac/CMakeFiles/wlm_mac.dir/medium.cpp.o.d"
  "/root/repo/src/mac/rate_control.cpp" "src/mac/CMakeFiles/wlm_mac.dir/rate_control.cpp.o" "gcc" "src/mac/CMakeFiles/wlm_mac.dir/rate_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/wlm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
