file(REMOVE_RECURSE
  "CMakeFiles/wlm_mac.dir/association.cpp.o"
  "CMakeFiles/wlm_mac.dir/association.cpp.o.d"
  "CMakeFiles/wlm_mac.dir/beacon.cpp.o"
  "CMakeFiles/wlm_mac.dir/beacon.cpp.o.d"
  "CMakeFiles/wlm_mac.dir/beacon_frame.cpp.o"
  "CMakeFiles/wlm_mac.dir/beacon_frame.cpp.o.d"
  "CMakeFiles/wlm_mac.dir/frame.cpp.o"
  "CMakeFiles/wlm_mac.dir/frame.cpp.o.d"
  "CMakeFiles/wlm_mac.dir/medium.cpp.o"
  "CMakeFiles/wlm_mac.dir/medium.cpp.o.d"
  "CMakeFiles/wlm_mac.dir/rate_control.cpp.o"
  "CMakeFiles/wlm_mac.dir/rate_control.cpp.o.d"
  "libwlm_mac.a"
  "libwlm_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
