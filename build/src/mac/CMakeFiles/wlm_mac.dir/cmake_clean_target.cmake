file(REMOVE_RECURSE
  "libwlm_mac.a"
)
