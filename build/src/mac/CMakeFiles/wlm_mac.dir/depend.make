# Empty dependencies file for wlm_mac.
# This may be replaced when dependencies are built.
