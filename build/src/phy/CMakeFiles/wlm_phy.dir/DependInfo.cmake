
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/wlm_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/wlm_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/wlm_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/wlm_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/propagation.cpp" "src/phy/CMakeFiles/wlm_phy.dir/propagation.cpp.o" "gcc" "src/phy/CMakeFiles/wlm_phy.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
