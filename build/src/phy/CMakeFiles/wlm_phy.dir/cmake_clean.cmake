file(REMOVE_RECURSE
  "CMakeFiles/wlm_phy.dir/channel.cpp.o"
  "CMakeFiles/wlm_phy.dir/channel.cpp.o.d"
  "CMakeFiles/wlm_phy.dir/modulation.cpp.o"
  "CMakeFiles/wlm_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/wlm_phy.dir/propagation.cpp.o"
  "CMakeFiles/wlm_phy.dir/propagation.cpp.o.d"
  "libwlm_phy.a"
  "libwlm_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
