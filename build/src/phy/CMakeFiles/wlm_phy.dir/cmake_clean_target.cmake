file(REMOVE_RECURSE
  "libwlm_phy.a"
)
