# Empty dependencies file for wlm_phy.
# This may be replaced when dependencies are built.
