
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/link_table.cpp" "src/probe/CMakeFiles/wlm_probe.dir/link_table.cpp.o" "gcc" "src/probe/CMakeFiles/wlm_probe.dir/link_table.cpp.o.d"
  "/root/repo/src/probe/window.cpp" "src/probe/CMakeFiles/wlm_probe.dir/window.cpp.o" "gcc" "src/probe/CMakeFiles/wlm_probe.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mac/CMakeFiles/wlm_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wlm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
