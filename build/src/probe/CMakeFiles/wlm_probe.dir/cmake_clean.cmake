file(REMOVE_RECURSE
  "CMakeFiles/wlm_probe.dir/link_table.cpp.o"
  "CMakeFiles/wlm_probe.dir/link_table.cpp.o.d"
  "CMakeFiles/wlm_probe.dir/window.cpp.o"
  "CMakeFiles/wlm_probe.dir/window.cpp.o.d"
  "libwlm_probe.a"
  "libwlm_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
