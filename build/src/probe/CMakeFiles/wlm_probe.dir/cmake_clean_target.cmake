file(REMOVE_RECURSE
  "libwlm_probe.a"
)
