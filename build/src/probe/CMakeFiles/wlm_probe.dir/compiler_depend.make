# Empty compiler generated dependencies file for wlm_probe.
# This may be replaced when dependencies are built.
