file(REMOVE_RECURSE
  "CMakeFiles/wlm_scan.dir/channel_planner.cpp.o"
  "CMakeFiles/wlm_scan.dir/channel_planner.cpp.o.d"
  "CMakeFiles/wlm_scan.dir/dfs.cpp.o"
  "CMakeFiles/wlm_scan.dir/dfs.cpp.o.d"
  "CMakeFiles/wlm_scan.dir/scanner.cpp.o"
  "CMakeFiles/wlm_scan.dir/scanner.cpp.o.d"
  "CMakeFiles/wlm_scan.dir/spectral.cpp.o"
  "CMakeFiles/wlm_scan.dir/spectral.cpp.o.d"
  "libwlm_scan.a"
  "libwlm_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
