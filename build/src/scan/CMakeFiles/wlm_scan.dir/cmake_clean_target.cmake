file(REMOVE_RECURSE
  "libwlm_scan.a"
)
