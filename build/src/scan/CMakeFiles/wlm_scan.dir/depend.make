# Empty dependencies file for wlm_scan.
# This may be replaced when dependencies are built.
