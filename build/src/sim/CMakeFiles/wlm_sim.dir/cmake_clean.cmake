file(REMOVE_RECURSE
  "CMakeFiles/wlm_sim.dir/ap.cpp.o"
  "CMakeFiles/wlm_sim.dir/ap.cpp.o.d"
  "CMakeFiles/wlm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/wlm_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/wlm_sim.dir/link.cpp.o"
  "CMakeFiles/wlm_sim.dir/link.cpp.o.d"
  "CMakeFiles/wlm_sim.dir/radio_env.cpp.o"
  "CMakeFiles/wlm_sim.dir/radio_env.cpp.o.d"
  "CMakeFiles/wlm_sim.dir/world.cpp.o"
  "CMakeFiles/wlm_sim.dir/world.cpp.o.d"
  "libwlm_sim.a"
  "libwlm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
