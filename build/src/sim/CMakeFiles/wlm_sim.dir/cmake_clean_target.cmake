file(REMOVE_RECURSE
  "libwlm_sim.a"
)
