# Empty compiler generated dependencies file for wlm_sim.
# This may be replaced when dependencies are built.
