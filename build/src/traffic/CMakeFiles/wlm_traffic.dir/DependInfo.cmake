
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/broadcast.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/broadcast.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/broadcast.cpp.o.d"
  "/root/repo/src/traffic/diurnal.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/diurnal.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/diurnal.cpp.o.d"
  "/root/repo/src/traffic/flowgen.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/flowgen.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/flowgen.cpp.o.d"
  "/root/repo/src/traffic/os_model.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/os_model.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/os_model.cpp.o.d"
  "/root/repo/src/traffic/pcap.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/pcap.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/pcap.cpp.o.d"
  "/root/repo/src/traffic/sessions.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/sessions.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/sessions.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/traffic/CMakeFiles/wlm_traffic.dir/workload.cpp.o" "gcc" "src/traffic/CMakeFiles/wlm_traffic.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deploy/CMakeFiles/wlm_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/wlm_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wlm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
