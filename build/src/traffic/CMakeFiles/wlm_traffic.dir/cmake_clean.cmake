file(REMOVE_RECURSE
  "CMakeFiles/wlm_traffic.dir/broadcast.cpp.o"
  "CMakeFiles/wlm_traffic.dir/broadcast.cpp.o.d"
  "CMakeFiles/wlm_traffic.dir/diurnal.cpp.o"
  "CMakeFiles/wlm_traffic.dir/diurnal.cpp.o.d"
  "CMakeFiles/wlm_traffic.dir/flowgen.cpp.o"
  "CMakeFiles/wlm_traffic.dir/flowgen.cpp.o.d"
  "CMakeFiles/wlm_traffic.dir/os_model.cpp.o"
  "CMakeFiles/wlm_traffic.dir/os_model.cpp.o.d"
  "CMakeFiles/wlm_traffic.dir/pcap.cpp.o"
  "CMakeFiles/wlm_traffic.dir/pcap.cpp.o.d"
  "CMakeFiles/wlm_traffic.dir/sessions.cpp.o"
  "CMakeFiles/wlm_traffic.dir/sessions.cpp.o.d"
  "CMakeFiles/wlm_traffic.dir/workload.cpp.o"
  "CMakeFiles/wlm_traffic.dir/workload.cpp.o.d"
  "libwlm_traffic.a"
  "libwlm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
