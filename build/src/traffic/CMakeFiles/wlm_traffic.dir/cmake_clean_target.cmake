file(REMOVE_RECURSE
  "libwlm_traffic.a"
)
