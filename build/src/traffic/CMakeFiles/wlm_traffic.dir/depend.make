# Empty dependencies file for wlm_traffic.
# This may be replaced when dependencies are built.
