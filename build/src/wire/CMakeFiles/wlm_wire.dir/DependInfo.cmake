
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/decoder.cpp" "src/wire/CMakeFiles/wlm_wire.dir/decoder.cpp.o" "gcc" "src/wire/CMakeFiles/wlm_wire.dir/decoder.cpp.o.d"
  "/root/repo/src/wire/encoder.cpp" "src/wire/CMakeFiles/wlm_wire.dir/encoder.cpp.o" "gcc" "src/wire/CMakeFiles/wlm_wire.dir/encoder.cpp.o.d"
  "/root/repo/src/wire/framing.cpp" "src/wire/CMakeFiles/wlm_wire.dir/framing.cpp.o" "gcc" "src/wire/CMakeFiles/wlm_wire.dir/framing.cpp.o.d"
  "/root/repo/src/wire/messages.cpp" "src/wire/CMakeFiles/wlm_wire.dir/messages.cpp.o" "gcc" "src/wire/CMakeFiles/wlm_wire.dir/messages.cpp.o.d"
  "/root/repo/src/wire/varint.cpp" "src/wire/CMakeFiles/wlm_wire.dir/varint.cpp.o" "gcc" "src/wire/CMakeFiles/wlm_wire.dir/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wlm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
