file(REMOVE_RECURSE
  "CMakeFiles/wlm_wire.dir/decoder.cpp.o"
  "CMakeFiles/wlm_wire.dir/decoder.cpp.o.d"
  "CMakeFiles/wlm_wire.dir/encoder.cpp.o"
  "CMakeFiles/wlm_wire.dir/encoder.cpp.o.d"
  "CMakeFiles/wlm_wire.dir/framing.cpp.o"
  "CMakeFiles/wlm_wire.dir/framing.cpp.o.d"
  "CMakeFiles/wlm_wire.dir/messages.cpp.o"
  "CMakeFiles/wlm_wire.dir/messages.cpp.o.d"
  "CMakeFiles/wlm_wire.dir/varint.cpp.o"
  "CMakeFiles/wlm_wire.dir/varint.cpp.o.d"
  "libwlm_wire.a"
  "libwlm_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
