file(REMOVE_RECURSE
  "libwlm_wire.a"
)
