# Empty dependencies file for wlm_wire.
# This may be replaced when dependencies are built.
