file(REMOVE_RECURSE
  "CMakeFiles/backend_tests.dir/backend/aggregate_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/aggregate_test.cpp.o.d"
  "CMakeFiles/backend_tests.dir/backend/anonymize_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/anonymize_test.cpp.o.d"
  "CMakeFiles/backend_tests.dir/backend/health_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/health_test.cpp.o.d"
  "CMakeFiles/backend_tests.dir/backend/poller_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/poller_test.cpp.o.d"
  "CMakeFiles/backend_tests.dir/backend/store_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/store_test.cpp.o.d"
  "CMakeFiles/backend_tests.dir/backend/timeseries_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/timeseries_test.cpp.o.d"
  "CMakeFiles/backend_tests.dir/backend/tunnel_test.cpp.o"
  "CMakeFiles/backend_tests.dir/backend/tunnel_test.cpp.o.d"
  "backend_tests"
  "backend_tests.pdb"
  "backend_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
