file(REMOVE_RECURSE
  "CMakeFiles/classify_tests.dir/classify/classifier_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/classifier_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/dhcp_packet_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/dhcp_packet_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/dhcp_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/dhcp_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/dns_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/dns_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/http_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/http_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/oui_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/oui_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/rules_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/rules_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/tls_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/tls_test.cpp.o.d"
  "CMakeFiles/classify_tests.dir/classify/user_agent_test.cpp.o"
  "CMakeFiles/classify_tests.dir/classify/user_agent_test.cpp.o.d"
  "classify_tests"
  "classify_tests.pdb"
  "classify_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
