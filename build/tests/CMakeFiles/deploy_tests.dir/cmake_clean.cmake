file(REMOVE_RECURSE
  "CMakeFiles/deploy_tests.dir/deploy/capabilities_test.cpp.o"
  "CMakeFiles/deploy_tests.dir/deploy/capabilities_test.cpp.o.d"
  "CMakeFiles/deploy_tests.dir/deploy/generator_test.cpp.o"
  "CMakeFiles/deploy_tests.dir/deploy/generator_test.cpp.o.d"
  "CMakeFiles/deploy_tests.dir/deploy/industry_test.cpp.o"
  "CMakeFiles/deploy_tests.dir/deploy/industry_test.cpp.o.d"
  "CMakeFiles/deploy_tests.dir/deploy/neighbors_test.cpp.o"
  "CMakeFiles/deploy_tests.dir/deploy/neighbors_test.cpp.o.d"
  "CMakeFiles/deploy_tests.dir/deploy/population_test.cpp.o"
  "CMakeFiles/deploy_tests.dir/deploy/population_test.cpp.o.d"
  "CMakeFiles/deploy_tests.dir/deploy/site_test.cpp.o"
  "CMakeFiles/deploy_tests.dir/deploy/site_test.cpp.o.d"
  "deploy_tests"
  "deploy_tests.pdb"
  "deploy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
