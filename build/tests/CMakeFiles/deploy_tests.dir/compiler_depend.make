# Empty compiler generated dependencies file for deploy_tests.
# This may be replaced when dependencies are built.
