file(REMOVE_RECURSE
  "CMakeFiles/mac_tests.dir/mac/association_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/association_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/beacon_frame_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/beacon_frame_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/beacon_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/beacon_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/frame_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/frame_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/medium_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/medium_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/rate_control_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/rate_control_test.cpp.o.d"
  "mac_tests"
  "mac_tests.pdb"
  "mac_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
