file(REMOVE_RECURSE
  "CMakeFiles/phy_tests.dir/phy/channel_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/channel_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/modulation_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/modulation_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/propagation_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/propagation_test.cpp.o.d"
  "phy_tests"
  "phy_tests.pdb"
  "phy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
