file(REMOVE_RECURSE
  "CMakeFiles/probe_tests.dir/probe/link_table_test.cpp.o"
  "CMakeFiles/probe_tests.dir/probe/link_table_test.cpp.o.d"
  "CMakeFiles/probe_tests.dir/probe/window_test.cpp.o"
  "CMakeFiles/probe_tests.dir/probe/window_test.cpp.o.d"
  "probe_tests"
  "probe_tests.pdb"
  "probe_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
