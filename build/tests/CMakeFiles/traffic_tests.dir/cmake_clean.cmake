file(REMOVE_RECURSE
  "CMakeFiles/traffic_tests.dir/traffic/broadcast_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/broadcast_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/diurnal_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/diurnal_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/flowgen_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/flowgen_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/os_model_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/os_model_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/pcap_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/pcap_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/sessions_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/sessions_test.cpp.o.d"
  "CMakeFiles/traffic_tests.dir/traffic/workload_test.cpp.o"
  "CMakeFiles/traffic_tests.dir/traffic/workload_test.cpp.o.d"
  "traffic_tests"
  "traffic_tests.pdb"
  "traffic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
