# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/phy_tests[1]_include.cmake")
include("/root/repo/build/tests/mac_tests[1]_include.cmake")
include("/root/repo/build/tests/wire_tests[1]_include.cmake")
include("/root/repo/build/tests/classify_tests[1]_include.cmake")
include("/root/repo/build/tests/deploy_tests[1]_include.cmake")
include("/root/repo/build/tests/traffic_tests[1]_include.cmake")
include("/root/repo/build/tests/backend_tests[1]_include.cmake")
include("/root/repo/build/tests/probe_tests[1]_include.cmake")
include("/root/repo/build/tests/scan_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
