file(REMOVE_RECURSE
  "CMakeFiles/wlmctl.dir/wlmctl.cpp.o"
  "CMakeFiles/wlmctl.dir/wlmctl.cpp.o.d"
  "wlmctl"
  "wlmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
