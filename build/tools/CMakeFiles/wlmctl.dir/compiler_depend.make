# Empty compiler generated dependencies file for wlmctl.
# This may be replaced when dependencies are built.
