// Fleet health triage: runs a week of telemetry with WAN disturbances and a
// "skyscraper" outlier, then lets the backend's health monitor find them —
// the paper's §6.1 operational workflow.
#include <cstdio>

#include "backend/health.hpp"
#include "backend/timeseries.hpp"
#include "sim/world.hpp"

int main() {
  using namespace wlm;

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 25;
  config.wan_flap_fraction = 0.1;  // a flaky WAN under some sites
  config.seed = 2026;
  sim::World world(config);

  // Inject a skyscraper outlier: thousands of audible foreign networks.
  auto& outlier = world.aps().front();
  Rng rng(1);
  const deploy::NeighborGenerator dense(deploy::Epoch::kJan2015,
                                        deploy::Density::kDenseUrban);
  auto& env = const_cast<deploy::ApConfig&>(outlier.config()).environment;
  for (int i = 0; i < 12; ++i) {
    const auto extra = dense.generate(rng);
    env.neighbors.insert(env.neighbors.end(), extra.neighbors.begin(),
                         extra.neighbors.end());
  }

  world.run_usage_week(7);
  world.run_mr16_interference(SimTime::epoch() + Duration::days(3));
  world.harvest();

  // Feed per-AP report counts into the time-series store (the dashboard's
  // backing data) and run the health analysis.
  backend::TimeSeriesStore tsdb;
  world.store().for_each([&](const wire::ApReport& report) {
    tsdb.append(backend::SeriesKey{"neighbors", report.ap_id},
                SimTime::from_micros(report.timestamp_us),
                static_cast<double>(report.neighbors.size()));
  });
  std::printf("tsdb: %zu series, %zu points\n", tsdb.series_count(), tsdb.total_points());

  backend::HealthPolicy policy;
  policy.expected_interval = Duration::days(1);
  const backend::HealthMonitor monitor(policy);
  auto findings = monitor.analyze(world.store(), SimTime::epoch() + Duration::days(7));
  for (const auto& ap : world.aps()) {
    const auto tunnel_findings = monitor.analyze_tunnel(ap.tunnel());
    findings.insert(findings.end(), tunnel_findings.begin(), tunnel_findings.end());
  }
  std::fputs(backend::HealthMonitor::render(findings).c_str(), stdout);

  // The outlier's neighbor series, downsampled for a dashboard panel.
  const auto buckets =
      tsdb.downsample(backend::SeriesKey{"neighbors", outlier.id().value()},
                      SimTime::epoch(), SimTime::epoch() + Duration::days(7),
                      Duration::days(1), backend::Agg::kMax);
  std::printf("\nAP%u daily max audible neighbors:", outlier.id().value());
  for (const auto& b : buckets) std::printf(" %.0f", b.value);
  std::printf("\n");
  return 0;
}
