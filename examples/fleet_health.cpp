// Fleet health triage: runs a week of telemetry under a mixed fault scenario
// — WAN outages, a couple of reboot processes, wire corruption, and a
// "skyscraper" outlier inflating its scan tables — then lets the backend's
// health monitor find the damage from the reports and tunnel statistics
// alone: the paper's §6.1 operational workflow.
#include <cstdio>

#include "backend/health.hpp"
#include "backend/timeseries.hpp"
#include "sim/world.hpp"

int main() {
  using namespace wlm;

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 25;
  config.seed = 2026;
  // The fault scenario: a flaky WAN under some sites, occasional power
  // events, a lossy long-haul link, and a few Manhattan-skyscraper APs whose
  // neighbor tables grow until the box OOM-reboots (§6.1).
  config.faults.flap_fraction = 0.1;
  config.faults.outage_rate_per_week = 1.0;
  config.faults.outage_mean_hours = 30.0;
  config.faults.reboot_rate_per_week = 0.5;
  config.faults.corrupt_probability = 0.005;
  config.faults.skyscraper_fraction = 0.05;
  config.faults.skyscraper_neighbors = 600;
  config.faults.oom_neighbor_threshold = 400;
  sim::World world(config);

  world.run_usage_week(7);
  world.run_mr16_interference(SimTime::epoch() + Duration::days(3));
  // Week-end harvest: APs still inside an open outage stay offline, which is
  // exactly what the dashboard should be alerting on.
  world.harvest(sim::HarvestMode::kWeekEnd);

  // Feed per-AP neighbor counts into the time-series store (the dashboard's
  // backing data) and run the health analysis.
  backend::TimeSeriesStore tsdb;
  std::uint32_t outlier_ap = 0;
  std::size_t outlier_neighbors = 0;
  world.reports().for_each([&](const wire::ApReport& report) {
    tsdb.append(backend::SeriesKey{"neighbors", report.ap_id},
                SimTime::from_micros(report.timestamp_us),
                static_cast<double>(report.neighbors.size()));
    if (report.neighbors.size() > outlier_neighbors) {
      outlier_neighbors = report.neighbors.size();
      outlier_ap = report.ap_id;
    }
  });
  std::printf("tsdb: %zu series, %zu points\n", tsdb.series_count(), tsdb.total_points());

  backend::HealthPolicy policy;
  policy.expected_interval = Duration::days(1);
  const backend::HealthMonitor monitor(policy);
  auto findings = monitor.analyze(world.reports(), SimTime::epoch() + Duration::days(7));
  for (const auto& ap : world.aps()) {
    const auto tunnel_findings = monitor.analyze_tunnel(ap.tunnel());
    findings.insert(findings.end(), tunnel_findings.begin(), tunnel_findings.end());
  }
  std::fputs(backend::HealthMonitor::render(findings).c_str(), stdout);

  // End-to-end loss accounting: every generated report lands in exactly one
  // bucket, so the operator can tell shed from lost from still-queued.
  std::printf("\n%s\n", world.loss_ledger().render().c_str());

  // The worst offender's neighbor series, downsampled for a dashboard panel.
  const auto buckets = tsdb.downsample(backend::SeriesKey{"neighbors", outlier_ap},
                                       SimTime::epoch(),
                                       SimTime::epoch() + Duration::days(7),
                                       Duration::days(1), backend::Agg::kMax);
  std::printf("\nAP%u daily max audible neighbors:", outlier_ap);
  for (const auto& b : buckets) std::printf(" %.0f", b.value);
  std::printf("\n");
  return 0;
}
