// Link monitor: watches mesh link delivery over a simulated week with the
// 300-second sliding windows and alerts when a link degrades below
// threshold — the operational use of the paper's §4.2 link metrics.
#include <cstdio>

#include "probe/link_table.hpp"
#include "sim/world.hpp"

int main() {
  using namespace wlm;

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 30;
  config.seed = 7;
  sim::World world(config);
  if (world.mesh_links().empty()) {
    std::printf("no same-channel mesh links in this deployment\n");
    return 0;
  }

  // Watch up to four links across a week at 30-minute reporting cadence.
  const std::size_t watched = std::min<std::size_t>(4, world.mesh_links().size());
  std::printf("monitoring %zu of %zu links, alert threshold 50%% delivery\n\n", watched,
              world.mesh_links().size());

  for (std::size_t i = 0; i < watched; ++i) {
    const auto& link = world.mesh_links()[i];
    std::printf("link %zu: AP%u -> AP%u (%s, median rx %.1f dBm)\n", i + 1,
                link.from().value(), link.to().value(),
                link.band() == phy::Band::k5GHz ? "5 GHz" : "2.4 GHz", link.median_rx_dbm());
    const auto series = world.link_week_series(i, Duration::hours(1));
    int alerts = 0;
    bool alarmed = false;
    double min_ratio = 1.0;
    double sum = 0.0;
    for (const auto& pt : series) {
      sum += pt.ratio;
      min_ratio = std::min(min_ratio, pt.ratio);
      const bool bad = pt.ratio < 0.5;
      if (bad && !alarmed) {
        ++alerts;
        if (alerts <= 3) {
          std::printf("  ALERT at t+%5.1f h: delivery %.0f%%\n", pt.hour_of_week,
                      pt.ratio * 100.0);
        }
      }
      alarmed = bad;
    }
    std::printf("  week summary: mean %.0f%%, min %.0f%%, %d degradation episodes\n\n",
                sum / static_cast<double>(series.size()) * 100.0, min_ratio * 100.0, alerts);
  }
  return 0;
}
