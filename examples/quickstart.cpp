// Quickstart: build a small simulated fleet, run one day of measurements,
// and read the results back out of the backend — the minimal end-to-end use
// of the library's public API.
#include <cstdio>

#include "backend/aggregate.hpp"
#include "core/stats.hpp"
#include "sim/world.hpp"

int main() {
  using namespace wlm;

  // 1. Describe the world: 20 networks' worth of access points and clients,
  //    January 2015 vintage.
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 20;
  config.seed = 42;
  sim::World world(config);
  std::printf("world: %d APs, %zu clients, %zu mesh links\n", world.fleet().total_aps(),
              world.client_count(), world.mesh_links().size());

  // 2. Run the measurement campaigns: client usage for a week, one
  //    interference snapshot, and the mesh link probes.
  world.run_usage_week();
  world.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  world.run_link_windows(SimTime::epoch() + Duration::hours(14));

  // 3. Collect: every report flows tunnel -> poller -> store.
  world.harvest();
  std::printf("backend store: %zu reports from %zu APs\n", world.reports().report_count(),
              world.reports().ap_count());

  // 4. Ask questions. Who used the most data this week?
  backend::UsageAggregator agg;
  agg.consume(world.reports(), SimTime::epoch(), SimTime::epoch() + Duration::days(8));
  std::uint64_t best_total = 0;
  classify::OsType best_os = classify::OsType::kUnknown;
  for (const auto& [mac, client] : agg.clients()) {
    if (client.total() > best_total) {
      best_total = client.total();
      best_os = client.os;
    }
  }
  std::printf("clients seen: %zu; heaviest client: %.1f MB (%s)\n", agg.client_count(),
              static_cast<double>(best_total) / 1e6, std::string(classify::os_name(best_os)).c_str());

  // 5. And how busy is the spectrum?
  RunningStats util;
  world.reports().for_each([&](const wire::ApReport& report) {
    for (const auto& u : report.utilization) {
      if (u.band == 0 && u.cycle_us > 0) {
        util.add(static_cast<double>(u.busy_us) / static_cast<double>(u.cycle_us));
      }
    }
  });
  std::printf("mean 2.4 GHz serving-channel utilization: %.1f%%\n", util.mean() * 100.0);
  return 0;
}
