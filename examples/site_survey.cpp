// Site survey: the paper's practical implication #2 — "channel planning
// using a utilization measure to identify the best wireless channel".
//
// Surveys one campus-style deployment with an MR18-style scanning radio and
// recommends the channel with the lowest measured utilization, contrasting
// it with the naive pick (fewest visible networks) that the paper shows to
// be unreliable (Figures 7/8: count does not predict utilization).
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/stats.hpp"
#include "sim/world.hpp"

int main() {
  using namespace wlm;

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 8;
  config.fleet.model = deploy::ApModel::kMr18;
  config.seed = 1234;
  sim::World world(config);

  // Scan everything during business hours and collect per-channel stats.
  world.run_mr18_scan(SimTime::epoch() + Duration::hours(10), 10.0);
  world.harvest();

  struct ChannelStat {
    RunningStats util;
    int neighbors = 0;
  };
  std::map<std::pair<int, int>, ChannelStat> by_channel;  // (band, channel)
  world.reports().for_each([&](const wire::ApReport& report) {
    std::map<std::pair<int, int>, int> neighbor_count;
    for (const auto& n : report.neighbors) {
      if (!n.is_same_fleet) ++neighbor_count[{n.band, n.channel}];
    }
    for (const auto& u : report.utilization) {
      if (u.cycle_us == 0) continue;
      auto& stat = by_channel[{u.band, u.channel}];
      stat.util.add(static_cast<double>(u.busy_us) / static_cast<double>(u.cycle_us));
      stat.neighbors += neighbor_count[{u.band, u.channel}];
    }
  });

  std::printf("%-10s %-8s %-12s %-10s\n", "band", "channel", "mean util", "networks");
  for (const auto& [key, stat] : by_channel) {
    std::printf("%-10s %-8d %10.1f%% %10d\n", key.first == 0 ? "2.4 GHz" : "5 GHz", key.second,
                stat.util.mean() * 100.0, stat.neighbors);
  }

  for (int band = 0; band <= 1; ++band) {
    const std::pair<int, int>* best_util = nullptr;
    const std::pair<int, int>* fewest_nets = nullptr;
    double best_u = 2.0;
    int best_n = INT32_MAX;
    for (const auto& [key, stat] : by_channel) {
      if (key.first != band) continue;
      if (stat.util.mean() < best_u) {
        best_u = stat.util.mean();
        best_util = &key;
      }
      if (stat.neighbors < best_n) {
        best_n = stat.neighbors;
        fewest_nets = &key;
      }
    }
    if (best_util != nullptr && fewest_nets != nullptr) {
      std::printf(
          "\n%s: recommended channel %d (%.1f%% measured utilization); naive "
          "fewest-networks pick would be channel %d — the paper shows network count "
          "does not predict utilization\n",
          band == 0 ? "2.4 GHz" : "5 GHz", best_util->second, best_u * 100.0,
          fewest_nets->second);
    }
  }
  return 0;
}
