// Traffic audit: the paper's practical implication #1 — "traffic shaping at
// the wireless access point to better serve the growing number of bandwidth
// hungry clients and applications".
//
// Classifies a generated flow log with the production rule engine, prints
// the per-category usage profile of one network, and flags the categories a
// shaping policy would target.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "backend/aggregate.hpp"
#include "sim/world.hpp"

int main() {
  using namespace wlm;

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 5;
  config.client_scale = 2.0;
  config.seed = 99;
  sim::World world(config);

  world.run_usage_week();
  world.harvest();

  backend::UsageAggregator agg;
  agg.consume(world.reports(), SimTime::epoch(), SimTime::epoch() + Duration::days(8));

  std::printf("audited %zu clients, %llu flows classified (%llu disagreed with ground "
              "truth)\n\n",
              agg.client_count(),
              static_cast<unsigned long long>(world.flows_classified()),
              static_cast<unsigned long long>(world.flows_misclassified()));

  const auto categories = agg.by_category();
  std::uint64_t total = 0;
  for (const auto& c : categories) total += c.up + c.down;

  struct Row {
    classify::Category cat;
    std::uint64_t bytes;
    std::uint64_t down;
    std::uint64_t clients;
  };
  std::vector<Row> rows;
  for (int c = 0; c < classify::kCategoryCount; ++c) {
    const auto& r = categories[static_cast<std::size_t>(c)];
    if (r.clients == 0) continue;
    rows.push_back(Row{static_cast<classify::Category>(c), r.up + r.down, r.down, r.clients});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.bytes > b.bytes; });

  std::printf("%-32s %10s %8s %8s %9s\n", "category", "GB", "% total", "% down", "clients");
  for (const auto& row : rows) {
    std::printf("%-32s %10.2f %7.1f%% %7.1f%% %9llu\n",
                std::string(classify::category_name(row.cat)).c_str(),
                static_cast<double>(row.bytes) / 1e9,
                100.0 * static_cast<double>(row.bytes) / static_cast<double>(total),
                100.0 * static_cast<double>(row.down) / std::max<std::uint64_t>(1, row.bytes),
                static_cast<unsigned long long>(row.clients));
  }

  // Shaping advice: categories that are >20% of bytes but <30% of clients.
  std::printf("\nshaping candidates (high bytes, few clients):\n");
  const double total_clients = static_cast<double>(agg.client_count());
  for (const auto& row : rows) {
    const double byte_share = static_cast<double>(row.bytes) / static_cast<double>(total);
    const double client_share = static_cast<double>(row.clients) / total_clients;
    if (byte_share > 0.15 && client_share < 0.5) {
      std::printf("  - %s: %.0f%% of bytes from %.0f%% of clients\n",
                  std::string(classify::category_name(row.cat)).c_str(), byte_share * 100.0,
                  client_share * 100.0);
    }
  }
  return 0;
}
