// Experiment drivers: one entry point per table/figure of the paper.
//
// Each run_* function builds the necessary simulated fleets, pushes all
// telemetry through the wire format / tunnels / poller, and computes its
// results FROM THE BACKEND STORE ONLY. Each render_* function produces the
// table or ASCII figure next to the paper's reference values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/aggregate.hpp"
#include "classify/rule_index.hpp"
#include "core/stats.hpp"
#include "deploy/epoch.hpp"
#include "fault/loss_ledger.hpp"
#include "mac/mesh.hpp"
#include "mobility/mobility.hpp"
#include "phy/per_table.hpp"

namespace wlm::analysis {

/// Scale knobs shared by all experiments. The defaults run in seconds on a
/// laptop; raise `networks` toward the paper's 20,667 for higher fidelity.
struct ScenarioScale {
  int networks = 250;
  double client_scale = 1.0;
  std::uint64_t seed = 2015;
  /// Worker threads for the fleet runtime; output is identical for any
  /// value (see sim::FleetRunner's determinism contract).
  int threads = 1;
  /// Classification engine the simulated APs run. Every rendered table is
  /// byte-identical in both modes; kReference exists as the differential
  /// oracle (and for benchmarking the fast path against it).
  classify::ClassifierMode classifier = classify::ClassifierMode::kIndexed;
  /// PER evaluation path mesh links use (same oracle pattern: kTable is
  /// the lookup fast path, kReference the scalar oracle, outputs are
  /// byte-identical in both).
  phy::PerMode per_mode = phy::PerMode::kTable;
  /// Streaming-harvest memory ceiling in MiB (0 = classic hold-until-final
  /// harvest). Renders are byte-identical for any FIXED value; see
  /// sim::WorldConfig::mem_ceiling_mb.
  std::uint64_t mem_ceiling_mb = 0;
  /// Where sealed segments spill when the ceiling presses.
  std::string spill_dir = ".";
  /// Client mobility knobs for the roaming studies; run_mobility_study
  /// forces `enabled` on, every other experiment leaves mobility off (so
  /// their renders stay byte-identical to pre-mobility builds).
  mobility::MobilityConfig mobility;
  /// Mesh backhaul knobs for the multi-hop studies; run_mesh_study forces
  /// a nonzero mesh fraction, every other experiment leaves mesh off (so
  /// their renders stay byte-identical to pre-mesh builds).
  mesh::MeshConfig mesh;
};

/// The paper's audited full fleet size (Table 2 total: 20,667 networks).
/// `--scale paper` presets and the wlmctl bounds check key off this.
[[nodiscard]] int paper_network_count();

// ---------------------------------------------------------------- Table 2

/// Renders the industry mix (generator calibration vs Table 2).
[[nodiscard]] std::string render_table2(const ScenarioScale& scale);

// ------------------------------------------------- Tables 3/5/6 (usage)

struct UsageRun {
  backend::UsageAggregator agg_2015;
  backend::UsageAggregator agg_2014;
  /// paper clients / simulated clients, used to scale byte totals to TB.
  double upscale_2015 = 1.0;
  double upscale_2014 = 1.0;
  std::uint64_t flows_classified = 0;
  std::uint64_t flows_misclassified = 0;
  double mean_report_bytes_per_ap = 0.0;
  double report_kbit_per_s = 0.0;  // the §2 "~1 kbit/s" overhead check
};

[[nodiscard]] UsageRun run_usage_study(const ScenarioScale& scale);
[[nodiscard]] std::string render_table3(const UsageRun& run);
[[nodiscard]] std::string render_table5(const UsageRun& run, std::size_t top_n = 40);
[[nodiscard]] std::string render_table6(const UsageRun& run);
[[nodiscard]] std::string render_wire_overhead(const UsageRun& run);

/// Full-cadence telemetry overhead (the §2 "~1 kbit/s per AP" claim): runs
/// a week of usage reports plus periodic interference/neighbor reports and
/// measures framed bytes through the tunnels.
struct WireOverheadRun {
  double bytes_per_ap_week = 0.0;
  double kbit_per_s = 0.0;
  double reports_per_ap = 0.0;
};
[[nodiscard]] WireOverheadRun run_wire_overhead_study(const ScenarioScale& scale);
[[nodiscard]] std::string render_wire_overhead_full(const WireOverheadRun& run);

// ----------------------------------------- Table 4 / Figure 1 (snapshots)

struct SnapshotRun {
  /// Measured capability fractions per epoch, indexed like Table 4's rows:
  /// {11g, 11n, 5GHz, 40MHz, 11ac, 2ss, 3ss, 4ss}.
  std::vector<double> caps_2014;
  std::vector<double> caps_2015;
  /// Signal-to-noise (dB above noise floor) samples by band, 2015 snapshot.
  std::vector<double> snr_24;
  std::vector<double> snr_5;
  std::size_t clients_24 = 0;
  std::size_t clients_5 = 0;
};

[[nodiscard]] SnapshotRun run_snapshot_study(const ScenarioScale& scale);
[[nodiscard]] std::string render_table4(const SnapshotRun& run);
[[nodiscard]] std::string render_fig1(const SnapshotRun& run);

// --------------------------------------- Table 7 / Figure 2 (neighbors)

struct NeighborRun {
  struct EpochStats {
    double networks_per_ap_24 = 0.0;
    double networks_per_ap_5 = 0.0;
    std::uint64_t total_24 = 0;
    std::uint64_t total_5 = 0;
    double hotspot_frac_24 = 0.0;
    double hotspot_frac_5 = 0.0;
    int ap_count = 0;
  };
  EpochStats now;        // Jan 2015
  EpochStats six_months; // Jul 2014
  /// Histogram of neighbor BSS observations by channel (Jan 2015).
  std::vector<std::pair<int, std::uint64_t>> by_channel_24;
  std::vector<std::pair<int, std::uint64_t>> by_channel_5;
};

[[nodiscard]] NeighborRun run_neighbor_study(const ScenarioScale& scale);
[[nodiscard]] std::string render_table7(const NeighborRun& run);
[[nodiscard]] std::string render_fig2(const NeighborRun& run);

// --------------------------------------------- Figures 3/4/5 (links)

struct LinkRun {
  std::vector<double> ratios_24_now;
  std::vector<double> ratios_24_before;
  std::vector<double> ratios_5_now;
  std::vector<double> ratios_5_before;
  /// Week-long series for two sample links per band (Figures 4/5).
  struct Series {
    std::vector<double> hours;
    std::vector<double> ratios;
  };
  std::vector<Series> series_24;
  std::vector<Series> series_5;
};

[[nodiscard]] LinkRun run_link_study(const ScenarioScale& scale);
[[nodiscard]] std::string render_fig3(const LinkRun& run);
[[nodiscard]] std::string render_fig4(const LinkRun& run);
[[nodiscard]] std::string render_fig5(const LinkRun& run);

// ------------------------------------- Figures 6/7/8/9/10 (utilization)

struct UtilizationRun {
  // MR16 serving-channel utilization (Figure 6).
  std::vector<double> mr16_util_24;
  std::vector<double> mr16_util_5;
  // MR18 all-channel scans: per (channel-observation) pairs.
  std::vector<double> scatter_util_24;   // Figure 7 y-values
  std::vector<double> scatter_count_24;  // Figure 7 x-values
  std::vector<double> scatter_util_5;    // Figure 8
  std::vector<double> scatter_count_5;
  double correlation_24 = 0.0;
  double correlation_5 = 0.0;
  // Day/night per-channel utilization (Figure 9).
  std::vector<double> day_24, night_24, day_5, night_5;
  // Decodable fraction of busy time (Figure 10).
  std::vector<double> decodable_24, decodable_5;
};

[[nodiscard]] UtilizationRun run_utilization_study(const ScenarioScale& scale);
[[nodiscard]] std::string render_fig6(const UtilizationRun& run);
[[nodiscard]] std::string render_fig7(const UtilizationRun& run);
[[nodiscard]] std::string render_fig8(const UtilizationRun& run);
[[nodiscard]] std::string render_fig9(const UtilizationRun& run);
[[nodiscard]] std::string render_fig10(const UtilizationRun& run);

// --------------------------------------------- mobility (roaming churn)

/// Backend-side roaming statistics from one mobility-enabled usage week.
/// Everything here is computed from the harvested store (the §2.3
/// aggregate-by-MAC path) plus the merged telemetry registry — never from
/// simulator internals, so the renders measure what the backend can see.
struct MobilityRun {
  /// Distinct-AP count per client, sorted by client MAC (deterministic
  /// regardless of hash-map iteration order).
  std::vector<int> ap_counts;
  std::size_t clients = 0;
  /// Clients whose resolved OS is mobile-class (phones/tablets).
  std::size_t mobile_clients = 0;
  /// Mobile-class clients the backend saw on exactly one AP all week —
  /// the paper's "sticky" population that never benefits from roaming.
  std::size_t sticky_mobile = 0;
  // Fleet wlm_mobility_* counters from the merged registry.
  std::uint64_t clients_walking = 0;
  std::uint64_t steps_active = 0;
  std::uint64_t roams = 0;
  std::uint64_t handoffs_armed = 0;
  std::uint64_t handoffs_aborted = 0;
  std::uint64_t band_switches = 0;
};

/// Runs one usage week with mobility forced on (scale.mobility supplies the
/// walk knobs) and aggregates roaming behavior from the backend store.
[[nodiscard]] MobilityRun run_mobility_study(const ScenarioScale& scale);
/// CDF of per-client roam counts (AP changes = distinct APs - 1).
[[nodiscard]] std::string render_roam_cdf(const MobilityRun& run);
/// Distribution of distinct APs visited per client over the week.
[[nodiscard]] std::string render_ap_visits(const MobilityRun& run);
/// Sticky-client report plus the fleet handoff counters.
[[nodiscard]] std::string render_sticky_clients(const MobilityRun& run);

// ------------------------------------------- mesh (multi-hop backhaul)

/// Delivery and delay vs hop count from one mesh-enabled usage week, the
/// ngwmn grid-study methodology: generation counts come from the merged
/// shard registries, delivery counts and relay-delay samples come from the
/// harvested backend store ONLY — the backend measures what arrived, the
/// shards attest what was sent, and the gap is the ledger's business.
struct MeshRun {
  /// Reports enqueued at each hop distance (index = hops; 0 = gateway- or
  /// wire-attached APs), from wlm_mesh_reports_by_hops_total.
  std::vector<std::uint64_t> generated_by_hops;
  /// Reports the backend store holds at each hop distance.
  std::vector<std::uint64_t> delivered_by_hops;
  /// Relay-delay samples (us) per hop distance, from delivered reports;
  /// index 0 stays empty (direct reports carry no relay delay).
  std::vector<std::vector<double>> relay_us_by_hops;
  /// WAN-less (mesh) APs across the fleet, from the wlm_mesh_aps gauges.
  std::uint64_t mesh_aps = 0;
  std::uint64_t total_aps = 0;
  // Fleet wlm_mesh_* counters from the merged registry.
  std::uint64_t relayed_reports = 0;
  std::uint64_t hops_total = 0;
  std::uint64_t relay_us_total = 0;
  std::uint64_t partition_lost = 0;
  /// Fleet conservation ledger (closes with lost_mesh_partition).
  fault::LossLedger ledger;
};

/// Runs one usage week with mesh backhaul forced on (scale.mesh supplies
/// the knobs; a zero fraction defaults to 0.40) and measures delivery and
/// delay per hop count from the backend store.
[[nodiscard]] MeshRun run_mesh_study(const ScenarioScale& scale);
/// Delivery-ratio table: generated vs delivered per hop count, plus the
/// partition losses that keep the ledger closed.
[[nodiscard]] std::string render_mesh_delivery(const MeshRun& run);
/// Relay-delay table per hop count (mean and percentiles).
[[nodiscard]] std::string render_mesh_delay(const MeshRun& run);

// ------------------------------------------------ Figure 11 (spectrum)

struct SpectrumRun {
  std::vector<double> avg_24_db;  // averaged PSD, 2.437 GHz scene
  std::vector<double> avg_5_db;   // 5.220 GHz scene
  double occupancy_24 = 0.0;
  double occupancy_5 = 0.0;
  std::vector<std::string> waterfall_24;  // rendered rows
  std::vector<std::string> waterfall_5;
};

[[nodiscard]] SpectrumRun run_spectrum_study(std::uint64_t seed);
[[nodiscard]] std::string render_fig11(const SpectrumRun& run);

// ----------------------------------------------------------- utilities

/// "p50=25.3% p90=50.1%" helper used across renders.
[[nodiscard]] std::string percentile_summary(const std::vector<double>& values,
                                             bool as_percent);

}  // namespace wlm::analysis
