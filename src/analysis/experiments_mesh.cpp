// Mesh backhaul studies: packet-delivery ratio and relay delay as a
// function of hop count, the way the ngwmn 7x7-grid measurements slice
// them — generation attested by the shard registries, delivery and delay
// measured FROM THE BACKEND STORE ONLY, and the difference accounted by
// the loss ledger (lost_mesh_partition closes the conservation identity).
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "analysis/experiments.hpp"
#include "core/table.hpp"
#include "sim/fleet_runner.hpp"

namespace wlm::analysis {

namespace {

sim::WorldConfig mesh_world_config(const ScenarioScale& scale) {
  // Mirrors the usage study's seeding so mesh renders are directly
  // comparable to Table 3/5/6 runs at the same scale.
  const deploy::Epoch epoch = deploy::Epoch::kJan2015;
  sim::WorldConfig cfg;
  cfg.fleet.epoch = epoch;
  cfg.fleet.network_count = scale.networks;
  cfg.fleet.model = deploy::ApModel::kMr16;
  cfg.fleet.seed = scale.seed ^ (static_cast<std::uint64_t>(epoch) << 32);
  cfg.client_scale = scale.client_scale;
  cfg.seed = scale.seed * 1315423911ULL + static_cast<std::uint64_t>(epoch);
  cfg.threads = scale.threads;
  cfg.classifier = scale.classifier;
  cfg.per_mode = scale.per_mode;
  cfg.mem_ceiling_mb = scale.mem_ceiling_mb;
  cfg.spill_dir = scale.spill_dir;
  cfg.mesh = scale.mesh.clamped();
  if (!cfg.mesh.enabled()) cfg.mesh.mesh_fraction = 0.40;  // it is the mesh study
  return cfg;
}

[[nodiscard]] std::string us_to_ms(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us / 1000.0);
  return std::string(buf);
}

}  // namespace

MeshRun run_mesh_study(const ScenarioScale& scale) {
  const sim::WorldConfig cfg = mesh_world_config(scale);
  sim::FleetRunner world(cfg);
  world.run_usage_week(/*reports_per_week=*/7);
  world.harvest();

  MeshRun run;
  const auto buckets = static_cast<std::size_t>(cfg.mesh.max_hops) + 1;
  run.generated_by_hops.assign(buckets, 0);
  run.delivered_by_hops.assign(buckets, 0);
  run.relay_us_by_hops.assign(buckets, {});

  // Backend view: what actually arrived, and how long the hops took.
  world.reports().for_each([&](const wire::ApReport& report) {
    const auto hops = std::min<std::size_t>(report.mesh_hops, buckets - 1);
    ++run.delivered_by_hops[hops];
    if (report.mesh_hops != 0) {
      run.relay_us_by_hops[hops].push_back(static_cast<double>(report.mesh_relay_us));
    }
  });
  run.total_aps = world.reports().ap_count();

  // Shard attestation: what was enqueued per hop distance, and the fleet
  // relay/partition totals.
  const telemetry::MetricsRegistry& metrics = world.metrics();
  for (std::size_t hops = 0; hops < buckets; ++hops) {
    run.generated_by_hops[hops] =
        metrics.counter_value("wlm_mesh_reports_by_hops_total", hops);
  }
  run.relayed_reports = metrics.counter_value("wlm_mesh_relayed_reports_total");
  run.hops_total = metrics.counter_value("wlm_mesh_hops_total");
  run.relay_us_total = metrics.counter_value("wlm_mesh_relay_us_total");
  run.partition_lost = metrics.counter_value("wlm_mesh_partition_lost_total");
  metrics.for_each_gauge([&](const telemetry::MetricKey& key, const telemetry::Gauge& g) {
    if (key.name == "wlm_mesh_aps") run.mesh_aps += static_cast<std::uint64_t>(g.value());
  });
  run.ledger = world.loss_ledger();
  return run;
}

std::string render_mesh_delivery(const MeshRun& run) {
  TextTable table({"hops", "generated", "delivered", "delivery ratio"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  std::uint64_t generated_total = 0;
  std::uint64_t delivered_total = 0;
  for (std::size_t hops = 0; hops < run.generated_by_hops.size(); ++hops) {
    const std::uint64_t generated = run.generated_by_hops[hops];
    const std::uint64_t delivered =
        hops < run.delivered_by_hops.size() ? run.delivered_by_hops[hops] : 0;
    if (generated == 0 && delivered == 0) continue;
    generated_total += generated;
    delivered_total += delivered;
    table.add_row({std::to_string(hops),
                   with_commas(static_cast<long long>(generated)),
                   with_commas(static_cast<long long>(delivered)),
                   pct(static_cast<double>(delivered) /
                       std::max<double>(static_cast<double>(generated), 1.0))});
  }
  table.add_row({"all", with_commas(static_cast<long long>(generated_total)),
                 with_commas(static_cast<long long>(delivered_total)),
                 pct(static_cast<double>(delivered_total) /
                     std::max<double>(static_cast<double>(generated_total), 1.0))});

  std::ostringstream out;
  out << "Mesh delivery ratio vs hop count (one usage week)\n"
      << "(generated = shard enqueue attestation; delivered = backend store)\n"
      << table.render();
  out << "mesh APs: " << with_commas(static_cast<long long>(run.mesh_aps)) << " of "
      << with_commas(static_cast<long long>(run.total_aps)) << "\n";
  out << "relayed reports: " << with_commas(static_cast<long long>(run.relayed_reports))
      << "\n";
  out << "partition-stranded reports: "
      << with_commas(static_cast<long long>(run.partition_lost)) << "\n";
  out << "ledger: " << run.ledger.render() << "\n";
  return out.str();
}

std::string render_mesh_delay(const MeshRun& run) {
  TextTable table({"hops", "reports", "mean ms", "percentiles (ms)"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kLeft});
  for (std::size_t hops = 1; hops < run.relay_us_by_hops.size(); ++hops) {
    const std::vector<double>& samples = run.relay_us_by_hops[hops];
    if (samples.empty()) continue;
    double sum = 0.0;
    for (const double v : samples) sum += v;
    std::vector<double> ms;
    ms.reserve(samples.size());
    for (const double v : samples) ms.push_back(v / 1000.0);
    table.add_row({std::to_string(hops),
                   with_commas(static_cast<long long>(samples.size())),
                   us_to_ms(sum / static_cast<double>(samples.size())),
                   percentile_summary(ms, /*as_percent=*/false)});
  }
  std::ostringstream out;
  out << "Mesh relay delay vs hop count (queueing + airtime added per report)\n"
      << "(measured from delivered reports' mesh_relay_us, backend view)\n"
      << table.render();
  const double mean_hop_us =
      run.hops_total != 0
          ? static_cast<double>(run.relay_us_total) / static_cast<double>(run.hops_total)
          : 0.0;
  out << "fleet mean per-hop cost: " << us_to_ms(mean_hop_us) << " ms over "
      << with_commas(static_cast<long long>(run.hops_total)) << " hops\n";
  return out.str();
}

}  // namespace wlm::analysis
