// Mobility/roaming studies: roam-rate CDF, AP-visit distribution, and
// sticky-client detection, all measured the way the paper's backend would —
// by aggregating harvested usage reports by MAC (§2.3), never by peeking at
// simulator state.
#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/experiments.hpp"
#include "classify/os.hpp"
#include "core/chart.hpp"
#include "core/table.hpp"
#include "sim/fleet_runner.hpp"

namespace wlm::analysis {

namespace {

sim::WorldConfig mobility_world_config(const ScenarioScale& scale) {
  // Mirrors the usage study's seeding so mobility renders are directly
  // comparable to Table 3/5/6 runs at the same scale.
  const deploy::Epoch epoch = deploy::Epoch::kJan2015;
  sim::WorldConfig cfg;
  cfg.fleet.epoch = epoch;
  cfg.fleet.network_count = scale.networks;
  cfg.fleet.model = deploy::ApModel::kMr16;
  cfg.fleet.seed = scale.seed ^ (static_cast<std::uint64_t>(epoch) << 32);
  cfg.client_scale = scale.client_scale;
  cfg.seed = scale.seed * 1315423911ULL + static_cast<std::uint64_t>(epoch);
  cfg.threads = scale.threads;
  cfg.classifier = scale.classifier;
  cfg.per_mode = scale.per_mode;
  cfg.mem_ceiling_mb = scale.mem_ceiling_mb;
  cfg.spill_dir = scale.spill_dir;
  cfg.mobility = scale.mobility;
  cfg.mobility.enabled = true;  // it is the mobility study
  return cfg;
}

/// Per-roam-count client tallies, index = AP changes (ap_count - 1).
std::vector<std::size_t> roam_histogram(const MobilityRun& run) {
  std::vector<std::size_t> hist;
  for (const int ap_count : run.ap_counts) {
    const auto roams = static_cast<std::size_t>(std::max(ap_count - 1, 0));
    if (roams >= hist.size()) hist.resize(roams + 1, 0);
    ++hist[roams];
  }
  return hist;
}

}  // namespace

MobilityRun run_mobility_study(const ScenarioScale& scale) {
  sim::FleetRunner world(mobility_world_config(scale));
  world.run_usage_week(/*reports_per_week=*/7);
  world.harvest();

  backend::UsageAggregator agg;
  agg.consume(world.reports(), SimTime::epoch(), SimTime::epoch() + Duration::days(8));

  MobilityRun run;
  // Sort by MAC so the per-client vectors never depend on hash-map order.
  std::vector<const backend::ClientAggregate*> clients;
  clients.reserve(agg.clients().size());
  for (const auto& [mac, client] : agg.clients()) clients.push_back(&client);
  std::sort(clients.begin(), clients.end(),
            [](const backend::ClientAggregate* a, const backend::ClientAggregate* b) {
              return a->mac.to_u64() < b->mac.to_u64();
            });
  run.clients = clients.size();
  run.ap_counts.reserve(clients.size());
  for (const backend::ClientAggregate* client : clients) {
    run.ap_counts.push_back(client->ap_count);
    if (classify::device_class(client->os) == classify::DeviceClass::kMobile) {
      ++run.mobile_clients;
      if (client->ap_count <= 1) ++run.sticky_mobile;
    }
  }

  const telemetry::MetricsRegistry& metrics = world.metrics();
  run.clients_walking = metrics.counter_value("wlm_mobility_clients_walking_total");
  run.steps_active = metrics.counter_value("wlm_mobility_steps_active_total");
  run.roams = metrics.counter_value("wlm_mobility_roams_total");
  run.handoffs_armed = metrics.counter_value("wlm_mobility_handoffs_armed_total");
  run.handoffs_aborted = metrics.counter_value("wlm_mobility_handoffs_aborted_total");
  run.band_switches = metrics.counter_value("wlm_mobility_band_switches_total");
  return run;
}

std::string render_roam_cdf(const MobilityRun& run) {
  const auto hist = roam_histogram(run);
  const double total = std::max<double>(static_cast<double>(run.clients), 1.0);

  TextTable table({"AP changes", "clients", "share", "cumulative"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  std::size_t cum = 0;
  for (std::size_t roams = 0; roams < hist.size(); ++roams) {
    cum += hist[roams];
    table.add_row({std::to_string(roams),
                   with_commas(static_cast<long long>(hist[roams])),
                   pct(static_cast<double>(hist[roams]) / total),
                   pct(static_cast<double>(cum) / total)});
  }
  std::ostringstream out;
  out << "Roam-rate CDF: AP changes per client over one week\n"
      << "(backend view: distinct APs carrying the MAC, minus one)\n"
      << table.render();
  out << "clients: " << with_commas(static_cast<long long>(run.clients)) << "\n";
  return out.str();
}

std::string render_ap_visits(const MobilityRun& run) {
  // Tally distinct-AP counts; the tail above 5 collapses into one bucket.
  constexpr int kTail = 6;
  std::vector<std::size_t> buckets(kTail + 1, 0);
  for (const int ap_count : run.ap_counts) {
    const int clamped = std::clamp(ap_count, 1, kTail + 1);
    ++buckets[static_cast<std::size_t>(clamped - 1)];
  }
  std::vector<std::pair<std::string, double>> bars;
  for (int i = 0; i < kTail; ++i) {
    bars.emplace_back(std::to_string(i + 1) + " AP" + (i == 0 ? " " : "s"),
                      static_cast<double>(buckets[static_cast<std::size_t>(i)]));
  }
  bars.emplace_back(">" + std::to_string(kTail) + " APs",
                    static_cast<double>(buckets[kTail]));
  std::ostringstream out;
  out << render_bars(bars, "Distinct APs visited per client (one week)");
  return out.str();
}

std::string render_sticky_clients(const MobilityRun& run) {
  const double mobile = std::max<double>(static_cast<double>(run.mobile_clients), 1.0);
  TextTable table({"Metric", "value"}, {Align::kLeft, Align::kRight});
  table.add_row({"clients (all)", with_commas(static_cast<long long>(run.clients))});
  table.add_row({"mobile-class clients",
                 with_commas(static_cast<long long>(run.mobile_clients))});
  table.add_row({"sticky mobile (1 AP all week)",
                 with_commas(static_cast<long long>(run.sticky_mobile))});
  table.add_row({"sticky share of mobile",
                 pct(static_cast<double>(run.sticky_mobile) / mobile)});
  table.add_row({"walking clients (sim)",
                 with_commas(static_cast<long long>(run.clients_walking))});
  table.add_row({"active walk steps", with_commas(static_cast<long long>(run.steps_active))});
  table.add_row({"committed roams", with_commas(static_cast<long long>(run.roams))});
  table.add_row({"handoffs armed", with_commas(static_cast<long long>(run.handoffs_armed))});
  table.add_row({"handoffs aborted",
                 with_commas(static_cast<long long>(run.handoffs_aborted))});
  table.add_row({"band switches", with_commas(static_cast<long long>(run.band_switches))});
  std::ostringstream out;
  out << "Sticky-client report (mobile-class devices that never roamed)\n" << table.render();
  return out.str();
}

}  // namespace wlm::analysis
