#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "analysis/experiments.hpp"
#include "core/chart.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "deploy/neighbors.hpp"
#include "sim/fleet_runner.hpp"

namespace wlm::analysis {

namespace {

sim::WorldConfig radio_world_config(const ScenarioScale& scale, deploy::Epoch epoch,
                                    deploy::ApModel model) {
  sim::WorldConfig cfg;
  cfg.fleet.epoch = epoch;
  cfg.fleet.network_count = scale.networks;
  cfg.fleet.model = model;
  cfg.fleet.seed = scale.seed ^ 0x9d2c5680ULL ^ (static_cast<std::uint64_t>(epoch) << 24);
  cfg.client_scale = scale.client_scale;
  cfg.seed = scale.seed * 2654435761ULL + 17 + static_cast<std::uint64_t>(epoch);
  cfg.threads = scale.threads;
  cfg.classifier = scale.classifier;
  cfg.per_mode = scale.per_mode;
  cfg.mem_ceiling_mb = scale.mem_ceiling_mb;
  cfg.spill_dir = scale.spill_dir;
  return cfg;
}

std::vector<std::pair<double, double>> cdf_curve(const std::vector<double>& xs,
                                                 std::size_t points = 72) {
  return EmpiricalCdf{std::vector<double>(xs)}.curve(points);
}

}  // namespace

// ------------------------------------------------ Table 7 / Figure 2

NeighborRun run_neighbor_study(const ScenarioScale& scale) {
  NeighborRun run;
  std::map<int, std::uint64_t> hist24;
  std::map<int, std::uint64_t> hist5;

  for (const deploy::Epoch epoch : {deploy::Epoch::kJan2015, deploy::Epoch::kJul2014}) {
    sim::FleetRunner world(radio_world_config(scale, epoch, deploy::ApModel::kMr16));
    world.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
    world.harvest();

    NeighborRun::EpochStats stats;
    std::uint64_t hotspots24 = 0;
    std::uint64_t hotspots5 = 0;
    world.reports().for_each([&](const wire::ApReport& report) {
      ++stats.ap_count;
      for (const auto& n : report.neighbors) {
        if (n.is_same_fleet) continue;  // Table 7 excludes the fleet's own APs
        if (n.band == 0) {
          ++stats.total_24;
          if (n.is_hotspot) ++hotspots24;
          if (epoch == deploy::Epoch::kJan2015) ++hist24[n.channel];
        } else {
          ++stats.total_5;
          if (n.is_hotspot) ++hotspots5;
          if (epoch == deploy::Epoch::kJan2015) ++hist5[n.channel];
        }
      }
    });
    stats.networks_per_ap_24 =
        static_cast<double>(stats.total_24) / std::max(1, stats.ap_count);
    stats.networks_per_ap_5 = static_cast<double>(stats.total_5) / std::max(1, stats.ap_count);
    stats.hotspot_frac_24 =
        stats.total_24 > 0 ? static_cast<double>(hotspots24) / static_cast<double>(stats.total_24)
                           : 0.0;
    stats.hotspot_frac_5 =
        stats.total_5 > 0 ? static_cast<double>(hotspots5) / static_cast<double>(stats.total_5)
                          : 0.0;
    (epoch == deploy::Epoch::kJan2015 ? run.now : run.six_months) = stats;
  }
  run.by_channel_24.assign(hist24.begin(), hist24.end());
  run.by_channel_5.assign(hist5.begin(), hist5.end());
  return run;
}

std::string render_table7(const NeighborRun& run) {
  TextTable table({"", "Networks", "Networks per AP", "paper per AP"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  table.add_row({"2.4 GHz (now)", with_commas(static_cast<long long>(run.now.total_24)),
                 fixed(run.now.networks_per_ap_24, 2), "55.47"});
  table.add_row({"2.4 GHz (six months ago)",
                 with_commas(static_cast<long long>(run.six_months.total_24)),
                 fixed(run.six_months.networks_per_ap_24, 2), "28.60"});
  table.add_row({"5 GHz (now)", with_commas(static_cast<long long>(run.now.total_5)),
                 fixed(run.now.networks_per_ap_5, 2), "3.68"});
  table.add_row({"5 GHz (six months ago)",
                 with_commas(static_cast<long long>(run.six_months.total_5)),
                 fixed(run.six_months.networks_per_ap_5, 2), "2.47"});
  std::ostringstream out;
  out << "Table 7: nearby non-fleet networks per AP\n" << table.render();
  out << "hotspot share 2.4 GHz: " << pct(run.now.hotspot_frac_24)
      << " now (paper ~20%), " << pct(run.six_months.hotspot_frac_24)
      << " six months ago (paper ~24%); 5 GHz now: " << pct(run.now.hotspot_frac_5)
      << " (paper 1.7%)\n";
  return out.str();
}

std::string render_fig2(const NeighborRun& run) {
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [channel, count] : run.by_channel_24) {
    bars.emplace_back("2.4 ch " + std::to_string(channel), static_cast<double>(count));
  }
  for (const auto& [channel, count] : run.by_channel_5) {
    bars.emplace_back("5  ch " + std::to_string(channel), static_cast<double>(count));
  }
  std::ostringstream out;
  out << render_bars(bars, "Figure 2: nearby networks by channel number");
  // The headline claim: channel 1 carries ~37% more networks than 6 or 11.
  auto count_of = [&](int channel) -> double {
    for (const auto& [c, n] : run.by_channel_24) {
      if (c == channel) return static_cast<double>(n);
    }
    return 0.0;
  };
  const double base = (count_of(6) + count_of(11)) / 2.0;
  if (base > 0.0) {
    out << "channel 1 vs channels 6/11: +" << fixed((count_of(1) / base - 1.0) * 100.0, 0)
        << "% (paper: ~+37%)\n";
  }
  return out.str();
}

// ------------------------------------------------- Figures 3/4/5

LinkRun run_link_study(const ScenarioScale& scale) {
  LinkRun run;
  sim::FleetRunner world(radio_world_config(scale, deploy::Epoch::kJan2015, deploy::ApModel::kMr16));

  // "Six months ago" differs by the interference level: the foreign-network
  // population was roughly half as dense (Table 7), so collision exposure
  // scales accordingly. Geometry and budgets are the same physical links.
  const auto params_now = deploy::neighbor_params(deploy::Epoch::kJan2015);
  const auto params_before = deploy::neighbor_params(deploy::Epoch::kJul2014);
  const double util_scale_before = params_before.mean_24 / params_now.mean_24;

  for (auto& link : world.mesh_links()) {
    auto& receiver = *world.find_ap(link.to());
    const double util =
        sim::serving_utilization(receiver, link.band(), /*hour=*/14.0);

    sim::ProbeOutcomeModel before_model;
    before_model.receiver_utilization = util * util_scale_before;
    before_model.hidden_fraction = sim::ProbeOutcomeModel::default_hidden_fraction(link.band());
    const auto before = link.measure_window(before_model);

    sim::ProbeOutcomeModel now_model;
    now_model.receiver_utilization = util;
    now_model.hidden_fraction = before_model.hidden_fraction;
    const auto now = link.measure_window(now_model);

    // The paper plots links that reported in BOTH periods (alive links).
    if (before.received == 0 && now.received == 0) continue;
    if (link.band() == phy::Band::k5GHz) {
      run.ratios_5_before.push_back(before.ratio());
      run.ratios_5_now.push_back(now.ratio());
    } else {
      run.ratios_24_before.push_back(before.ratio());
      run.ratios_24_now.push_back(now.ratio());
    }
  }

  // Figures 4/5: week-long series for two intermediate links per band.
  auto pick_series = [&](phy::Band band, std::vector<LinkRun::Series>& out) {
    std::size_t found = 0;
    for (std::size_t i = 0; i < world.mesh_links().size() && found < 2; ++i) {
      auto& link = world.mesh_links()[i];
      if (link.band() != band) continue;
      // Prefer links in the interesting (intermediate) regime.
      sim::ProbeOutcomeModel probe_model;
      probe_model.receiver_utilization = 0.2;
      const double p = link.delivery_probability(probe_model);
      if (p < 0.25 || p > 0.85) continue;
      const auto series = world.link_week_series(i, Duration::minutes(30));
      LinkRun::Series s;
      for (const auto& pt : series) {
        s.hours.push_back(pt.hour_of_week);
        s.ratios.push_back(pt.ratio);
      }
      out.push_back(std::move(s));
      ++found;
    }
    // Fall back to any link of the band if nothing intermediate exists.
    for (std::size_t i = 0; i < world.mesh_links().size() && found < 2; ++i) {
      auto& link = world.mesh_links()[i];
      if (link.band() != band) continue;
      const auto series = world.link_week_series(i, Duration::minutes(30));
      LinkRun::Series s;
      for (const auto& pt : series) {
        s.hours.push_back(pt.hour_of_week);
        s.ratios.push_back(pt.ratio);
      }
      out.push_back(std::move(s));
      ++found;
    }
  };
  pick_series(phy::Band::k2_4GHz, run.series_24);
  pick_series(phy::Band::k5GHz, run.series_5);
  return run;
}

std::string render_fig3(const LinkRun& run) {
  std::vector<Series> series;
  series.push_back(Series{"2.4 now", cdf_curve(run.ratios_24_now)});
  series.push_back(Series{"2.4 6mo ago", cdf_curve(run.ratios_24_before)});
  series.push_back(Series{"5 now", cdf_curve(run.ratios_5_now)});
  series.push_back(Series{"5 6mo ago", cdf_curve(run.ratios_5_before)});
  ChartOptions opt;
  opt.title = "Figure 3: link delivery ratio CDFs";
  opt.x_label = "delivery ratio";
  opt.y_label = "P(X <= x)";
  opt.fix_x = true;
  opt.x_max = 1.0;
  opt.fix_y = true;
  opt.y_max = 1.0;
  std::ostringstream out;
  out << render_line_chart(series, opt);

  auto perfect_frac = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    return static_cast<double>(std::count_if(v.begin(), v.end(),
                                             [](double r) { return r >= 0.99; })) /
           static_cast<double>(v.size());
  };
  auto intermediate_frac = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    return static_cast<double>(std::count_if(
               v.begin(), v.end(), [](double r) { return r > 0.05 && r < 0.95; })) /
           static_cast<double>(v.size());
  };
  out << with_commas(static_cast<long long>(run.ratios_24_now.size())) << " 2.4 GHz links, "
      << with_commas(static_cast<long long>(run.ratios_5_now.size())) << " 5 GHz links\n";
  out << "2.4 GHz intermediate links now: " << pct(intermediate_frac(run.ratios_24_now))
      << " (paper: majority);  5 GHz perfect links now: " << pct(perfect_frac(run.ratios_5_now))
      << " (paper: over half)\n";
  out << "2.4 GHz median delivery now vs 6mo ago: "
      << fixed(quantile(run.ratios_24_now, 0.5), 2) << " vs "
      << fixed(quantile(run.ratios_24_before, 0.5), 2) << " (paper: degraded over 6 months)\n";
  return out.str();
}

namespace {

std::string render_link_series(const std::vector<LinkRun::Series>& list, const char* title) {
  std::vector<Series> series;
  for (std::size_t i = 0; i < list.size(); ++i) {
    Series s;
    s.label = "link " + std::to_string(i + 1);
    for (std::size_t k = 0; k < list[i].hours.size(); ++k) {
      s.points.emplace_back(list[i].hours[k], list[i].ratios[k]);
    }
    series.push_back(std::move(s));
  }
  ChartOptions opt;
  opt.title = title;
  opt.x_label = "hour of week";
  opt.y_label = "delivery ratio";
  opt.fix_y = true;
  opt.y_max = 1.0;
  return render_line_chart(series, opt);
}

}  // namespace

std::string render_fig4(const LinkRun& run) {
  return render_link_series(run.series_24,
                            "Figure 4: 2.4 GHz delivery ratio over one week (two links)");
}

std::string render_fig5(const LinkRun& run) {
  return render_link_series(run.series_5,
                            "Figure 5: 5 GHz delivery ratio over one week (two links)");
}

// ------------------------------------------ Figures 6/7/8/9/10

UtilizationRun run_utilization_study(const ScenarioScale& scale) {
  UtilizationRun run;

  // --- MR16: serving-channel counters (Figure 6). ---
  {
    sim::FleetRunner world(radio_world_config(scale, deploy::Epoch::kJan2015, deploy::ApModel::kMr16));
    world.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
    world.harvest();
    world.reports().for_each([&](const wire::ApReport& report) {
      for (const auto& u : report.utilization) {
        if (u.cycle_us == 0) continue;
        const double util = static_cast<double>(u.busy_us) / static_cast<double>(u.cycle_us);
        (u.band == 0 ? run.mr16_util_24 : run.mr16_util_5).push_back(util);
      }
    });
  }

  // --- MR18: all-channel scan windows, day and night (Figures 7-10). ---
  {
    sim::FleetRunner world(radio_world_config(scale, deploy::Epoch::kJan2015, deploy::ApModel::kMr18));
    const SimTime day = SimTime::epoch() + Duration::hours(10);
    const SimTime night = SimTime::epoch() + Duration::hours(22);
    world.run_mr18_scan(day, 10.0);
    world.run_mr18_scan(night, 22.0);
    world.harvest();

    world.reports().for_each([&](const wire::ApReport& report) {
      const bool is_day = report.timestamp_us < night.as_micros();
      // Neighbor counts per (band, channel) within this report.
      std::map<std::pair<int, int>, int> neighbors_on;
      for (const auto& n : report.neighbors) {
        if (!n.is_same_fleet) ++neighbors_on[{n.band, n.channel}];
      }
      // Figure 10 is a per-AP quantity: the share of this AP's total busy
      // airtime (summed over a band's channels) with decodable headers —
      // a single transmission's energy leaks into adjacent scanned channels
      // where it can never decode, so per-channel ratios would undercount.
      std::uint64_t busy_sum[2] = {0, 0};
      std::uint64_t frame_sum[2] = {0, 0};
      for (const auto& u : report.utilization) {
        if (u.cycle_us == 0) continue;
        const double util = static_cast<double>(u.busy_us) / static_cast<double>(u.cycle_us);
        const int count = neighbors_on[{u.band, u.channel}];
        const std::size_t b = u.band == 0 ? 0 : 1;
        if (is_day) {
          if (u.band == 0) {
            run.scatter_util_24.push_back(util);
            run.scatter_count_24.push_back(static_cast<double>(count));
            run.day_24.push_back(util);
          } else {
            run.scatter_util_5.push_back(util);
            run.scatter_count_5.push_back(static_cast<double>(count));
            run.day_5.push_back(util);
          }
          busy_sum[b] += u.busy_us;
          frame_sum[b] += u.rx_frame_us;
        } else {
          (u.band == 0 ? run.night_24 : run.night_5).push_back(util);
        }
      }
      if (is_day) {
        if (busy_sum[0] > 0) {
          run.decodable_24.push_back(static_cast<double>(frame_sum[0]) /
                                     static_cast<double>(busy_sum[0]));
        }
        if (busy_sum[1] > 0) {
          run.decodable_5.push_back(static_cast<double>(frame_sum[1]) /
                                    static_cast<double>(busy_sum[1]));
        }
      }
    });
    run.correlation_24 = pearson_correlation(run.scatter_count_24, run.scatter_util_24);
    run.correlation_5 = pearson_correlation(run.scatter_count_5, run.scatter_util_5);
  }
  return run;
}

std::string render_fig6(const UtilizationRun& run) {
  std::vector<Series> series;
  series.push_back(Series{"2.4 GHz", cdf_curve(run.mr16_util_24)});
  series.push_back(Series{"5 GHz", cdf_curve(run.mr16_util_5)});
  ChartOptions opt;
  opt.title = "Figure 6: channel utilization CDF (MR16 serving channels)";
  opt.x_label = "utilization";
  opt.y_label = "P(X <= x)";
  opt.fix_x = true;
  opt.x_max = 1.0;
  opt.fix_y = true;
  opt.y_max = 1.0;
  std::ostringstream out;
  out << render_line_chart(series, opt);
  out << "2.4 GHz: " << percentile_summary(run.mr16_util_24, true)
      << "  (paper: median 25%, p90 50%)\n";
  out << "5 GHz:   " << percentile_summary(run.mr16_util_5, true)
      << "  (paper: median 5%, p90 30%)\n";
  return out.str();
}

namespace {

std::string render_scatter_fig(const std::vector<double>& counts,
                               const std::vector<double>& utils, double correlation,
                               const char* title) {
  Series s;
  for (std::size_t i = 0; i < counts.size(); ++i) s.points.emplace_back(counts[i], utils[i]);
  ChartOptions opt;
  opt.title = title;
  opt.x_label = "nearby APs on channel";
  opt.y_label = "utilization";
  opt.fix_y = true;
  opt.y_max = 1.0;
  std::ostringstream out;
  out << render_scatter(s, opt);
  out << "Pearson correlation: " << fixed(correlation, 3)
      << " (paper: no clear correlation)\n";
  return out.str();
}

}  // namespace

std::string render_fig7(const UtilizationRun& run) {
  return render_scatter_fig(run.scatter_count_24, run.scatter_util_24, run.correlation_24,
                            "Figure 7: utilization vs nearby APs, 2.4 GHz (MR18 scans)");
}

std::string render_fig8(const UtilizationRun& run) {
  return render_scatter_fig(run.scatter_count_5, run.scatter_util_5, run.correlation_5,
                            "Figure 8: utilization vs nearby APs, 5 GHz (MR18 scans)");
}

std::string render_fig9(const UtilizationRun& run) {
  std::vector<Series> series;
  series.push_back(Series{"2.4 day", cdf_curve(run.day_24)});
  series.push_back(Series{"2.4 night", cdf_curve(run.night_24)});
  series.push_back(Series{"5 day", cdf_curve(run.day_5)});
  series.push_back(Series{"5 night", cdf_curve(run.night_5)});
  ChartOptions opt;
  opt.title = "Figure 9: channel utilization day (10am) vs night (10pm), MR18 all channels";
  opt.x_label = "utilization";
  opt.y_label = "P(X <= x)";
  opt.fix_x = true;
  opt.x_max = 1.0;
  opt.fix_y = true;
  opt.y_max = 1.0;
  std::ostringstream out;
  out << render_line_chart(series, opt);
  out << "2.4 GHz median day vs night: " << fixed(quantile(run.day_24, 0.5) * 100, 1) << "% vs "
      << fixed(quantile(run.night_24, 0.5) * 100, 1)
      << "% (paper: ~5 points higher by day); 5 GHz: "
      << fixed(quantile(run.day_5, 0.5) * 100, 1) << "% vs "
      << fixed(quantile(run.night_5, 0.5) * 100, 1) << "% (paper: similar, mass near zero)\n";
  return out.str();
}

std::string render_fig10(const UtilizationRun& run) {
  std::vector<Series> series;
  series.push_back(Series{"2.4 GHz", cdf_curve(run.decodable_24)});
  series.push_back(Series{"5 GHz", cdf_curve(run.decodable_5)});
  ChartOptions opt;
  opt.title = "Figure 10: fraction of busy time with decodable 802.11 headers";
  opt.x_label = "decodable fraction";
  opt.y_label = "P(X <= x)";
  opt.fix_x = true;
  opt.x_max = 1.0;
  opt.fix_y = true;
  opt.y_max = 1.0;
  std::ostringstream out;
  out << render_line_chart(series, opt);
  out << "2.4 GHz: " << percentile_summary(run.decodable_24, true)
      << "; 5 GHz: " << percentile_summary(run.decodable_5, true)
      << " (paper: majority of utilization is decodable 802.11)\n";
  return out.str();
}

}  // namespace wlm::analysis
