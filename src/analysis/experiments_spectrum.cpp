#include <sstream>

#include "analysis/experiments.hpp"
#include "core/chart.hpp"
#include "core/table.hpp"
#include "scan/spectral.hpp"

namespace wlm::analysis {

SpectrumRun run_spectrum_study(std::uint64_t seed) {
  SpectrumRun run;
  scan::SpectrumConfig config;  // 32 MHz span, 4096-point FFT, as the paper's B200

  Rng rng24(seed);
  const auto wf24 = scan::capture_spectrum(config, scan::figure11_scene_2_4ghz(), rng24);
  Rng rng5(seed + 1);
  const auto wf5 = scan::capture_spectrum(config, scan::figure11_scene_5ghz(), rng5);

  run.avg_24_db = wf24.average_db;
  run.avg_5_db = wf5.average_db;
  run.occupancy_24 = scan::occupied_fraction(wf24, config.noise_floor_db);
  run.occupancy_5 = scan::occupied_fraction(wf5, config.noise_floor_db);
  // Render every 4th row as a waterfall strip.
  for (std::size_t r = 0; r < wf24.rows_db.size(); r += 4) {
    run.waterfall_24.push_back(
        render_psd(wf24.rows_db[r], config.noise_floor_db - 15.0, config.noise_floor_db + 25.0));
  }
  for (std::size_t r = 0; r < wf5.rows_db.size(); r += 4) {
    run.waterfall_5.push_back(
        render_psd(wf5.rows_db[r], config.noise_floor_db - 15.0, config.noise_floor_db + 25.0));
  }
  return run;
}

std::string render_fig11(const SpectrumRun& run) {
  std::ostringstream out;
  out << "Figure 11: synthetic USRP B200 capture, 32 MHz span, 4096-point FFT\n\n";
  out << "2.437 GHz (channel 6) - 20 MHz 802.11 bursts + 1 MHz Bluetooth hops + "
         "narrowband sources:\n";
  out << "  " << std::string(20, ' ') << "2421 MHz" << std::string(40, ' ') << "2453 MHz\n";
  for (const auto& row : run.waterfall_24) out << "  t| " << row << "\n";
  out << "  avg spectrum: " << render_psd(run.avg_24_db, -115.0, -75.0) << "\n";
  out << "  occupied bins (>6 dB above floor): " << pct(run.occupancy_24)
      << " (paper: ~22% band utilization)\n\n";

  out << "5.220 GHz (channel 44) - 20/40 MHz 802.11 with frequency-selective fading:\n";
  for (const auto& row : run.waterfall_5) out << "  t| " << row << "\n";
  out << "  avg spectrum: " << render_psd(run.avg_5_db, -115.0, -75.0) << "\n";
  out << "  occupied bins: " << pct(run.occupancy_5) << " (paper: ~2% band utilization)\n";
  return out.str();
}

}  // namespace wlm::analysis
