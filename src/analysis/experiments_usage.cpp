#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/experiments.hpp"
#include "classify/apps.hpp"
#include "core/chart.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "deploy/capabilities.hpp"
#include "deploy/industry.hpp"
#include "deploy/population.hpp"
#include "phy/propagation.hpp"
#include "sim/fleet_runner.hpp"

namespace wlm::analysis {

namespace {

sim::WorldConfig make_world_config(const ScenarioScale& scale, deploy::Epoch epoch,
                                   deploy::ApModel model) {
  sim::WorldConfig cfg;
  cfg.fleet.epoch = epoch;
  cfg.fleet.network_count = scale.networks;
  cfg.fleet.model = model;
  cfg.fleet.seed = scale.seed ^ (static_cast<std::uint64_t>(epoch) << 32);
  cfg.client_scale = scale.client_scale;
  cfg.seed = scale.seed * 1315423911ULL + static_cast<std::uint64_t>(epoch);
  cfg.threads = scale.threads;
  cfg.classifier = scale.classifier;
  cfg.per_mode = scale.per_mode;
  cfg.mem_ceiling_mb = scale.mem_ceiling_mb;
  cfg.spill_dir = scale.spill_dir;
  return cfg;
}

}  // namespace

int paper_network_count() { return deploy::total_network_count(); }

std::string percentile_summary(const std::vector<double>& values, bool as_percent) {
  EmpiricalCdf cdf{std::vector<double>(values)};
  const double k = as_percent ? 100.0 : 1.0;
  std::ostringstream out;
  out << "p10=" << fixed(cdf.quantile(0.1) * k, 1) << " p50=" << fixed(cdf.quantile(0.5) * k, 1)
      << " p90=" << fixed(cdf.quantile(0.9) * k, 1);
  if (as_percent) out << " (%)";
  return out.str();
}

// ------------------------------------------------------------- Table 2

std::string render_table2(const ScenarioScale& scale) {
  // Sample the generator's industry mix and compare against Table 2.
  Rng rng(scale.seed);
  std::vector<int> counts(static_cast<std::size_t>(deploy::kIndustryCount), 0);
  const int samples = std::max(20'000, scale.networks);
  for (int i = 0; i < samples; ++i) {
    ++counts[static_cast<std::size_t>(deploy::sample_industry(rng))];
  }
  const auto paper = deploy::industry_network_counts();
  const double paper_total = static_cast<double>(deploy::total_network_count());

  TextTable table({"Industry", "paper #", "paper %", "generated %"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (int i = 0; i < deploy::kIndustryCount; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    table.add_row({std::string(deploy::industry_name(static_cast<deploy::Industry>(i))),
                   with_commas(paper[idx]), pct(paper[idx] / paper_total),
                   pct(static_cast<double>(counts[idx]) / samples)});
  }
  std::ostringstream out;
  out << "Table 2: network deployment types (generator mix vs paper)\n" << table.render();
  out << "paper total networks: " << with_commas(deploy::total_network_count()) << "\n";
  return out.str();
}

// ------------------------------------------------------ Tables 3/5/6

UsageRun run_usage_study(const ScenarioScale& scale) {
  UsageRun run;
  for (const deploy::Epoch epoch : {deploy::Epoch::kJan2015, deploy::Epoch::kJan2014}) {
    sim::FleetRunner world(make_world_config(scale, epoch, deploy::ApModel::kMr16));
    world.run_usage_week(/*reports_per_week=*/7);
    world.harvest();

    auto& agg = epoch == deploy::Epoch::kJan2015 ? run.agg_2015 : run.agg_2014;
    agg.consume(world.reports(), SimTime::epoch(), SimTime::epoch() + Duration::days(8));

    const double sim_clients = std::max<std::size_t>(agg.client_count(), 1);
    const double paper_clients = deploy::total_clients(epoch);
    if (epoch == deploy::Epoch::kJan2015) {
      run.upscale_2015 = paper_clients / sim_clients;
      run.flows_classified = world.flows_classified();
      run.flows_misclassified = world.flows_misclassified();
      run.mean_report_bytes_per_ap = world.mean_report_bytes_per_ap();
      run.report_kbit_per_s = run.mean_report_bytes_per_ap * 8.0 / (7.0 * 24 * 3600) / 1000.0;
    } else {
      run.upscale_2014 = paper_clients / sim_clients;
    }
  }
  return run;
}

namespace {

struct OsMeasured {
  double tb = 0.0;
  double down_frac = 0.0;
  std::uint64_t clients = 0;
  double mb_per_client = 0.0;
};

std::vector<OsMeasured> measure_by_os(const backend::UsageAggregator& agg, double upscale) {
  std::vector<OsMeasured> out(static_cast<std::size_t>(classify::kOsTypeCount));
  const auto rollups = agg.by_os();
  for (int i = 0; i < classify::kOsTypeCount; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const auto& r = rollups[idx];
    auto& m = out[idx];
    const double total = static_cast<double>(r.up + r.down) * upscale;
    m.tb = total / 1e12;
    m.down_frac = (r.up + r.down) > 0
                      ? static_cast<double>(r.down) / static_cast<double>(r.up + r.down)
                      : 0.0;
    m.clients = static_cast<std::uint64_t>(static_cast<double>(r.clients) * upscale);
    m.mb_per_client =
        r.clients > 0 ? total / (static_cast<double>(r.clients) * upscale) / 1e6 : 0.0;
  }
  return out;
}

}  // namespace

std::string render_table3(const UsageRun& run) {
  const auto now = measure_by_os(run.agg_2015, run.upscale_2015);
  const auto before = measure_by_os(run.agg_2014, run.upscale_2014);

  // Order rows by 2015 usage, as the paper does.
  std::vector<int> order;
  for (int i = 0; i < classify::kOsTypeCount; ++i) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return now[static_cast<std::size_t>(a)].tb > now[static_cast<std::size_t>(b)].tb;
  });

  TextTable table({"OS", "TB (%tot/%down)", "% inc", "# clients", "% inc", "MB/client", "% inc"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  double total_tb = 0.0;
  double total_tb_before = 0.0;
  std::uint64_t total_clients = 0;
  for (const auto& m : now) total_tb += m.tb;
  for (const auto& m : before) total_tb_before += m.tb;
  for (const auto& m : now) total_clients += m.clients;

  for (int i : order) {
    const auto idx = static_cast<std::size_t>(i);
    const auto& m = now[idx];
    const auto& b = before[idx];
    if (m.clients == 0) continue;
    std::ostringstream tb_cell;
    tb_cell << fixed(m.tb, m.tb >= 10 ? 0 : 1) << " (" << pct(m.tb / std::max(total_tb, 1e-9))
            << "/" << pct(m.down_frac) << ")";
    table.add_row({std::string(classify::os_name(static_cast<classify::OsType>(i))),
                   tb_cell.str(), percent_increase(b.tb, m.tb),
                   with_commas(static_cast<long long>(m.clients)),
                   percent_increase(static_cast<double>(b.clients), static_cast<double>(m.clients)),
                   fixed(m.mb_per_client, 0), percent_increase(b.mb_per_client, m.mb_per_client)});
  }
  std::ostringstream out;
  out << "Table 3: usage by operating system (measured, scaled to paper client counts)\n"
      << table.render();
  out << "All: " << fixed(total_tb, 0) << " TB across "
      << with_commas(static_cast<long long>(total_clients))
      << " clients; total growth " << percent_increase(total_tb_before, total_tb)
      << " (paper: 1,950 TB, 5,578,126 clients, +62% usage, +37% clients)\n";
  return out.str();
}

namespace {

struct AppMeasured {
  classify::AppId app = classify::AppId::kUnclassified;
  double tb = 0.0;
  double down_frac = 0.0;
  std::uint64_t clients = 0;
};

std::vector<AppMeasured> measure_by_app(const backend::UsageAggregator& agg, double upscale) {
  std::vector<AppMeasured> out;
  for (const auto& [app, r] : agg.by_app()) {
    AppMeasured m;
    m.app = app;
    const double total = static_cast<double>(r.up + r.down) * upscale;
    m.tb = total / 1e12;
    m.down_frac = (r.up + r.down) > 0
                      ? static_cast<double>(r.down) / static_cast<double>(r.up + r.down)
                      : 0.0;
    m.clients = static_cast<std::uint64_t>(static_cast<double>(r.clients) * upscale);
    out.push_back(m);
  }
  std::sort(out.begin(), out.end(),
            [](const AppMeasured& a, const AppMeasured& b) { return a.tb > b.tb; });
  return out;
}

}  // namespace

std::string render_table5(const UsageRun& run, std::size_t top_n) {
  const auto now = measure_by_app(run.agg_2015, run.upscale_2015);
  const auto before = measure_by_app(run.agg_2014, run.upscale_2014);
  double total_tb = 0.0;
  for (const auto& m : now) total_tb += m.tb;

  auto find_before = [&](classify::AppId app) -> const AppMeasured* {
    for (const auto& m : before) {
      if (m.app == app) return &m;
    }
    return nullptr;
  };

  TextTable table({"Application", "Category", "TB (%tot/%down)", "% inc", "# clients",
                   "MB/client", "paper TB"},
                  {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  std::size_t rows = 0;
  for (const auto& m : now) {
    if (rows++ >= top_n) break;
    const auto& info = classify::app_info(m.app);
    const auto* b = find_before(m.app);
    std::ostringstream tb_cell;
    tb_cell << fixed(m.tb, m.tb >= 10 ? 0 : 1) << " (" << pct(m.tb / std::max(total_tb, 1e-9))
            << "/" << pct(m.down_frac) << ")";
    const double mb = m.clients > 0 ? m.tb * 1e6 / static_cast<double>(m.clients) : 0.0;
    table.add_row({std::string(info.name), std::string(classify::category_name(info.category)),
                   tb_cell.str(), b != nullptr ? percent_increase(b->tb, m.tb) : "n/a",
                   with_commas(static_cast<long long>(m.clients)), fixed(mb, mb < 10 ? 1 : 0),
                   fixed(info.y2015.terabytes, 1)});
  }
  std::ostringstream out;
  out << "Table 5: top applications by usage (measured vs paper targets)\n" << table.render();
  out << "total: " << fixed(total_tb, 0) << " TB (paper: 1,950 TB)\n";
  return out.str();
}

std::string render_table6(const UsageRun& run) {
  const auto now = run.agg_2015.by_category();
  const auto before = run.agg_2014.by_category();
  double total_tb = 0.0;
  for (const auto& r : now) total_tb += static_cast<double>(r.up + r.down) * run.upscale_2015 / 1e12;

  std::vector<int> order;
  for (int c = 0; c < classify::kCategoryCount; ++c) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ra = now[static_cast<std::size_t>(a)];
    const auto& rb = now[static_cast<std::size_t>(b)];
    return ra.up + ra.down > rb.up + rb.down;
  });

  TextTable table({"Category", "TB (%tot/%down)", "% inc", "# clients", "MB/client"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (int c : order) {
    const auto idx = static_cast<std::size_t>(c);
    const auto& r = now[idx];
    const auto& b = before[idx];
    if (r.clients == 0) continue;
    const double tb = static_cast<double>(r.up + r.down) * run.upscale_2015 / 1e12;
    const double tb_before = static_cast<double>(b.up + b.down) * run.upscale_2014 / 1e12;
    const double down =
        (r.up + r.down) > 0 ? static_cast<double>(r.down) / static_cast<double>(r.up + r.down)
                            : 0.0;
    const double clients = static_cast<double>(r.clients) * run.upscale_2015;
    std::ostringstream tb_cell;
    tb_cell << fixed(tb, tb >= 10 ? 0 : 2) << " (" << pct(tb / std::max(total_tb, 1e-9)) << "/"
            << pct(down) << ")";
    table.add_row({std::string(classify::category_name(static_cast<classify::Category>(c))),
                   tb_cell.str(), percent_increase(tb_before, tb),
                   with_commas(static_cast<long long>(clients)),
                   fixed(tb * 1e6 / std::max(clients, 1.0), 0)});
  }
  std::ostringstream out;
  out << "Table 6: usage by application category (paper: video 34% @97% down; file sharing "
         "8.4%; online backup 4.2% down; overall ~4.6x more down than up)\n"
      << table.render();
  return out.str();
}

std::string render_wire_overhead(const UsageRun& run) {
  std::ostringstream out;
  out << "Telemetry overhead (paper SS2: 'a typical access point averages around 1 kilobit "
         "per second')\n";
  out << "  usage-only report bytes per AP per week: "
      << Bytes{static_cast<std::int64_t>(run.mean_report_bytes_per_ap)}.human() << "\n";
  out << "  flows classified: " << with_commas(static_cast<long long>(run.flows_classified))
      << ", misclassified vs generator truth: "
      << pct(static_cast<double>(run.flows_misclassified) /
             std::max<double>(1.0, static_cast<double>(run.flows_classified)))
      << "\n";
  return out.str();
}

WireOverheadRun run_wire_overhead_study(const ScenarioScale& scale) {
  // A realistic reporting week: 7 usage reports plus interference/neighbor
  // telemetry every 20 minutes (504 reports), which dominates the byte
  // budget exactly as in the production system.
  sim::FleetRunner world(make_world_config(scale, deploy::Epoch::kJan2015, deploy::ApModel::kMr16));
  world.run_usage_week(7);
  // One simulated day of periodic radio reports, scaled to the week.
  constexpr int kReportsPerDay = 72;  // every 20 minutes
  for (int i = 0; i < kReportsPerDay; ++i) {
    world.run_mr16_interference(SimTime::epoch() + Duration::minutes(20 * i));
  }
  world.run_link_windows(SimTime::epoch() + Duration::hours(12));
  world.harvest();

  WireOverheadRun run;
  double usage_and_day = world.mean_report_bytes_per_ap();
  // Separate the one-day radio portion to scale it to 7 days: usage reports
  // are a small constant, so approximate by scaling everything but keeping
  // the measured mix (radio reports dominate at this cadence).
  run.bytes_per_ap_week = usage_and_day / (kReportsPerDay + 8) * (7 * kReportsPerDay + 8);
  run.kbit_per_s = run.bytes_per_ap_week * 8.0 / (7.0 * 24 * 3600) / 1000.0;
  run.reports_per_ap = 7.0 * kReportsPerDay + 8.0;
  return run;
}

std::string render_wire_overhead_full(const WireOverheadRun& run) {
  std::ostringstream out;
  out << "Full-cadence telemetry overhead (paper SS2: 'around 1 kilobit per second')\n";
  out << "  reports per AP per week: " << fixed(run.reports_per_ap, 0)
      << " (usage daily + radio stats every 20 min + link windows)\n";
  out << "  framed bytes per AP per week: "
      << Bytes{static_cast<std::int64_t>(run.bytes_per_ap_week)}.human() << "\n";
  out << "  sustained rate: " << fixed(run.kbit_per_s, 3)
      << " kbit/s (paper budget: ~1 kbit/s)\n";
  return out.str();
}

// ------------------------------------------------- Table 4 / Figure 1

SnapshotRun run_snapshot_study(const ScenarioScale& scale) {
  SnapshotRun run;
  run.caps_2014.resize(8, 0.0);
  run.caps_2015.resize(8, 0.0);
  for (const deploy::Epoch epoch : {deploy::Epoch::kJan2014, deploy::Epoch::kJan2015}) {
    sim::FleetRunner world(make_world_config(scale, epoch, deploy::ApModel::kMr16));
    world.snapshot_clients(SimTime::epoch() + Duration::hours(20));  // "one evening"
    world.harvest();

    std::vector<double>& caps =
        epoch == deploy::Epoch::kJan2015 ? run.caps_2015 : run.caps_2014;
    std::size_t count = 0;
    const double noise = phy::noise_floor(20.0).dbm();
    world.reports().for_each([&](const wire::ApReport& report) {
      for (const auto& snap : report.clients) {
        ++count;
        const std::uint32_t bits = snap.capability_bits;
        const deploy::CapabilityBit flags[] = {
            deploy::kCap11g,  deploy::kCap11n,        deploy::kCap5GHz,
            deploy::kCap40MHz, deploy::kCap11ac,       deploy::kCapTwoStreams,
            deploy::kCapThreeStreams, deploy::kCapFourStreams};
        for (std::size_t i = 0; i < 8; ++i) {
          if ((bits & flags[i]) != 0) caps[i] += 1.0;
        }
        if (epoch == deploy::Epoch::kJan2015) {
          const double snr = snap.rssi_dbm - noise;
          if (snap.band == 1) {
            run.snr_5.push_back(snr);
          } else {
            run.snr_24.push_back(snr);
          }
        }
      }
    });
    for (auto& c : caps) c /= std::max<double>(1.0, static_cast<double>(count));
  }
  run.clients_24 = run.snr_24.size();
  run.clients_5 = run.snr_5.size();
  return run;
}

std::string render_table4(const SnapshotRun& run) {
  static const char* kRowNames[] = {"802.11g", "802.11n", "5 GHz", "40 MHz channels",
                                    "802.11ac", "Two streams", "Three streams", "Four streams"};
  const deploy::CapabilityTargets t14 = deploy::capability_targets(deploy::Epoch::kJan2014);
  const deploy::CapabilityTargets t15 = deploy::capability_targets(deploy::Epoch::kJan2015);
  const double paper14[] = {t14.p_11g, t14.p_11n, t14.p_5ghz, t14.p_40mhz,
                            t14.p_11ac, t14.p_two_streams, t14.p_three_streams,
                            t14.p_four_streams};
  const double paper15[] = {t15.p_11g, t15.p_11n, t15.p_5ghz, t15.p_40mhz,
                            t15.p_11ac, t15.p_two_streams, t15.p_three_streams,
                            t15.p_four_streams};
  TextTable table({"Capability", "paper 2014", "meas 2014", "paper 2015", "meas 2015"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t i = 0; i < 8; ++i) {
    table.add_row({kRowNames[i], pct(paper14[i]), pct(run.caps_2014[i]), pct(paper15[i]),
                   pct(run.caps_2015[i])});
  }
  return "Table 4: client capabilities advertised at association\n" + table.render();
}

std::string render_fig1(const SnapshotRun& run) {
  EmpiricalCdf cdf24{std::vector<double>(run.snr_24)};
  EmpiricalCdf cdf5{std::vector<double>(run.snr_5)};
  std::vector<Series> series;
  series.push_back(Series{"2.4 GHz", cdf24.curve(72)});
  series.push_back(Series{"5 GHz", cdf5.curve(72)});
  ChartOptions opt;
  opt.title = "Figure 1: client signal strength (dB above noise floor), CDF";
  opt.x_label = "SNR (dB)";
  opt.y_label = "P(X <= x)";
  opt.fix_y = true;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  std::ostringstream out;
  out << render_line_chart(series, opt);
  const double total = static_cast<double>(run.clients_24 + run.clients_5);
  out << "associated on 2.4 GHz: " << pct(static_cast<double>(run.clients_24) / total)
      << " (paper: ~80%)  |  median SNR 2.4=" << fixed(cdf24.median(), 1)
      << " dB, 5=" << fixed(cdf5.median(), 1) << " dB (paper: ~28 dB both, lower at 5 GHz)\n";
  return out.str();
}

}  // namespace wlm::analysis
