#include "analysis/export.hpp"

#include <cstdio>

#include "classify/apps.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

namespace wlm::analysis {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string CsvDoc::to_string() const {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  }
  return out;
}

namespace {

void add_cdf_rows(CsvDoc& doc, const std::string& label, const std::vector<double>& values) {
  EmpiricalCdf cdf{std::vector<double>(values)};
  for (const auto& [x, p] : cdf.curve(200)) {
    doc.rows.push_back({label, fixed(x, 6), fixed(p, 6)});
  }
}

}  // namespace

CsvDoc export_fig1(const SnapshotRun& run) {
  CsvDoc doc;
  doc.name = "fig1_rssi_cdf";
  doc.rows.push_back({"series", "snr_db", "cdf"});
  add_cdf_rows(doc, "2.4GHz", run.snr_24);
  add_cdf_rows(doc, "5GHz", run.snr_5);
  return doc;
}

CsvDoc export_fig3(const LinkRun& run) {
  CsvDoc doc;
  doc.name = "fig3_delivery_cdf";
  doc.rows.push_back({"series", "delivery_ratio", "cdf"});
  add_cdf_rows(doc, "2.4GHz_now", run.ratios_24_now);
  add_cdf_rows(doc, "2.4GHz_6mo", run.ratios_24_before);
  add_cdf_rows(doc, "5GHz_now", run.ratios_5_now);
  add_cdf_rows(doc, "5GHz_6mo", run.ratios_5_before);
  return doc;
}

CsvDoc export_fig6(const UtilizationRun& run) {
  CsvDoc doc;
  doc.name = "fig6_utilization_cdf";
  doc.rows.push_back({"series", "utilization", "cdf"});
  add_cdf_rows(doc, "2.4GHz", run.mr16_util_24);
  add_cdf_rows(doc, "5GHz", run.mr16_util_5);
  return doc;
}

CsvDoc export_fig78(const UtilizationRun& run) {
  CsvDoc doc;
  doc.name = "fig78_scatter";
  doc.rows.push_back({"band", "nearby_aps", "utilization"});
  for (std::size_t i = 0; i < run.scatter_count_24.size(); ++i) {
    doc.rows.push_back(
        {"2.4GHz", fixed(run.scatter_count_24[i], 0), fixed(run.scatter_util_24[i], 6)});
  }
  for (std::size_t i = 0; i < run.scatter_count_5.size(); ++i) {
    doc.rows.push_back(
        {"5GHz", fixed(run.scatter_count_5[i], 0), fixed(run.scatter_util_5[i], 6)});
  }
  return doc;
}

CsvDoc export_fig9(const UtilizationRun& run) {
  CsvDoc doc;
  doc.name = "fig9_day_night_cdf";
  doc.rows.push_back({"series", "utilization", "cdf"});
  add_cdf_rows(doc, "2.4GHz_day", run.day_24);
  add_cdf_rows(doc, "2.4GHz_night", run.night_24);
  add_cdf_rows(doc, "5GHz_day", run.day_5);
  add_cdf_rows(doc, "5GHz_night", run.night_5);
  return doc;
}

CsvDoc export_fig11(const SpectrumRun& run) {
  CsvDoc doc;
  doc.name = "fig11_spectrum";
  doc.rows.push_back({"scene", "bin", "psd_db"});
  for (std::size_t i = 0; i < run.avg_24_db.size(); ++i) {
    doc.rows.push_back({"2.437GHz", std::to_string(i), fixed(run.avg_24_db[i], 2)});
  }
  for (std::size_t i = 0; i < run.avg_5_db.size(); ++i) {
    doc.rows.push_back({"5.220GHz", std::to_string(i), fixed(run.avg_5_db[i], 2)});
  }
  return doc;
}

CsvDoc export_table7(const NeighborRun& run) {
  CsvDoc doc;
  doc.name = "table7_fig2_neighbors";
  doc.rows.push_back({"band", "channel", "observations"});
  for (const auto& [channel, count] : run.by_channel_24) {
    doc.rows.push_back({"2.4GHz", std::to_string(channel), std::to_string(count)});
  }
  for (const auto& [channel, count] : run.by_channel_5) {
    doc.rows.push_back({"5GHz", std::to_string(channel), std::to_string(count)});
  }
  return doc;
}

CsvDoc export_scorecard_data(const UsageRun& run) {
  CsvDoc doc;
  doc.name = "table5_apps";
  doc.rows.push_back({"app", "category", "tb", "download_frac", "clients"});
  for (const auto& [app, roll] : run.agg_2015.by_app()) {
    const auto& info = classify::app_info(app);
    const double tb =
        static_cast<double>(roll.up + roll.down) * run.upscale_2015 / 1e12;
    const double down =
        (roll.up + roll.down) > 0
            ? static_cast<double>(roll.down) / static_cast<double>(roll.up + roll.down)
            : 0.0;
    doc.rows.push_back({std::string(info.name), std::string(category_name(info.category)),
                        fixed(tb, 3), fixed(down, 4),
                        std::to_string(static_cast<long long>(
                            static_cast<double>(roll.clients) * run.upscale_2015))});
  }
  return doc;
}

bool write_csv(const CsvDoc& doc, const std::string& dir) {
  const std::string path = dir + "/" + doc.name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = doc.to_string();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace wlm::analysis
