// CSV export of experiment data, for plotting outside the terminal
// renderers (gnuplot/matplotlib reproduce the paper's actual figures from
// these series).
#pragma once

#include <string>
#include <vector>

#include "analysis/experiments.hpp"

namespace wlm::analysis {

/// One CSV document: a filename stem plus rows (first row is the header).
struct CsvDoc {
  std::string name;  // e.g. "fig3_delivery_cdf"
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::string to_string() const;
};

/// RFC-4180-style field quoting (commas, quotes, newlines).
[[nodiscard]] std::string csv_escape(const std::string& field);

// Per-experiment exports.
[[nodiscard]] CsvDoc export_fig1(const SnapshotRun& run);
[[nodiscard]] CsvDoc export_fig3(const LinkRun& run);
[[nodiscard]] CsvDoc export_fig6(const UtilizationRun& run);
[[nodiscard]] CsvDoc export_fig78(const UtilizationRun& run);
[[nodiscard]] CsvDoc export_fig9(const UtilizationRun& run);
[[nodiscard]] CsvDoc export_fig11(const SpectrumRun& run);
[[nodiscard]] CsvDoc export_table7(const NeighborRun& run);
[[nodiscard]] CsvDoc export_scorecard_data(const UsageRun& run);

/// Writes a document to `<dir>/<name>.csv`; false on I/O failure.
[[nodiscard]] bool write_csv(const CsvDoc& doc, const std::string& dir);

}  // namespace wlm::analysis
