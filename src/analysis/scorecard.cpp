#include "analysis/scorecard.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/stats.hpp"
#include "core/table.hpp"

namespace wlm::analysis {

std::size_t Scorecard::passed() const {
  return static_cast<std::size_t>(
      std::count_if(checks.begin(), checks.end(), [](const Check& c) { return c.passed; }));
}

namespace {

void check_near(Scorecard& card, const std::string& id, const std::string& claim,
                double expected, double measured, double tolerance) {
  card.checks.push_back(
      Check{id, claim, expected, measured, std::abs(measured - expected) <= tolerance});
}

void check_greater(Scorecard& card, const std::string& id, const std::string& claim,
                   double threshold, double measured) {
  card.checks.push_back(Check{id, claim, threshold, measured, measured > threshold});
}

void check_less(Scorecard& card, const std::string& id, const std::string& claim,
                double threshold, double measured) {
  card.checks.push_back(Check{id, claim, threshold, measured, measured < threshold});
}

double frac_if(const std::vector<double>& v, double lo, double hi) {
  if (v.empty()) return 0.0;
  return static_cast<double>(std::count_if(
             v.begin(), v.end(), [&](double r) { return r > lo && r < hi; })) /
         static_cast<double>(v.size());
}

}  // namespace

Scorecard run_scorecard(const ScenarioScale& scale) {
  Scorecard card;

  {  // Usage (Tables 3/5/6).
    const auto run = run_usage_study(scale);
    double total_tb = 0.0;
    double total_tb_before = 0.0;
    for (const auto& [app, roll] : run.agg_2015.by_app()) {
      total_tb += static_cast<double>(roll.up + roll.down) * run.upscale_2015 / 1e12;
    }
    for (const auto& [app, roll] : run.agg_2014.by_app()) {
      total_tb_before += static_cast<double>(roll.up + roll.down) * run.upscale_2014 / 1e12;
    }
    check_near(card, "table3.total_tb", "total weekly usage ~1950 TB", 1950.0, total_tb,
               400.0);
    check_near(card, "table3.growth", "usage grew ~62% YoY", 0.62,
               total_tb / std::max(total_tb_before, 1.0) - 1.0, 0.25);

    const auto by_os = run.agg_2015.by_os();
    auto os_tb = [&](classify::OsType os) {
      const auto& r = by_os[static_cast<std::size_t>(os)];
      return static_cast<double>(r.up + r.down) * run.upscale_2015 / 1e12;
    };
    check_greater(card, "table3.windows_vs_android", "Windows ≫ Android by bytes",
                  os_tb(classify::OsType::kAndroid), os_tb(classify::OsType::kWindows));
    const auto& ios = by_os[static_cast<std::size_t>(classify::OsType::kAppleIos)];
    const auto& win = by_os[static_cast<std::size_t>(classify::OsType::kWindows)];
    check_greater(card, "table3.ios_clients", "iOS clients ~3x Windows clients",
                  2.0 * static_cast<double>(win.clients), static_cast<double>(ios.clients));

    const auto cats = run.agg_2015.by_category();
    std::uint64_t cat_total = 0;
    for (const auto& c : cats) cat_total += c.up + c.down;
    const auto& video = cats[static_cast<std::size_t>(classify::Category::kVideoMusic)];
    check_near(card, "table6.video_share", "video & music ~34% of bytes", 0.34,
               static_cast<double>(video.up + video.down) /
                   std::max<std::uint64_t>(1, cat_total),
               0.08);
    check_greater(card, "table6.video_down", "video is ~97% download", 0.85,
                  static_cast<double>(video.down) /
                      std::max<std::uint64_t>(1, video.up + video.down));
    const auto& backup = cats[static_cast<std::size_t>(classify::Category::kOnlineBackup)];
    check_less(card, "table6.backup_down", "online backup is upload-dominated", 0.5,
               static_cast<double>(backup.down) /
                   std::max<std::uint64_t>(1, backup.up + backup.down));
    check_less(card, "pipeline.misclassified", "classification matches ground truth", 0.05,
               static_cast<double>(run.flows_misclassified) /
                   std::max<std::uint64_t>(1, run.flows_classified));
  }

  {  // Capabilities + RSSI (Table 4, Figure 1).
    const auto run = run_snapshot_study(scale);
    check_near(card, "table4.ac2015", "18% of clients 11ac-capable (2015)", 0.18,
               run.caps_2015[4], 0.05);
    check_near(card, "table4.5ghz2015", "64.9% of clients 5 GHz-capable (2015)", 0.649,
               run.caps_2015[2], 0.06);
    check_greater(card, "table4.growth", "11ac grew sharply over the year",
                  run.caps_2014[4] * 3.0, run.caps_2015[4]);
    const double total =
        static_cast<double>(run.clients_24 + run.clients_5);
    check_near(card, "fig1.band_split", "~80% of associations on 2.4 GHz", 0.80,
               total > 0 ? static_cast<double>(run.clients_24) / total : 0.0, 0.15);
    check_near(card, "fig1.median_snr", "median client SNR ~28 dB", 28.0,
               quantile(run.snr_24, 0.5), 10.0);
  }

  {  // Neighbors (Table 7, Figure 2).
    const auto run = run_neighbor_study(scale);
    check_near(card, "table7.mean24_now", "55.47 foreign networks per AP (2.4 GHz)",
               55.47, run.now.networks_per_ap_24, 18.0);
    check_greater(card, "table7.growth24", "2.4 GHz neighbors nearly doubled in 6 months",
                  run.six_months.networks_per_ap_24 * 1.5, run.now.networks_per_ap_24);
    check_near(card, "table7.hotspots", "~20% of 2.4 GHz networks are hotspots", 0.20,
               run.now.hotspot_frac_24, 0.05);
    auto count24 = [&](int ch) {
      for (const auto& [c, n] : run.by_channel_24) {
        if (c == ch) return static_cast<double>(n);
      }
      return 0.0;
    };
    check_near(card, "fig2.ch1_lead", "channel 1 ~37% above channels 6/11", 1.37,
               count24(1) / std::max(1.0, (count24(6) + count24(11)) / 2.0), 0.3);
  }

  {  // Links (Figure 3).
    const auto run = run_link_study(scale);
    check_greater(card, "fig3.intermediate24", "majority of 2.4 GHz links intermediate",
                  0.5, frac_if(run.ratios_24_now, 0.05, 0.95));
    check_greater(card, "fig3.perfect5", "over half of 5 GHz links deliver everything",
                  0.4, frac_if(run.ratios_5_now, 0.989, 1.1));
    check_less(card, "fig3.degradation", "2.4 GHz delivery degraded over 6 months",
               quantile(run.ratios_24_before, 0.5) + 1e-9,
               quantile(run.ratios_24_now, 0.5));
  }

  {  // Utilization (Figures 6-10).
    const auto run = run_utilization_study(scale);
    check_near(card, "fig6.median24", "median 2.4 GHz utilization ~25%", 0.25,
               quantile(run.mr16_util_24, 0.5), 0.10);
    check_near(card, "fig6.median5", "median 5 GHz utilization ~5%", 0.05,
               quantile(run.mr16_util_5, 0.5), 0.05);
    check_less(card, "fig78.correlation", "AP count does not predict utilization", 0.7,
               std::abs(run.correlation_24));
    check_near(card, "fig9.day_night", "day ~5 points busier than night (2.4 GHz)", 0.05,
               quantile(run.day_24, 0.5) - quantile(run.night_24, 0.5), 0.05);
    check_greater(card, "fig10.decodable", "majority of busy time decodable 802.11", 0.5,
                  quantile(run.decodable_24, 0.5));
  }

  {  // Spectrum (Figure 11).
    const auto run = run_spectrum_study(scale.seed);
    check_greater(card, "fig11.ordering", "2.4 GHz band far busier than 5 GHz",
                  run.occupancy_5 * 2.0, run.occupancy_24);
  }

  return card;
}

std::string render_scorecard(const Scorecard& card) {
  TextTable table({"check", "claim", "paper", "measured", "verdict"},
                  {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight, Align::kLeft});
  auto sorted = card.checks;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Check& a, const Check& b) { return a.passed < b.passed; });
  for (const auto& c : sorted) {
    table.add_row({c.id, c.claim, fixed(c.expected, 2), fixed(c.measured, 2),
                   c.passed ? "pass" : "FAIL"});
  }
  std::ostringstream out;
  out << "Reproduction scorecard: " << card.passed() << "/" << card.checks.size()
      << " claims hold\n"
      << table.render();
  return out.str();
}

}  // namespace wlm::analysis
