// Reproduction scorecard: every qualitative claim from the paper's
// evaluation, checked mechanically against a fresh simulation run. This is
// EXPERIMENTS.md as code — the claims are the same rows, with explicit
// tolerances, so a regression in any substrate shows up as a failed check
// rather than a silently drifted table.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiments.hpp"

namespace wlm::analysis {

struct Check {
  std::string id;        // "fig6.median24"
  std::string claim;     // the paper's sentence, abbreviated
  double expected = 0.0; // paper value (or threshold)
  double measured = 0.0;
  bool passed = false;
};

struct Scorecard {
  std::vector<Check> checks;

  [[nodiscard]] std::size_t passed() const;
  [[nodiscard]] std::size_t failed() const { return checks.size() - passed(); }
  [[nodiscard]] bool all_passed() const { return passed() == checks.size(); }
};

/// Runs every study at the given scale and evaluates all claims.
[[nodiscard]] Scorecard run_scorecard(const ScenarioScale& scale);

/// Renders the card: one line per check, worst first.
[[nodiscard]] std::string render_scorecard(const Scorecard& card);

}  // namespace wlm::analysis
