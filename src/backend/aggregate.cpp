#include "backend/aggregate.hpp"

namespace wlm::backend {

std::uint64_t ClientAggregate::upstream() const {
  std::uint64_t total = 0;
  for (const auto& [app, bytes] : app_bytes) total += bytes.first;
  return total;
}

std::uint64_t ClientAggregate::downstream() const {
  std::uint64_t total = 0;
  for (const auto& [app, bytes] : app_bytes) total += bytes.second;
  return total;
}

void UsageAggregator::consume(const ReportStore& store, SimTime from, SimTime to) {
  store.for_each_in(from, to, [&](const wire::ApReport& report) {
    const ApId ap{report.ap_id};
    for (const auto& u : report.usage) {
      auto& agg = clients_[u.client];
      agg.mac = u.client;
      auto& bytes = agg.app_bytes[static_cast<classify::AppId>(u.app_id)];
      bytes.first += u.tx_bytes;
      bytes.second += u.rx_bytes;
      seen_on_[u.client][ap] = true;
    }
    for (const auto& snap : report.clients) {
      auto& agg = clients_[snap.client];
      agg.mac = snap.client;
      agg.capability_bits |= snap.capability_bits;
      ++os_votes_[snap.client][snap.os_id];
      seen_on_[snap.client][ap] = true;
    }
  });
  resolve();
}

void UsageAggregator::merge(const UsageAggregator& other) {
  for (const auto& [mac, src] : other.clients_) {
    auto& agg = clients_[mac];
    agg.mac = mac;
    agg.capability_bits |= src.capability_bits;
    for (const auto& [app, bytes] : src.app_bytes) {
      auto& dst = agg.app_bytes[app];
      dst.first += bytes.first;
      dst.second += bytes.second;
    }
  }
  for (const auto& [mac, aps] : other.seen_on_) {
    auto& mine = seen_on_[mac];
    for (const auto& [ap, seen] : aps) mine[ap] = seen;
  }
  for (const auto& [mac, votes] : other.os_votes_) {
    auto& mine = os_votes_[mac];
    for (const auto& [os_id, count] : votes) mine[os_id] += count;
  }
  resolve();
}

void UsageAggregator::resolve() {
  // Per-client OS by majority vote and roaming spread. Vote scan goes over
  // os ids in ascending order (not hash order) so an exact tie resolves
  // identically on every platform and merge order.
  for (auto& [mac, agg] : clients_) {
    const auto votes_it = os_votes_.find(mac);
    if (votes_it != os_votes_.end()) {
      int best = 0;
      for (int os_id = 0; os_id < classify::kOsTypeCount; ++os_id) {
        const auto v = votes_it->second.find(static_cast<std::uint8_t>(os_id));
        if (v != votes_it->second.end() && v->second > best) {
          best = v->second;
          agg.os = static_cast<classify::OsType>(os_id);
        }
      }
    }
    const auto seen_it = seen_on_.find(mac);
    agg.ap_count = seen_it == seen_on_.end() ? 0 : static_cast<int>(seen_it->second.size());
  }
}

std::vector<UsageAggregator::OsRollup> UsageAggregator::by_os() const {
  std::vector<OsRollup> out(static_cast<std::size_t>(classify::kOsTypeCount));
  for (const auto& [mac, agg] : clients_) {
    auto& roll = out[static_cast<std::size_t>(agg.os)];
    roll.up += agg.upstream();
    roll.down += agg.downstream();
    ++roll.clients;
  }
  return out;
}

std::unordered_map<classify::AppId, UsageAggregator::AppRollup> UsageAggregator::by_app() const {
  std::unordered_map<classify::AppId, AppRollup> out;
  for (const auto& [mac, agg] : clients_) {
    for (const auto& [app, bytes] : agg.app_bytes) {
      auto& roll = out[app];
      roll.up += bytes.first;
      roll.down += bytes.second;
      ++roll.clients;
    }
  }
  return out;
}

std::vector<UsageAggregator::AppRollup> UsageAggregator::by_category() const {
  std::vector<AppRollup> out(static_cast<std::size_t>(classify::kCategoryCount));
  // Track distinct clients per category, not the sum of app client counts.
  std::vector<std::unordered_map<std::uint64_t, bool>> seen(
      static_cast<std::size_t>(classify::kCategoryCount));
  for (const auto& [mac, agg] : clients_) {
    for (const auto& [app, bytes] : agg.app_bytes) {
      const auto cat = static_cast<std::size_t>(classify::app_info(app).category);
      out[cat].up += bytes.first;
      out[cat].down += bytes.second;
      seen[cat][mac.to_u64()] = true;
    }
  }
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c].clients = seen[c].size();
  }
  return out;
}

}  // namespace wlm::backend
