#include "backend/aggregate.hpp"

#include <stdexcept>

namespace wlm::backend {

const std::pair<std::uint64_t, std::uint64_t>& AppByteMap::at(classify::AppId app) const {
  for (const auto& e : entries_) {
    if (e.first == app) return e.second;
  }
  throw std::out_of_range("AppByteMap::at: unknown app");
}

std::uint64_t ClientAggregate::upstream() const {
  std::uint64_t total = 0;
  for (const auto& [app, bytes] : app_bytes) total += bytes.first;
  return total;
}

std::uint64_t ClientAggregate::downstream() const {
  std::uint64_t total = 0;
  for (const auto& [app, bytes] : app_bytes) total += bytes.second;
  return total;
}

namespace {

/// Marks `ap` sighted: overwrite the flag if the AP is already recorded,
/// append otherwise (same effect as the old nested map's operator[]).
void mark_seen(std::vector<std::pair<ApId, bool>>& seen, ApId ap, bool flag) {
  for (auto& [existing, f] : seen) {
    if (existing == ap) {
      f = flag;
      return;
    }
  }
  seen.emplace_back(ap, flag);
}

void add_votes(std::vector<std::pair<std::uint8_t, int>>& votes, std::uint8_t os_id, int count) {
  for (auto& [existing, n] : votes) {
    if (existing == os_id) {
      n += count;
      return;
    }
  }
  votes.emplace_back(os_id, count);
}

}  // namespace

void UsageAggregator::consume(const ReportSource& store, SimTime from, SimTime to) {
  store.for_each_in(from, to, [&](const wire::ApReport& report) {
    const ApId ap{report.ap_id};
    // Usage rows for one client arrive consecutively (the AP serializes its
    // flow table client by client), so one client/observation lookup pair is
    // reused across that client's whole run of rows instead of re-hashing
    // the MAC for every row. The sighting is recorded once per run, too —
    // every row in the run repeats the same (client, ap) pair.
    ClientAggregate* agg = nullptr;
    bool have_cached = false;
    MacAddress cached_mac;
    for (const auto& u : report.usage) {
      if (!have_cached || !(u.client == cached_mac)) {
        cached_mac = u.client;
        have_cached = true;
        agg = &clients_[u.client];
        agg->mac = u.client;
        mark_seen(agg->obs.seen, ap, true);
      }
      auto& bytes = agg->app_bytes[static_cast<classify::AppId>(u.app_id)];
      bytes.first += u.tx_bytes;
      bytes.second += u.rx_bytes;
    }
    for (const auto& snap : report.clients) {
      auto& agg2 = clients_[snap.client];
      agg2.mac = snap.client;
      agg2.capability_bits |= snap.capability_bits;
      add_votes(agg2.obs.votes, snap.os_id, 1);
      mark_seen(agg2.obs.seen, ap, true);
    }
  });
  resolve();
}

void UsageAggregator::merge(const UsageAggregator& other) {
  for (const auto& [mac, src] : other.clients_) {
    auto& agg = clients_[mac];
    agg.mac = mac;
    agg.capability_bits |= src.capability_bits;
    for (const auto& [app, bytes] : src.app_bytes) {
      auto& dst = agg.app_bytes[app];
      dst.first += bytes.first;
      dst.second += bytes.second;
    }
    for (const auto& [ap, flag] : src.obs.seen) mark_seen(agg.obs.seen, ap, flag);
    for (const auto& [os_id, count] : src.obs.votes) add_votes(agg.obs.votes, os_id, count);
  }
  resolve();
}

void UsageAggregator::resolve() {
  // Per-client OS by majority vote and roaming spread. Vote scan goes over
  // os ids in ascending order (not observation order) so an exact tie
  // resolves identically on every platform and merge order.
  for (auto& [mac, agg] : clients_) {
    int best = 0;
    for (int os_id = 0; os_id < classify::kOsTypeCount; ++os_id) {
      for (const auto& [id, count] : agg.obs.votes) {
        if (id == os_id && count > best) {
          best = count;
          agg.os = static_cast<classify::OsType>(os_id);
        }
      }
    }
    agg.ap_count = static_cast<int>(agg.obs.seen.size());
  }
}

std::vector<UsageAggregator::OsRollup> UsageAggregator::by_os() const {
  std::vector<OsRollup> out(static_cast<std::size_t>(classify::kOsTypeCount));
  for (const auto& [mac, agg] : clients_) {
    auto& roll = out[static_cast<std::size_t>(agg.os)];
    roll.up += agg.upstream();
    roll.down += agg.downstream();
    ++roll.clients;
  }
  return out;
}

std::unordered_map<classify::AppId, UsageAggregator::AppRollup> UsageAggregator::by_app() const {
  std::unordered_map<classify::AppId, AppRollup> out;
  for (const auto& [mac, agg] : clients_) {
    for (const auto& [app, bytes] : agg.app_bytes) {
      auto& roll = out[app];
      roll.up += bytes.first;
      roll.down += bytes.second;
      ++roll.clients;
    }
  }
  return out;
}

std::vector<UsageAggregator::AppRollup> UsageAggregator::by_category() const {
  std::vector<AppRollup> out(static_cast<std::size_t>(classify::kCategoryCount));
  // Track distinct clients per category, not the sum of app client counts.
  std::vector<std::unordered_map<std::uint64_t, bool>> seen(
      static_cast<std::size_t>(classify::kCategoryCount));
  for (const auto& [mac, agg] : clients_) {
    for (const auto& [app, bytes] : agg.app_bytes) {
      const auto cat = static_cast<std::size_t>(classify::app_info(app).category);
      out[cat].up += bytes.first;
      out[cat].down += bytes.second;
      seen[cat][mac.to_u64()] = true;
    }
  }
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c].clients = seen[c].size();
  }
  return out;
}

}  // namespace wlm::backend
