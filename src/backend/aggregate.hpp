// Backend-side aggregation.
//
// "Local statistics are aggregated by MAC address in the backend (to account
// for roaming)" — paper §2.3. A client that roamed across three APs during
// the week must count once, with its bytes summed; its OS is resolved by
// majority over the per-AP observations.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "backend/store.hpp"
#include "classify/apps.hpp"
#include "classify/os.hpp"
#include "core/ids.hpp"

namespace wlm::ckpt {
struct AggregatorAccess;  // checkpoint serializer (src/ckpt/state.cpp)
}

namespace wlm::backend {

/// Week-level rollup for one client MAC.
struct ClientAggregate {
  MacAddress mac;
  classify::OsType os = classify::OsType::kUnknown;
  std::uint32_t capability_bits = 0;
  std::unordered_map<classify::AppId, std::pair<std::uint64_t, std::uint64_t>>
      app_bytes;  // app -> (up, down)
  int ap_count = 0;  // distinct APs the client appeared on (roaming)

  [[nodiscard]] std::uint64_t upstream() const;
  [[nodiscard]] std::uint64_t downstream() const;
  [[nodiscard]] std::uint64_t total() const { return upstream() + downstream(); }
};

/// Aggregates all usage and client snapshots in the store by MAC.
class UsageAggregator {
 public:
  /// Consumes every report in [from, to).
  void consume(const ReportStore& store, SimTime from, SimTime to);

  /// Adds another aggregator's observations into this one (per-shard
  /// aggregation merged backend-side, the same roaming story §2.3 tells
  /// within one store): bytes sum per (client, app), capability bits OR,
  /// OS votes add, distinct-AP sets union. OS is then re-resolved over the
  /// combined votes, so merge(a, b) equals consuming both stores directly.
  void merge(const UsageAggregator& other);

  [[nodiscard]] const std::unordered_map<MacAddress, ClientAggregate>& clients() const {
    return clients_;
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  /// Per-OS rollup: (total up, total down, client count) per OS.
  struct OsRollup {
    std::uint64_t up = 0;
    std::uint64_t down = 0;
    std::uint64_t clients = 0;
  };
  [[nodiscard]] std::vector<OsRollup> by_os() const;

  /// Per-app rollup: (up, down, clients).
  struct AppRollup {
    std::uint64_t up = 0;
    std::uint64_t down = 0;
    std::uint64_t clients = 0;
  };
  [[nodiscard]] std::unordered_map<classify::AppId, AppRollup> by_app() const;
  [[nodiscard]] std::vector<AppRollup> by_category() const;

 private:
  /// Recomputes every client's majority OS and roaming spread from the
  /// accumulated votes; shared by consume() and merge().
  void resolve();

  /// Checkpoint serialization needs the raw vote and sighting maps — the
  /// resolved view alone cannot reproduce how future consume() calls would
  /// shift a client's majority OS.
  friend struct ::wlm::ckpt::AggregatorAccess;

  std::unordered_map<MacAddress, ClientAggregate> clients_;
  std::unordered_map<MacAddress, std::unordered_map<ApId, bool>> seen_on_;
  std::unordered_map<MacAddress, std::unordered_map<std::uint8_t, int>> os_votes_;
};

}  // namespace wlm::backend
