// Backend-side aggregation.
//
// "Local statistics are aggregated by MAC address in the backend (to account
// for roaming)" — paper §2.3. A client that roamed across three APs during
// the week must count once, with its bytes summed; its OS is resolved by
// majority over the per-AP observations.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "backend/store.hpp"
#include "classify/apps.hpp"
#include "classify/os.hpp"
#include "core/ids.hpp"

namespace wlm::ckpt {
struct AggregatorAccess;  // checkpoint serializer (src/ckpt/state.cpp)
}

namespace wlm::backend {

/// Flat app -> (up, down) byte map. A client touches a handful of the
/// catalog's ~30 apps, so a linear scan over one contiguous vector beats a
/// per-client hash map's bucket array and node allocations — the aggregator
/// holds one of these per client, millions at fleet scale. Insertion order
/// is deterministic (input order); every reader either sums (order-free) or
/// sorts before writing (checkpoint canonical form), so the layout change
/// is observation-equivalent to the old unordered_map.
class AppByteMap {
 public:
  using value_type = std::pair<classify::AppId, std::pair<std::uint64_t, std::uint64_t>>;

  std::pair<std::uint64_t, std::uint64_t>& operator[](classify::AppId app) {
    for (auto& e : entries_) {
      if (e.first == app) return e.second;
    }
    entries_.emplace_back(app, std::pair<std::uint64_t, std::uint64_t>{0, 0});
    return entries_.back().second;
  }
  [[nodiscard]] const std::pair<std::uint64_t, std::uint64_t>& at(classify::AppId app) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  std::vector<value_type> entries_;
};

/// Raw per-client observations backing OS resolution: which APs the MAC was
/// sighted on and how many snapshots voted for each OS id. Small flat
/// vectors — a fleet-sized harvest does millions of sighting/vote updates,
/// and a linear scan over a handful of APs or OS ids beats a nested hash
/// map's hashing and node churn.
struct ClientObservations {
  std::vector<std::pair<ApId, bool>> seen;          // unique APs, insertion order
  std::vector<std::pair<std::uint8_t, int>> votes;  // unique OS ids, insertion order
};

/// Week-level rollup for one client MAC.
struct ClientAggregate {
  MacAddress mac;
  classify::OsType os = classify::OsType::kUnknown;
  std::uint32_t capability_bits = 0;
  AppByteMap app_bytes;  // app -> (up, down)
  ClientObservations obs;  // feeds resolve(); serialized canonically sorted
  int ap_count = 0;  // distinct APs the client appeared on (roaming)

  [[nodiscard]] std::uint64_t upstream() const;
  [[nodiscard]] std::uint64_t downstream() const;
  [[nodiscard]] std::uint64_t total() const { return upstream() + downstream(); }
};

/// Aggregates all usage and client snapshots in the store by MAC.
class UsageAggregator {
 public:
  /// Consumes every report in [from, to). Reads through the ReportSource
  /// contract, so the row store and the columnar tsdb segment store feed it
  /// interchangeably (canonical order either way).
  void consume(const ReportSource& store, SimTime from, SimTime to);

  /// Adds another aggregator's observations into this one (per-shard
  /// aggregation merged backend-side, the same roaming story §2.3 tells
  /// within one store): bytes sum per (client, app), capability bits OR,
  /// OS votes add, distinct-AP sets union. OS is then re-resolved over the
  /// combined votes, so merge(a, b) equals consuming both stores directly.
  void merge(const UsageAggregator& other);

  [[nodiscard]] const std::unordered_map<MacAddress, ClientAggregate>& clients() const {
    return clients_;
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  /// Per-OS rollup: (total up, total down, client count) per OS.
  struct OsRollup {
    std::uint64_t up = 0;
    std::uint64_t down = 0;
    std::uint64_t clients = 0;
  };
  [[nodiscard]] std::vector<OsRollup> by_os() const;

  /// Per-app rollup: (up, down, clients).
  struct AppRollup {
    std::uint64_t up = 0;
    std::uint64_t down = 0;
    std::uint64_t clients = 0;
  };
  [[nodiscard]] std::unordered_map<classify::AppId, AppRollup> by_app() const;
  [[nodiscard]] std::vector<AppRollup> by_category() const;

 private:
  /// Recomputes every client's majority OS and roaming spread from the
  /// accumulated votes; shared by consume() and merge().
  void resolve();

  /// Checkpoint serialization needs the raw vote and sighting records — the
  /// resolved view alone cannot reproduce how future consume() calls would
  /// shift a client's majority OS.
  friend struct ::wlm::ckpt::AggregatorAccess;

  // Observations live inside each ClientAggregate (one hash lookup per
  // usage-row run instead of two parallel maps' worth, and ~half the map
  // nodes at fleet scale). The checkpoint serializer writes the same
  // canonical sorted sections as the old split layout.
  std::unordered_map<MacAddress, ClientAggregate> clients_;
};

}  // namespace wlm::backend
