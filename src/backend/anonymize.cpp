#include "backend/anonymize.hpp"

#include <array>
#include <cstdio>

#include "core/checksum.hpp"

namespace wlm::backend {

MacAddress Anonymizer::pseudonym(MacAddress mac) const {
  std::array<std::uint8_t, 14> buf{};
  const std::uint64_t v = mac.to_u64();
  for (int i = 0; i < 6; ++i) buf[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  for (int i = 0; i < 8; ++i) {
    buf[static_cast<std::size_t>(6 + i)] = static_cast<std::uint8_t>(salt_ >> (8 * i));
  }
  std::uint64_t h = fnv1a64(buf);
  h &= 0xFFFFFFFFFFFFULL;
  h |= 0x020000000000ULL;  // locally administered
  h &= ~0x010000000000ULL;  // unicast
  return MacAddress::from_u64(h);
}

std::string Anonymizer::pseudonym(const std::string& value) const {
  const std::uint64_t h = fnv1a64(value) ^ salt_;
  char buf[20];
  std::snprintf(buf, sizeof buf, "anon-%012llx", static_cast<unsigned long long>(h & 0xFFFFFFFFFFFFULL));
  return buf;
}

}  // namespace wlm::backend
