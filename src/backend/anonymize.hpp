// Anonymization for published datasets (the paper studies "an anonymized
// subset" and presents "only aggregates"). Identifiers are replaced by
// salted FNV-1a hashes: stable within one export, unlinkable across exports
// with different salts.
#pragma once

#include <cstdint>
#include <string>

#include "core/ids.hpp"

namespace wlm::backend {

class Anonymizer {
 public:
  explicit Anonymizer(std::uint64_t salt) : salt_(salt) {}

  /// Deterministic pseudonym MAC: hash preserves nothing of the original
  /// except stability (same input -> same output for this salt). The result
  /// is marked locally administered so it can never collide with real OUIs.
  [[nodiscard]] MacAddress pseudonym(MacAddress mac) const;

  /// Pseudonymous label for any string identifier (SSIDs, org names).
  [[nodiscard]] std::string pseudonym(const std::string& value) const;

 private:
  std::uint64_t salt_;
};

}  // namespace wlm::backend
