#include "backend/health.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wlm::backend {

const char* health_issue_name(HealthIssue issue) {
  switch (issue) {
    case HealthIssue::kOffline:
      return "offline";
    case HealthIssue::kReportingGaps:
      return "reporting-gaps";
    case HealthIssue::kNeighborPressure:
      return "neighbor-table-pressure";
    case HealthIssue::kTelemetryShed:
      return "telemetry-shed";
    case HealthIssue::kWanFlapping:
      return "wan-flapping";
  }
  return "?";
}

std::vector<HealthFinding> HealthMonitor::analyze(const ReportSource& store,
                                                  SimTime now) const {
  std::vector<HealthFinding> findings;
  const double interval_us = static_cast<double>(policy_.expected_interval.as_micros());
  store.for_each_ap([&](ApId ap, const std::vector<wire::ApReport>& reports) {
    if (reports.empty()) return;

    // Reports arrive in poll order; evaluate by timestamp.
    std::vector<std::int64_t> times;
    times.reserve(reports.size());
    std::size_t max_neighbors = 0;
    for (const auto& r : reports) {
      times.push_back(r.timestamp_us);
      max_neighbors = std::max(max_neighbors, r.neighbors.size());
    }
    std::sort(times.begin(), times.end());

    const double silence = static_cast<double>(now.as_micros() - times.back());
    if (silence > policy_.gap_tolerance * interval_us) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "no report for %.1f expected intervals",
                    silence / interval_us);
      findings.push_back(HealthFinding{ap, HealthIssue::kOffline, buf});
    }

    double worst_gap = 0.0;
    for (std::size_t i = 1; i < times.size(); ++i) {
      worst_gap = std::max(worst_gap, static_cast<double>(times[i] - times[i - 1]));
    }
    if (times.size() > 1 && worst_gap > policy_.gap_tolerance * interval_us) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "worst reporting gap %.1fx the cadence",
                    worst_gap / interval_us);
      findings.push_back(HealthFinding{ap, HealthIssue::kReportingGaps, buf});
    }

    if (max_neighbors > policy_.neighbor_pressure_threshold) {
      char buf[112];
      std::snprintf(buf, sizeof buf,
                    "%zu neighbor entries in one report (threshold %zu): "
                    "skyscraper/OOM risk",
                    max_neighbors, policy_.neighbor_pressure_threshold);
      findings.push_back(HealthFinding{ap, HealthIssue::kNeighborPressure, buf});
    }
  });
  return findings;
}

std::vector<HealthFinding> HealthMonitor::analyze_tunnel(const Tunnel& tunnel) const {
  std::vector<HealthFinding> findings;
  const auto& stats = tunnel.stats();
  if (stats.frames_dropped > 0) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu telemetry frames shed at the device queue",
                  static_cast<unsigned long long>(stats.frames_dropped));
    findings.push_back(HealthFinding{tunnel.ap(), HealthIssue::kTelemetryShed, buf});
  }
  if (stats.disconnects > policy_.max_disconnects) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu WAN disconnects",
                  static_cast<unsigned long long>(stats.disconnects));
    findings.push_back(HealthFinding{tunnel.ap(), HealthIssue::kWanFlapping, buf});
  }
  return findings;
}

std::string HealthMonitor::render(const std::vector<HealthFinding>& findings) {
  if (findings.empty()) return "fleet healthy: no findings\n";
  std::ostringstream out;
  out << findings.size() << " finding(s):\n";
  for (const auto& f : findings) {
    out << "  AP" << f.ap.value() << " [" << health_issue_name(f.issue) << "] " << f.detail
        << "\n";
  }
  return out.str();
}

}  // namespace wlm::backend
