// Fleet health monitoring from telemetry.
//
// Paper §6.1: "it [is] important to measure and instrument the system at
// large scale and make it possible to examine the system under operation".
// The Manhattan-skyscraper OOM bug was diagnosed exactly this way — APs
// reporting "very large numbers of nearby access points" before rebooting.
// This monitor walks the report store and surfaces the same signals:
// reporting gaps, WAN flapping, neighbor-table pressure, and shed telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/store.hpp"
#include "backend/tunnel.hpp"

namespace wlm::backend {

enum class HealthIssue : std::uint8_t {
  kOffline,            // no report for several expected intervals
  kReportingGaps,      // intermittent reporting (flaky WAN / power)
  kNeighborPressure,   // neighbor table far beyond typical: OOM risk (§6.1)
  kTelemetryShed,      // the bounded tunnel queue dropped frames
  kWanFlapping,        // repeated tunnel disconnects
};

[[nodiscard]] const char* health_issue_name(HealthIssue issue);

struct HealthFinding {
  ApId ap;
  HealthIssue issue = HealthIssue::kOffline;
  std::string detail;
};

struct HealthPolicy {
  /// Expected report cadence; gaps beyond `gap_tolerance` intervals flag.
  Duration expected_interval = Duration::hours(24);
  double gap_tolerance = 2.5;
  /// Neighbor entries per report beyond which an AP is at memory risk.
  std::size_t neighbor_pressure_threshold = 400;
  std::uint64_t max_disconnects = 5;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthPolicy policy = HealthPolicy{}) : policy_(policy) {}

  /// Analyzes every AP's reports in the store as of `now`. Reads through
  /// the ReportSource per-AP visitor, so row and columnar stores feed it
  /// interchangeably.
  [[nodiscard]] std::vector<HealthFinding> analyze(const ReportSource& store,
                                                   SimTime now) const;

  /// Tunnel-level signals (queue drops, disconnect counts); the store has
  /// no visibility into what never arrived.
  [[nodiscard]] std::vector<HealthFinding> analyze_tunnel(const Tunnel& tunnel) const;

  /// Renders findings as a human-readable report, most severe first.
  [[nodiscard]] static std::string render(const std::vector<HealthFinding>& findings);

 private:
  HealthPolicy policy_;
};

}  // namespace wlm::backend
