#include "backend/poller.hpp"

#include <algorithm>

#include "failsafe/failpoint.hpp"
#include "telemetry/profile.hpp"
#include "wire/encoder.hpp"
#include "wire/framing.hpp"

namespace wlm::backend {

void Poller::attach(Tunnel& tunnel) {
  tunnels_.push_back(&tunnel);
  TunnelCounters counters;
  counters.ap = tunnel.ap();
  counters_.push_back(counters);
}

void Poller::bind_telemetry(telemetry::MetricsRegistry* metrics,
                            telemetry::FlightRecorder* recorder) {
  metrics_ = metrics;
  recorder_ = recorder;
}

void Poller::poll_all(std::size_t per_tunnel_budget, bool ignore_backoff) {
  // Supervision trigger site: a poll cycle is where a real collector talks
  // to the outside world, so it is where injected crashes/stalls land.
  failsafe::failpoint("poller.poll");
  std::uint64_t cycle_frames = 0;
  for (std::size_t i = 0; i < tunnels_.size(); ++i) {
    Tunnel* tunnel = tunnels_[i];
    TunnelCounters& tc = counters_[i];
    if (!ignore_backoff && tc.backoff_remaining > 0) {
      --tc.backoff_remaining;
      ++tc.cycles_backed_off;
      ++stats_.polls_skipped_backoff;
      if (metrics_) metrics_->counter("wlm_poller_polls_skipped_backoff_total").inc();
      continue;
    }
    const auto frames = tunnel->poll(per_tunnel_budget);
    cycle_frames += frames.size();
    bool saw_corrupt = false;
    for (const auto& frame : frames) {
      ++tc.frames_polled;
      // Walk the frame in place: report payloads are parsed straight out of
      // the polled buffer, so a clean harvest copies no payload bytes.
      wire::FrameWalker walker(frame);
      while (const auto payload = walker.next()) {
        if (auto report = wire::decode_report(*payload)) {
          store_->add(std::move(*report));
          ++stats_.reports_stored;
          ++tc.reports_stored;
          if (metrics_) metrics_->counter("wlm_poller_reports_stored_total").inc();
        } else {
          ++stats_.malformed_reports;
          ++tc.malformed_reports;
          saw_corrupt = true;
          if (metrics_) metrics_->counter("wlm_poller_malformed_reports_total").inc();
        }
      }
      if (walker.corrupt_frames() > 0) {
        stats_.corrupt_frames += walker.corrupt_frames();
        tc.corrupt_frames += walker.corrupt_frames();
        saw_corrupt = true;
        if (metrics_) {
          metrics_->counter("wlm_poller_corrupt_frames_total").inc(walker.corrupt_frames());
          // Per-tunnel attribution only for tunnels that actually misbehave,
          // so metric cardinality stays proportional to trouble, not fleet
          // size.
          metrics_->counter("wlm_poller_tunnel_corrupt_total", tc.ap.value())
              .inc(walker.corrupt_frames());
        }
      } else {
        // Only cleanly framed data counts as harvested; a frame that failed
        // its CRC delivered nothing.
        ++stats_.frames_harvested;
        stats_.bytes_harvested += frame.size();
        telemetry::work_tally().frames.fetch_add(1, std::memory_order_relaxed);
        if (metrics_) {
          metrics_->counter("wlm_poller_frames_harvested_total").inc();
          metrics_->counter("wlm_poller_bytes_harvested_total").inc(frame.size());
        }
      }
    }
    if (metrics_ && !frames.empty()) {
      metrics_->counter("wlm_poller_frames_polled_total").inc(frames.size());
    }
    if (saw_corrupt) {
      const bool was_quarantined = tc.quarantined;
      tc.backoff_level = std::min(tc.backoff_level + 1, policy_.max_backoff_level);
      tc.backoff_remaining = (1 << tc.backoff_level) - 1;
      tc.quarantined = tc.backoff_level >= policy_.quarantine_level;
      if (metrics_) {
        metrics_->gauge("wlm_poller_backoff_level", tc.ap.value())
            .set(static_cast<double>(tc.backoff_level));
        metrics_->gauge("wlm_poller_quarantined", tc.ap.value())
            .set(tc.quarantined ? 1.0 : 0.0);
      }
      if (recorder_ && tc.quarantined && !was_quarantined) {
        recorder_->record({telemetry::SpanKind::kQuarantine, tc.ap.value(), now_us_,
                           now_us_, static_cast<std::uint64_t>(tc.backoff_level)});
      }
    } else if (!frames.empty()) {
      // A clean poll proves the device recovered; stop punishing it.
      const bool was_backed_off = tc.backoff_level > 0;
      tc.backoff_level = 0;
      tc.backoff_remaining = 0;
      tc.quarantined = false;
      if (metrics_ && was_backed_off) {
        metrics_->gauge("wlm_poller_backoff_level", tc.ap.value()).set(0.0);
        metrics_->gauge("wlm_poller_quarantined", tc.ap.value()).set(0.0);
      }
    }
  }
  if (metrics_) {
    metrics_->counter("wlm_poller_poll_cycles_total").inc();
    metrics_
        ->histogram("wlm_poller_frames_per_poll",
                    {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
        .observe(static_cast<double>(cycle_frames));
  }
  if (recorder_) {
    recorder_->record(
        {telemetry::SpanKind::kPoll, 0, now_us_, now_us_, cycle_frames});
  }
}

bool Poller::restore(const PollerStats& stats, const std::vector<TunnelCounters>& counters,
                     std::int64_t now_us) {
  if (counters.size() != tunnels_.size()) return false;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (counters[i].ap != tunnels_[i]->ap()) return false;
  }
  stats_ = stats;
  counters_ = counters;
  now_us_ = now_us;
  return true;
}

const TunnelCounters* Poller::counters_for(ApId ap) const {
  for (const auto& tc : counters_) {
    if (tc.ap == ap) return &tc;
  }
  return nullptr;
}

std::vector<std::uint8_t> frame_report(const wire::ApReport& report) {
  // Thread-local scratch: the encoder's buffer capacity survives across the
  // millions of reports a shard frames, and each worker thread owns its own
  // scratch so parallel shards never contend.
  thread_local wire::Encoder encoder;
  wire::encode_report_into(report, encoder);
  std::vector<std::uint8_t> framed;
  framed.reserve(encoder.size() + wire::frame_overhead(encoder.size()));
  wire::append_frame(framed, encoder.bytes());
  return framed;
}

}  // namespace wlm::backend
