#include "backend/poller.hpp"

#include "wire/framing.hpp"

namespace wlm::backend {

void Poller::attach(Tunnel& tunnel) { tunnels_.push_back(&tunnel); }

void Poller::poll_all(std::size_t per_tunnel_budget) {
  for (Tunnel* tunnel : tunnels_) {
    const auto frames = tunnel->poll(per_tunnel_budget);
    for (const auto& frame : frames) {
      ++stats_.frames_harvested;
      stats_.bytes_harvested += frame.size();
      const auto decoded = wire::decode_stream(frame);
      stats_.corrupt_frames += decoded.corrupt_frames;
      for (const auto& payload : decoded.payloads) {
        if (auto report = wire::decode_report(payload)) {
          store_->add(std::move(*report));
        } else {
          ++stats_.malformed_reports;
        }
      }
    }
  }
}

std::vector<std::uint8_t> frame_report(const wire::ApReport& report) {
  const auto payload = wire::encode_report(report);
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + wire::frame_overhead(payload.size()));
  wire::append_frame(framed, payload);
  return framed;
}

}  // namespace wlm::backend
