#include "backend/poller.hpp"

#include <algorithm>

#include "wire/framing.hpp"

namespace wlm::backend {

void Poller::attach(Tunnel& tunnel) {
  tunnels_.push_back(&tunnel);
  TunnelCounters counters;
  counters.ap = tunnel.ap();
  counters_.push_back(counters);
}

void Poller::poll_all(std::size_t per_tunnel_budget, bool ignore_backoff) {
  for (std::size_t i = 0; i < tunnels_.size(); ++i) {
    Tunnel* tunnel = tunnels_[i];
    TunnelCounters& tc = counters_[i];
    if (!ignore_backoff && tc.backoff_remaining > 0) {
      --tc.backoff_remaining;
      ++tc.cycles_backed_off;
      ++stats_.polls_skipped_backoff;
      continue;
    }
    const auto frames = tunnel->poll(per_tunnel_budget);
    bool saw_corrupt = false;
    for (const auto& frame : frames) {
      ++tc.frames_polled;
      const auto decoded = wire::decode_stream(frame);
      if (decoded.corrupt_frames > 0) {
        stats_.corrupt_frames += decoded.corrupt_frames;
        tc.corrupt_frames += decoded.corrupt_frames;
        saw_corrupt = true;
      } else {
        // Only cleanly framed data counts as harvested; a frame that failed
        // its CRC delivered nothing.
        ++stats_.frames_harvested;
        stats_.bytes_harvested += frame.size();
      }
      for (const auto& payload : decoded.payloads) {
        if (auto report = wire::decode_report(payload)) {
          store_->add(std::move(*report));
          ++stats_.reports_stored;
          ++tc.reports_stored;
        } else {
          ++stats_.malformed_reports;
          ++tc.malformed_reports;
          saw_corrupt = true;
        }
      }
    }
    if (saw_corrupt) {
      tc.backoff_level = std::min(tc.backoff_level + 1, policy_.max_backoff_level);
      tc.backoff_remaining = (1 << tc.backoff_level) - 1;
      tc.quarantined = tc.backoff_level >= policy_.quarantine_level;
    } else if (!frames.empty()) {
      // A clean poll proves the device recovered; stop punishing it.
      tc.backoff_level = 0;
      tc.backoff_remaining = 0;
      tc.quarantined = false;
    }
  }
}

const TunnelCounters* Poller::counters_for(ApId ap) const {
  for (const auto& tc : counters_) {
    if (tc.ap == ap) return &tc;
  }
  return nullptr;
}

std::vector<std::uint8_t> frame_report(const wire::ApReport& report) {
  const auto payload = wire::encode_report(report);
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + wire::frame_overhead(payload.size()));
  wire::append_frame(framed, payload);
  return framed;
}

}  // namespace wlm::backend
