// Pull-based harvesting (paper §2: "the system operates using a pull
// mechanism, which helps regulate the flow of updates during peak load").
//
// The poller walks the registered tunnels each cycle, drains their framed
// report streams, validates framing CRCs, decodes reports, and writes them
// to the store. A per-cycle frame budget provides the load regulation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/store.hpp"
#include "backend/tunnel.hpp"

namespace wlm::backend {

struct PollerStats {
  std::uint64_t frames_harvested = 0;
  std::uint64_t corrupt_frames = 0;   // framing CRC failures
  std::uint64_t malformed_reports = 0;  // decodable frame, bad message
  std::uint64_t bytes_harvested = 0;
};

class Poller {
 public:
  explicit Poller(ReportStore& store) : store_(&store) {}

  /// Registers a device tunnel; the poller does not own it.
  void attach(Tunnel& tunnel);

  /// One poll cycle over all tunnels. `per_tunnel_budget` caps the frames
  /// pulled from any one device per cycle (peak-load regulation).
  void poll_all(std::size_t per_tunnel_budget = 64);

  [[nodiscard]] const PollerStats& stats() const { return stats_; }

 private:
  ReportStore* store_;
  std::vector<Tunnel*> tunnels_;
  PollerStats stats_;
};

/// Device-side helper: encodes a report and frames it for the tunnel.
[[nodiscard]] std::vector<std::uint8_t> frame_report(const wire::ApReport& report);

}  // namespace wlm::backend
