// Pull-based harvesting (paper §2: "the system operates using a pull
// mechanism, which helps regulate the flow of updates during peak load").
//
// The poller walks the registered tunnels each cycle, drains their framed
// report streams, validates framing CRCs, decodes reports, and writes them
// to the store. A per-cycle frame budget provides the load regulation, and
// per-tunnel accounting drives a retry/backoff loop: a device whose frames
// keep failing CRC gets polled exponentially less often (up to quarantine at
// the maximum backoff) instead of being hammered — one broken AP must not
// absorb the collector's cycles. A clean poll resets the backoff.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/store.hpp"
#include "backend/tunnel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wlm::backend {

struct PollerStats {
  /// Frames whose framing decoded cleanly. Corrupt frames are counted in
  /// `corrupt_frames` ONLY — a frame that yielded nothing was not harvested.
  std::uint64_t frames_harvested = 0;
  std::uint64_t corrupt_frames = 0;     // framing CRC failures
  std::uint64_t malformed_reports = 0;  // decodable frame, bad message
  std::uint64_t bytes_harvested = 0;    // bytes of clean frames only
  std::uint64_t reports_stored = 0;     // decoded reports written to the store
  std::uint64_t polls_skipped_backoff = 0;
};

/// Per-tunnel harvest accounting: the attribution the fleet-wide totals
/// cannot give (which device is feeding the collector garbage).
struct TunnelCounters {
  ApId ap;
  std::uint64_t frames_polled = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t malformed_reports = 0;
  std::uint64_t reports_stored = 0;
  std::uint64_t cycles_backed_off = 0;
  /// Current backoff: the tunnel is skipped for 2^level - 1 cycles after a
  /// corrupt poll. At `PollerPolicy::quarantine_level` it is quarantined.
  int backoff_level = 0;
  int backoff_remaining = 0;
  bool quarantined = false;
};

struct PollerPolicy {
  /// Backoff doubles per consecutive corrupt cycle up to this level
  /// (2^4 - 1 = 15 skipped cycles between attempts).
  int max_backoff_level = 4;
  /// Backoff level at which the tunnel counts as quarantined. Quarantine is
  /// an alarm state, not a death sentence: the poller still retries at the
  /// maximum backoff interval, and a clean poll lifts it.
  int quarantine_level = 4;
};

class Poller {
 public:
  explicit Poller(ReportStore& store, PollerPolicy policy = PollerPolicy{})
      : store_(&store), policy_(policy) {}

  /// Registers a device tunnel; the poller does not own it.
  void attach(Tunnel& tunnel);

  /// Points the poller at its shard's telemetry sinks (neither owned; both
  /// may be null to run uninstrumented). Same confinement as the store: the
  /// registry and recorder belong to the shard that owns this poller.
  void bind_telemetry(telemetry::MetricsRegistry* metrics,
                      telemetry::FlightRecorder* recorder);

  /// Advances the poller's notion of simulated time. The poller has no
  /// clock of its own — the shard stamps the campaign time before each
  /// cycle so poll spans and quarantine events carry sim time, never
  /// wall-clock.
  void set_now(std::int64_t t_us) { now_us_ = t_us; }

  /// One poll cycle over all tunnels. `per_tunnel_budget` caps the frames
  /// pulled from any one device per cycle (peak-load regulation).
  /// `ignore_backoff` forces a poll of backed-off tunnels too — the final
  /// harvest drains everything regardless of quarantine state.
  void poll_all(std::size_t per_tunnel_budget = 64, bool ignore_backoff = false);

  [[nodiscard]] const PollerStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<TunnelCounters>& tunnel_counters() const {
    return counters_;
  }
  /// Counters for one AP's tunnel; nullptr if not attached.
  [[nodiscard]] const TunnelCounters* counters_for(ApId ap) const;
  [[nodiscard]] std::int64_t now_us() const { return now_us_; }

  /// Overlays checkpointed accounting onto a freshly constructed poller with
  /// the same tunnels attached in the same order. Returns false (and changes
  /// nothing) if `counters` does not match the attached tunnels one-to-one —
  /// a checkpoint from a different world must never half-apply.
  bool restore(const PollerStats& stats, const std::vector<TunnelCounters>& counters,
               std::int64_t now_us);

 private:
  ReportStore* store_;
  PollerPolicy policy_;
  std::vector<Tunnel*> tunnels_;
  std::vector<TunnelCounters> counters_;
  PollerStats stats_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::FlightRecorder* recorder_ = nullptr;
  std::int64_t now_us_ = 0;
};

/// Device-side helper: encodes a report and frames it for the tunnel.
[[nodiscard]] std::vector<std::uint8_t> frame_report(const wire::ApReport& report);

}  // namespace wlm::backend
