// Read-side abstraction over harvested telemetry.
//
// Analyses, the usage aggregator, and the health monitor consume reports
// through this interface so the storage behind it can be either the
// in-memory row store (backend::ReportStore) or the columnar segment store
// (tsdb::FleetStore) without the readers knowing. Every implementation
// visits reports in the canonical order — ascending AP id, per-AP arrival
// order — which is what makes renders bit-identical across storage
// backends and --jobs values.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "wire/messages.hpp"

namespace wlm::backend {

class ReportSource {
 public:
  virtual ~ReportSource() = default;

  [[nodiscard]] virtual std::size_t report_count() const = 0;
  [[nodiscard]] virtual std::size_t ap_count() const = 0;

  /// Visits every report in canonical order (ascending AP id, per-AP
  /// arrival order), optionally bounded to [from, to).
  virtual void for_each(const std::function<void(const wire::ApReport&)>& fn) const = 0;
  virtual void for_each_in(SimTime from, SimTime to,
                           const std::function<void(const wire::ApReport&)>& fn) const = 0;

  /// Visits each AP's report batch, ascending by AP id. The vector is only
  /// valid for the duration of the call — columnar sources materialize one
  /// network at a time and recycle the buffer.
  virtual void for_each_ap(
      const std::function<void(ApId, const std::vector<wire::ApReport>&)>& fn) const = 0;
};

}  // namespace wlm::backend
