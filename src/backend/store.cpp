#include "backend/store.hpp"

#include <algorithm>

namespace wlm::backend {

void ReportStore::add(wire::ApReport report) {
  by_ap_[ApId{report.ap_id}].push_back(std::move(report));
  ++total_;
}

const std::vector<wire::ApReport>& ReportStore::reports_for(ApId ap) const {
  static const std::vector<wire::ApReport> kEmpty;
  const auto it = by_ap_.find(ap);
  return it == by_ap_.end() ? kEmpty : it->second;
}

void ReportStore::for_each(const std::function<void(const wire::ApReport&)>& fn) const {
  for (const auto& [ap, reports] : by_ap_) {
    for (const auto& r : reports) fn(r);
  }
}

void ReportStore::for_each_in(SimTime from, SimTime to,
                              const std::function<void(const wire::ApReport&)>& fn) const {
  for (const auto& [ap, reports] : by_ap_) {
    for (const auto& r : reports) {
      if (r.timestamp_us >= from.as_micros() && r.timestamp_us < to.as_micros()) fn(r);
    }
  }
}

std::vector<ApId> ReportStore::aps() const {
  std::vector<ApId> out;
  out.reserve(by_ap_.size());
  for (const auto& [ap, reports] : by_ap_) out.push_back(ap);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wlm::backend
