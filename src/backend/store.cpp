#include "backend/store.hpp"

#include <algorithm>
#include <iterator>

namespace wlm::backend {

void ReportStore::add(wire::ApReport report) {
  by_ap_[ApId{report.ap_id}].push_back(std::move(report));
  ++total_;
}

void ReportStore::merge(ReportStore&& other) {
  for (auto& [ap, reports] : other.by_ap_) {
    auto& dst = by_ap_[ap];
    if (dst.empty()) {
      dst = std::move(reports);
    } else {
      dst.insert(dst.end(), std::make_move_iterator(reports.begin()),
                 std::make_move_iterator(reports.end()));
    }
  }
  total_ += other.total_;
  other.by_ap_.clear();
  other.total_ = 0;
}

const std::vector<wire::ApReport>& ReportStore::reports_for(ApId ap) const {
  static const std::vector<wire::ApReport> kEmpty;
  const auto it = by_ap_.find(ap);
  return it == by_ap_.end() ? kEmpty : it->second;
}

void ReportStore::for_each(const std::function<void(const wire::ApReport&)>& fn) const {
  for (const ApId ap : aps()) {
    for (const auto& r : by_ap_.at(ap)) fn(r);
  }
}

void ReportStore::for_each_in(SimTime from, SimTime to,
                              const std::function<void(const wire::ApReport&)>& fn) const {
  for (const ApId ap : aps()) {
    for (const auto& r : by_ap_.at(ap)) {
      if (r.timestamp_us >= from.as_micros() && r.timestamp_us < to.as_micros()) fn(r);
    }
  }
}

void ReportStore::for_each_ap(
    const std::function<void(ApId, const std::vector<wire::ApReport>&)>& fn) const {
  for (const ApId ap : aps()) fn(ap, by_ap_.at(ap));
}

std::vector<ApId> ReportStore::aps() const {
  std::vector<ApId> out;
  out.reserve(by_ap_.size());
  for (const auto& [ap, reports] : by_ap_) out.push_back(ap);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wlm::backend
