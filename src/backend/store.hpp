// Backend report store: the long-term home of decoded telemetry.
//
// Holds every ApReport the poller harvested, indexed by access point, with
// time-range queries. Analyses read from here and only here — the same
// boundary the paper's pipeline had between collection and analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "backend/report_source.hpp"
#include "core/ids.hpp"
#include "core/time.hpp"
#include "wire/messages.hpp"

namespace wlm::backend {

class ReportStore final : public ReportSource {
 public:
  void add(wire::ApReport report);

  /// Moves every report of `other` into this store and leaves `other`
  /// empty. Per-AP arrival order is preserved: `other`'s reports for an AP
  /// are appended after any this store already holds for it. Callers that
  /// need bit-stable global state (the sharded harvest) must merge shards
  /// in a fixed order — the content is then independent of which worker
  /// thread filled which shard.
  void merge(ReportStore&& other);

  [[nodiscard]] std::size_t report_count() const override { return total_; }
  [[nodiscard]] std::size_t ap_count() const override { return by_ap_.size(); }

  /// All reports for one AP, in arrival order.
  [[nodiscard]] const std::vector<wire::ApReport>& reports_for(ApId ap) const;

  /// Visits every report in canonical order (ascending AP id, per-AP
  /// arrival order), optionally bounded to [from, to). Canonical order is
  /// part of the read contract (backend/report_source.hpp): it keeps this
  /// store and the columnar segment store byte-interchangeable.
  void for_each(const std::function<void(const wire::ApReport&)>& fn) const override;
  void for_each_in(SimTime from, SimTime to,
                   const std::function<void(const wire::ApReport&)>& fn) const override;
  void for_each_ap(const std::function<void(ApId, const std::vector<wire::ApReport>&)>& fn)
      const override;

  [[nodiscard]] std::vector<ApId> aps() const;

 private:
  std::unordered_map<ApId, std::vector<wire::ApReport>> by_ap_;
  std::size_t total_ = 0;
};

}  // namespace wlm::backend
