#include "backend/timeseries.hpp"

#include <algorithm>

namespace wlm::backend {

void TimeSeriesStore::append(const SeriesKey& key, SimTime t, double value) {
  auto& s = series_[key];
  if (!s.raw.empty() && t < s.raw.back().time) s.raw_sorted = false;
  s.raw.push_back(Point{t, value});
}

void TimeSeriesStore::ensure_sorted(Series& s) const {
  if (s.raw_sorted) return;
  std::stable_sort(s.raw.begin(), s.raw.end(),
                   [](const Point& a, const Point& b) { return a.time < b.time; });
  s.raw_sorted = true;
}

std::size_t TimeSeriesStore::point_count(const SeriesKey& key) const {
  const auto it = series_.find(key);
  if (it == series_.end()) return 0;
  return it->second.raw.size() + it->second.rollups.size();
}

std::size_t TimeSeriesStore::total_points() const {
  std::size_t total = 0;
  for (const auto& [key, s] : series_) total += s.raw.size() + s.rollups.size();
  return total;
}

std::vector<Point> TimeSeriesStore::query(const SeriesKey& key, SimTime from,
                                          SimTime to) const {
  std::vector<Point> out;
  const auto it = series_.find(key);
  if (it == series_.end()) return out;
  ensure_sorted(it->second);
  for (const auto& list : {it->second.rollups, it->second.raw}) {
    for (const auto& p : list) {
      if (p.time >= from && p.time < to) out.push_back(p);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Point& a, const Point& b) { return a.time < b.time; });
  return out;
}

std::vector<Bucket> TimeSeriesStore::downsample(const SeriesKey& key, SimTime from,
                                                SimTime to, Duration width, Agg agg) const {
  std::vector<Bucket> out;
  if (width <= Duration{}) return out;
  const auto points = query(key, from, to);
  if (points.empty()) return out;

  auto flush = [&](SimTime start, const RunningStats& stats) {
    if (stats.count() == 0) return;
    Bucket b;
    b.start = start;
    b.width = width;
    b.samples = stats.count();
    switch (agg) {
      case Agg::kMean:
        b.value = stats.mean();
        break;
      case Agg::kMax:
        b.value = stats.max();
        break;
      case Agg::kMin:
        b.value = stats.min();
        break;
      case Agg::kSum:
        b.value = stats.sum();
        break;
      case Agg::kCount:
        b.value = static_cast<double>(stats.count());
        break;
    }
    out.push_back(b);
  };

  std::int64_t bucket_index = -1;
  RunningStats stats;
  SimTime bucket_start;
  for (const auto& p : points) {
    const std::int64_t idx = (p.time - from) / width;
    if (idx != bucket_index) {
      flush(bucket_start, stats);
      stats = RunningStats{};
      bucket_index = idx;
      bucket_start = from + width * idx;
    }
    stats.add(p.value);
  }
  flush(bucket_start, stats);
  return out;
}

std::optional<Point> TimeSeriesStore::latest(const SeriesKey& key) const {
  const auto it = series_.find(key);
  if (it == series_.end()) return std::nullopt;
  ensure_sorted(it->second);
  if (!it->second.raw.empty()) return it->second.raw.back();
  if (!it->second.rollups.empty()) return it->second.rollups.back();
  return std::nullopt;
}

void TimeSeriesStore::compact(SimTime now) {
  const SimTime horizon =
      SimTime::from_micros(now.as_micros() - retention_.raw_horizon.as_micros());
  for (auto& [key, s] : series_) {
    ensure_sorted(s);
    const auto split = std::lower_bound(
        s.raw.begin(), s.raw.end(), horizon,
        [](const Point& p, SimTime t) { return p.time < t; });
    if (split == s.raw.begin()) continue;

    // Fold [begin, split) into rollup buckets.
    const Duration width = retention_.rollup_width;
    std::int64_t bucket_index = -1;
    RunningStats stats;
    SimTime bucket_start;
    auto flush = [&]() {
      if (stats.count() == 0) return;
      s.rollups.push_back(Point{bucket_start + width / 2, stats.mean()});
      stats = RunningStats{};
    };
    for (auto it = s.raw.begin(); it != split; ++it) {
      const std::int64_t idx = it->time.as_micros() / width.as_micros();
      if (idx != bucket_index) {
        flush();
        bucket_index = idx;
        bucket_start = SimTime::from_micros(idx * width.as_micros());
      }
      stats.add(it->value);
    }
    flush();
    s.raw.erase(s.raw.begin(), split);
    std::stable_sort(s.rollups.begin(), s.rollups.end(),
                     [](const Point& a, const Point& b) { return a.time < b.time; });
  }
}

void TimeSeriesStore::merge(TimeSeriesStore&& other) {
  for (auto& [key, src] : other.series_) {
    auto [it, inserted] = series_.try_emplace(key, std::move(src));
    if (inserted) continue;
    Series& dst = it->second;
    // Appending then stable-sorting keeps equal-timestamp points in
    // this-store-then-other order, the same tie rule append() itself has.
    if (!src.raw.empty()) {
      if (dst.raw.empty()) {
        dst.raw = std::move(src.raw);
        dst.raw_sorted = src.raw_sorted;
      } else {
        if (!src.raw_sorted || src.raw.front().time < dst.raw.back().time) {
          dst.raw_sorted = false;
        }
        dst.raw.insert(dst.raw.end(), src.raw.begin(), src.raw.end());
      }
    }
    if (!src.rollups.empty()) {
      dst.rollups.insert(dst.rollups.end(), src.rollups.begin(), src.rollups.end());
      std::stable_sort(dst.rollups.begin(), dst.rollups.end(),
                       [](const Point& a, const Point& b) { return a.time < b.time; });
    }
  }
  other.series_.clear();
}

void TimeSeriesStore::for_each_series(
    const std::function<void(const SeriesKey&, const std::vector<Point>& raw,
                             const std::vector<Point>& rollups)>& fn) const {
  for (auto& [key, s] : series_) {
    ensure_sorted(s);
    fn(key, s.raw, s.rollups);
  }
}

void TimeSeriesStore::restore_series(const SeriesKey& key, std::vector<Point> raw,
                                     std::vector<Point> rollups) {
  Series s;
  s.raw = std::move(raw);
  s.rollups = std::move(rollups);
  s.raw_sorted = true;
  series_[key] = std::move(s);
}

std::vector<SeriesKey> TimeSeriesStore::keys_for_metric(const std::string& metric) const {
  std::vector<SeriesKey> out;
  for (const auto& [key, s] : series_) {
    if (key.metric == metric) out.push_back(key);
  }
  return out;
}

}  // namespace wlm::backend
