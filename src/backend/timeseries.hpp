// Long-term time-series storage.
//
// The paper's backend keeps "a database of time-series measurements of
// wireless link, client, and application behavior" (abstract) spanning
// years. This store models that layer: named metric series per entity,
// append-mostly writes, range queries, bucketed downsampling for charts,
// and bounded retention so a year of 3-minute scans does not grow without
// limit (old points collapse into coarser rollups instead of vanishing).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/time.hpp"

namespace wlm::backend {

/// Identifies one series: metric name plus an entity key (AP id, client
/// MAC, channel number — the caller composes it).
struct SeriesKey {
  std::string metric;
  std::uint64_t entity = 0;

  bool operator<(const SeriesKey& o) const {
    return metric < o.metric || (metric == o.metric && entity < o.entity);
  }
  bool operator==(const SeriesKey&) const = default;
};

struct Point {
  SimTime time;
  double value = 0.0;
};

/// Aggregation used when downsampling.
enum class Agg : std::uint8_t { kMean, kMax, kMin, kSum, kCount };

struct Bucket {
  SimTime start;
  Duration width;
  double value = 0.0;
  std::size_t samples = 0;
};

/// Retention policy: points older than `raw_horizon` fold into rollups of
/// width `rollup_width`.
struct Retention {
  Duration raw_horizon = Duration::days(7);
  Duration rollup_width = Duration::hours(1);
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(Retention retention = Retention{}) : retention_(retention) {}

  /// Appends a sample. Out-of-order appends (late tunnel catch-up after a
  /// WAN outage) are accepted and kept sorted.
  void append(const SeriesKey& key, SimTime t, double value);

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::size_t point_count(const SeriesKey& key) const;
  [[nodiscard]] std::size_t total_points() const;

  /// Raw points in [from, to), time-sorted.
  [[nodiscard]] std::vector<Point> query(const SeriesKey& key, SimTime from,
                                         SimTime to) const;

  /// Fixed-width bucket aggregation over [from, to). Empty buckets are
  /// omitted.
  [[nodiscard]] std::vector<Bucket> downsample(const SeriesKey& key, SimTime from,
                                               SimTime to, Duration width, Agg agg) const;

  /// Latest point of a series, if any.
  [[nodiscard]] std::optional<Point> latest(const SeriesKey& key) const;

  /// Applies retention relative to `now`: raw points older than the raw
  /// horizon are replaced by their hourly mean rollups. Idempotent.
  void compact(SimTime now);

  /// All series keys for a metric (e.g. every AP reporting "util24").
  [[nodiscard]] std::vector<SeriesKey> keys_for_metric(const std::string& metric) const;

  /// Folds `other`'s series into this store and leaves `other` empty.
  /// Matching keys interleave their points time-sorted (shards report
  /// overlapping weeks), like ReportStore::merge at harvest; merge order
  /// only matters for equal timestamps, so callers needing bit-stable
  /// output merge shards in fixed fleet order.
  void merge(TimeSeriesStore&& other);

  /// Visits every series in key order with raw points sorted — the canonical
  /// iteration checkpoint serialization depends on. Sorting first makes the
  /// emitted bytes independent of append order.
  void for_each_series(
      const std::function<void(const SeriesKey&, const std::vector<Point>& raw,
                               const std::vector<Point>& rollups)>& fn) const;

  /// Installs one series wholesale (checkpoint restore). Both vectors must
  /// already be time-sorted, as for_each_series emits them.
  void restore_series(const SeriesKey& key, std::vector<Point> raw,
                      std::vector<Point> rollups);

 private:
  struct Series {
    std::vector<Point> raw;       // time-sorted
    std::vector<Point> rollups;   // hourly means of aged data, time-sorted
    bool raw_sorted = true;
  };
  void ensure_sorted(Series& s) const;

  Retention retention_;
  mutable std::map<SeriesKey, Series> series_;
};

}  // namespace wlm::backend
