#include "backend/tunnel.hpp"

namespace wlm::backend {

Tunnel::Tunnel(ApId ap, std::size_t queue_limit) : ap_(ap), queue_limit_(queue_limit) {}

void Tunnel::enqueue(std::vector<std::uint8_t> frame) {
  if (queue_.size() >= queue_limit_) {
    // Shed the oldest report: fresher telemetry is worth more than stale.
    queue_.pop_front();
    ++stats_.frames_dropped;
  }
  queue_.push_back(std::move(frame));
  ++stats_.frames_queued;
}

void Tunnel::disconnect() {
  if (connected_) {
    connected_ = false;
    ++stats_.disconnects;
  }
}

void Tunnel::reconnect() { connected_ = true; }

std::size_t Tunnel::flush() {
  const std::size_t lost = queue_.size();
  stats_.frames_flushed += lost;
  queue_.clear();
  return lost;
}

std::vector<std::vector<std::uint8_t>> Tunnel::poll(std::size_t max_frames) {
  std::vector<std::vector<std::uint8_t>> out;
  if (!connected_) return out;
  while (!queue_.empty() && out.size() < max_frames) {
    stats_.bytes_delivered += queue_.front().size();
    ++stats_.frames_delivered;
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

}  // namespace wlm::backend
