// Persistent management tunnel between an access point and the backend.
//
// Paper §2: each device keeps encrypted tunnels to two data centers, used
// only for statistics/configuration; on disconnection "normal client routing
// and accounting continues" and "the backend polls for queued information
// when the connection is reestablished". This class models exactly that
// contract: reports queue locally while down, nothing is lost (up to a
// bounded queue), and the poller drains on reconnect.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace wlm::backend {

struct TunnelStats {
  std::uint64_t frames_queued = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;   // bounded-queue overflow
  std::uint64_t frames_flushed = 0;   // lost to a device restart
  std::uint64_t bytes_delivered = 0;
  std::uint64_t disconnects = 0;
};

class Tunnel {
 public:
  /// `queue_limit` bounds device-side memory (the paper's APs are 64 MB
  /// boxes; unbounded buffering is exactly the §6.1 OOM failure mode).
  explicit Tunnel(ApId ap, std::size_t queue_limit = 4096);

  [[nodiscard]] ApId ap() const { return ap_; }
  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] const TunnelStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Device side: enqueue one encoded report frame.
  void enqueue(std::vector<std::uint8_t> frame);

  /// WAN events.
  void disconnect();
  void reconnect();

  /// Device restart: every queued frame is gone (reports queue in RAM; the
  /// paper's §6.1 OOM reboots lost exactly this state). Returns the number
  /// of frames lost.
  std::size_t flush();

  /// Backend side: drain up to `max_frames` queued frames (empty when
  /// disconnected — a pull never reaches a down device).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> poll(std::size_t max_frames = SIZE_MAX);

  /// Queued frames, oldest first (checkpoint serialization reads the raw
  /// bytes; the queue's content is exactly the in-flight bucket of the loss
  /// ledger).
  [[nodiscard]] const std::deque<std::vector<std::uint8_t>>& pending() const {
    return queue_;
  }

  /// Overlays checkpointed state onto a freshly constructed tunnel. The AP
  /// id and queue limit are construction-time configuration and must already
  /// match; only connection state, the queue, and the counters restore.
  void restore(bool connected, std::deque<std::vector<std::uint8_t>> queue,
               const TunnelStats& stats) {
    connected_ = connected;
    queue_ = std::move(queue);
    stats_ = stats;
  }

 private:
  ApId ap_;
  std::size_t queue_limit_;
  bool connected_ = true;
  std::deque<std::vector<std::uint8_t>> queue_;
  TunnelStats stats_;
};

}  // namespace wlm::backend
