#include "ckpt/campaign.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "ckpt/state.hpp"
#include "failsafe/failpoint.hpp"

namespace wlm::ckpt {

namespace {

Error section_error(const Cursor& c, const std::string& what) {
  // The cursor separates "bytes are broken" from "bytes disagree with the
  // rebuilt world": a latched cursor is malformed input, an intact cursor
  // with a failed load is a config mismatch.
  if (!c.ok()) return {Status::kMalformed, what + ": malformed payload"};
  return {Status::kBadConfig, what + ": inconsistent with the rebuilt world"};
}

}  // namespace

std::vector<std::uint8_t> save_campaign(sim::FleetRunner& runner,
                                        const CampaignProgress& progress) {
  Writer w;

  Buf meta;
  meta.str(progress.label);
  meta.u64(progress.phases_done.size());
  for (const auto& phase : progress.phases_done) meta.str(phase);
  meta.f64(runner.campaign_sim_hours());
  save_ledger(meta, runner.loss_ledger());
  w.add_section(SectionTag::kMeta, meta.take());

  Buf config;
  save_world_config(config, runner.config());
  w.add_section(SectionTag::kConfig, config.take());

  // v4: the harvested fleet serializes as its sealed columnar segments —
  // no row materialization, and spilled segments are pulled back from disk
  // so the checkpoint stands alone. If a spill file has become unreadable,
  // the section keeps its leading report total but carries zero segments:
  // any attempt to restore then fails the count cross-check loudly instead
  // of silently resuming without the harvested reports.
  Buf fleet_store;
  if (!save_fleet_segments(fleet_store, runner.fleet_tsdb())) {
    fleet_store = Buf{};
    fleet_store.u64(runner.fleet_tsdb().stats().reports);
    fleet_store.u64(0);  // zero segments: poisoned on purpose
  }
  w.add_section(SectionTag::kFleetStore, fleet_store.take());

  Buf fleet_telemetry;
  save_metrics(fleet_telemetry, runner.metrics());
  save_spans(fleet_telemetry, runner.trace());
  w.add_section(SectionTag::kFleetTelemetry, fleet_telemetry.take());

  // Shards serialize on this (the orchestrating) thread in fleet order, so
  // the container bytes are byte-identical for any --jobs.
  for (const auto& shard : runner.shards()) {
    Buf b;
    save_shard_state(b, *shard);
    w.add_section(SectionTag::kShard, b.take());
  }

  // The supervision manifest rides in every checkpoint (usually empty): a
  // resumed degraded run must keep its incident history and quarantine set.
  Buf supervision;
  save_manifest(supervision, runner.supervisor().manifest());
  w.add_section(SectionTag::kSupervision, supervision.take());

  return w.finish();
}

Error save_campaign_file(const std::string& path, sim::FleetRunner& runner,
                         const CampaignProgress& progress) {
  if (failsafe::failpoint_fails("ckpt.save.write")) {
    return {Status::kIo, "injected failpoint: ckpt.save.write"};
  }
  const auto bytes = save_campaign(runner, progress);
  // Atomic like Writer::write_file: a crash mid-write must never leave a
  // half-checkpoint where a resume would find it.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return {Status::kIo, "cannot open " + tmp + " for writing"};
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    std::remove(tmp.c_str());
    return {Status::kIo, "short write to " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {Status::kIo, "cannot rename " + tmp + " to " + path};
  }
  return {};
}

Error restore_campaign(std::span<const std::uint8_t> bytes, int threads,
                       RestoredCampaign& out) {
  Reader reader;
  if (auto err = reader.load({bytes.begin(), bytes.end()})) return err;

  const auto config_payload = reader.find(SectionTag::kConfig);
  if (!config_payload) return {Status::kMalformed, "missing config section"};
  Cursor config_cursor(*config_payload);
  sim::WorldConfig config;
  if (!load_world_config(config_cursor, config) || !config_cursor.at_end()) {
    return {Status::kMalformed, "config section: malformed payload"};
  }
  config.threads = threads < 1 ? 1 : threads;

  // Reconstruction: deterministic from the config alone. Everything below
  // overlays mutable state onto this fresh world; the runner only reaches
  // `out` after every section applied cleanly.
  auto runner = std::make_unique<sim::FleetRunner>(config);

  const auto shard_sections = reader.find_all(SectionTag::kShard);
  if (shard_sections.size() != runner->shards().size()) {
    return {Status::kBadConfig,
            "checkpoint has " + std::to_string(shard_sections.size()) +
                " shard sections, rebuilt world has " +
                std::to_string(runner->shards().size())};
  }
  for (std::size_t i = 0; i < shard_sections.size(); ++i) {
    Cursor c(shard_sections[i]);
    if (!load_shard_state(c, *runner->shards()[i])) {
      return section_error(c, "shard " + std::to_string(i));
    }
  }

  if (const auto payload = reader.find(SectionTag::kFleetStore)) {
    Cursor c(*payload);
    if (!load_fleet_segments(c, runner->fleet_tsdb()) || !c.at_end()) {
      return section_error(c, "fleet store");
    }
    // The legacy row view materializes from the adopted segments on first
    // store() access.
    runner->invalidate_store_view();
  } else {
    return {Status::kMalformed, "missing fleet store section"};
  }

  if (const auto payload = reader.find(SectionTag::kFleetTelemetry)) {
    Cursor c(*payload);
    std::vector<telemetry::TraceSpan> spans;
    if (!load_metrics(c, runner->metrics()) || !load_spans(c, spans) || !c.at_end()) {
      return section_error(c, "fleet telemetry");
    }
    runner->trace() = std::move(spans);
  } else {
    return {Status::kMalformed, "missing fleet telemetry section"};
  }

  // Supervision restores BEFORE the meta ledger cross-check: the fleet
  // ledger folds quarantined shards into lost_supervision, so the
  // quarantine set must be in place for the cross-check to balance.
  if (const auto payload = reader.find(SectionTag::kSupervision)) {
    Cursor c(*payload);
    failsafe::DegradedRunManifest manifest;
    if (!load_manifest(c, manifest) || !c.at_end()) {
      return section_error(c, "supervision manifest");
    }
    runner->restore_supervision(std::move(manifest));
  } else {
    return {Status::kMalformed, "missing supervision section"};
  }

  CampaignProgress progress;
  const auto meta_payload = reader.find(SectionTag::kMeta);
  if (!meta_payload) return {Status::kMalformed, "missing meta section"};
  {
    Cursor c(*meta_payload);
    progress.label = c.str();
    const std::uint64_t n_phases = c.u64();
    if (!c.ok() || n_phases > c.remaining()) {
      return {Status::kMalformed, "meta: malformed payload"};
    }
    for (std::uint64_t i = 0; i < n_phases && c.ok(); ++i) {
      progress.phases_done.push_back(c.str());
    }
    progress.sim_hours = c.f64();
    fault::LossLedger saved_ledger;
    if (!load_ledger(c, saved_ledger) || !c.at_end()) {
      return {Status::kMalformed, "meta: malformed payload"};
    }
    // Final cross-check: the ledger is derived from tunnel + poller state
    // across every shard, so equality here means the overlay reproduced the
    // campaign's end-to-end accounting exactly.
    if (runner->loss_ledger() != saved_ledger) {
      return {Status::kBadConfig, "loss ledger cross-check failed after overlay"};
    }
  }
  runner->set_campaign_sim_hours(progress.sim_hours);

  out.runner = std::move(runner);
  out.progress = std::move(progress);
  return {};
}

Error restore_campaign_file(const std::string& path, int threads, RestoredCampaign& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return {Status::kIo, "cannot open " + path + ": " + std::strerror(errno)};
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return {Status::kIo, "read error on " + path};
  return restore_campaign(bytes, threads, out);
}

}  // namespace wlm::ckpt
