// Whole-campaign checkpoint/restore on top of the fleet runtime.
//
// Strategy: reconstruct-then-overlay. A FleetRunner's construction is fully
// deterministic from its WorldConfig (fleet layout, clients, links, fault
// plans — all substream-seeded), so a checkpoint stores the config plus
// only the *mutable* campaign state: RNG substream positions, tunnel
// queues and counters, poller accounting, shard stores, telemetry
// registries and flight recorders, fault-schedule cursors, and the merged
// fleet-level store/metrics/trace. Restore rebuilds the world from the
// config (at whatever --jobs the new process wants — parallelism is not
// simulated state) and overlays the saved state on top.
//
// Checkpoints cut at campaign phase boundaries, where every shard is
// quiescent and all state is owned by the orchestrating thread. Because
// shard campaigns are deterministic for any worker-pool size, the
// checkpoint bytes themselves are byte-identical across --jobs, and a
// resumed campaign's outputs are byte-identical to an uninterrupted run's
// (tests/ckpt/resume_e2e_test.cpp pins both, through a real kill).
//
// Restore is all-or-nothing: any failure returns a typed Error and no
// runner. The last overlay step cross-checks the rebuilt world's loss
// ledger against the snapshot stored at save time — a checkpoint from a
// different binary, seed, or fault scenario fails closed (kBadConfig)
// instead of resuming a subtly different campaign.
//
// What is deliberately NOT captured: wall-clock profiler data (real time
// is not simulated state), event-queue callbacks (std::function does not
// serialize; World-level checkpoints cut at drained-queue points and keep
// only the ClockState), and the thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckpt/container.hpp"
#include "sim/fleet_runner.hpp"

namespace wlm::ckpt {

/// Where in the campaign script the checkpoint was cut. The resuming
/// driver replays only the phases NOT in `phases_done`.
struct CampaignProgress {
  /// Phase names completed before the cut, in execution order (the same
  /// names FleetRunner's profiler uses: usage_week, snapshot, mr16, ...).
  std::vector<std::string> phases_done;
  /// Free-form label for humans (wlmctl prints it on resume).
  std::string label;
  /// Simulated hours covered (mirrors FleetRunner::campaign_sim_hours();
  /// filled from the runner at save time, applied back at restore).
  double sim_hours = 0.0;
};

/// Serializes the runner's full mutable state. Must be called between
/// campaign phases (shards quiescent); `progress.sim_hours` is overwritten
/// from the runner.
[[nodiscard]] std::vector<std::uint8_t> save_campaign(sim::FleetRunner& runner,
                                                      const CampaignProgress& progress);

/// save_campaign() straight to a file (atomic: temp + rename).
[[nodiscard]] Error save_campaign_file(const std::string& path, sim::FleetRunner& runner,
                                       const CampaignProgress& progress);

struct RestoredCampaign {
  std::unique_ptr<sim::FleetRunner> runner;
  CampaignProgress progress;
};

/// Rebuilds a FleetRunner from checkpoint bytes with `threads` workers and
/// overlays the saved state. On any failure returns a typed Error and
/// leaves `out` untouched — never a partially restored runner.
[[nodiscard]] Error restore_campaign(std::span<const std::uint8_t> bytes, int threads,
                                     RestoredCampaign& out);

[[nodiscard]] Error restore_campaign_file(const std::string& path, int threads,
                                          RestoredCampaign& out);

}  // namespace wlm::ckpt
