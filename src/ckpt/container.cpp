#include "ckpt/container.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "core/checksum.hpp"
#include "wire/varint.hpp"

namespace wlm::ckpt {

namespace {

constexpr std::uint8_t kMagic[8] = {'W', 'L', 'M', 'C', 'K', 'P', 'T', 0x01};

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kIo: return "io";
    case Status::kBadMagic: return "bad_magic";
    case Status::kBadVersion: return "bad_version";
    case Status::kTruncated: return "truncated";
    case Status::kBadCrc: return "bad_crc";
    case Status::kMalformed: return "malformed";
    case Status::kBadConfig: return "bad_config";
  }
  return "unknown";
}

// --- Buf ---

void Buf::u64(std::uint64_t v) { wire::put_varint(out_, v); }

void Buf::i64(std::int64_t v) { wire::put_varint(out_, wire::zigzag_encode(v)); }

void Buf::f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void Buf::bytes(std::span<const std::uint8_t> b) {
  u64(b.size());
  out_.insert(out_.end(), b.begin(), b.end());
}

void Buf::str(std::string_view s) {
  bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

// --- Cursor ---

std::uint64_t Cursor::u64() {
  if (!ok_) return 0;
  const auto r = wire::get_varint(data_.subspan(pos_));
  if (!r) {
    ok_ = false;
    return 0;
  }
  pos_ += r->consumed;
  return r->value;
}

std::int64_t Cursor::i64() { return wire::zigzag_decode(u64()); }

double Cursor::f64() {
  if (!ok_) return 0.0;
  if (remaining() < 8) {
    ok_ = false;
    return 0.0;
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return std::bit_cast<double>(bits);
}

bool Cursor::boolean() {
  const std::uint64_t v = u64();
  if (v > 1) ok_ = false;
  return ok_ && v == 1;
}

std::span<const std::uint8_t> Cursor::bytes() {
  const std::uint64_t n = u64();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return {};
  }
  const auto out = data_.subspan(pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

std::string Cursor::str() {
  const auto b = bytes();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

// --- Writer ---

void Writer::add_section(SectionTag tag, std::vector<std::uint8_t> payload) {
  sections_.push_back({tag, std::move(payload)});
}

std::vector<std::uint8_t> Writer::finish() const {
  std::size_t total = sizeof kMagic + 8;
  for (const auto& s : sections_) total += s.payload.size() + 24;
  std::vector<std::uint8_t> out;
  out.reserve(total);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u32_le(out, kFormatVersion);
  put_u32_le(out, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& s : sections_) {
    wire::put_varint(out, static_cast<std::uint64_t>(s.tag));
    wire::put_varint(out, s.payload.size());
    put_u32_le(out, crc32(s.payload));
    out.insert(out.end(), s.payload.begin(), s.payload.end());
  }
  return out;
}

Error Writer::write_file(const std::string& path) const {
  const auto bytes = finish();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return {Status::kIo, "cannot open " + tmp + " for writing"};
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    std::remove(tmp.c_str());
    return {Status::kIo, "short write to " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {Status::kIo, "cannot rename " + tmp + " to " + path};
  }
  return {};
}

// --- Reader ---

Error Reader::load(std::vector<std::uint8_t> bytes) {
  sections_.clear();
  bytes_ = std::move(bytes);
  const std::span<const std::uint8_t> data{bytes_};

  if (data.size() < sizeof kMagic + 8) return {Status::kTruncated, "header truncated"};
  if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    return {Status::kBadMagic, "not a WLMCKPT file"};
  }
  const std::uint32_t version = get_u32_le(data.data() + sizeof kMagic);
  if (version != kFormatVersion) {
    return {Status::kBadVersion,
            "format version " + std::to_string(version) + ", expected " +
                std::to_string(kFormatVersion)};
  }
  const std::uint32_t count = get_u32_le(data.data() + sizeof kMagic + 4);
  std::size_t pos = sizeof kMagic + 8;
  // Each section costs at least 6 bytes (tag + len + crc); a count larger
  // than the bytes could hold is corruption, caught before any loop runs.
  if (count > (data.size() - pos) / 6 + 1) {
    return {Status::kMalformed, "section count " + std::to_string(count) +
                                    " impossible for " + std::to_string(data.size()) +
                                    " bytes"};
  }

  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto tag = wire::get_varint(data.subspan(pos));
    if (!tag) return {Status::kTruncated, "section " + std::to_string(i) + ": tag"};
    pos += tag->consumed;
    const auto len = wire::get_varint(data.subspan(pos));
    if (!len) return {Status::kTruncated, "section " + std::to_string(i) + ": length"};
    pos += len->consumed;
    if (data.size() - pos < 4) {
      return {Status::kTruncated, "section " + std::to_string(i) + ": crc"};
    }
    const std::uint32_t want_crc = get_u32_le(data.data() + pos);
    pos += 4;
    if (len->value > data.size() - pos) {
      return {Status::kTruncated, "section " + std::to_string(i) + ": payload"};
    }
    const auto payload = data.subspan(pos, static_cast<std::size_t>(len->value));
    pos += static_cast<std::size_t>(len->value);
    if (crc32(payload) != want_crc) {
      return {Status::kBadCrc, "section " + std::to_string(i) + ": crc mismatch"};
    }
    sections_.push_back({static_cast<SectionTag>(tag->value), payload});
  }
  if (pos != data.size()) {
    return {Status::kMalformed,
            std::to_string(data.size() - pos) + " trailing bytes after last section"};
  }
  return {};
}

Error Reader::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {Status::kIo, "cannot open " + path};
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return {Status::kIo, "read error on " + path};
  return load(std::move(bytes));
}

std::optional<std::span<const std::uint8_t>> Reader::find(SectionTag tag) const {
  for (const auto& s : sections_) {
    if (s.tag == tag) return s.payload;
  }
  return std::nullopt;
}

std::vector<std::span<const std::uint8_t>> Reader::find_all(SectionTag tag) const {
  std::vector<std::span<const std::uint8_t>> out;
  for (const auto& s : sections_) {
    if (s.tag == tag) out.push_back(s.payload);
  }
  return out;
}

}  // namespace wlm::ckpt
