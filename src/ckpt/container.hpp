// Checkpoint container format: the on-disk envelope campaign snapshots
// travel in.
//
// A checkpoint is a sequence of tagged, length-prefixed, CRC-guarded
// sections behind a magic/version header:
//
//   [8B magic "WLMCKPT\x01"] [u32 LE version] [u32 LE section count]
//   section*: [tag varint] [payload len varint] [crc32 4B LE] [payload]
//
// Built on the same primitives as the telemetry wire format (wire/varint,
// core/checksum), for the same reason the paper's backend reused its
// protocol stack: one codec, one set of bugs. Every multi-byte scalar is
// little-endian and every double is its IEEE-754 bit pattern, so a
// checkpoint written at --jobs 8 is byte-identical to one written at
// --jobs 1 and restores bit-identically on any host.
//
// The reader is adversarial by construction: truncated files, flipped
// bits, bumped versions, and garbage all surface as a typed Status —
// never a crash, hang, or partial parse. Counts read from the file are
// validated against the bytes actually remaining before any loop trusts
// them (tests/ckpt/ckpt_fuzz_test.cpp holds this line).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wlm::ckpt {

enum class Status : std::uint8_t {
  kOk = 0,
  kIo,          // file unreadable/unwritable
  kBadMagic,    // not a checkpoint file
  kBadVersion,  // a future (or corrupted) format revision
  kTruncated,   // ran out of bytes mid-structure
  kBadCrc,      // a section's payload failed its CRC
  kMalformed,   // syntactically broken payload content
  kBadConfig,   // well-formed, but inconsistent with the rebuilt world
};

[[nodiscard]] const char* status_name(Status s);

/// Typed failure: status plus a one-line human diagnostic.
struct Error {
  Status status = Status::kOk;
  std::string detail;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
  [[nodiscard]] explicit operator bool() const { return !ok(); }
};

/// Section tags. Append, never renumber (same contract as the wire format).
enum class SectionTag : std::uint64_t {
  kMeta = 1,            // campaign progress + ledger snapshot (cross-check)
  kConfig = 2,          // WorldConfig: everything reconstruction needs
  kFleetStore = 3,      // merged backend store (post-harvest state)
  kFleetTelemetry = 4,  // merged metrics + trace + sim-hours
  kShard = 5,           // repeated, one per network, fleet order
  kSupervision = 6,     // degraded-run manifest (supervision incidents)
  kTsdbSegments = 7,    // repeated, one sealed tsdb segment per section
};

// Version 2: shard sections carry the two-tier classifier (verdict cache
// contents + slow-path counter) and the config section carries the
// classifier mode and cache capacity. Version 3: the ledger carries the
// lost_supervision bucket, the config section carries the supervision
// knobs, and a kSupervision section serializes the degraded-run manifest.
// Version 4: the fleet store serializes as sealed columnar tsdb segments
// (each with its own internal CRCs) instead of row-encoded reports, the
// config section carries the streaming-harvest bit (the on/off state is
// simulated behavior; the ceiling value and spill directory are host
// resource knobs and stay out, like the thread count), and time-series
// point lists use the columnar codec (tsdb/series_codec). Version 5: the
// config section carries the mobility knobs and shard sections append a
// mobility block (mobility RNG, per-client motion state, serving BSS, and
// pending-handoff debounce) when mobility is enabled, so a restored run
// resumes every walk mid-stride. Version 6: the ledger carries the
// lost_mesh_partition bucket, the config section carries the mesh backhaul
// knobs, and shard sections append a mesh block (mesh RNG, the phase's
// routing table, per-AP relay busy horizons, and the partition-drop count)
// when mesh is enabled, so a restored run relays over the same drifted
// topology. Older versions fail kBadVersion.
inline constexpr std::uint32_t kFormatVersion = 6;

/// Append-only payload builder. Scalars are varints (zigzag for signed),
/// doubles are 8-byte LE bit patterns (exact round-trip, no printf loss),
/// byte strings are length-prefixed.
class Buf {
 public:
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u64(v ? 1 : 0); }
  void bytes(std::span<const std::uint8_t> b);
  void str(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Fail-latching payload reader: the first malformed read poisons the
/// cursor and every subsequent read returns a zero value, so load code can
/// decode a whole structure linearly and check ok() once. Nothing is ever
/// allocated from an untrusted count — callers bound loops with
/// remaining() (each element consumes at least one byte).
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  /// Length-prefixed byte string; empty span (and latched failure) when the
  /// prefix overruns the remaining bytes.
  std::span<const std::uint8_t> bytes();
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the payload was consumed exactly, with no failure.
  [[nodiscard]] bool at_end() const { return ok_ && pos_ == data_.size(); }
  /// Latches failure from caller-side validation (bad enum value, count
  /// mismatch) so it reports like any other malformed read.
  void fail() { ok_ = false; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Assembles a checkpoint container from finished section payloads.
class Writer {
 public:
  void add_section(SectionTag tag, std::vector<std::uint8_t> payload);
  /// Serializes header + all sections.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;
  /// finish() to a file, atomically (temp file + rename): a crash mid-write
  /// never leaves a half-checkpoint at `path`.
  [[nodiscard]] Error write_file(const std::string& path) const;

 private:
  struct Section {
    SectionTag tag;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
};

/// Validates and indexes a checkpoint container. load() checks everything
/// up front — magic, version, section framing, every CRC — so section
/// payloads handed out afterwards are at least structurally intact.
class Reader {
 public:
  struct Section {
    SectionTag tag;
    std::span<const std::uint8_t> payload;
  };

  /// Takes ownership of the container bytes (payload spans point into it).
  [[nodiscard]] Error load(std::vector<std::uint8_t> bytes);
  [[nodiscard]] Error load_file(const std::string& path);

  [[nodiscard]] const std::vector<Section>& sections() const { return sections_; }
  /// First section with `tag`, nullopt when absent.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> find(SectionTag tag) const;
  /// Every section with `tag`, in file order.
  [[nodiscard]] std::vector<std::span<const std::uint8_t>> find_all(SectionTag tag) const;

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<Section> sections_;
};

}  // namespace wlm::ckpt
