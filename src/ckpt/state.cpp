#include "ckpt/state.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "tsdb/series_codec.hpp"
#include "wire/messages.hpp"

namespace wlm::ckpt {

namespace {

/// Bounds an element count read from the payload: every element consumes at
/// least `min_bytes_each`, so a count the remaining bytes cannot possibly
/// hold is corruption — latch the cursor instead of looping on it.
bool plausible_count(Cursor& c, std::uint64_t count, std::size_t min_bytes_each) {
  if (count > c.remaining() / std::max<std::size_t>(1, min_bytes_each)) {
    c.fail();
    return false;
  }
  return true;
}

}  // namespace

// --- RNG ---

void save_rng(Buf& b, const Rng::State& s) {
  for (const auto word : s.s) b.u64(word);
  b.f64(s.cached_normal);
  b.boolean(s.has_cached_normal);
}

bool load_rng(Cursor& c, Rng::State& out) {
  Rng::State s;
  for (auto& word : s.s) word = c.u64();
  s.cached_normal = c.f64();
  s.has_cached_normal = c.boolean();
  if (!c.ok()) return false;
  out = s;
  return true;
}

// --- mesh link ---

namespace {

void save_fading(Buf& b, const phy::FadingProcess::State& s) {
  save_rng(b, s.rng);
  b.f64(s.re);
  b.f64(s.im);
}

bool load_fading(Cursor& c, phy::FadingProcess::State& out) {
  phy::FadingProcess::State s;
  if (!load_rng(c, s.rng)) return false;
  s.re = c.f64();
  s.im = c.f64();
  if (!c.ok()) return false;
  out = s;
  return true;
}

}  // namespace

void save_link(Buf& b, const sim::MeshLink::State& s) {
  save_rng(b, s.rng);
  save_fading(b, s.fast_fading);
  save_fading(b, s.slow_drift);
  b.f64(s.current_fast_db);
  b.f64(s.current_slow_db);
}

bool load_link(Cursor& c, sim::MeshLink::State& out) {
  sim::MeshLink::State s;
  if (!load_rng(c, s.rng)) return false;
  if (!load_fading(c, s.fast_fading)) return false;
  if (!load_fading(c, s.slow_drift)) return false;
  s.current_fast_db = c.f64();
  s.current_slow_db = c.f64();
  if (!c.ok()) return false;
  out = s;
  return true;
}

// --- event-queue clock ---

void save_clock(Buf& b, const sim::EventQueue::ClockState& s) {
  b.i64(s.now_us);
  b.u64(s.seq);
  b.u64(s.executed);
}

bool load_clock(Cursor& c, sim::EventQueue::ClockState& out) {
  sim::EventQueue::ClockState s;
  s.now_us = c.i64();
  s.seq = c.u64();
  s.executed = c.u64();
  if (!c.ok()) return false;
  out = s;
  return true;
}

// --- tunnel ---

namespace {

void save_tunnel_stats(Buf& b, const backend::TunnelStats& s) {
  b.u64(s.frames_queued);
  b.u64(s.frames_delivered);
  b.u64(s.frames_dropped);
  b.u64(s.frames_flushed);
  b.u64(s.bytes_delivered);
  b.u64(s.disconnects);
}

bool load_tunnel_stats(Cursor& c, backend::TunnelStats& out) {
  backend::TunnelStats s;
  s.frames_queued = c.u64();
  s.frames_delivered = c.u64();
  s.frames_dropped = c.u64();
  s.frames_flushed = c.u64();
  s.bytes_delivered = c.u64();
  s.disconnects = c.u64();
  if (!c.ok()) return false;
  out = s;
  return true;
}

}  // namespace

void save_tunnel(Buf& b, const backend::Tunnel& tunnel) {
  b.boolean(tunnel.connected());
  save_tunnel_stats(b, tunnel.stats());
  b.u64(tunnel.pending().size());
  for (const auto& frame : tunnel.pending()) b.bytes(frame);
}

bool load_tunnel(Cursor& c, backend::Tunnel& tunnel) {
  const bool connected = c.boolean();
  backend::TunnelStats stats;
  if (!load_tunnel_stats(c, stats)) return false;
  const std::uint64_t n = c.u64();
  if (!c.ok() || !plausible_count(c, n, 1)) return false;
  std::deque<std::vector<std::uint8_t>> queue;
  for (std::uint64_t i = 0; i < n && c.ok(); ++i) {
    const auto frame = c.bytes();
    queue.emplace_back(frame.begin(), frame.end());
  }
  if (!c.ok()) return false;
  tunnel.restore(connected, std::move(queue), stats);
  return true;
}

// --- poller ---

void save_poller(Buf& b, const backend::Poller& poller) {
  const auto& s = poller.stats();
  b.u64(s.frames_harvested);
  b.u64(s.corrupt_frames);
  b.u64(s.malformed_reports);
  b.u64(s.bytes_harvested);
  b.u64(s.reports_stored);
  b.u64(s.polls_skipped_backoff);
  b.i64(poller.now_us());
  const auto& counters = poller.tunnel_counters();
  b.u64(counters.size());
  for (const auto& t : counters) {
    b.u64(t.ap.value());
    b.u64(t.frames_polled);
    b.u64(t.corrupt_frames);
    b.u64(t.malformed_reports);
    b.u64(t.reports_stored);
    b.u64(t.cycles_backed_off);
    b.i64(t.backoff_level);
    b.i64(t.backoff_remaining);
    b.boolean(t.quarantined);
  }
}

bool load_poller(Cursor& c, backend::Poller& poller) {
  backend::PollerStats stats;
  stats.frames_harvested = c.u64();
  stats.corrupt_frames = c.u64();
  stats.malformed_reports = c.u64();
  stats.bytes_harvested = c.u64();
  stats.reports_stored = c.u64();
  stats.polls_skipped_backoff = c.u64();
  const std::int64_t now_us = c.i64();
  const std::uint64_t n = c.u64();
  if (!c.ok() || !plausible_count(c, n, 9)) return false;
  std::vector<backend::TunnelCounters> counters;
  counters.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && c.ok(); ++i) {
    backend::TunnelCounters t;
    const std::uint64_t ap = c.u64();
    if (ap > UINT32_MAX) c.fail();
    t.ap = ApId{static_cast<std::uint32_t>(ap)};
    t.frames_polled = c.u64();
    t.corrupt_frames = c.u64();
    t.malformed_reports = c.u64();
    t.reports_stored = c.u64();
    t.cycles_backed_off = c.u64();
    const std::int64_t level = c.i64();
    const std::int64_t rem = c.i64();
    if (level < 0 || level > 64 || rem < 0 || rem > INT32_MAX) c.fail();
    t.backoff_level = static_cast<int>(level);
    t.backoff_remaining = static_cast<int>(rem);
    t.quarantined = c.boolean();
    counters.push_back(t);
  }
  if (!c.ok()) return false;
  return poller.restore(stats, counters, now_us);
}

// --- report store ---

void save_store(Buf& b, const backend::ReportStore& store) {
  const auto aps = store.aps();  // sorted — the canonical order
  b.u64(aps.size());
  for (const ApId ap : aps) {
    const auto& reports = store.reports_for(ap);
    b.u64(ap.value());
    b.u64(reports.size());
    for (const auto& report : reports) b.bytes(wire::encode_report(report));
  }
}

bool load_store(Cursor& c, backend::ReportStore& store) {
  const std::uint64_t ap_count = c.u64();
  if (!c.ok() || !plausible_count(c, ap_count, 2)) return false;
  std::vector<wire::ApReport> decoded;
  for (std::uint64_t a = 0; a < ap_count && c.ok(); ++a) {
    const std::uint64_t ap = c.u64();
    const std::uint64_t n = c.u64();
    if (ap > UINT32_MAX || !c.ok() || !plausible_count(c, n, 1)) {
      c.fail();
      return false;
    }
    for (std::uint64_t i = 0; i < n && c.ok(); ++i) {
      auto report = wire::decode_report(c.bytes());
      if (!c.ok()) return false;
      // The report's own ap_id must agree with its bucket: a well-framed
      // section whose content contradicts itself is malformed, not usable.
      if (!report || report->ap_id != ap) {
        c.fail();
        return false;
      }
      decoded.push_back(std::move(*report));
    }
  }
  if (!c.ok()) return false;
  for (auto& report : decoded) store.add(std::move(report));
  return true;
}

// --- time series ---

void save_timeseries(Buf& b, const backend::TimeSeriesStore& store) {
  // v4: point lists ride the columnar codec (delta-coded times, dictionary
  // or fixed64 values) as one length-prefixed byte string per list — the
  // same compression story as the segment store, ~6x smaller than the old
  // row encoding for typical telemetry.
  b.u64(store.series_count());
  std::vector<std::uint8_t> scratch;
  const auto put_points = [&](const std::vector<backend::Point>& points) {
    scratch.clear();
    tsdb::encode_points(scratch, points);
    b.bytes(scratch);
  };
  store.for_each_series([&](const backend::SeriesKey& key,
                            const std::vector<backend::Point>& raw,
                            const std::vector<backend::Point>& rollups) {
    b.str(key.metric);
    b.u64(key.entity);
    put_points(raw);
    put_points(rollups);
  });
}

bool load_timeseries(Cursor& c, backend::TimeSeriesStore& store) {
  const std::uint64_t series_count = c.u64();
  if (!c.ok() || !plausible_count(c, series_count, 3)) return false;
  struct Decoded {
    backend::SeriesKey key;
    std::vector<backend::Point> raw;
    std::vector<backend::Point> rollups;
  };
  std::vector<Decoded> decoded;
  auto load_points = [&](std::vector<backend::Point>& out) {
    const auto payload = c.bytes();
    if (!c.ok()) return;
    std::size_t pos = 0;
    // The list must decode cleanly AND consume its byte string exactly —
    // trailing garbage inside a well-framed string is corruption.
    if (!tsdb::decode_points(payload, pos, out) || pos != payload.size()) c.fail();
  };
  for (std::uint64_t s = 0; s < series_count && c.ok(); ++s) {
    Decoded d;
    d.key.metric = c.str();
    d.key.entity = c.u64();
    load_points(d.raw);
    load_points(d.rollups);
    if (c.ok()) decoded.push_back(std::move(d));
  }
  if (!c.ok()) return false;
  for (auto& d : decoded) {
    store.restore_series(d.key, std::move(d.raw), std::move(d.rollups));
  }
  return true;
}

// --- fleet segment vault ---

bool save_fleet_segments(Buf& b, const tsdb::FleetStore& store) {
  // The report total leads the section so the restore side can prove no
  // segment went missing (e.g. a spill file that became unreadable between
  // spill and save would otherwise vanish silently).
  b.u64(store.stats().reports);
  // Count only live segments: drop_network leaves zeroed placeholder
  // records behind (spill offsets of later segments must not shift), and a
  // quarantined network's batches must not resurface through a restore.
  std::uint64_t live = 0;
  for (std::size_t i = 0; i < store.segment_count(); ++i) {
    if (store.info(i).size > 0) ++live;
  }
  b.u64(live);
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < store.segment_count(); ++i) {
    const auto info = store.info(i);
    if (info.size == 0) continue;
    if (store.segment_bytes(i, bytes)) return false;  // spill file unreadable
    b.u64(info.network_id);
    b.u64(info.batch_seq);
    b.u64(info.n_reports);
    b.bytes(bytes);
  }
  return true;
}

bool load_fleet_segments(Cursor& c, tsdb::FleetStore& store) {
  const std::uint64_t expected_reports = c.u64();
  const std::uint64_t n_segments = c.u64();
  // Each segment costs at least its header (magic + fixed words + trailer).
  if (!c.ok() || !plausible_count(c, n_segments, 24)) return false;
  std::vector<std::vector<std::uint8_t>> segments;
  for (std::uint64_t i = 0; i < n_segments && c.ok(); ++i) {
    const std::uint64_t network_id = c.u64();
    const std::uint64_t batch_seq = c.u64();
    const std::uint64_t n_reports = c.u64();
    const auto payload = c.bytes();
    if (!c.ok()) return false;
    // The envelope's claims must agree with the segment's own validated
    // header — a mismatch means the container was stitched together.
    tsdb::SegmentHeader hdr;
    if (tsdb::SegmentReader::read_header(payload, hdr) || hdr.network_id != network_id ||
        hdr.batch_seq != batch_seq || hdr.n_reports != n_reports) {
      c.fail();
      return false;
    }
    segments.emplace_back(payload.begin(), payload.end());
  }
  if (!c.ok()) return false;
  // All-or-nothing: adopt (which re-validates every CRC) only after the
  // whole section parsed, and the adopted total must match the leading
  // claim — a shortfall means a segment was lost between spill and save.
  for (auto& seg : segments) {
    if (store.adopt_segment(std::move(seg))) {
      store.clear();
      return false;
    }
  }
  if (store.stats().reports != expected_reports) {
    store.clear();
    c.fail();
    return false;
  }
  return true;
}

// --- usage aggregator ---

/// Friend of backend::UsageAggregator: checkpointing needs the raw vote and
/// sighting maps, which the public resolved view cannot reproduce.
struct AggregatorAccess {
  static void save(Buf& b, const backend::UsageAggregator& agg) {
    // Canonical order: MACs ascending, and every inner map key-sorted.
    auto sorted_macs = [](const auto& map) {
      std::vector<MacAddress> macs;
      macs.reserve(map.size());
      for (const auto& [mac, unused] : map) macs.push_back(mac);
      std::sort(macs.begin(), macs.end());
      return macs;
    };

    const auto client_macs = sorted_macs(agg.clients_);
    b.u64(client_macs.size());
    for (const MacAddress mac : client_macs) {
      const auto& cl = agg.clients_.at(mac);
      b.u64(mac.to_u64());
      b.u64(static_cast<std::uint64_t>(cl.os));
      b.u64(cl.capability_bits);
      b.i64(cl.ap_count);
      std::vector<classify::AppId> apps;
      apps.reserve(cl.app_bytes.size());
      for (const auto& [app, unused] : cl.app_bytes) apps.push_back(app);
      std::sort(apps.begin(), apps.end());
      b.u64(apps.size());
      for (const classify::AppId app : apps) {
        const auto& [up, down] = cl.app_bytes.at(app);
        b.u64(static_cast<std::uint64_t>(app));
        b.u64(up);
        b.u64(down);
      }
    }

    // Observations live inside each ClientAggregate now, but the canonical
    // form stays what it always was — a sightings section then a votes
    // section, MACs ascending, inner keys sorted — so aggregator checkpoint
    // bytes are unchanged across the flat-layout rewrite.
    std::vector<MacAddress> seen_macs;
    std::vector<MacAddress> vote_macs;
    seen_macs.reserve(agg.clients_.size());
    vote_macs.reserve(agg.clients_.size());
    for (const auto& [mac, cl2] : agg.clients_) {
      if (!cl2.obs.seen.empty()) seen_macs.push_back(mac);
      if (!cl2.obs.votes.empty()) vote_macs.push_back(mac);
    }
    std::sort(seen_macs.begin(), seen_macs.end());
    std::sort(vote_macs.begin(), vote_macs.end());

    b.u64(seen_macs.size());
    for (const MacAddress mac : seen_macs) {
      auto aps = agg.clients_.at(mac).obs.seen;
      std::sort(aps.begin(), aps.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      b.u64(mac.to_u64());
      b.u64(aps.size());
      for (const auto& [ap, flag] : aps) {
        b.u64(ap.value());
        b.boolean(flag);
      }
    }

    b.u64(vote_macs.size());
    for (const MacAddress mac : vote_macs) {
      auto votes = agg.clients_.at(mac).obs.votes;
      std::sort(votes.begin(), votes.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      b.u64(mac.to_u64());
      b.u64(votes.size());
      for (const auto& [os, count] : votes) {
        b.u64(os);
        b.i64(count);
      }
    }
  }

  static bool load(Cursor& c, backend::UsageAggregator& agg) {
    backend::UsageAggregator fresh;

    const std::uint64_t n_clients = c.u64();
    if (!c.ok() || !plausible_count(c, n_clients, 5)) return false;
    for (std::uint64_t i = 0; i < n_clients && c.ok(); ++i) {
      const MacAddress mac = MacAddress::from_u64(c.u64());
      backend::ClientAggregate cl;
      cl.mac = mac;
      const std::uint64_t os = c.u64();
      if (os > 0xFF) c.fail();
      cl.os = static_cast<classify::OsType>(os);
      const std::uint64_t caps = c.u64();
      if (caps > UINT32_MAX) c.fail();
      cl.capability_bits = static_cast<std::uint32_t>(caps);
      const std::int64_t ap_count = c.i64();
      if (ap_count < 0 || ap_count > INT32_MAX) c.fail();
      cl.ap_count = static_cast<int>(ap_count);
      const std::uint64_t n_apps = c.u64();
      if (!c.ok() || !plausible_count(c, n_apps, 3)) return false;
      for (std::uint64_t a = 0; a < n_apps && c.ok(); ++a) {
        const std::uint64_t app = c.u64();
        if (app > 0xFFFF) c.fail();
        const std::uint64_t up = c.u64();
        const std::uint64_t down = c.u64();
        if (c.ok()) cl.app_bytes[static_cast<classify::AppId>(app)] = {up, down};
      }
      if (c.ok()) fresh.clients_.emplace(mac, std::move(cl));
    }

    const std::uint64_t n_seen = c.u64();
    if (!c.ok() || !plausible_count(c, n_seen, 2)) return false;
    for (std::uint64_t i = 0; i < n_seen && c.ok(); ++i) {
      const MacAddress mac = MacAddress::from_u64(c.u64());
      const std::uint64_t n_aps = c.u64();
      if (!c.ok() || !plausible_count(c, n_aps, 2)) return false;
      auto& owner = fresh.clients_[mac];
      owner.mac = mac;
      auto& seen = owner.obs.seen;
      seen.reserve(n_aps);
      for (std::uint64_t a = 0; a < n_aps && c.ok(); ++a) {
        const std::uint64_t ap = c.u64();
        if (ap > UINT32_MAX) c.fail();
        const bool flag = c.boolean();
        if (!c.ok()) continue;
        // Keyed container semantics: a duplicated AP id overwrites its flag.
        bool found = false;
        for (auto& [existing, f] : seen) {
          if (existing == ApId{static_cast<std::uint32_t>(ap)}) {
            f = flag;
            found = true;
            break;
          }
        }
        if (!found) seen.emplace_back(ApId{static_cast<std::uint32_t>(ap)}, flag);
      }
    }

    const std::uint64_t n_votes = c.u64();
    if (!c.ok() || !plausible_count(c, n_votes, 2)) return false;
    for (std::uint64_t i = 0; i < n_votes && c.ok(); ++i) {
      const MacAddress mac = MacAddress::from_u64(c.u64());
      const std::uint64_t n_os = c.u64();
      if (!c.ok() || !plausible_count(c, n_os, 2)) return false;
      auto& vote_owner = fresh.clients_[mac];
      vote_owner.mac = mac;
      auto& votes = vote_owner.obs.votes;
      votes.reserve(n_os);
      for (std::uint64_t o = 0; o < n_os && c.ok(); ++o) {
        const std::uint64_t os = c.u64();
        if (os > 0xFF) c.fail();
        const std::int64_t count = c.i64();
        if (count < INT32_MIN || count > INT32_MAX) c.fail();
        if (!c.ok()) continue;
        bool found = false;
        for (auto& [existing, n] : votes) {
          if (existing == static_cast<std::uint8_t>(os)) {
            n = static_cast<int>(count);
            found = true;
            break;
          }
        }
        if (!found) votes.emplace_back(static_cast<std::uint8_t>(os), static_cast<int>(count));
      }
    }

    if (!c.ok()) return false;
    agg = std::move(fresh);
    return true;
  }
};

void save_aggregator(Buf& b, const backend::UsageAggregator& agg) {
  AggregatorAccess::save(b, agg);
}

bool load_aggregator(Cursor& c, backend::UsageAggregator& agg) {
  return AggregatorAccess::load(c, agg);
}

// --- loss ledger ---

void save_ledger(Buf& b, const fault::LossLedger& ledger) {
  b.u64(ledger.generated);
  b.u64(ledger.delivered);
  b.u64(ledger.shed);
  b.u64(ledger.lost_reboot);
  b.u64(ledger.lost_corruption);
  b.u64(ledger.in_flight);
  b.u64(ledger.lost_supervision);
  b.u64(ledger.lost_mesh_partition);
}

bool load_ledger(Cursor& c, fault::LossLedger& out) {
  fault::LossLedger l;
  l.generated = c.u64();
  l.delivered = c.u64();
  l.shed = c.u64();
  l.lost_reboot = c.u64();
  l.lost_corruption = c.u64();
  l.in_flight = c.u64();
  l.lost_supervision = c.u64();
  l.lost_mesh_partition = c.u64();
  if (!c.ok()) return false;
  out = l;
  return true;
}

// --- fault spec ---

void save_fault_spec(Buf& b, const fault::FaultSpec& spec) {
  b.f64(spec.flap_fraction);
  b.f64(spec.outage_rate_per_week);
  b.f64(spec.outage_mean_hours);
  b.f64(spec.reboot_rate_per_week);
  b.f64(spec.firmware_wave_fraction);
  b.f64(spec.firmware_wave_hour);
  b.f64(spec.corrupt_probability);
  b.u64(spec.oom_neighbor_threshold);
  b.f64(spec.skyscraper_fraction);
  b.u64(spec.skyscraper_neighbors);
  b.u64(spec.tunnel_queue_limit);
}

bool load_fault_spec(Cursor& c, fault::FaultSpec& out) {
  fault::FaultSpec s;
  s.flap_fraction = c.f64();
  s.outage_rate_per_week = c.f64();
  s.outage_mean_hours = c.f64();
  s.reboot_rate_per_week = c.f64();
  s.firmware_wave_fraction = c.f64();
  s.firmware_wave_hour = c.f64();
  s.corrupt_probability = c.f64();
  const std::uint64_t oom = c.u64();
  s.skyscraper_fraction = c.f64();
  const std::uint64_t sky = c.u64();
  const std::uint64_t queue_limit = c.u64();
  // The queue limit sizes real allocations during reconstruction; a
  // multi-terabyte value is corruption, not configuration.
  if (oom > 1'000'000 || sky > 1'000'000 || queue_limit > 100'000'000) c.fail();
  if (!c.ok()) return false;
  s.oom_neighbor_threshold = static_cast<std::size_t>(oom);
  s.skyscraper_neighbors = static_cast<std::size_t>(sky);
  s.tunnel_queue_limit = static_cast<std::size_t>(queue_limit);
  out = s;
  return true;
}

// --- fault injector ---

void save_injector(Buf& b, const fault::FaultInjector& injector) {
  b.boolean(injector.enabled());
  if (!injector.enabled()) return;
  const auto cursors = injector.cursor_states();
  b.u64(cursors.size());
  for (const auto& cur : cursors) {
    b.u64(cur.cursor);
    b.i64(cur.clock);
    b.boolean(cur.in_outage);
    b.i64(cur.outage_start_us);
  }
  b.u64(injector.reboots_applied());
  b.u64(injector.oom_reboots());
  b.u64(injector.frames_corrupted());
}

bool load_injector(Cursor& c, fault::FaultInjector& injector) {
  const bool enabled = c.boolean();
  if (!c.ok()) return false;
  // A checkpoint that disagrees with the rebuilt world about whether faults
  // run cannot be from the same campaign. The cursor stays intact: the
  // bytes are fine, the *scenario* is wrong (kBadConfig, not kMalformed).
  if (enabled != injector.enabled()) return false;
  if (!enabled) return true;
  const std::uint64_t n = c.u64();
  if (!c.ok() || !plausible_count(c, n, 4)) return false;
  std::vector<fault::FaultInjector::ApCursor> cursors;
  cursors.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && c.ok(); ++i) {
    fault::FaultInjector::ApCursor cur;
    cur.cursor = c.u64();
    cur.clock = c.i64();
    cur.in_outage = c.boolean();
    cur.outage_start_us = c.i64();
    cursors.push_back(cur);
  }
  const std::uint64_t reboots = c.u64();
  const std::uint64_t ooms = c.u64();
  const std::uint64_t corrupted = c.u64();
  if (!c.ok()) return false;
  if (!injector.restore(cursors, reboots, ooms, corrupted)) {
    c.fail();
    return false;
  }
  return true;
}

// --- metrics registry ---

void save_metrics(Buf& b, const telemetry::MetricsRegistry& metrics) {
  // Collect first: the registry exposes sorted visitation but not sizes per
  // kind, and the payload leads each group with its count.
  std::vector<std::pair<telemetry::MetricKey, std::uint64_t>> counters;
  metrics.for_each_counter([&](const telemetry::MetricKey& k, const telemetry::Counter& v) {
    counters.emplace_back(k, v.value());
  });
  std::vector<std::pair<telemetry::MetricKey, double>> gauges;
  metrics.for_each_gauge([&](const telemetry::MetricKey& k, const telemetry::Gauge& v) {
    gauges.emplace_back(k, v.value());
  });
  std::vector<std::pair<telemetry::MetricKey, const telemetry::Histogram*>> histograms;
  metrics.for_each_histogram(
      [&](const telemetry::MetricKey& k, const telemetry::Histogram& v) {
        histograms.emplace_back(k, &v);
      });

  b.u64(counters.size());
  for (const auto& [key, value] : counters) {
    b.str(key.name);
    b.u64(key.entity);
    b.u64(value);
  }
  b.u64(gauges.size());
  for (const auto& [key, value] : gauges) {
    b.str(key.name);
    b.u64(key.entity);
    b.f64(value);
  }
  b.u64(histograms.size());
  for (const auto& [key, hist] : histograms) {
    b.str(key.name);
    b.u64(key.entity);
    b.u64(hist->bounds().size());
    for (const double bound : hist->bounds()) b.f64(bound);
    for (const std::uint64_t count : hist->bucket_counts()) b.u64(count);
    b.u64(hist->count());
    b.f64(hist->sum());
  }
}

bool load_metrics(Cursor& c, telemetry::MetricsRegistry& metrics) {
  struct CounterEntry {
    std::string name;
    std::uint64_t entity;
    std::uint64_t value;
  };
  struct GaugeEntry {
    std::string name;
    std::uint64_t entity;
    double value;
  };
  struct HistEntry {
    std::string name;
    std::uint64_t entity;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count;
    double sum;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistEntry> hists;

  const std::uint64_t n_counters = c.u64();
  if (!c.ok() || !plausible_count(c, n_counters, 3)) return false;
  for (std::uint64_t i = 0; i < n_counters && c.ok(); ++i) {
    CounterEntry e;
    e.name = c.str();
    e.entity = c.u64();
    e.value = c.u64();
    if (c.ok()) counters.push_back(std::move(e));
  }
  const std::uint64_t n_gauges = c.u64();
  if (!c.ok() || !plausible_count(c, n_gauges, 10)) return false;
  for (std::uint64_t i = 0; i < n_gauges && c.ok(); ++i) {
    GaugeEntry e;
    e.name = c.str();
    e.entity = c.u64();
    e.value = c.f64();
    if (c.ok()) gauges.push_back(std::move(e));
  }
  const std::uint64_t n_hists = c.u64();
  if (!c.ok() || !plausible_count(c, n_hists, 4)) return false;
  for (std::uint64_t i = 0; i < n_hists && c.ok(); ++i) {
    HistEntry e;
    e.name = c.str();
    e.entity = c.u64();
    const std::uint64_t n_bounds = c.u64();
    if (!c.ok() || !plausible_count(c, n_bounds, 8)) return false;
    e.bounds.reserve(static_cast<std::size_t>(n_bounds));
    for (std::uint64_t j = 0; j < n_bounds && c.ok(); ++j) e.bounds.push_back(c.f64());
    for (std::uint64_t j = 0; j < n_bounds + 1 && c.ok(); ++j) e.counts.push_back(c.u64());
    e.count = c.u64();
    e.sum = c.f64();
    if (c.ok()) hists.push_back(std::move(e));
  }
  if (!c.ok()) return false;

  for (const auto& e : counters) metrics.counter(e.name, e.entity).inc(e.value);
  for (const auto& e : gauges) metrics.gauge(e.name, e.entity).set(e.value);
  for (auto& e : hists) {
    auto& hist = metrics.histogram(e.name, e.bounds, e.entity);
    if (!hist.restore(e.counts, e.count, e.sum)) {
      // Bounds collided with an existing histogram of a different shape:
      // the checkpoint disagrees with the registry it restores into.
      return false;
    }
  }
  return true;
}

// --- trace spans / flight recorder ---

void save_spans(Buf& b, const std::vector<telemetry::TraceSpan>& spans) {
  b.u64(spans.size());
  for (const auto& s : spans) {
    b.u64(static_cast<std::uint64_t>(s.kind));
    b.u64(s.entity);
    b.i64(s.start_us);
    b.i64(s.end_us);
    b.u64(s.detail);
  }
}

bool load_spans(Cursor& c, std::vector<telemetry::TraceSpan>& out) {
  const std::uint64_t n = c.u64();
  if (!c.ok() || !plausible_count(c, n, 5)) return false;
  std::vector<telemetry::TraceSpan> spans;
  spans.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && c.ok(); ++i) {
    telemetry::TraceSpan s;
    const std::uint64_t kind = c.u64();
    if (kind > static_cast<std::uint64_t>(telemetry::SpanKind::kShardQuarantine)) c.fail();
    s.kind = static_cast<telemetry::SpanKind>(kind);
    s.entity = c.u64();
    s.start_us = c.i64();
    s.end_us = c.i64();
    s.detail = c.u64();
    if (c.ok()) spans.push_back(s);
  }
  if (!c.ok()) return false;
  out = std::move(spans);
  return true;
}

void save_recorder(Buf& b, const telemetry::FlightRecorder& recorder) {
  b.u64(recorder.dropped() + recorder.size());  // lifetime total recorded
  save_spans(b, recorder.snapshot());
}

bool load_recorder(Cursor& c, telemetry::FlightRecorder& recorder) {
  const std::uint64_t recorded = c.u64();
  std::vector<telemetry::TraceSpan> spans;
  if (!load_spans(c, spans)) return false;
  if (!recorder.restore(spans, recorded)) {
    c.fail();
    return false;
  }
  return true;
}

// --- two-tier classifier ---

void save_classifier(Buf& b, const classify::TwoTierClassifier& classifier) {
  b.u64(static_cast<std::uint64_t>(classifier.mode()));
  b.u64(classifier.slow_path_calls());
  const auto& stats = classifier.cache().stats();
  b.u64(stats.hits);
  b.u64(stats.misses);
  b.u64(stats.evictions);
  b.u64(stats.pinned);
  const auto entries = classifier.cache().snapshot();
  b.u64(entries.size());
  for (const auto& e : entries) {
    b.u64(e.key.client_mac);
    b.u64((std::uint64_t{e.key.src_addr} << 32) | e.key.dst_addr);
    b.u64((std::uint64_t{e.key.src_port} << 32) | (std::uint64_t{e.key.dst_port} << 16) |
          e.key.protocol);
    b.u64(static_cast<std::uint64_t>(e.verdict));
    b.u64(e.slow_seen);
  }
}

bool load_classifier(Cursor& c, classify::TwoTierClassifier& classifier) {
  const std::uint64_t mode = c.u64();
  if (mode > static_cast<std::uint64_t>(classify::ClassifierMode::kIndexed)) c.fail();
  if (!c.ok()) return false;
  // The mode travels in the config section too; a shard section disagreeing
  // with the rebuilt world is a config mismatch, not corruption.
  if (mode != static_cast<std::uint64_t>(classifier.mode())) return false;
  const std::uint64_t slow_calls = c.u64();
  classify::VerdictCache::Stats stats;
  stats.hits = c.u64();
  stats.misses = c.u64();
  stats.evictions = c.u64();
  stats.pinned = c.u64();
  const std::uint64_t count = c.u64();
  if (!c.ok()) return false;
  if (count > classifier.cache().capacity()) return false;
  std::vector<classify::VerdictCache::SavedEntry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && c.ok(); ++i) {
    classify::VerdictCache::SavedEntry e;
    e.key.client_mac = c.u64();
    const std::uint64_t addrs = c.u64();
    e.key.src_addr = static_cast<std::uint32_t>(addrs >> 32);
    e.key.dst_addr = static_cast<std::uint32_t>(addrs);
    const std::uint64_t ports = c.u64();
    if (ports >> 48 != 0) c.fail();
    e.key.src_port = static_cast<std::uint16_t>(ports >> 32);
    e.key.dst_port = static_cast<std::uint16_t>(ports >> 16);
    e.key.protocol = static_cast<std::uint8_t>(ports);
    const std::uint64_t verdict = c.u64();
    if (verdict > static_cast<std::uint64_t>(classify::AppId::kXboxLive)) c.fail();
    e.verdict = static_cast<classify::AppId>(verdict);
    const std::uint64_t slow_seen = c.u64();
    if (slow_seen > std::numeric_limits<std::uint32_t>::max()) c.fail();
    e.slow_seen = static_cast<std::uint32_t>(slow_seen);
    if (c.ok()) entries.push_back(e);
  }
  if (!c.ok()) return false;
  classifier.cache().restore(entries, stats);
  classifier.restore(slow_calls);
  return true;
}

// --- world config ---

/// The memory ceiling a restored streaming campaign runs under. Arbitrary
/// but harmless: output is byte-identical for ANY nonzero ceiling, so this
/// only decides when the resumed process starts spilling.
constexpr std::uint64_t kRestoredCeilingMb = 4096;

void save_world_config(Buf& b, const sim::WorldConfig& config) {
  b.u64(static_cast<std::uint64_t>(config.fleet.epoch));
  b.i64(config.fleet.network_count);
  b.u64(static_cast<std::uint64_t>(config.fleet.model));
  b.u64(config.fleet.seed);
  for (const double d : config.fleet.density_mix) b.f64(d);
  b.f64(config.client_scale);
  b.u64(config.seed);
  b.f64(config.wan_flap_fraction);
  save_fault_spec(b, config.faults);
  b.u64(static_cast<std::uint64_t>(config.classifier));
  b.u64(config.verdict_cache_capacity);
  b.u64(config.supervision.max_shard_retries);
  b.f64(config.supervision.shard_deadline_hours);
  b.f64(config.supervision.retry_backoff_hours);
  b.boolean(config.supervision.capture_checkpoints);
  // v4: the streaming-harvest bit. Whether the campaign drains shards at
  // phase boundaries is simulated state (it adds poll cycles), so a resume
  // must reproduce it — but only the on/off bit. The ceiling VALUE and the
  // spill directory are host resource knobs like `threads`: any nonzero
  // ceiling yields byte-identical output, so serializing the value would
  // make checkpoint bytes differ between behaviorally identical runs.
  b.boolean(config.mem_ceiling_mb > 0);
  // v5: mobility knobs. All of them shape simulated behavior (walk draws,
  // handoff decisions, roster membership), so a resume must reproduce every
  // one — unlike threads or the memory ceiling, none is a host knob.
  b.boolean(config.mobility.enabled);
  b.f64(config.mobility.speed_mps);
  b.f64(config.mobility.pause_mean_s);
  b.u64(static_cast<std::uint64_t>(config.mobility.steps_per_week));
  b.u64(static_cast<std::uint64_t>(config.mobility.handoff_settle_steps));
  b.f64(config.mobility.handoff_hysteresis_db);
  b.f64(config.mobility.band_steer_bonus_db);
  b.f64(config.mobility.roam_probability);
  // v6: mesh backhaul knobs. Like mobility, every one shapes simulated
  // behavior (gateway draws, routing, relay accounting), so a resume must
  // reproduce them all.
  b.f64(config.mesh.mesh_fraction);
  b.u64(static_cast<std::uint64_t>(config.mesh.max_hops));
  b.f64(config.mesh.relay_floor_dbm);
  b.f64(config.mesh.drift_sigma_db);
}

bool load_world_config(Cursor& c, sim::WorldConfig& out) {
  sim::WorldConfig cfg;
  const std::uint64_t epoch = c.u64();
  if (epoch > static_cast<std::uint64_t>(deploy::Epoch::kJan2015)) c.fail();
  cfg.fleet.epoch = static_cast<deploy::Epoch>(epoch);
  const std::int64_t networks = c.i64();
  // Reconstruction allocates per network; cap at a sane fleet size so a
  // corrupted count cannot balloon memory before validation catches it.
  if (networks < 0 || networks > 1'000'000) c.fail();
  cfg.fleet.network_count = static_cast<int>(networks);
  const std::uint64_t model = c.u64();
  if (model > static_cast<std::uint64_t>(deploy::ApModel::kMr18)) c.fail();
  cfg.fleet.model = static_cast<deploy::ApModel>(model);
  cfg.fleet.seed = c.u64();
  for (double& d : cfg.fleet.density_mix) {
    d = c.f64();
    if (!(d >= 0.0 && d <= 1.0)) c.fail();  // also rejects NaN
  }
  cfg.client_scale = c.f64();
  if (!(cfg.client_scale >= 0.0 && cfg.client_scale <= 1e6)) c.fail();
  cfg.seed = c.u64();
  cfg.wan_flap_fraction = c.f64();
  if (!(cfg.wan_flap_fraction >= 0.0 && cfg.wan_flap_fraction <= 1.0)) c.fail();
  if (!load_fault_spec(c, cfg.faults)) return false;
  const std::uint64_t mode = c.u64();
  if (mode > static_cast<std::uint64_t>(classify::ClassifierMode::kIndexed)) c.fail();
  cfg.classifier = static_cast<classify::ClassifierMode>(mode);
  const std::uint64_t capacity = c.u64();
  // A corrupted capacity must not balloon the rebuilt caches.
  if (capacity < 1 || capacity > 100'000'000) c.fail();
  cfg.verdict_cache_capacity = static_cast<std::size_t>(capacity);
  cfg.supervision.max_shard_retries = c.u64();
  // Each retry can serialize + restore a whole shard; an absurd count is
  // corruption, not a scenario.
  if (cfg.supervision.max_shard_retries > 1000) c.fail();
  cfg.supervision.shard_deadline_hours = c.f64();
  if (!(cfg.supervision.shard_deadline_hours >= 0.0) ||
      std::isinf(cfg.supervision.shard_deadline_hours)) {
    c.fail();
  }
  cfg.supervision.retry_backoff_hours = c.f64();
  if (!(cfg.supervision.retry_backoff_hours >= 0.0) ||
      std::isinf(cfg.supervision.retry_backoff_hours)) {
    c.fail();
  }
  cfg.supervision.capture_checkpoints = c.boolean();
  // Streaming on restores with a default ceiling (output is identical for
  // any nonzero value); the actual bound and spill directory are the
  // resuming host's business, not the checkpoint's.
  cfg.mem_ceiling_mb = c.boolean() ? kRestoredCeilingMb : 0;
  cfg.mobility.enabled = c.boolean();
  cfg.mobility.speed_mps = c.f64();
  // The ranges mirror MobilityConfig::clamped(): a value the clamp would
  // have rewritten cannot have produced this checkpoint.
  if (!(cfg.mobility.speed_mps > 0.0 && cfg.mobility.speed_mps <= 10.0)) c.fail();
  cfg.mobility.pause_mean_s = c.f64();
  if (!(cfg.mobility.pause_mean_s >= 0.0 && cfg.mobility.pause_mean_s <= 1e6)) c.fail();
  const std::uint64_t steps = c.u64();
  if (steps < 1 || steps > 100'000) c.fail();
  cfg.mobility.steps_per_week = static_cast<int>(steps);
  const std::uint64_t settle = c.u64();
  if (settle < 1 || settle > 100) c.fail();
  cfg.mobility.handoff_settle_steps = static_cast<int>(settle);
  cfg.mobility.handoff_hysteresis_db = c.f64();
  if (!(cfg.mobility.handoff_hysteresis_db >= 0.0 &&
        cfg.mobility.handoff_hysteresis_db <= 50.0)) {
    c.fail();
  }
  cfg.mobility.band_steer_bonus_db = c.f64();
  if (!(cfg.mobility.band_steer_bonus_db >= -20.0 &&
        cfg.mobility.band_steer_bonus_db <= 20.0)) {
    c.fail();
  }
  cfg.mobility.roam_probability = c.f64();
  if (!(cfg.mobility.roam_probability >= 0.0 && cfg.mobility.roam_probability <= 1.0)) {
    c.fail();
  }
  // The ranges mirror mesh::MeshConfig::clamped(): a value the clamp would
  // have rewritten cannot have produced this checkpoint.
  cfg.mesh.mesh_fraction = c.f64();
  if (!(cfg.mesh.mesh_fraction >= 0.0 && cfg.mesh.mesh_fraction <= 0.95)) c.fail();
  const std::uint64_t mesh_hops = c.u64();
  if (mesh_hops < 1 || mesh_hops > 16) c.fail();
  cfg.mesh.max_hops = static_cast<int>(mesh_hops);
  cfg.mesh.relay_floor_dbm = c.f64();
  if (!(cfg.mesh.relay_floor_dbm >= -100.0 && cfg.mesh.relay_floor_dbm <= -40.0)) {
    c.fail();
  }
  cfg.mesh.drift_sigma_db = c.f64();
  if (!(cfg.mesh.drift_sigma_db >= 0.0 && cfg.mesh.drift_sigma_db <= 10.0)) c.fail();
  if (!c.ok()) return false;
  out = cfg;
  return true;
}

// --- one shard's full mutable state ---
//
// The campaign container's kShard sections and the supervision layer's
// retry snapshots are the same byte sequence: a supervised retry is a
// checkpoint restore scoped to one shard.

void save_shard_state(Buf& b, sim::NetworkShard& shard) {
  b.u64(shard.id().value());
  save_rng(b, shard.rng().state());
  save_rng(b, shard.fault_rng().state());
  save_injector(b, shard.injector());
  b.u64(shard.aps().size());
  for (auto& ap : shard.aps()) {
    b.u64(ap.id().value());
    save_tunnel(b, ap.tunnel());
  }
  b.u64(shard.links().size());
  for (const auto& link : shard.links()) save_link(b, link.state());
  save_store(b, shard.store());
  save_poller(b, shard.poller());
  save_metrics(b, shard.metrics());
  save_recorder(b, shard.recorder());
  b.u64(shard.flows_classified());
  b.u64(shard.flows_misclassified());
  save_classifier(b, shard.classifier());
  // v5 mobility block. The enabled bit always travels (it is simulated
  // behavior); the state behind it only when mobility is on, so disabled
  // checkpoints cost one byte.
  b.boolean(shard.mobility_enabled());
  if (shard.mobility_enabled()) {
    save_rng(b, shard.mobility_rng().state());
    const auto& roster = shard.mobility_roster();
    b.u64(roster.size());
    for (const auto& per_ap : roster) {
      b.u64(per_ap.size());
      for (const sim::MobileClient& m : per_ap) {
        b.boolean(m.walks);
        b.boolean(m.dual_band);
        b.f64(m.motion.pos.x);
        b.f64(m.motion.pos.y);
        b.f64(m.motion.target.x);
        b.f64(m.motion.target.y);
        b.f64(m.motion.pause_s);
        b.u64(m.serving_ap);
        b.u64(m.serving_band == phy::Band::k5GHz ? 1 : 0);
        b.u64(m.pending_steps);
        b.u64(m.pending_ap);
        b.u64(m.pending_band == phy::Band::k5GHz ? 1 : 0);
      }
    }
  }
  // v6 mesh block, same shape as mobility: the enabled bit always travels,
  // the state behind it only when mesh is on.
  b.boolean(shard.mesh_enabled());
  if (shard.mesh_enabled()) {
    save_rng(b, shard.mesh_rng().state());
    const auto& routes = shard.mesh_routes();
    b.u64(routes.size());
    for (const mesh::RouteEntry& r : routes) {
      b.boolean(r.is_gateway);
      b.boolean(r.routable);
      b.u64(r.next_hop);
      b.u64(r.gateway);
      b.u64(r.hop_count);
      b.f64(r.next_hop_rx_dbm);
    }
    const auto& busy = shard.mesh_busy_until_us();
    b.u64(busy.size());
    for (const std::int64_t t : busy) b.i64(t);
    b.u64(shard.mesh_partition_lost());
  }
}

bool load_shard_state(Cursor& c, sim::NetworkShard& shard) {
  const std::uint64_t net_id = c.u64();
  if (!c.ok()) return false;
  if (net_id != shard.id().value()) return false;

  Rng::State rng_state;
  Rng::State fault_rng_state;
  if (!load_rng(c, rng_state) || !load_rng(c, fault_rng_state)) return false;
  shard.rng().restore(rng_state);
  shard.fault_rng().restore(fault_rng_state);

  if (!load_injector(c, shard.injector())) return false;

  const std::uint64_t ap_count = c.u64();
  if (!c.ok()) return false;
  if (ap_count != shard.aps().size()) return false;
  for (auto& ap : shard.aps()) {
    const std::uint64_t ap_id = c.u64();
    if (!c.ok()) return false;
    if (ap_id != ap.id().value()) return false;
    if (!load_tunnel(c, ap.tunnel())) return false;
  }

  const std::uint64_t link_count = c.u64();
  if (!c.ok()) return false;
  if (link_count != shard.links().size()) return false;
  for (auto& link : shard.links()) {
    sim::MeshLink::State state;
    if (!load_link(c, state)) return false;
    link.restore(state);
  }

  // Store and metrics loads overlay (add/inc) into their target, which is
  // exact only on a fresh shard. A supervised retry restores into a shard
  // that already ran part of a phase, so wipe both first: a restore is an
  // overwrite, never an accumulation.
  shard.store() = backend::ReportStore{};
  shard.metrics().clear();
  if (!load_store(c, shard.store())) return false;
  if (!load_poller(c, shard.poller())) return false;
  if (!load_metrics(c, shard.metrics())) return false;
  if (!load_recorder(c, shard.recorder())) return false;

  const std::uint64_t classified = c.u64();
  const std::uint64_t misclassified = c.u64();
  if (!c.ok()) return false;
  if (!load_classifier(c, shard.classifier())) return false;

  // v5 mobility block. The rebuilt shard already constructed its roster
  // deterministically from the (already-validated) config, so every count
  // and index here is checked against ground truth: a section that lies
  // about roster shape is corruption, not a scenario.
  const bool mobility_enabled = c.boolean();
  if (!c.ok()) return false;
  if (mobility_enabled != shard.mobility_enabled()) return false;
  if (mobility_enabled) {
    Rng::State mobility_rng_state;
    if (!load_rng(c, mobility_rng_state)) return false;
    shard.mobility_rng().restore(mobility_rng_state);
    auto& roster = shard.mobility_roster();
    const std::uint64_t ap_rosters = c.u64();
    if (!c.ok()) return false;
    if (ap_rosters != roster.size()) return false;
    const double width = shard.network().site.width_m;
    const double height = shard.network().site.height_m;
    const std::uint64_t n_aps = shard.aps().size();
    for (auto& per_ap : roster) {
      const std::uint64_t n = c.u64();
      if (!c.ok()) return false;
      if (n != per_ap.size()) return false;
      for (sim::MobileClient& m : per_ap) {
        m.walks = c.boolean();
        m.dual_band = c.boolean();
        m.motion.pos.x = c.f64();
        m.motion.pos.y = c.f64();
        m.motion.target.x = c.f64();
        m.motion.target.y = c.f64();
        // Walks never leave the site rectangle; out-of-bounds positions
        // (or NaN) are corruption.
        if (!(m.motion.pos.x >= 0.0 && m.motion.pos.x <= width)) c.fail();
        if (!(m.motion.pos.y >= 0.0 && m.motion.pos.y <= height)) c.fail();
        if (!(m.motion.target.x >= 0.0 && m.motion.target.x <= width)) c.fail();
        if (!(m.motion.target.y >= 0.0 && m.motion.target.y <= height)) c.fail();
        m.motion.pause_s = c.f64();
        if (!(m.motion.pause_s >= 0.0) || std::isinf(m.motion.pause_s)) c.fail();
        const std::uint64_t serving = c.u64();
        if (serving >= n_aps) c.fail();
        m.serving_ap = static_cast<std::size_t>(serving);
        const std::uint64_t serving_band = c.u64();
        if (serving_band > 1) c.fail();
        m.serving_band = serving_band == 1 ? phy::Band::k5GHz : phy::Band::k2_4GHz;
        const std::uint64_t pending_steps = c.u64();
        if (pending_steps > 100) c.fail();  // settle clamp caps this at 100
        m.pending_steps = static_cast<std::uint32_t>(pending_steps);
        const std::uint64_t pending = c.u64();
        if (pending >= n_aps) c.fail();
        m.pending_ap = static_cast<std::size_t>(pending);
        const std::uint64_t pending_band = c.u64();
        if (pending_band > 1) c.fail();
        m.pending_band = pending_band == 1 ? phy::Band::k5GHz : phy::Band::k2_4GHz;
        if (!c.ok()) return false;
      }
    }
  }

  // v6 mesh block. Mesh membership is rebuilt deterministically from the
  // (already-validated) config, so the saved routing table is checked
  // against that ground truth: a dangling next-hop index, a self-loop, a
  // hop count past the clamp cap, or a gateway flag that disagrees with the
  // rebuilt membership is corruption, not a scenario.
  const bool mesh_enabled = c.boolean();
  if (!c.ok()) return false;
  if (mesh_enabled != shard.mesh_enabled()) return false;
  std::uint64_t mesh_partition_lost = 0;
  if (mesh_enabled) {
    Rng::State mesh_rng_state;
    if (!load_rng(c, mesh_rng_state)) return false;
    shard.mesh_rng().restore(mesh_rng_state);
    const std::uint64_t n_aps = shard.aps().size();
    const auto& is_mesh = shard.mesh_membership();
    const std::uint64_t route_count = c.u64();
    if (!c.ok()) return false;
    // Empty only for a checkpoint cut before the first campaign phase;
    // otherwise exactly one entry per AP.
    if (route_count != 0 && route_count != n_aps) return false;
    std::vector<mesh::RouteEntry> routes;
    routes.reserve(static_cast<std::size_t>(route_count));
    for (std::uint64_t i = 0; i < route_count && c.ok(); ++i) {
      mesh::RouteEntry r;
      r.is_gateway = c.boolean();
      r.routable = c.boolean();
      if (r.is_gateway == is_mesh[static_cast<std::size_t>(i)]) c.fail();
      const std::uint64_t next_hop = c.u64();
      if (next_hop >= n_aps) c.fail();  // dangling AP index
      r.next_hop = static_cast<std::uint32_t>(next_hop);
      const std::uint64_t gateway = c.u64();
      if (gateway >= n_aps) c.fail();
      r.gateway = static_cast<std::uint32_t>(gateway);
      const std::uint64_t hop_count = c.u64();
      if (hop_count > 16) c.fail();  // max_hops clamp caps paths at 16
      r.hop_count = static_cast<std::uint32_t>(hop_count);
      if (r.is_gateway || !r.routable) {
        // Gateways and unroutable APs point at themselves with no hops.
        if (next_hop != i || gateway != i || hop_count != 0) c.fail();
      } else {
        if (next_hop == i) c.fail();  // self-loop
        if (hop_count == 0) c.fail();
        if (gateway < n_aps && is_mesh[static_cast<std::size_t>(gateway)]) {
          c.fail();  // a relay path must terminate at a gateway
        }
      }
      r.next_hop_rx_dbm = c.f64();
      if (!(r.next_hop_rx_dbm >= -1000.0 && r.next_hop_rx_dbm <= 1000.0)) c.fail();
      if (c.ok()) routes.push_back(r);
    }
    const std::uint64_t busy_count = c.u64();
    if (!c.ok()) return false;
    if (busy_count != n_aps) return false;
    std::vector<std::int64_t> busy;
    busy.reserve(static_cast<std::size_t>(busy_count));
    for (std::uint64_t i = 0; i < busy_count && c.ok(); ++i) {
      const std::int64_t t = c.i64();
      if (t < 0) c.fail();  // relay horizons never precede the epoch
      busy.push_back(t);
    }
    mesh_partition_lost = c.u64();
    if (!c.ok()) return false;
    shard.mesh_routes() = std::move(routes);
    shard.mesh_busy_until_us() = std::move(busy);
  }

  if (!c.at_end()) return false;  // trailing bytes are corruption too
  shard.restore_flow_counters(classified, misclassified);
  if (mesh_enabled) shard.restore_mesh_partition_lost(mesh_partition_lost);
  return true;
}

// --- degraded-run manifest ---

void save_manifest(Buf& b, const failsafe::DegradedRunManifest& manifest) {
  b.u64(manifest.incidents.size());
  for (const auto& inc : manifest.incidents) {
    b.u64(inc.network);
    b.str(inc.phase);
    b.str(inc.error);
    b.i64(inc.sim_us);
    b.u64(inc.failures);
    b.u64(inc.retries);
    b.f64(inc.backoff_hours);
    b.u64(static_cast<std::uint64_t>(inc.outcome));
    save_ledger(b, inc.ledger);
  }
}

bool load_manifest(Cursor& c, failsafe::DegradedRunManifest& out) {
  const std::uint64_t n = c.u64();
  if (!c.ok() || !plausible_count(c, n, 10)) return false;
  failsafe::DegradedRunManifest manifest;
  manifest.incidents.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && c.ok(); ++i) {
    failsafe::ShardIncident inc;
    inc.network = c.u64();
    inc.phase = c.str();
    inc.error = c.str();
    inc.sim_us = c.i64();
    inc.failures = c.u64();
    inc.retries = c.u64();
    inc.backoff_hours = c.f64();
    if (!(inc.backoff_hours >= 0.0) || std::isinf(inc.backoff_hours)) c.fail();
    const std::uint64_t outcome = c.u64();
    if (outcome > static_cast<std::uint64_t>(failsafe::IncidentOutcome::kQuarantined)) {
      c.fail();
    }
    inc.outcome = static_cast<failsafe::IncidentOutcome>(outcome);
    if (inc.failures == 0) c.fail();  // an incident without a failure is corruption
    if (!load_ledger(c, inc.ledger)) return false;
    if (c.ok()) manifest.incidents.push_back(std::move(inc));
  }
  if (!c.ok()) return false;
  out = std::move(manifest);
  return true;
}

}  // namespace wlm::ckpt
