// Per-component checkpoint serializers.
//
// One save_x/load_x pair per piece of mutable campaign state, all writing
// through the ckpt::Buf/Cursor primitives. The split from campaign.cpp is
// deliberate: these functions know the *content* of each component and
// nothing about the container or the restore orchestration, so the
// round-trip tests (tests/ckpt/roundtrip_test.cpp) pin each one in
// isolation.
//
// Conventions shared by every pair:
//   - save_x emits a canonical byte sequence: hash-map-backed components
//     are serialized in sorted key order, so the same logical state always
//     produces the same bytes (the bit-identical-resume contract rides on
//     this);
//   - load_x reads through a fail-latching Cursor and returns false on any
//     structural problem, changing NOTHING user-visible on failure — a
//     checkpoint either restores completely or not at all;
//   - counts read from the payload are bounded against cursor.remaining()
//     before any loop trusts them (fuzz-input hygiene: a 2^60 count in a
//     40-byte file must not allocate or spin).
#pragma once

#include <span>
#include <vector>

#include "backend/aggregate.hpp"
#include "backend/poller.hpp"
#include "backend/store.hpp"
#include "backend/timeseries.hpp"
#include "backend/tunnel.hpp"
#include "ckpt/container.hpp"
#include "core/rng.hpp"
#include "failsafe/supervisor.hpp"
#include "fault/injector.hpp"
#include "fault/loss_ledger.hpp"
#include "fault/spec.hpp"
#include "sim/event_queue.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tsdb/fleet_store.hpp"

namespace wlm::ckpt {

// --- RNG substreams ---
void save_rng(Buf& b, const Rng::State& s);
[[nodiscard]] bool load_rng(Cursor& c, Rng::State& out);

// --- mesh-link fading state ---
void save_link(Buf& b, const sim::MeshLink::State& s);
[[nodiscard]] bool load_link(Cursor& c, sim::MeshLink::State& out);

// --- event-queue clock (sim::World checkpoints cut at drained-queue
// points; pending callbacks are process state and are documented as not
// captured) ---
void save_clock(Buf& b, const sim::EventQueue::ClockState& s);
[[nodiscard]] bool load_clock(Cursor& c, sim::EventQueue::ClockState& out);

// --- device tunnel: connection, counters, queued frames (oldest first) ---
void save_tunnel(Buf& b, const backend::Tunnel& tunnel);
[[nodiscard]] bool load_tunnel(Cursor& c, backend::Tunnel& tunnel);

// --- poller accounting ---
void save_poller(Buf& b, const backend::Poller& poller);
[[nodiscard]] bool load_poller(Cursor& c, backend::Poller& poller);

// --- report store, canonical: APs sorted by id, per-AP arrival order
// preserved, each report as its wire encoding ---
void save_store(Buf& b, const backend::ReportStore& store);
[[nodiscard]] bool load_store(Cursor& c, backend::ReportStore& store);

// --- time-series store (key-sorted; raw points sorted before emit; point
// lists ride the columnar codec, tsdb/series_codec) ---
void save_timeseries(Buf& b, const backend::TimeSeriesStore& store);
[[nodiscard]] bool load_timeseries(Cursor& c, backend::TimeSeriesStore& store);

// --- fleet segment vault: every live sealed segment (network id, batch
// seq, report count, segment bytes), fleet order. Spilled segments are
// pulled back from their spill file to serialize, so the checkpoint is
// self-contained; save returns false if a spill file has gone unreadable.
// load adopts each segment through its own header/CRC validation. ---
[[nodiscard]] bool save_fleet_segments(Buf& b, const tsdb::FleetStore& store);
[[nodiscard]] bool load_fleet_segments(Cursor& c, tsdb::FleetStore& store);

// --- usage aggregator: raw vote/sighting maps, MAC-sorted ---
void save_aggregator(Buf& b, const backend::UsageAggregator& agg);
[[nodiscard]] bool load_aggregator(Cursor& c, backend::UsageAggregator& agg);

// --- loss ledger snapshot ---
void save_ledger(Buf& b, const fault::LossLedger& ledger);
[[nodiscard]] bool load_ledger(Cursor& c, fault::LossLedger& out);

// --- fault scenario spec (part of the config section) ---
void save_fault_spec(Buf& b, const fault::FaultSpec& spec);
[[nodiscard]] bool load_fault_spec(Cursor& c, fault::FaultSpec& out);

// --- fault injector progress: per-AP schedule cursors + counters. The
// plan itself is reconstructed from the seed; only execution state saves.
// load validates cursors against the injector's (rebuilt) plan. ---
void save_injector(Buf& b, const fault::FaultInjector& injector);
[[nodiscard]] bool load_injector(Cursor& c, fault::FaultInjector& injector);

// --- metrics registry (sorted storage; restored into a fresh registry) ---
void save_metrics(Buf& b, const telemetry::MetricsRegistry& metrics);
[[nodiscard]] bool load_metrics(Cursor& c, telemetry::MetricsRegistry& metrics);

// --- trace spans / flight recorder ---
void save_spans(Buf& b, const std::vector<telemetry::TraceSpan>& spans);
[[nodiscard]] bool load_spans(Cursor& c, std::vector<telemetry::TraceSpan>& out);
void save_recorder(Buf& b, const telemetry::FlightRecorder& recorder);
[[nodiscard]] bool load_recorder(Cursor& c, telemetry::FlightRecorder& recorder);

// --- two-tier classifier (verdict cache contents in FIFO order + stats +
// slow-path counter; the mode is validated against the rebuilt shard) ---
void save_classifier(Buf& b, const classify::TwoTierClassifier& classifier);
[[nodiscard]] bool load_classifier(Cursor& c, classify::TwoTierClassifier& classifier);

// --- world configuration (everything FleetRunner reconstruction needs;
// `threads` is a runtime choice and is NOT serialized) ---
void save_world_config(Buf& b, const sim::WorldConfig& config);
[[nodiscard]] bool load_world_config(Cursor& c, sim::WorldConfig& out);

// --- one shard's full mutable state: the campaign container's kShard
// payload, and (the same bytes) the supervision layer's retry snapshots.
// load validates structure against the rebuilt shard and applies
// all-or-nothing like every other pair. ---
void save_shard_state(Buf& b, sim::NetworkShard& shard);
[[nodiscard]] bool load_shard_state(Cursor& c, sim::NetworkShard& shard);

// --- degraded-run manifest (supervision incidents; quarantine state is
// rebuilt from the kQuarantined entries on restore) ---
void save_manifest(Buf& b, const failsafe::DegradedRunManifest& manifest);
[[nodiscard]] bool load_manifest(Cursor& c, failsafe::DegradedRunManifest& out);

}  // namespace wlm::ckpt
