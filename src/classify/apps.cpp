#include "classify/apps.hpp"

#include <cassert>
#include <unordered_map>

namespace wlm::classify {

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kOther:
      return "Other";
    case Category::kVideoMusic:
      return "Video & music";
    case Category::kFileSharing:
      return "File sharing";
    case Category::kSocial:
      return "Social web & photo sharing";
    case Category::kEmail:
      return "Email";
    case Category::kVoipConferencing:
      return "VoIP & video conferencing";
    case Category::kP2p:
      return "Peer-to-peer (P2P)";
    case Category::kSoftwareUpdates:
      return "Software & anti-virus updates";
    case Category::kGaming:
      return "Gaming";
    case Category::kSports:
      return "Sports";
    case Category::kNews:
      return "News";
    case Category::kOnlineBackup:
      return "Online backup";
    case Category::kBlogging:
      return "Blogging";
    case Category::kWebFileSharing:
      return "Web file sharing";
  }
  return "?";
}

namespace {

struct Row {
  AppId id;
  std::string_view name;
  Category cat;
  std::vector<std::string_view> domains;
  std::vector<std::uint16_t> tcp;
  std::vector<std::uint16_t> udp;
  double tb2015;
  double down_frac;
  double clients2015;
  double tb_increase;       // fraction, e.g. 0.76 for "+76%"
  double clients_increase;  // fraction
  bool reconstructed = false;
};

std::vector<AppInfo> build_catalog() {
  // Table 5 transcription. Rows whose cells were illegible in the source
  // scan carry reconstructed=true; their values were chosen to be
  // self-consistent (TB ~= clients * MB/client) and to satisfy the paper's
  // prose (video 34% of bytes at 97% download, overall 82% download, ...).
  const std::vector<Row> rows = {
      {AppId::kMiscWeb, "Miscellaneous web", Category::kOther, {}, {80, 8080}, {},
       327, 0.77, 4'623'630, 0.51, 0.37, true},
      {AppId::kYouTube, "YouTube", Category::kVideoMusic,
       {"youtube.com", "googlevideo.com", "ytimg.com"}, {}, {},
       218, 0.97, 3'861'000, 0.75, 0.45, true},
      {AppId::kNetflix, "Netflix", Category::kVideoMusic,
       {"netflix.com", "nflxvideo.net", "nflximg.com"}, {}, {},
       188, 0.98, 161'014, 0.76, 0.19},
      {AppId::kMiscSecureWeb, "Miscellaneous secure web", Category::kOther, {}, {443}, {},
       147, 0.80, 5'115'023, 0.94, 0.40, true},
      {AppId::kNonWebTcp, "Non-web TCP", Category::kOther, {}, {}, {},
       136, 0.68, 1'551'023, 0.76, 0.40, true},
      {AppId::kITunes, "iTunes", Category::kVideoMusic,
       {"itunes.apple.com", "mzstatic.com", "itunes.com"}, {}, {},
       102, 0.98, 2'230'787, 0.66, 0.38},
      {AppId::kMiscVideo, "Miscellaneous video", Category::kVideoMusic, {}, {}, {},
       98, 0.91, 1'383'386, 0.61, 0.76},
      {AppId::kWindowsFileSharing, "Windows file sharing", Category::kFileSharing,
       {}, {445, 139}, {137, 138},
       87, 0.66, 740'591, 0.48, 0.31},
      {AppId::kCdn, "CDNs", Category::kOther,
       {"akamai.net", "akamaihd.net", "cloudfront.net", "edgecast.com", "fastly.net"}, {}, {},
       75, 0.72, 3'157'028, 0.81, 0.46},
      {AppId::kUdp, "UDP", Category::kOther, {}, {}, {},
       61, 0.61, 3'705'171, 0.60, 0.69},
      {AppId::kFacebook, "Facebook", Category::kSocial,
       {"facebook.com", "fbcdn.net", "fbstatic-a.akamaihd.net", "messenger.com"}, {}, {},
       57, 0.93, 3'579'926, 0.61, 0.35, true},
      {AppId::kGoogleHttps, "Google HTTPS", Category::kOther,
       {"googleapis.com", "gstatic.com", "googleusercontent.com"}, {}, {},
       49, 0.85, 3'953'002, 0.67, 0.44},
      {AppId::kAppleFileSharing, "Apple file sharing", Category::kFileSharing,
       {}, {548}, {5353},
       42, 0.44, 21'951, 0.18, -0.017},
      {AppId::kAppleCom, "apple.com", Category::kOther,
       {"apple.com", "icloud.com"}, {}, {},
       37, 0.94, 2'763'663, 0.79, 0.32},
      {AppId::kGoogle, "Google", Category::kOther,
       {"google.com", "google-analytics.com", "doubleclick.net"}, {}, {},
       34, 0.85, 3'804'317, 0.19, 0.39},
      {AppId::kGoogleDrive, "Google Drive", Category::kOther,
       {"drive.google.com", "docs.google.com"}, {}, {},
       24, 0.79, 1'325'938, 3.74, 1.38},
      {AppId::kDropbox, "Dropbox", Category::kFileSharing,
       {"dropbox.com", "dropboxstatic.com", "dropboxusercontent.com"}, {}, {},
       23, 0.60, 369'068, -0.015, 0.29},
      {AppId::kSoftwareUpdates, "Software updates", Category::kSoftwareUpdates,
       {"windowsupdate.com", "swcdn.apple.com", "update.microsoft.com", "avast.com",
        "symantecliveupdate.com"}, {}, {},
       18, 0.98, 689'677, 0.36, 0.16},
      {AppId::kInstagram, "Instagram", Category::kSocial,
       {"instagram.com", "cdninstagram.com"}, {}, {},
       17, 0.96, 831'935, 0.45, 0.50},
      {AppId::kBitTorrent, "BitTorrent", Category::kP2p, {}, {6881, 6882, 6883}, {6881},
       13, 0.58, 38'294, -0.085, 0.15},
      {AppId::kSkype, "Skype", Category::kVoipConferencing,
       {"skype.com", "skypeassets.com"}, {}, {3478, 3479},
       13, 0.49, 392'878, 0.48, 0.27},
      {AppId::kMiscAudio, "Miscellaneous audio", Category::kVideoMusic, {}, {}, {},
       13, 0.97, 460'262, 0.54, 0.60},
      {AppId::kPandora, "Pandora", Category::kVideoMusic,
       {"pandora.com", "p-cdn.com"}, {}, {},
       12, 0.97, 182'753, 0.25, 0.34},
      {AppId::kRtmp, "RTMP (Adobe Flash)", Category::kOther, {}, {1935}, {},
       12, 0.96, 141'403, 0.10, 0.062},
      {AppId::kGmail, "Gmail", Category::kEmail,
       {"mail.google.com", "gmail.com"}, {}, {},
       12, 0.74, 1'337'755, 0.26, 0.42},
      {AppId::kMicrosoftCom, "microsoft.com", Category::kOther,
       {"microsoft.com", "msn.com", "live.com"}, {}, {},
       11, 0.94, 861'136, 0.15, 0.34},
      {AppId::kTumblr, "Tumblr", Category::kOther,
       {"tumblr.com", "media.tumblr.com"}, {}, {},
       11, 0.97, 270'482, 0.31, 0.21},
      {AppId::kSpotify, "Spotify", Category::kVideoMusic,
       {"spotify.com", "scdn.co"}, {4070}, {},
       11, 0.98, 209'219, 1.42, 1.15},
      {AppId::kOutlookMail, "Windows Live Hotmail and Outlook", Category::kEmail,
       {"hotmail.com", "outlook.com", "mail.live.com"}, {}, {},
       9.0, 0.64, 366'272, 2.16, 1.08},
      {AppId::kDropcam, "Dropcam", Category::kVoipConferencing,
       {"dropcam.com", "nexusapi.dropcam.com"}, {}, {},
       8.0, 0.05, 2'940, 0.72, 1.55},
      {AppId::kHulu, "Hulu", Category::kVideoMusic,
       {"hulu.com", "hulustream.com"}, {}, {},
       6.9, 0.98, 51'667, 1.02, 1.00},
      {AppId::kSteam, "Steam", Category::kGaming,
       {"steampowered.com", "steamcontent.com", "steamstatic.com"}, {27030, 27031}, {27015},
       6.6, 0.98, 21'011, 0.47, 0.45},
      {AppId::kTwitter, "Twitter", Category::kSocial,
       {"twitter.com", "twimg.com", "t.co"}, {}, {},
       6.4, 0.91, 1'925'505, 0.67, 0.34},
      {AppId::kEncryptedP2p, "Encrypted P2P", Category::kP2p, {}, {}, {},
       6.3, 0.97, 81'673, 0.17, 0.23},
      {AppId::kEncryptedTcp, "Encrypted TCP (SSL)", Category::kOther, {}, {}, {},
       6.0, 0.65, 1'441'775, 0.50, 0.49},
      {AppId::kRemoteDesktop, "Remote desktop", Category::kOther, {}, {3389, 5900}, {},
       5.5, 0.88, 93'876, 0.66, 0.13},
      {AppId::kEspn, "ESPN", Category::kSports,
       {"espn.com", "espn.go.com", "espncdn.com"}, {}, {},
       5.1, 0.98, 202'971, 1.22, 0.41},
      {AppId::kXfinityTv, "Xfinity TV", Category::kVideoMusic,
       {"xfinity.com", "comcast.net", "xfinitytv.comcast.net"}, {}, {},
       4.9, 0.98, 12'802, 0.87, 0.27},
      {AppId::kOtherWebEmail, "Other web-based email", Category::kEmail,
       {"mail.yahoo.com", "aol.com", "mail.ru"}, {}, {},
       4.7, 0.49, 277'919, -0.064, 0.23},
      {AppId::kSkydrive, "Microsoft Skydrive", Category::kFileSharing,
       {"skydrive.live.com", "onedrive.live.com", "storage.live.com"}, {}, {},
       4.4, 0.25, 269'437, -0.10, 0.12},
      // Category-only applications appearing in Table 6 / prose but not the
      // top-40 list; modeled so category rollups include them.
      {AppId::kOnlineBackup, "Online backup", Category::kOnlineBackup,
       {"backblaze.com", "crashplan.com", "carbonite.com"}, {}, {},
       2.9, 0.042, 7'576, 0.10, 0.26},
      {AppId::kBloggingApp, "Blogging", Category::kBlogging,
       {"wordpress.com", "blogger.com", "blogspot.com"}, {}, {},
       0.74, 0.97, 487'085, -0.34, -0.021},
      {AppId::kWebFileShareApp, "Web file sharing", Category::kWebFileSharing,
       {"mediafire.com", "hotfile.com", "rapidshare.com"}, {}, {},
       0.32, 0.98, 10'822, -0.27, -0.22},
      {AppId::kXboxLive, "Xbox Live", Category::kGaming,
       {"xboxlive.com", "xbox.com"}, {3074}, {3074, 88},
       4.0, 0.96, 110'000, 0.49, 0.30, true},
  };

  std::vector<AppInfo> catalog;
  catalog.resize(rows.size() + 1);  // slot 0 = kUnclassified sentinel
  catalog[0].name = "(unclassified)";
  for (const auto& r : rows) {
    AppInfo info;
    info.id = r.id;
    info.name = r.name;
    info.category = r.cat;
    info.domains = r.domains;
    info.tcp_ports = r.tcp;
    info.udp_ports = r.udp;
    info.y2015 = UsageStats{r.tb2015, r.down_frac, r.clients2015};
    info.y2014 = UsageStats{r.tb2015 / (1.0 + r.tb_increase), r.down_frac,
                            r.clients2015 / (1.0 + r.clients_increase)};
    info.reconstructed = r.reconstructed;
    const auto idx = static_cast<std::size_t>(r.id);
    assert(idx < catalog.size());
    catalog[idx] = std::move(info);
  }
  return catalog;
}

const std::vector<AppInfo>& catalog_storage() {
  static const std::vector<AppInfo> catalog = build_catalog();
  return catalog;
}

}  // namespace

std::span<const AppInfo> app_catalog() { return catalog_storage(); }

const AppInfo& app_info(AppId id) {
  const auto& catalog = catalog_storage();
  const auto idx = static_cast<std::size_t>(id);
  assert(idx < catalog.size());
  return catalog[idx];
}

std::optional<AppId> app_by_name(std::string_view name) {
  static const auto index = [] {
    std::unordered_map<std::string_view, AppId> m;
    for (const auto& app : catalog_storage()) {
      if (app.id != AppId::kUnclassified) m.emplace(app.name, app.id);
    }
    return m;
  }();
  const auto it = index.find(name);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

double catalog_total_tb_2015() {
  double total = 0.0;
  for (const auto& app : catalog_storage()) total += app.y2015.terabytes;
  return total;
}

}  // namespace wlm::classify
