// Application catalog: the top-40 applications of the paper's Table 5, their
// categories (Table 6), identification hints used by the rule engine, and
// the per-epoch usage calibration the traffic generator targets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace wlm::classify {

/// Application categories, exactly the paper's Table 6 rows.
enum class Category : std::uint8_t {
  kOther = 0,
  kVideoMusic,
  kFileSharing,
  kSocial,
  kEmail,
  kVoipConferencing,
  kP2p,
  kSoftwareUpdates,
  kGaming,
  kSports,
  kNews,
  kOnlineBackup,
  kBlogging,
  kWebFileSharing,
};

inline constexpr int kCategoryCount = 14;

[[nodiscard]] std::string_view category_name(Category c);

/// Stable application identifiers. kUnclassified is the rule engine's miss
/// result before fallback buckets are applied; 1..N index the catalog.
enum class AppId : std::uint16_t {
  kUnclassified = 0,
  kMiscWeb,
  kYouTube,
  kNetflix,
  kMiscSecureWeb,
  kNonWebTcp,
  kITunes,
  kMiscVideo,
  kWindowsFileSharing,
  kCdn,
  kUdp,
  kFacebook,
  kGoogleHttps,
  kAppleFileSharing,
  kAppleCom,
  kGoogle,
  kGoogleDrive,
  kDropbox,
  kSoftwareUpdates,
  kInstagram,
  kBitTorrent,
  kSkype,
  kMiscAudio,
  kPandora,
  kRtmp,
  kGmail,
  kMicrosoftCom,
  kTumblr,
  kSpotify,
  kOutlookMail,
  kDropcam,
  kHulu,
  kSteam,
  kTwitter,
  kEncryptedP2p,
  kEncryptedTcp,
  kRemoteDesktop,
  kEspn,
  kXfinityTv,
  kOtherWebEmail,
  kSkydrive,
  // Not in the top-40 table but referenced in the paper's prose / categories.
  kOnlineBackup,
  kBloggingApp,
  kWebFileShareApp,
  kXboxLive,
};

/// Per-epoch usage calibration derived from Table 5 (2015 column and the
/// year-over-year increase column, from which the 2014 value follows).
struct UsageStats {
  double terabytes = 0.0;     // total bytes over the study week, TB
  double download_frac = 0.0; // fraction of bytes that are downstream
  double clients = 0.0;       // distinct clients using the app that week
};

struct AppInfo {
  AppId id = AppId::kUnclassified;
  std::string_view name;
  Category category = Category::kOther;
  /// Domain suffixes that identify this app in DNS/SNI/HTTP-Host metadata.
  std::vector<std::string_view> domains;
  /// Well-known TCP / UDP ports (used when no hostname metadata exists).
  std::vector<std::uint16_t> tcp_ports;
  std::vector<std::uint16_t> udp_ports;
  UsageStats y2015;
  UsageStats y2014;
  /// Cells reconstructed where the source table was illegible.
  bool reconstructed = false;
};

/// The full catalog (index 0 is a sentinel for kUnclassified).
[[nodiscard]] std::span<const AppInfo> app_catalog();

[[nodiscard]] const AppInfo& app_info(AppId id);
[[nodiscard]] std::optional<AppId> app_by_name(std::string_view name);

/// Sum of 2015 client-weeks usage across the catalog (for share computations).
[[nodiscard]] double catalog_total_tb_2015();

}  // namespace wlm::classify
