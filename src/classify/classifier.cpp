#include "classify/classifier.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>

#include "classify/dns.hpp"
#include "classify/http.hpp"
#include "classify/oui.hpp"
#include "classify/rule_index.hpp"
#include "classify/tls.hpp"
#include "classify/user_agent.hpp"

namespace wlm::classify {

namespace {

OsType classify_os_impl(const ClientEvidence& evidence, HeuristicsVersion version,
                        const RuleIndex* index) {
  const auto dhcp_lookup = [index](std::span<const std::uint8_t> params) {
    return index ? index->os_from_dhcp(params) : os_from_dhcp(params);
  };
  const auto ua_lookup = [index](std::string_view ua) {
    return index ? index->os_from_user_agent(ua) : os_from_user_agent(ua);
  };

  // --- DHCP fingerprints: the strongest signal. ---
  std::set<OsType> dhcp_votes;
  for (const auto& params : evidence.dhcp_fingerprints) {
    std::optional<OsType> os;
    if (version == HeuristicsVersion::k2014) {
      // The older heuristics only accepted exact signature matches.
      os = dhcp_lookup(params);
      if (os && canonical_dhcp_params(*os) != params) os = std::nullopt;
    } else {
      os = dhcp_lookup(params);
    }
    if (os) dhcp_votes.insert(*os);
  }
  if (dhcp_votes.size() > 1) {
    // Distinct stacks behind one MAC: dual-boot or VM host (paper §3.2).
    return OsType::kUnknown;
  }

  // --- User-Agent strings: may legitimately disagree (apps, spoofing). ---
  std::map<OsType, int> ua_votes;
  for (const auto& ua : evidence.user_agents) {
    if (const auto os = ua_lookup(ua)) ++ua_votes[*os];
  }

  if (dhcp_votes.size() == 1) {
    const OsType dhcp_os = *dhcp_votes.begin();
    // UA evidence can refine a coarse DHCP result (e.g. Apple's desktop and
    // mobile stacks share fingerprints in old tables) but never override a
    // unanimously different one unless *all* UAs agree.
    if (!ua_votes.empty()) {
      const auto best =
          std::max_element(ua_votes.begin(), ua_votes.end(),
                           [](const auto& a, const auto& b) { return a.second < b.second; });
      if (ua_votes.size() == 1 && best->first != dhcp_os) {
        // Single consistent UA OS contradicting DHCP: ambiguous hardware.
        return version == HeuristicsVersion::k2015 ? best->first : OsType::kUnknown;
      }
    }
    return dhcp_os;
  }

  // --- No DHCP result: UA majority. ---
  if (!ua_votes.empty()) {
    OsType best = OsType::kUnknown;
    int best_count = 0;
    bool tie = false;
    for (const auto& [os, count] : ua_votes) {
      if (count > best_count) {
        best = os;
        best_count = count;
        tie = false;
      } else if (count == best_count) {
        tie = true;
      }
    }
    if (!tie) return best;
    return OsType::kUnknown;
  }

  // --- Vendor prior (2015 heuristics only). ---
  if (version == HeuristicsVersion::k2015) {
    if (const auto os = os_hint_from_vendor(vendor_for(evidence.mac))) return *os;
  }
  return OsType::kUnknown;
}

}  // namespace

OsType classify_os(const ClientEvidence& evidence, HeuristicsVersion version) {
  return classify_os_impl(evidence, version, nullptr);
}

OsType classify_os(const ClientEvidence& evidence, HeuristicsVersion version,
                   const RuleIndex* index) {
  return classify_os_impl(evidence, version, index);
}

bool payload_high_entropy(std::span<const std::uint8_t> payload) {
  if (payload.size() < 64) return false;
  std::array<int, 256> counts{};
  for (auto b : payload) ++counts[b];
  double entropy = 0.0;
  const double n = static_cast<double>(payload.size());
  // A short payload spread over 256 bins repeats the same small counts, so
  // memoize each count's term instead of re-running log2 per bin. Terms and
  // summation order are unchanged — the result is bit-identical.
  std::array<double, 16> term_cache{};
  std::uint16_t have_term = 0;
  for (int c : counts) {
    if (c == 0) continue;
    double term;
    if (c < 16 && (have_term & (1u << c)) != 0) {
      term = term_cache[static_cast<std::size_t>(c)];
    } else {
      const double p = static_cast<double>(c) / n;
      term = p * std::log2(p);
      if (c < 16) {
        term_cache[static_cast<std::size_t>(c)] = term;
        have_term = static_cast<std::uint16_t>(have_term | (1u << c));
      }
    }
    entropy -= term;
  }
  // Threshold accounts for small-sample bias: 256 uniform bytes measure
  // ~7.1 bits observed entropy; text and binary protocol headers sit at 4-6.
  return entropy > 6.5;
}

FlowMetadata extract_metadata(const FlowSample& sample) {
  FlowMetadata meta;
  meta.transport = sample.transport;
  meta.dst_port = sample.dst_port;

  if (!sample.dns_packet.empty()) {
    if (const auto dns = parse_dns(sample.dns_packet)) {
      if (!dns->questions.empty()) meta.dns_hostname = dns->questions.front().qname;
    }
  }
  if (!sample.first_payload.empty()) {
    // TLS first (binary, unambiguous), then HTTP, then the entropy test.
    if (const auto hello = parse_client_hello(sample.first_payload)) {
      meta.saw_tls = true;
      meta.sni = hello->sni;
    } else {
      const std::string_view text(reinterpret_cast<const char*>(sample.first_payload.data()),
                                  sample.first_payload.size());
      if (const auto http = parse_http_request(text)) {
        meta.http_host = http->host;
        meta.http_content_type = http->content_type;
      } else {
        meta.high_entropy = payload_high_entropy(sample.first_payload);
      }
    }
  }
  return meta;
}

FlowMetadata extract_metadata_fast(const FlowSample& sample) {
  FlowMetadata meta;
  extract_metadata_fast_into(sample, meta);
  return meta;
}

void extract_metadata_fast_into(const FlowSample& sample, FlowMetadata& meta) {
  meta.transport = sample.transport;
  meta.dst_port = sample.dst_port;
  meta.dns_hostname.clear();
  meta.http_host.clear();
  meta.http_content_type.clear();
  meta.sni.clear();
  meta.saw_tls = false;
  meta.high_entropy = false;

  // Parser outputs are thread-local so their strings and question slots
  // keep capacity across the millions of flows one worker inspects; only
  // the fields copied into `meta` survive the call.
  thread_local DnsMessage dns_scratch;
  thread_local ClientHelloInfo hello_scratch;
  thread_local HttpRequestHead http_scratch;

  if (!sample.dns_packet.empty()) {
    if (parse_dns_into(sample.dns_packet, dns_scratch) == ParseError::kNone &&
        !dns_scratch.questions.empty()) {
      meta.dns_hostname = dns_scratch.questions.front().qname;
    }
  }
  if (!sample.first_payload.empty()) {
    const char first = static_cast<char>(sample.first_payload.front());
    if (sample.first_payload.front() == 0x16) {
      // Only a TLS record can start 0x16 (not an HTTP token char, so the
      // reference cascade's HTTP attempt is doomed anyway).
      if (parse_client_hello_into(sample.first_payload, hello_scratch) == ParseError::kNone) {
        meta.saw_tls = true;
        meta.sni = hello_scratch.sni;
      } else {
        meta.high_entropy = payload_high_entropy(sample.first_payload);
      }
    } else if (http_token_char(first) || first == ' ' || first == '\t') {
      // A parsable request line starts with a method token after optional
      // space/tab padding (which the header parser trims).
      const std::string_view text(reinterpret_cast<const char*>(sample.first_payload.data()),
                                  sample.first_payload.size());
      if (parse_http_request_into(text, http_scratch) == ParseError::kNone) {
        meta.http_host = http_scratch.host;
        meta.http_content_type = http_scratch.content_type;
      } else {
        meta.high_entropy = payload_high_entropy(sample.first_payload);
      }
    } else {
      // Neither parser can accept this first byte; straight to the test the
      // reference path would fall through to.
      meta.high_entropy = payload_high_entropy(sample.first_payload);
    }
  }
}

AppId classify_flow(const FlowSample& sample) {
  return RuleSet::standard().classify(extract_metadata(sample));
}

}  // namespace wlm::classify
