// Combined client/flow classifier: OS identification from MAC OUI + DHCP
// fingerprints + User-Agent strings, and flow-to-application mapping via the
// rule engine, with packet-level metadata extraction (the Click slow path).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "classify/dhcp_fingerprint.hpp"
#include "classify/os.hpp"
#include "classify/rules.hpp"

namespace wlm::classify {

class RuleIndex;

/// Heuristics revision: the paper notes device-typing improved between the
/// January 2014 and January 2015 measurement weeks, shrinking the Unknown
/// bucket (§3.2).
enum class HeuristicsVersion : std::uint8_t { k2014, k2015 };

/// Evidence accumulated for one client MAC over its flows.
struct ClientEvidence {
  MacAddress mac;
  std::vector<DhcpParams> dhcp_fingerprints;
  std::vector<std::string> user_agents;
};

/// OS decision from the available evidence. Multiple *conflicting* DHCP
/// fingerprints (dual-boot / VMs behind one MAC) force Unknown, as in the
/// paper; conflicting User-Agents alone defer to DHCP.
[[nodiscard]] OsType classify_os(const ClientEvidence& evidence,
                                 HeuristicsVersion version = HeuristicsVersion::k2015);

/// Same decision procedure with evidence lookups routed through the compiled
/// index's exact-match buckets (verdict-identical; see RuleIndex).
[[nodiscard]] OsType classify_os(const ClientEvidence& evidence, HeuristicsVersion version,
                                 const RuleIndex* index);

/// Raw packets of a flow's slow-path sample, before metadata extraction.
struct FlowSample {
  Transport transport = Transport::kTcp;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> dns_packet;      // the preceding DNS query, if seen
  std::vector<std::uint8_t> first_payload;   // first data packet (HTTP / TLS / raw)
};

/// Runs the real parsers over the packets to produce FlowMetadata — the
/// step the Click elements perform in the paper's data path.
[[nodiscard]] FlowMetadata extract_metadata(const FlowSample& sample);

/// Metadata-identical variant that dispatches on the first payload byte
/// (0x16 -> TLS, token/space/tab -> HTTP, else entropy) instead of running
/// the full TLS -> HTTP -> entropy cascade. Equivalence holds because a
/// parsable TLS record must start 0x16 and a parsable HTTP request line must
/// start with a token char after optional space/tab padding.
[[nodiscard]] FlowMetadata extract_metadata_fast(const FlowSample& sample);

/// Same extraction into a caller-owned metadata object whose strings keep
/// their capacity — the hot classify loop reuses one across all flows.
/// Every field of `meta` is overwritten.
void extract_metadata_fast_into(const FlowSample& sample, FlowMetadata& meta);

/// Convenience: extract + classify.
[[nodiscard]] AppId classify_flow(const FlowSample& sample);

/// Shannon-entropy test used to flag encrypted (non-TLS) payloads.
[[nodiscard]] bool payload_high_entropy(std::span<const std::uint8_t> payload);

}  // namespace wlm::classify
