#include "classify/dhcp.hpp"

namespace wlm::classify {

namespace {

constexpr std::uint32_t kMagicCookie = 0x63825363;
constexpr std::size_t kBootpHeaderSize = 236;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_option(std::vector<std::uint8_t>& out, std::uint8_t code,
                std::span<const std::uint8_t> payload) {
  out.push_back(code);
  out.push_back(static_cast<std::uint8_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

void put_option_str(std::vector<std::uint8_t>& out, std::uint8_t code,
                    const std::string& s) {
  if (s.empty()) return;
  const auto n = std::min<std::size_t>(s.size(), 255);
  put_option(out, code,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(s.data()), n));
}

}  // namespace

std::vector<std::uint8_t> encode_dhcp(const DhcpPacket& packet) {
  std::vector<std::uint8_t> out;
  out.reserve(kBootpHeaderSize + 64);
  out.push_back(1);  // op: BOOTREQUEST
  out.push_back(1);  // htype: Ethernet
  out.push_back(6);  // hlen
  out.push_back(0);  // hops
  put_u32(out, packet.xid);
  // secs(2) + flags(2) + ciaddr/yiaddr/siaddr/giaddr (4x4) = 20 zero bytes.
  out.insert(out.end(), 20, 0);
  // chaddr: 16 bytes, MAC first.
  for (auto octet : packet.client_mac.octets()) out.push_back(octet);
  out.insert(out.end(), 10, 0);
  // sname(64) + file(128).
  out.insert(out.end(), 64 + 128, 0);
  put_u32(out, kMagicCookie);

  put_option(out, 53, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(&packet.type), 1));
  if (!packet.parameter_request_list.empty()) {
    put_option(out, 55, packet.parameter_request_list);
  }
  put_option_str(out, 60, packet.vendor_class);
  put_option_str(out, 12, packet.hostname);
  out.push_back(255);  // end option
  return out;
}

Parsed<DhcpPacket> parse_dhcp_ex(std::span<const std::uint8_t> data) {
  using Result = Parsed<DhcpPacket>;
  if (data.size() < kBootpHeaderSize + 4) return Result::failure(ParseError::kTruncated);
  if (data[0] != 1 || data[1] != 1 || data[2] != 6) return Result::failure(ParseError::kBadMagic);
  const std::uint32_t cookie = (static_cast<std::uint32_t>(data[kBootpHeaderSize]) << 24) |
                               (static_cast<std::uint32_t>(data[kBootpHeaderSize + 1]) << 16) |
                               (static_cast<std::uint32_t>(data[kBootpHeaderSize + 2]) << 8) |
                               data[kBootpHeaderSize + 3];
  if (cookie != kMagicCookie) return Result::failure(ParseError::kBadMagic);

  DhcpPacket packet;
  packet.xid = (static_cast<std::uint32_t>(data[4]) << 24) |
               (static_cast<std::uint32_t>(data[5]) << 16) |
               (static_cast<std::uint32_t>(data[6]) << 8) | data[7];
  std::uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) mac = (mac << 8) | data[28 + static_cast<std::size_t>(i)];
  packet.client_mac = MacAddress::from_u64(mac);

  std::size_t pos = kBootpHeaderSize + 4;
  while (pos < data.size()) {
    const std::uint8_t code = data[pos++];
    if (code == 255) break;  // end
    if (code == 0) continue;  // pad
    if (pos >= data.size()) break;  // truncated length byte
    const std::uint8_t len = data[pos++];
    if (pos + len > data.size()) break;  // truncated payload
    const auto payload = data.subspan(pos, len);
    pos += len;
    switch (code) {
      case 53:
        if (len == 1) packet.type = static_cast<DhcpMessageType>(payload[0]);
        break;
      case 55:
        packet.parameter_request_list.assign(payload.begin(), payload.end());
        break;
      case 60:
        packet.vendor_class.assign(payload.begin(), payload.end());
        break;
      case 12:
        packet.hostname.assign(payload.begin(), payload.end());
        break;
      default:
        break;  // skip unknown options
    }
  }
  return Result::success(std::move(packet));
}

std::optional<DhcpPacket> parse_dhcp(std::span<const std::uint8_t> data) {
  return parse_dhcp_ex(data).value;
}

std::string canonical_vendor_class(OsType os) {
  switch (os) {
    case OsType::kWindows:
      return "MSFT 5.0";
    case OsType::kWindowsMobile:
      return "MSFT 5.0";
    case OsType::kAndroid:
      return "android-dhcp-5.0";
    case OsType::kChromeOs:
      return "Chrome OS";
    case OsType::kLinux:
      return "udhcp 1.22.1";
    case OsType::kXbox:
      return "XBOX 1.0";
    default:
      return {};  // Apple stacks famously send no option 60
  }
}

std::optional<OsType> os_from_dhcp_packet(const DhcpPacket& packet) {
  const auto from_params = os_from_dhcp(packet.parameter_request_list);
  // Vendor class can break fingerprint ties or rescue unknown lists.
  const std::string& vc = packet.vendor_class;
  std::optional<OsType> from_vendor;
  if (vc.rfind("MSFT", 0) == 0) from_vendor = OsType::kWindows;
  if (vc.rfind("android", 0) == 0) from_vendor = OsType::kAndroid;
  if (vc.rfind("Chrome", 0) == 0) from_vendor = OsType::kChromeOs;
  if (vc.rfind("XBOX", 0) == 0) from_vendor = OsType::kXbox;
  if (vc.rfind("udhcp", 0) == 0 || vc.rfind("dhcpcd", 0) == 0) {
    from_vendor = OsType::kLinux;
  }
  if (from_params && from_vendor && *from_params != *from_vendor) {
    // Windows Mobile shares the MSFT vendor class with desktop Windows; the
    // parameter list is the finer signal. Otherwise trust the vendor class.
    if (*from_params == OsType::kWindowsMobile && *from_vendor == OsType::kWindows) {
      return from_params;
    }
    return from_vendor;
  }
  if (from_params) return from_params;
  return from_vendor;
}

}  // namespace wlm::classify
