// DHCP wire codec (RFC 2131/2132): enough of the BOOTP message format to
// build the DISCOVER/REQUEST packets clients emit and to let the AP's slow
// path pull the fingerprinting signals out of them — the parameter request
// list (option 55), vendor class identifier (option 60), and hostname
// (option 12). This is the packet-level substrate under dhcp_fingerprint.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "classify/dhcp_fingerprint.hpp"
#include "classify/parse_error.hpp"

namespace wlm::classify {

enum class DhcpMessageType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 5,
};

struct DhcpPacket {
  DhcpMessageType type = DhcpMessageType::kDiscover;
  std::uint32_t xid = 0;
  MacAddress client_mac;
  DhcpParams parameter_request_list;  // option 55
  std::string vendor_class;           // option 60 ("MSFT 5.0", "android-dhcp-...")
  std::string hostname;               // option 12
};

/// Serializes a client DHCP message (BOOTP header + magic cookie + options).
[[nodiscard]] std::vector<std::uint8_t> encode_dhcp(const DhcpPacket& packet);

/// Parses a DHCP message. Fails typed: kTruncated when the buffer cannot
/// hold a BOOTP header + cookie, kBadMagic when the op/htype/hlen triple or
/// the magic cookie is wrong. Unknown options are skipped; a truncated
/// option list still succeeds with what was parsed up to that point (the
/// classifier works from partial captures).
[[nodiscard]] Parsed<DhcpPacket> parse_dhcp_ex(std::span<const std::uint8_t> data);

/// Optional-returning wrapper around parse_dhcp_ex.
[[nodiscard]] std::optional<DhcpPacket> parse_dhcp(std::span<const std::uint8_t> data);

/// The vendor class string each OS's DHCP client sends (option 60).
[[nodiscard]] std::string canonical_vendor_class(OsType os);

/// Full device-typing from one DHCP packet: the option-55 fingerprint
/// first, refined by the vendor class when the list alone is ambiguous.
[[nodiscard]] std::optional<OsType> os_from_dhcp_packet(const DhcpPacket& packet);

}  // namespace wlm::classify
