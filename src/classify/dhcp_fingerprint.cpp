#include "classify/dhcp_fingerprint.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace wlm::classify {

namespace {

// Signature table: (OS, parameter request list). Based on widely published
// DHCP fingerprints (Fingerbank / satori): option numbers are real.
const std::vector<std::pair<OsType, DhcpParams>>& signatures() {
  static const std::vector<std::pair<OsType, DhcpParams>> sigs = {
      {OsType::kWindows, {1, 3, 6, 15, 31, 33, 43, 44, 46, 47, 119, 121, 249, 252}},
      {OsType::kWindowsMobile, {1, 3, 6, 15, 44, 46, 47, 31, 33, 121, 249, 43}},
      {OsType::kMacOsX, {1, 3, 6, 15, 119, 95, 252, 44, 46}},
      {OsType::kAppleIos, {1, 3, 6, 15, 119, 252}},
      {OsType::kAndroid, {1, 3, 6, 15, 26, 28, 51, 58, 59, 43}},
      {OsType::kChromeOs, {1, 3, 6, 12, 15, 26, 28, 51, 58, 59, 43, 119}},
      {OsType::kLinux, {1, 28, 2, 3, 15, 6, 119, 12, 44, 47, 26, 121, 42}},
      {OsType::kBlackberry, {1, 3, 6, 15, 28, 43, 66, 67}},
      {OsType::kPlaystation, {1, 3, 15, 6}},
      {OsType::kXbox, {1, 3, 6, 15, 31, 33, 43, 44, 46, 47, 121, 249}},
  };
  return sigs;
}

}  // namespace

DhcpParams canonical_dhcp_params(OsType os) {
  for (const auto& [sig_os, params] : signatures()) {
    if (sig_os == os) return params;
  }
  return {1, 3, 6};  // generic embedded stack
}

std::optional<OsType> os_from_dhcp(std::span<const std::uint8_t> params) {
  if (params.empty()) return std::nullopt;
  // Exact match.
  for (const auto& [os, sig] : signatures()) {
    if (sig.size() == params.size() && std::equal(sig.begin(), sig.end(), params.begin())) {
      return os;
    }
  }
  // Longest-prefix match: the signature must be a prefix of the observed
  // list (appended vendor options) and at least 4 options long to count.
  const std::pair<OsType, DhcpParams>* best = nullptr;
  for (const auto& entry : signatures()) {
    const auto& sig = entry.second;
    if (sig.size() < 4 || sig.size() > params.size()) continue;
    if (!std::equal(sig.begin(), sig.end(), params.begin())) continue;
    if (best == nullptr || sig.size() > best->second.size()) best = &entry;
  }
  if (best != nullptr) return best->first;
  return std::nullopt;
}

}  // namespace wlm::classify
