// DHCP option-55 (parameter request list) fingerprinting.
//
// Different OS network stacks request characteristic option sequences in
// DHCPDISCOVER/REQUEST; matching the observed sequence against a signature
// table identifies the OS (the paper's second device-typing signal, §3.2,
// citing Franklin et al.). A client presenting multiple distinct
// fingerprints (dual boot, VMs) is flagged ambiguous -> Unknown.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "classify/os.hpp"

namespace wlm::classify {

/// A DHCP parameter-request-list as a byte sequence of option codes.
using DhcpParams = std::vector<std::uint8_t>;

/// Canonical fingerprints emitted by each OS's DHCP client (representative
/// signatures in Fingerbank style).
[[nodiscard]] DhcpParams canonical_dhcp_params(OsType os);

/// Identifies the OS from a parameter request list. Exact match first, then
/// the longest-prefix match (clients sometimes append vendor options);
/// nullopt when nothing matches.
[[nodiscard]] std::optional<OsType> os_from_dhcp(std::span<const std::uint8_t> params);

}  // namespace wlm::classify
