#include "classify/dns.hpp"

#include <cctype>

namespace wlm::classify {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<std::uint16_t> get_u16(std::span<const std::uint8_t> in, std::size_t pos) {
  if (pos + 2 > in.size()) return std::nullopt;
  return static_cast<std::uint16_t>((in[pos] << 8) | in[pos + 1]);
}

/// Reads a (possibly compressed) name starting at `pos`; advances pos past
/// the in-place portion. Returns nullopt on malformed input.
std::optional<std::string> read_name(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::string name;
  std::size_t p = pos;
  bool jumped = false;
  int hops = 0;
  while (true) {
    if (p >= in.size()) return std::nullopt;
    const std::uint8_t len = in[p];
    if ((len & 0xC0) == 0xC0) {  // compression pointer
      const auto ptr = get_u16(in, p);
      if (!ptr) return std::nullopt;
      if (!jumped) pos = p + 2;
      p = *ptr & 0x3FFF;
      jumped = true;
      if (++hops > 16) return std::nullopt;  // pointer loop
      continue;
    }
    if (len == 0) {
      if (!jumped) pos = p + 1;
      break;
    }
    if (len > 63 || p + 1 + len > in.size()) return std::nullopt;
    if (!name.empty()) name.push_back('.');
    for (std::size_t i = 0; i < len; ++i) {
      name.push_back(static_cast<char>(std::tolower(in[p + 1 + i])));
    }
    p += 1 + len;
  }
  return name;
}

}  // namespace

std::vector<std::uint8_t> encode_dns_query(std::uint16_t id, std::string_view qname) {
  std::vector<std::uint8_t> out;
  put_u16(out, id);
  put_u16(out, 0x0100);  // flags: standard query, RD
  put_u16(out, 1);       // QDCOUNT
  put_u16(out, 0);       // ANCOUNT
  put_u16(out, 0);       // NSCOUNT
  put_u16(out, 0);       // ARCOUNT
  // QNAME as length-prefixed labels.
  std::size_t start = 0;
  std::size_t total = 0;
  while (start < qname.size() && total < 255) {
    std::size_t dot = qname.find('.', start);
    if (dot == std::string_view::npos) dot = qname.size();
    std::size_t len = dot - start;
    if (len > 63) len = 63;
    if (len > 0) {
      out.push_back(static_cast<std::uint8_t>(len));
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<std::uint8_t>(std::tolower(qname[start + i])));
      }
      total += len + 1;
    }
    start = dot + 1;
  }
  out.push_back(0);
  put_u16(out, 1);  // QTYPE A
  put_u16(out, 1);  // QCLASS IN
  return out;
}

std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> packet) {
  if (packet.size() < 12) return std::nullopt;
  DnsMessage msg;
  msg.id = *get_u16(packet, 0);
  const std::uint16_t flags = *get_u16(packet, 2);
  msg.is_response = (flags & 0x8000) != 0;
  const std::uint16_t qdcount = *get_u16(packet, 4);
  msg.answer_count = *get_u16(packet, 6);
  std::size_t pos = 12;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    auto name = read_name(packet, pos);
    if (!name) return std::nullopt;
    const auto qtype = get_u16(packet, pos);
    const auto qclass = get_u16(packet, pos + 2);
    if (!qtype || !qclass) return std::nullopt;
    pos += 4;
    msg.questions.push_back(DnsQuestion{std::move(*name), *qtype, *qclass});
  }
  return msg;
}

}  // namespace wlm::classify
