#include "classify/dns.hpp"

#include <cctype>

namespace wlm::classify {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<std::uint16_t> get_u16(std::span<const std::uint8_t> in, std::size_t pos) {
  if (pos + 2 > in.size()) return std::nullopt;
  return static_cast<std::uint16_t>((in[pos] << 8) | in[pos + 1]);
}

/// Reads a (possibly compressed) name starting at `pos`; advances pos past
/// the in-place portion. On failure returns the typed reason and leaves the
/// output name unspecified.
ParseError read_name(std::span<const std::uint8_t> in, std::size_t& pos, std::string& name) {
  name.clear();
  std::size_t p = pos;
  bool jumped = false;
  int hops = 0;
  while (true) {
    if (p >= in.size()) return ParseError::kTruncated;
    const std::uint8_t len = in[p];
    if ((len & 0xC0) == 0xC0) {  // compression pointer
      const auto ptr = get_u16(in, p);
      if (!ptr) return ParseError::kTruncated;
      if (!jumped) pos = p + 2;
      p = *ptr & 0x3FFF;
      jumped = true;
      // Hop bound: self-referential and mutually-referential pointer chains
      // would otherwise spin forever; anything deeper than the longest legal
      // name is a loop by construction.
      if (++hops > kDnsMaxPointerHops) return ParseError::kPointerLoop;
      continue;
    }
    if (len == 0) {
      if (!jumped) pos = p + 1;
      break;
    }
    if (len > 63) return ParseError::kBadValue;             // 0x40/0x80 label types
    if (p + 1 + len > in.size()) return ParseError::kBadLength;
    if (!name.empty()) name.push_back('.');
    for (std::size_t i = 0; i < len; ++i) {
      name.push_back(static_cast<char>(std::tolower(in[p + 1 + i])));
    }
    p += 1 + len;
  }
  return ParseError::kNone;
}

}  // namespace

std::vector<std::uint8_t> encode_dns_query(std::uint16_t id, std::string_view qname) {
  std::vector<std::uint8_t> out;
  encode_dns_query_into(id, qname, out);
  return out;
}

void encode_dns_query_into(std::uint16_t id, std::string_view qname,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  put_u16(out, id);
  put_u16(out, 0x0100);  // flags: standard query, RD
  put_u16(out, 1);       // QDCOUNT
  put_u16(out, 0);       // ANCOUNT
  put_u16(out, 0);       // NSCOUNT
  put_u16(out, 0);       // ARCOUNT
  // QNAME as length-prefixed labels.
  std::size_t start = 0;
  std::size_t total = 0;
  while (start < qname.size() && total < 255) {
    std::size_t dot = qname.find('.', start);
    if (dot == std::string_view::npos) dot = qname.size();
    std::size_t len = dot - start;
    if (len > 63) len = 63;
    if (len > 0) {
      out.push_back(static_cast<std::uint8_t>(len));
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<std::uint8_t>(std::tolower(qname[start + i])));
      }
      total += len + 1;
    }
    start = dot + 1;
  }
  out.push_back(0);
  put_u16(out, 1);  // QTYPE A
  put_u16(out, 1);  // QCLASS IN
}

ParseError parse_dns_into(std::span<const std::uint8_t> packet, DnsMessage& out) {
  if (packet.size() < 12) return ParseError::kTruncated;
  out.id = *get_u16(packet, 0);
  const std::uint16_t flags = *get_u16(packet, 2);
  out.is_response = (flags & 0x8000) != 0;
  const std::uint16_t qdcount = *get_u16(packet, 4);
  out.answer_count = *get_u16(packet, 6);
  std::size_t pos = 12;
  // Question slots (and the qname strings inside them) are overwritten in
  // place so a reused message keeps its allocations across packets.
  std::size_t used = 0;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    if (used == out.questions.size()) out.questions.emplace_back();
    DnsQuestion& question = out.questions[used];
    if (const ParseError err = read_name(packet, pos, question.qname); err != ParseError::kNone) {
      return err;
    }
    const auto qtype = get_u16(packet, pos);
    const auto qclass = get_u16(packet, pos + 2);
    if (!qtype || !qclass) return ParseError::kTruncated;
    pos += 4;
    question.qtype = *qtype;
    question.qclass = *qclass;
    ++used;
  }
  if (out.questions.size() > used) out.questions.resize(used);
  return ParseError::kNone;
}

Parsed<DnsMessage> parse_dns_ex(std::span<const std::uint8_t> packet) {
  DnsMessage msg;
  const ParseError err = parse_dns_into(packet, msg);
  if (err != ParseError::kNone) return Parsed<DnsMessage>::failure(err);
  return Parsed<DnsMessage>::success(std::move(msg));
}

std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> packet) {
  return parse_dns_ex(packet).value;
}

}  // namespace wlm::classify
