// Minimal DNS wire codec (RFC 1035): enough to build the query packets the
// traffic generator emits and to let the classifier's slow path extract the
// queried hostname — the paper's first application-identification signal
// ("initial DNS lookup", §3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classify/parse_error.hpp"

namespace wlm::classify {

struct DnsQuestion {
  std::string qname;       // dotted, lowercase
  std::uint16_t qtype = 1;  // A
  std::uint16_t qclass = 1; // IN
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::vector<DnsQuestion> questions;
  std::uint16_t answer_count = 0;  // parsed but answers are not materialized
};

/// Compression-pointer hop bound: a legal name has at most 127 labels
/// (255-byte name, 2 bytes per minimal label), so no well-formed chain needs
/// more hops than that. Chains past the bound fail with kPointerLoop.
inline constexpr int kDnsMaxPointerHops = 127;

/// Encodes a single-question query. Names longer than 255 bytes or with
/// labels over 63 bytes are truncated per-spec limits.
[[nodiscard]] std::vector<std::uint8_t> encode_dns_query(std::uint16_t id,
                                                         std::string_view qname);

/// Same encoding written into a caller-owned buffer (cleared first) so a
/// hot generator loop can reuse one allocation across millions of queries.
void encode_dns_query_into(std::uint16_t id, std::string_view qname,
                           std::vector<std::uint8_t>& out);

/// Parses header + question section (answers are skipped). Compression
/// pointers in QNAMEs are followed with the kDnsMaxPointerHops bound; every
/// malformed input fails typed (kTruncated / kBadLength / kPointerLoop).
[[nodiscard]] Parsed<DnsMessage> parse_dns_ex(std::span<const std::uint8_t> packet);

/// Same parse into a caller-owned message whose question slots (and qname
/// strings) keep their capacity across packets — for the classifier's hot
/// loop. Returns kNone on success; `out` is unspecified on failure.
ParseError parse_dns_into(std::span<const std::uint8_t> packet, DnsMessage& out);

/// Optional-returning wrapper around parse_dns_ex (legacy entry point).
[[nodiscard]] std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> packet);

}  // namespace wlm::classify
