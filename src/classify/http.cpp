#include "classify/http.hpp"

#include <algorithm>
#include <cctype>

namespace wlm::classify {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

void assign_lower(std::string& out, std::string_view s) {
  out.assign(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](unsigned char x, unsigned char y) {
           return std::tolower(x) == std::tolower(y);
         });
}

}  // namespace

bool http_token_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '!' || c == '#' || c == '$' ||
         c == '%' || c == '&' || c == '\'' || c == '*' || c == '+' || c == '-' || c == '.' ||
         c == '^' || c == '_' || c == '`' || c == '|' || c == '~';
}

ParseError parse_http_request_into(std::string_view payload, HttpRequestHead& out) {
  out.method.clear();
  out.target.clear();
  out.version.clear();
  out.host.clear();
  out.user_agent.clear();
  out.content_type.clear();
  if (payload.empty()) return ParseError::kTruncated;
  const std::size_t line_end = payload.find('\n');
  const std::string_view request_line =
      trim(line_end == std::string_view::npos ? payload : payload.substr(0, line_end));

  // METHOD SP TARGET SP HTTP/x.y
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return ParseError::kBadValue;
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp2 == sp1) return ParseError::kBadValue;
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!std::all_of(method.begin(), method.end(), http_token_char)) {
    return ParseError::kBadValue;
  }
  if (!version.starts_with("HTTP/")) return ParseError::kBadMagic;
  if (target.empty()) return ParseError::kBadValue;

  out.method = method;
  out.target = target;
  out.version = version;

  std::size_t pos = line_end == std::string_view::npos ? payload.size() : line_end + 1;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = trim(payload.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) break;  // end of headers
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    const std::string_view name = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));
    if (iequals(name, "host")) {
      std::string& host = out.host;
      assign_lower(host, value);
      const std::size_t port = host.rfind(':');
      // Strip ":port" but not an IPv6 literal's colons.
      if (port != std::string::npos && host.find(']') == std::string::npos &&
          host.find(':') == port) {
        host.resize(port);
      }
    } else if (iequals(name, "user-agent")) {
      out.user_agent = value;
    } else if (iequals(name, "content-type")) {
      assign_lower(out.content_type, value);
    }
  }
  return ParseError::kNone;
}

Parsed<HttpRequestHead> parse_http_request_ex(std::string_view payload) {
  using Result = Parsed<HttpRequestHead>;
  HttpRequestHead head;
  const ParseError err = parse_http_request_into(payload, head);
  if (err != ParseError::kNone) return Result::failure(err);
  return Result::success(std::move(head));
}

std::optional<HttpRequestHead> parse_http_request(std::string_view payload) {
  return parse_http_request_ex(payload).value;
}

std::string build_http_request(std::string_view method, std::string_view host,
                               std::string_view path, std::string_view user_agent,
                               std::string_view content_type) {
  std::string out;
  build_http_request_into(method, host, path, user_agent, content_type, out);
  return out;
}

void build_http_request_into(std::string_view method, std::string_view host,
                             std::string_view path, std::string_view user_agent,
                             std::string_view content_type, std::string& out) {
  out.clear();
  out.reserve(128 + host.size() + path.size() + user_agent.size());
  out.append(method).append(" ").append(path).append(" HTTP/1.1\r\n");
  out.append("Host: ").append(host).append("\r\n");
  if (!user_agent.empty()) out.append("User-Agent: ").append(user_agent).append("\r\n");
  if (!content_type.empty()) out.append("Content-Type: ").append(content_type).append("\r\n");
  out.append("Accept: */*\r\n\r\n");
}

}  // namespace wlm::classify
