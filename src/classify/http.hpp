// HTTP/1.x request-head parser — the slow path inspects "packets containing
// HTTP headers" (paper §2.1) to pull Host and User-Agent for classification.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "classify/parse_error.hpp"

namespace wlm::classify {

struct HttpRequestHead {
  std::string method;
  std::string target;
  std::string version;
  std::string host;          // lowercased, port stripped
  std::string user_agent;
  std::string content_type;  // from the request, when present
};

/// RFC 7230 token character (legal in a method name). The first payload
/// byte of any parsable HTTP request is a token char, a space, or a tab —
/// the classifier's first-byte dispatch keys on exactly this predicate.
[[nodiscard]] bool http_token_char(char c);

/// Parses the request line and headers from the start of a TCP payload.
/// Tolerates a truncated header block (classification works from the first
/// packet of a flow); fails typed — kTruncated for an empty payload,
/// kBadValue when the request line itself is absent or malformed.
[[nodiscard]] Parsed<HttpRequestHead> parse_http_request_ex(std::string_view payload);

/// Same parse into a caller-owned head whose strings keep their capacity —
/// the classifier's hot loop reuses one head across millions of flows. All
/// fields are cleared first; returns kNone on success.
ParseError parse_http_request_into(std::string_view payload, HttpRequestHead& out);

/// Optional-returning wrapper around parse_http_request_ex.
[[nodiscard]] std::optional<HttpRequestHead> parse_http_request(std::string_view payload);

/// Builds a request head for the traffic generator.
[[nodiscard]] std::string build_http_request(std::string_view method, std::string_view host,
                                             std::string_view path, std::string_view user_agent,
                                             std::string_view content_type = {});

/// Same request head appended into a caller-owned string (cleared first) so
/// the generator's hot loop reuses one allocation across flows.
void build_http_request_into(std::string_view method, std::string_view host,
                             std::string_view path, std::string_view user_agent,
                             std::string_view content_type, std::string& out);

}  // namespace wlm::classify
