#include "classify/os.hpp"

namespace wlm::classify {

std::string_view os_name(OsType os) {
  switch (os) {
    case OsType::kUnknown:
      return "Unknown";
    case OsType::kWindows:
      return "Windows";
    case OsType::kAppleIos:
      return "Apple iOS";
    case OsType::kMacOsX:
      return "Mac OS X";
    case OsType::kAndroid:
      return "Android";
    case OsType::kChromeOs:
      return "Chrome OS";
    case OsType::kPlaystation:
      return "Sony Playstation OS";
    case OsType::kLinux:
      return "Linux";
    case OsType::kBlackberry:
      return "RIM BlackBerry";
    case OsType::kWindowsMobile:
      return "Mobile Windows OSes";
    case OsType::kXbox:
      return "Microsoft Xbox";
    case OsType::kOther:
      return "Other";
  }
  return "?";
}

DeviceClass device_class(OsType os) {
  switch (os) {
    case OsType::kWindows:
    case OsType::kMacOsX:
    case OsType::kChromeOs:
    case OsType::kLinux:
      return DeviceClass::kDesktop;
    case OsType::kAppleIos:
    case OsType::kAndroid:
    case OsType::kBlackberry:
    case OsType::kWindowsMobile:
      return DeviceClass::kMobile;
    case OsType::kPlaystation:
    case OsType::kXbox:
      return DeviceClass::kConsole;
    case OsType::kOther:
      return DeviceClass::kEmbedded;
    case OsType::kUnknown:
      return DeviceClass::kUnknown;
  }
  return DeviceClass::kUnknown;
}

std::string_view device_class_name(DeviceClass dc) {
  switch (dc) {
    case DeviceClass::kDesktop:
      return "desktop/laptop";
    case DeviceClass::kMobile:
      return "mobile";
    case DeviceClass::kConsole:
      return "console";
    case DeviceClass::kEmbedded:
      return "embedded";
    case DeviceClass::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace wlm::classify
