// Client operating-system taxonomy (the row set of the paper's Table 3).
#pragma once

#include <cstdint>
#include <string_view>

namespace wlm::classify {

enum class OsType : std::uint8_t {
  kUnknown = 0,
  kWindows,
  kAppleIos,
  kMacOsX,
  kAndroid,
  kChromeOs,
  kPlaystation,
  kLinux,
  kBlackberry,
  kWindowsMobile,
  kXbox,
  kOther,
};

inline constexpr int kOsTypeCount = 12;

[[nodiscard]] std::string_view os_name(OsType os);

/// Device class implied by the OS (paper §3.2 contrasts mobile vs desktop).
enum class DeviceClass : std::uint8_t { kDesktop, kMobile, kConsole, kEmbedded, kUnknown };

[[nodiscard]] DeviceClass device_class(OsType os);
[[nodiscard]] std::string_view device_class_name(DeviceClass dc);

}  // namespace wlm::classify
