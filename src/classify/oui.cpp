#include "classify/oui.hpp"

#include <algorithm>
#include <array>
#include <vector>

namespace wlm::classify {

std::string_view vendor_name(Vendor v) {
  switch (v) {
    case Vendor::kUnknown:
      return "Unknown";
    case Vendor::kApple:
      return "Apple";
    case Vendor::kSamsung:
      return "Samsung";
    case Vendor::kMicrosoft:
      return "Microsoft";
    case Vendor::kIntel:
      return "Intel";
    case Vendor::kDell:
      return "Dell";
    case Vendor::kHp:
      return "HP";
    case Vendor::kSony:
      return "Sony";
    case Vendor::kLg:
      return "LG";
    case Vendor::kHtc:
      return "HTC";
    case Vendor::kMotorola:
      return "Motorola";
    case Vendor::kRim:
      return "RIM";
    case Vendor::kNokia:
      return "Nokia";
    case Vendor::kGoogle:
      return "Google";
    case Vendor::kCisco:
      return "Cisco";
    case Vendor::kNovatel:
      return "Novatel";
    case Vendor::kPantech:
      return "Pantech";
    case Vendor::kSierraWireless:
      return "Sierra Wireless";
    case Vendor::kFranklin:
      return "Franklin Wireless";
    case Vendor::kZte:
      return "ZTE";
    case Vendor::kNetgear:
      return "Netgear";
    case Vendor::kTpLink:
      return "TP-Link";
    case Vendor::kDropcam:
      return "Dropcam";
  }
  return "?";
}

namespace {

// Real IEEE OUI assignments (subset).
std::vector<OuiEntry> build_registry() {
  std::vector<OuiEntry> reg = {
      {0x000393, Vendor::kApple},  {0x0016CB, Vendor::kApple},  {0x001EC2, Vendor::kApple},
      {0x0023DF, Vendor::kApple},  {0x28CFE9, Vendor::kApple},  {0x3C0754, Vendor::kApple},
      {0x7CD1C3, Vendor::kApple},  {0xA45E60, Vendor::kApple},  {0xD0E140, Vendor::kApple},
      {0x002339, Vendor::kSamsung}, {0x1489FD, Vendor::kSamsung}, {0x5001BB, Vendor::kSamsung},
      {0x8C7712, Vendor::kSamsung}, {0xE8508B, Vendor::kSamsung},
      {0x0017FA, Vendor::kMicrosoft}, {0x7CED8D, Vendor::kMicrosoft}, {0x985FD3, Vendor::kMicrosoft},
      {0x001B21, Vendor::kIntel},  {0x3413E8, Vendor::kIntel},  {0xA0A8CD, Vendor::kIntel},
      {0x001422, Vendor::kDell},   {0xB8AC6F, Vendor::kDell},
      {0x001708, Vendor::kHp},     {0x308D99, Vendor::kHp},
      {0x001315, Vendor::kSony},   {0x280DFC, Vendor::kSony},   {0xF8D0AC, Vendor::kSony},
      {0x001C62, Vendor::kLg},     {0xA09169, Vendor::kLg},
      {0x002376, Vendor::kHtc},    {0x7C6193, Vendor::kHtc},
      {0x00A0BF, Vendor::kMotorola}, {0x40786A, Vendor::kMotorola},
      {0x001CCC, Vendor::kRim},    {0x9C3AAF, Vendor::kRim},
      {0x0002EE, Vendor::kNokia},  {0x3CF72A, Vendor::kNokia},
      {0x3C5AB4, Vendor::kGoogle}, {0x94EB2C, Vendor::kGoogle},
      {0x00180A, Vendor::kCisco},  {0x88154E, Vendor::kCisco},  {0xE05FB9, Vendor::kCisco},
      {0x001529, Vendor::kNovatel}, {0x0015FF, Vendor::kNovatel}, {0x302DE8, Vendor::kNovatel},
      {0x0022F1, Vendor::kPantech}, {0xC4AAA1, Vendor::kPantech},
      {0x000F3D, Vendor::kSierraWireless}, {0x7C9A1D, Vendor::kSierraWireless},
      {0x0023B3, Vendor::kFranklin},
      {0x002512, Vendor::kZte},    {0x98F537, Vendor::kZte},
      {0x00095B, Vendor::kNetgear}, {0xA040A0, Vendor::kNetgear},
      {0x14CC20, Vendor::kTpLink}, {0xEC086B, Vendor::kTpLink},
      {0x305CDE, Vendor::kDropcam},
  };
  std::sort(reg.begin(), reg.end(),
            [](const OuiEntry& a, const OuiEntry& b) { return a.oui < b.oui; });
  return reg;
}

const std::vector<OuiEntry>& registry_storage() {
  static const std::vector<OuiEntry> reg = build_registry();
  return reg;
}

}  // namespace

std::span<const OuiEntry> oui_registry() { return registry_storage(); }

Vendor vendor_for(MacAddress mac) {
  if (mac.locally_administered()) return Vendor::kUnknown;
  const auto& reg = registry_storage();
  const std::uint32_t oui = mac.oui();
  const auto it = std::lower_bound(reg.begin(), reg.end(), oui,
                                   [](const OuiEntry& e, std::uint32_t v) { return e.oui < v; });
  if (it != reg.end() && it->oui == oui) return it->vendor;
  return Vendor::kUnknown;
}

bool is_hotspot_vendor(Vendor v) {
  switch (v) {
    case Vendor::kNovatel:
    case Vendor::kPantech:
    case Vendor::kSierraWireless:
    case Vendor::kFranklin:
    case Vendor::kZte:
      return true;
    default:
      return false;
  }
}

std::optional<OsType> os_hint_from_vendor(Vendor v) {
  switch (v) {
    case Vendor::kApple:
      return std::nullopt;  // could be iOS or Mac OS X; need more evidence
    case Vendor::kSamsung:
    case Vendor::kHtc:
    case Vendor::kLg:
    case Vendor::kMotorola:
      return OsType::kAndroid;
    case Vendor::kRim:
      return OsType::kBlackberry;
    case Vendor::kNokia:
      return OsType::kWindowsMobile;
    case Vendor::kSony:
      return OsType::kPlaystation;
    case Vendor::kDropcam:
      return OsType::kOther;
    default:
      return std::nullopt;
  }
}

std::uint32_t representative_oui(Vendor v) {
  for (const auto& e : registry_storage()) {
    if (e.vendor == v) return e.oui;
  }
  return 0x020000;  // locally administered fallback
}

}  // namespace wlm::classify
