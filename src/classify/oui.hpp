// MAC OUI (vendor prefix) database.
//
// The paper uses "a combination of MAC address prefix, DHCP fingerprints and
// HTTP User-Agent inspection" for device typing (§3.2) and classifies ~20%
// of nearby 2.4 GHz networks as personal mobile hotspots by vendor
// ("Novatel, Pantech, Sierra Wireless, etc.", §4.1). This table is a
// representative subset of the IEEE registry sufficient for both uses.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "core/ids.hpp"
#include "classify/os.hpp"

namespace wlm::classify {

enum class Vendor : std::uint8_t {
  kUnknown = 0,
  kApple,
  kSamsung,
  kMicrosoft,
  kIntel,
  kDell,
  kHp,
  kSony,
  kLg,
  kHtc,
  kMotorola,
  kRim,         // BlackBerry
  kNokia,
  kGoogle,
  kCisco,       // includes the fleet's own radios
  kNovatel,     // mobile hotspot
  kPantech,     // mobile hotspot
  kSierraWireless,  // mobile hotspot
  kFranklin,    // mobile hotspot
  kZte,         // mobile hotspot
  kNetgear,
  kTpLink,
  kDropcam,
};

[[nodiscard]] std::string_view vendor_name(Vendor v);

struct OuiEntry {
  std::uint32_t oui;
  Vendor vendor;
};

/// The registry (sorted by OUI for binary search).
[[nodiscard]] std::span<const OuiEntry> oui_registry();

/// Vendor for a MAC; kUnknown for unlisted or locally administered MACs.
[[nodiscard]] Vendor vendor_for(MacAddress mac);

/// Personal mobile hotspot vendors (paper §4.1's hotspot criterion).
[[nodiscard]] bool is_hotspot_vendor(Vendor v);

/// A (weak) OS prior from the vendor alone; used when DHCP/UA evidence is
/// missing. nullopt when the vendor implies nothing about the OS.
[[nodiscard]] std::optional<OsType> os_hint_from_vendor(Vendor v);

/// A representative OUI for a vendor (for the traffic generator to mint
/// realistic client MACs).
[[nodiscard]] std::uint32_t representative_oui(Vendor v);

}  // namespace wlm::classify
