// Typed parse failures for the slow-path protocol parsers.
//
// The paper's Click elements inspect hostile bytes off the air: DNS, HTTP,
// TLS, and DHCP payloads arrive truncated, with lying length fields, and
// with looping compression chains. Every parser in this module therefore
// fails *typed* — a ParseError naming what broke — and never crashes or
// loops. The `_ex` parser variants return Parsed<T>; the original
// optional-returning entry points remain as thin wrappers.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace wlm::classify {

enum class ParseError : std::uint8_t {
  kNone = 0,
  kTruncated,    // ran out of bytes mid-structure
  kBadMagic,     // not this protocol at all (wrong magic/type/cookie)
  kBadLength,    // a length field lies about the bytes that follow
  kBadValue,     // a field holds an illegal value
  kPointerLoop,  // DNS compression chain exceeded the 127-hop bound
};

[[nodiscard]] constexpr std::string_view parse_error_name(ParseError e) {
  switch (e) {
    case ParseError::kNone: return "none";
    case ParseError::kTruncated: return "truncated";
    case ParseError::kBadMagic: return "bad_magic";
    case ParseError::kBadLength: return "bad_length";
    case ParseError::kBadValue: return "bad_value";
    case ParseError::kPointerLoop: return "pointer_loop";
  }
  return "invalid";
}

/// Parse outcome: either a value or a non-kNone error, never both unset.
template <typename T>
struct Parsed {
  std::optional<T> value;
  ParseError error = ParseError::kNone;

  [[nodiscard]] bool ok() const { return value.has_value(); }

  static Parsed success(T v) { return Parsed{std::move(v), ParseError::kNone}; }
  static Parsed failure(ParseError e) { return Parsed{std::nullopt, e}; }
};

}  // namespace wlm::classify
