#include "classify/rule_index.hpp"

#include <limits>

#include "classify/dhcp.hpp"
#include "classify/user_agent.hpp"

namespace wlm::classify {

namespace {

/// Walks `host` backwards one dot-separated label at a time.
class ReverseLabelIterator {
 public:
  explicit ReverseLabelIterator(std::string_view host) : host_(host), end_(host.size()) {}

  [[nodiscard]] bool next(std::string_view& label) {
    if (end_ == 0 && consumed_) return false;
    const std::size_t dot = host_.rfind('.', end_ == 0 ? 0 : end_ - 1);
    if (dot == std::string_view::npos || end_ == 0) {
      label = host_.substr(0, end_);
      end_ = 0;
      consumed_ = true;
      return true;
    }
    label = host_.substr(dot + 1, end_ - dot - 1);
    end_ = dot;
    return true;
  }

 private:
  std::string_view host_;
  std::size_t end_;
  bool consumed_ = false;
};

}  // namespace

std::optional<ClassifierMode> classifier_mode_from_name(std::string_view name) {
  if (name == "reference") return ClassifierMode::kReference;
  if (name == "indexed") return ClassifierMode::kIndexed;
  return std::nullopt;
}

const RuleIndex& RuleIndex::standard() {
  static const RuleIndex index{RuleSet::standard()};
  return index;
}

RuleIndex::RuleIndex(const RuleSet& rules)
    : tcp_ports_(std::numeric_limits<std::uint16_t>::max() + 1, AppId::kUnclassified),
      udp_ports_(std::numeric_limits<std::uint16_t>::max() + 1, AppId::kUnclassified) {
  for (const auto& r : rules.rules()) {
    switch (r.kind) {
      case RuleKind::kDomainSuffix:
        insert_domain(r.domain, r.app);
        break;
      case RuleKind::kTcpPort:
        // First rule wins, matching the linear scan's front-to-back order.
        if (tcp_ports_[r.port] == AppId::kUnclassified) tcp_ports_[r.port] = r.app;
        break;
      case RuleKind::kUdpPort:
        if (udp_ports_[r.port] == AppId::kUnclassified) udp_ports_[r.port] = r.app;
        break;
    }
  }

  // Evidence buckets: every canonical string the traffic generator can emit,
  // valued by the reference matchers so a bucket hit is identical to a scan
  // by construction. Misses fall back to the scan at lookup time.
  for (int i = 0; i < kOsTypeCount; ++i) {
    const auto os = static_cast<OsType>(i);
    for (unsigned variant = 0; variant < 4; ++variant) {
      const std::string ua = canonical_user_agent(os, variant);
      if (!ua.empty()) ua_exact_.emplace(ua, wlm::classify::os_from_user_agent(ua));
    }
    const DhcpParams params = canonical_dhcp_params(os);
    if (!params.empty()) {
      std::string key(params.begin(), params.end());
      dhcp_exact_.emplace(std::move(key), wlm::classify::os_from_dhcp(params));
    }
  }
}

void RuleIndex::insert_domain(std::string_view domain, AppId app) {
  TrieNode* node = &root_;
  ReverseLabelIterator it(domain);
  std::string_view label;
  while (it.next(label)) {
    auto found = node->children.find(label);
    if (found == node->children.end()) {
      found = node->children.emplace(std::string(label), std::make_unique<TrieNode>()).first;
      ++trie_nodes_;
    }
    node = found->second.get();
  }
  // Two rules with the same domain share this node; the linear scan's strict
  // ">" comparison keeps the earlier rule, so only the first insert sticks.
  if (!node->app) node->app = app;
}

std::optional<AppId> RuleIndex::match_domain(std::string_view host) const {
  if (host.empty()) return std::nullopt;
  const TrieNode* node = &root_;
  std::optional<AppId> best;
  ReverseLabelIterator it(host);
  std::string_view label;
  while (it.next(label)) {
    const auto found = node->children.find(label);
    if (found == node->children.end()) break;
    node = found->second.get();
    // Deeper terminal == longer byte suffix: matching suffixes of one host
    // are nested, so depth order and the scan's length order agree.
    if (node->app) best = node->app;
  }
  return best;
}

std::optional<AppId> RuleIndex::match_port(Transport t, std::uint16_t port) const {
  const AppId app = (t == Transport::kTcp ? tcp_ports_ : udp_ports_)[port];
  if (app == AppId::kUnclassified) return std::nullopt;
  return app;
}

AppId RuleIndex::classify(const FlowMetadata& flow) const {
  // Mirrors RuleSet::classify step for step; see rules.cpp for the rationale
  // behind the cascade order.
  if (const auto app = match_domain(flow.best_hostname())) return *app;
  if (flow.dst_port != 80 && flow.dst_port != 8080 && flow.dst_port != 443) {
    if (const auto app = match_port(flow.transport, flow.dst_port)) return *app;
  }
  if (flow.transport == Transport::kUdp) return AppId::kUdp;
  if (content_type_looks_video(flow.http_content_type)) return AppId::kMiscVideo;
  if (content_type_looks_audio(flow.http_content_type)) return AppId::kMiscAudio;
  if (flow.dst_port == 80 || flow.dst_port == 8080) return AppId::kMiscWeb;
  if (flow.dst_port == 443 || flow.saw_tls) {
    return flow.dst_port == 443 ? AppId::kMiscSecureWeb : AppId::kEncryptedTcp;
  }
  if (flow.high_entropy) return AppId::kEncryptedP2p;
  return AppId::kNonWebTcp;
}

std::optional<OsType> RuleIndex::os_from_user_agent(std::string_view ua) const {
  const auto found = ua_exact_.find(ua);
  if (found != ua_exact_.end()) return found->second;
  return wlm::classify::os_from_user_agent(ua);
}

std::optional<OsType> RuleIndex::os_from_dhcp(std::span<const std::uint8_t> params) const {
  const std::string_view key(reinterpret_cast<const char*>(params.data()), params.size());
  const auto found = dhcp_exact_.find(key);
  if (found != dhcp_exact_.end()) return found->second;
  return wlm::classify::os_from_dhcp(params);
}

}  // namespace wlm::classify
