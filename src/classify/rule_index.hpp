// Compiled rule engine — the fast-path half of the two-tier classifier.
//
// RuleSet::standard() scans ~200 rules linearly per flow, which the paper's
// Click pipeline could not afford at AP line rate. RuleIndex compiles the
// same rules once into constant-time dispatch structures:
//
//   * a suffix trie over reversed hostname labels for the domain rules
//     (longest-suffix-wins, first-rule tie-break — provably identical to
//     the linear scan because suffixes matching one host are nested),
//   * 65536-entry per-transport port dispatch tables (first rule wins),
//   * exact-match hash buckets for canonical User-Agent strings and DHCP
//     option-55 fingerprints, populated *by running the reference
//     functions at build time* so hits are identical by construction.
//
// The linear RuleSet stays available behind ClassifierMode::kReference as
// the differential-testing oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "classify/apps.hpp"
#include "classify/dhcp_fingerprint.hpp"
#include "classify/os.hpp"
#include "classify/rules.hpp"

namespace wlm::classify {

/// Which engine the two-tier classifier runs for slow-path verdicts.
enum class ClassifierMode : std::uint8_t {
  kReference = 0,  // linear RuleSet scan + full reparse of every fragment
  kIndexed = 1,    // compiled RuleIndex + per-flow VerdictCache
};

[[nodiscard]] constexpr std::string_view classifier_mode_name(ClassifierMode mode) {
  switch (mode) {
    case ClassifierMode::kReference:
      return "reference";
    case ClassifierMode::kIndexed:
      return "indexed";
  }
  return "invalid";
}

/// Parses "reference" / "indexed"; nullopt otherwise.
[[nodiscard]] std::optional<ClassifierMode> classifier_mode_from_name(std::string_view name);

class RuleIndex {
 public:
  /// Index compiled over RuleSet::standard(); built once, immutable after.
  [[nodiscard]] static const RuleIndex& standard();

  explicit RuleIndex(const RuleSet& rules);

  /// Verdict-identical replica of RuleSet::classify over the compiled
  /// structures (same fallback-bucket cascade, same tie-breaks).
  [[nodiscard]] AppId classify(const FlowMetadata& flow) const;

  /// Longest-suffix domain match via the reversed-label trie.
  [[nodiscard]] std::optional<AppId> match_domain(std::string_view host) const;

  /// O(1) port rule lookup.
  [[nodiscard]] std::optional<AppId> match_port(Transport t, std::uint16_t port) const;

  /// User-Agent -> OS with an exact-match bucket over the canonical strings;
  /// unseen strings fall back to the reference substring scan.
  [[nodiscard]] std::optional<OsType> os_from_user_agent(std::string_view ua) const;

  /// DHCP option-55 fingerprint -> OS with an exact-match bucket over the
  /// canonical signatures; unseen lists fall back to the reference matcher.
  [[nodiscard]] std::optional<OsType> os_from_dhcp(std::span<const std::uint8_t> params) const;

  [[nodiscard]] std::size_t trie_node_count() const { return trie_nodes_; }
  [[nodiscard]] std::size_t ua_bucket_count() const { return ua_exact_.size(); }
  [[nodiscard]] std::size_t dhcp_bucket_count() const { return dhcp_exact_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct TrieNode {
    std::unordered_map<std::string, std::unique_ptr<TrieNode>, StringHash, std::equal_to<>>
        children;
    std::optional<AppId> app;  // terminal: a rule's domain ends at this node
  };

  void insert_domain(std::string_view domain, AppId app);

  TrieNode root_;
  std::size_t trie_nodes_ = 1;
  std::vector<AppId> tcp_ports_;  // 65536 entries, kUnclassified = no rule
  std::vector<AppId> udp_ports_;
  std::unordered_map<std::string, std::optional<OsType>, StringHash, std::equal_to<>> ua_exact_;
  std::unordered_map<std::string, std::optional<OsType>, StringHash, std::equal_to<>> dhcp_exact_;
};

}  // namespace wlm::classify
