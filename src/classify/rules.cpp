#include "classify/rules.hpp"

#include <algorithm>

namespace wlm::classify {

std::string_view FlowMetadata::best_hostname() const {
  if (!sni.empty()) return sni;
  if (!http_host.empty()) return http_host;
  return dns_hostname;
}

bool domain_suffix_match(std::string_view host, std::string_view suffix) {
  if (host.size() < suffix.size()) return false;
  if (!host.ends_with(suffix)) return false;
  if (host.size() == suffix.size()) return true;
  return host[host.size() - suffix.size() - 1] == '.';
}

namespace {

std::vector<Rule> generate_rules() {
  std::vector<Rule> rules;
  for (const auto& app : app_catalog()) {
    if (app.id == AppId::kUnclassified) continue;
    for (const auto& d : app.domains) {
      // A couple of extra synthesized variants per domain push the rule
      // count to the paper's ~200 and exercise suffix matching.
      rules.push_back(Rule{RuleKind::kDomainSuffix, std::string(d), 0, app.id});
      if (d.find('.') != std::string_view::npos && !d.starts_with("www.")) {
        rules.push_back(
            Rule{RuleKind::kDomainSuffix, "www." + std::string(d), 0, app.id});
      }
    }
    for (auto p : app.tcp_ports) rules.push_back(Rule{RuleKind::kTcpPort, {}, p, app.id});
    for (auto p : app.udp_ports) rules.push_back(Rule{RuleKind::kUdpPort, {}, p, app.id});
  }
  return rules;
}

}  // namespace

bool content_type_looks_video(std::string_view content_type) {
  return content_type.starts_with("video/") ||
         content_type.find("mpegurl") != std::string_view::npos ||
         content_type.find("mp2t") != std::string_view::npos;
}

bool content_type_looks_audio(std::string_view content_type) {
  return content_type.starts_with("audio/");
}

RuleSet::RuleSet(std::vector<Rule> rules) : rules_(std::move(rules)) {}

const RuleSet& RuleSet::standard() {
  static const RuleSet set{generate_rules()};
  return set;
}

std::optional<AppId> RuleSet::match_domain(std::string_view host) const {
  if (host.empty()) return std::nullopt;
  // Longest-suffix wins: "drive.google.com" must beat "google.com".
  const Rule* best = nullptr;
  for (const auto& r : rules_) {
    if (r.kind != RuleKind::kDomainSuffix) continue;
    if (!domain_suffix_match(host, r.domain)) continue;
    if (best == nullptr || r.domain.size() > best->domain.size()) best = &r;
  }
  if (best == nullptr) return std::nullopt;
  return best->app;
}

std::optional<AppId> RuleSet::match_port(Transport t, std::uint16_t port) const {
  const RuleKind kind = t == Transport::kTcp ? RuleKind::kTcpPort : RuleKind::kUdpPort;
  for (const auto& r : rules_) {
    if (r.kind == kind && r.port == port) return r.app;
  }
  return std::nullopt;
}

AppId RuleSet::classify(const FlowMetadata& flow) const {
  // 1. Hostname evidence beats everything.
  if (const auto app = match_domain(flow.best_hostname())) {
    // Generic-port rules (80/443) must not shadow a real hostname match,
    // so hostname matching runs first by construction.
    return *app;
  }
  // 2. Specific application ports (not the generic web ports).
  if (flow.dst_port != 80 && flow.dst_port != 8080 && flow.dst_port != 443) {
    if (const auto app = match_port(flow.transport, flow.dst_port)) return *app;
  }
  // 3. Fallback buckets, in the paper's taxonomy.
  if (flow.transport == Transport::kUdp) return AppId::kUdp;
  if (content_type_looks_video(flow.http_content_type)) return AppId::kMiscVideo;
  if (content_type_looks_audio(flow.http_content_type)) return AppId::kMiscAudio;
  if (flow.dst_port == 80 || flow.dst_port == 8080) return AppId::kMiscWeb;
  if (flow.dst_port == 443 || flow.saw_tls) {
    return flow.dst_port == 443 ? AppId::kMiscSecureWeb : AppId::kEncryptedTcp;
  }
  if (flow.high_entropy) return AppId::kEncryptedP2p;
  return AppId::kNonWebTcp;
}

}  // namespace wlm::classify
