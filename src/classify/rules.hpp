// Application identification rule engine.
//
// Mirrors the paper's Click-based slow path (§2.1/§3.3): "about 200
// application identification rules" match flow metadata — DNS lookup, HTTP
// Host, SSL SNI, and port numbers — and update per-app usage counters. Rules
// are generated from the application catalog's domain/port hints plus a set
// of fallback bucket rules (miscellaneous web, non-web TCP, UDP, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "classify/apps.hpp"

namespace wlm::classify {

enum class Transport : std::uint8_t { kTcp, kUdp };

/// Metadata the slow path extracted from one flow's initial packets.
struct FlowMetadata {
  Transport transport = Transport::kTcp;
  std::uint16_t dst_port = 0;
  std::string dns_hostname;   // hostname from the preceding DNS lookup
  std::string http_host;      // from an HTTP request head
  std::string http_content_type;
  std::string sni;            // from a TLS ClientHello
  bool saw_tls = false;
  bool high_entropy = false;  // payload looks encrypted (non-TLS)

  /// Best hostname evidence in precedence order: SNI, HTTP Host, DNS.
  [[nodiscard]] std::string_view best_hostname() const;
};

enum class RuleKind : std::uint8_t { kDomainSuffix, kTcpPort, kUdpPort };

struct Rule {
  RuleKind kind = RuleKind::kDomainSuffix;
  std::string domain;       // for kDomainSuffix
  std::uint16_t port = 0;   // for port rules
  AppId app = AppId::kUnclassified;
};

/// True when `host` equals `suffix` or ends with "." + suffix.
[[nodiscard]] bool domain_suffix_match(std::string_view host, std::string_view suffix);

/// Content-type sniffers behind the misc-video / misc-audio fallback buckets.
/// Shared with the compiled RuleIndex so both engines bucket identically.
[[nodiscard]] bool content_type_looks_video(std::string_view content_type);
[[nodiscard]] bool content_type_looks_audio(std::string_view content_type);

/// The compiled rule set.
class RuleSet {
 public:
  /// Rules generated from app_catalog(); ~200 entries like the paper's.
  [[nodiscard]] static const RuleSet& standard();

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  /// Classifies one flow. Never returns kUnclassified: flows that match no
  /// explicit rule land in a fallback bucket (misc web / misc secure web /
  /// misc video / misc audio / encrypted P2P / non-web TCP / UDP).
  [[nodiscard]] AppId classify(const FlowMetadata& flow) const;

 private:
  explicit RuleSet(std::vector<Rule> rules);
  [[nodiscard]] std::optional<AppId> match_domain(std::string_view host) const;
  [[nodiscard]] std::optional<AppId> match_port(Transport t, std::uint16_t port) const;

  std::vector<Rule> rules_;
};

}  // namespace wlm::classify
