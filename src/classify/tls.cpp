#include "classify/tls.hpp"

#include <cctype>

namespace wlm::classify {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u24(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounds-checked big-endian reader.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u24() { return static_cast<std::uint32_t>(take(3)); }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) { (void)bytes(n); }

 private:
  std::uint64_t take(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::uint8_t> build_client_hello(std::string_view sni, std::uint64_t random32) {
  std::vector<std::uint8_t> out;
  build_client_hello_into(sni, random32, out);
  return out;
}

void build_client_hello_into(std::string_view sni, std::uint64_t random32,
                             std::vector<std::uint8_t>& out) {
  // Single pass into the caller's buffer: every section length is a closed
  // form of sni.size(), so the record can be emitted front to back with no
  // staging vectors. Byte-for-byte identical to assembling extensions and
  // body separately and splicing them under the headers.
  const std::size_t sni_list_size = sni.empty() ? 0 : 3 + sni.size();
  const std::size_t ext_size = (sni.empty() ? 0 : sni_list_size + 6) + 7;
  const std::size_t body_size = 51 + ext_size;

  out.clear();
  out.reserve(body_size + 9);
  // --- record + handshake headers ---
  put_u8(out, 0x16);      // record type: handshake
  put_u16(out, 0x0301);   // record legacy version
  put_u16(out, static_cast<std::uint16_t>(body_size + 4));
  put_u8(out, 0x01);      // handshake type: client_hello
  put_u24(out, static_cast<std::uint32_t>(body_size));

  // --- ClientHello body ---
  put_u16(out, 0x0303);  // legacy_version
  for (int i = 0; i < 32; ++i) {  // client random from the seed
    put_u8(out, static_cast<std::uint8_t>((random32 >> (8 * (i % 8))) ^ (i * 0x9d)));
  }
  put_u8(out, 0);  // empty session id
  const std::uint16_t suites[] = {0x1301, 0x1302, 0xC02F, 0xC030, 0x009C};
  put_u16(out, static_cast<std::uint16_t>(sizeof suites / sizeof suites[0] * 2));
  for (auto s : suites) put_u16(out, s);
  put_u8(out, 1);  // compression methods
  put_u8(out, 0);  // null

  // --- extensions ---
  put_u16(out, static_cast<std::uint16_t>(ext_size));
  if (!sni.empty()) {
    put_u16(out, 0);  // extension_type: server_name
    put_u16(out, static_cast<std::uint16_t>(sni_list_size + 2));
    put_u16(out, static_cast<std::uint16_t>(sni_list_size));
    put_u8(out, 0);  // name_type: host_name
    put_u16(out, static_cast<std::uint16_t>(sni.size()));
    out.insert(out.end(), sni.begin(), sni.end());
  }
  // supported_versions (TLS 1.3 + 1.2) for realism
  put_u16(out, 43);
  put_u16(out, 3);
  put_u8(out, 2);
  put_u16(out, 0x0304);
}

ParseError parse_client_hello_into(std::span<const std::uint8_t> record, ClientHelloInfo& out) {
  out.legacy_version = 0x0303;
  out.sni.clear();
  out.cipher_suite_count = 0;
  Reader r(record);
  const std::uint8_t record_type = r.u8();
  if (!r.ok()) return ParseError::kTruncated;
  if (record_type != 0x16) return ParseError::kBadMagic;
  r.u16();  // record version (any)
  const std::uint16_t record_len = r.u16();
  if (!r.ok()) return ParseError::kTruncated;
  if (record_len > r.remaining()) return ParseError::kBadLength;
  const std::uint8_t hs_type = r.u8();
  if (!r.ok()) return ParseError::kTruncated;
  if (hs_type != 0x01) return ParseError::kBadMagic;
  const std::uint32_t hs_len = r.u24();
  if (!r.ok()) return ParseError::kTruncated;
  if (hs_len > r.remaining()) return ParseError::kBadLength;

  out.legacy_version = r.u16();
  r.skip(32);  // client random
  const std::uint8_t session_len = r.u8();
  r.skip(session_len);
  const std::uint16_t suites_len = r.u16();
  if (r.ok() && suites_len % 2 != 0) return ParseError::kBadValue;
  out.cipher_suite_count = suites_len / 2;
  r.skip(suites_len);
  const std::uint8_t comp_len = r.u8();
  r.skip(comp_len);
  if (!r.ok()) return ParseError::kTruncated;
  if (r.remaining() < 2) return ParseError::kNone;  // extensions optional
  std::uint16_t ext_total = r.u16();
  while (r.ok() && ext_total >= 4 && r.remaining() >= 4) {
    const std::uint16_t ext_type = r.u16();
    const std::uint16_t ext_len = r.u16();
    ext_total = static_cast<std::uint16_t>(ext_total - 4 - ext_len);
    if (ext_type == 0) {  // server_name
      Reader sr(r.bytes(ext_len));
      const std::uint16_t list_len = sr.u16();
      (void)list_len;
      const std::uint8_t name_type = sr.u8();
      const std::uint16_t name_len = sr.u16();
      const auto name = sr.bytes(name_len);
      if (sr.ok() && name_type == 0) {
        out.sni.reserve(name.size());
        for (auto c : name) out.sni.push_back(static_cast<char>(std::tolower(c)));
      }
    } else {
      r.skip(ext_len);
    }
  }
  if (!r.ok()) return ParseError::kTruncated;
  return ParseError::kNone;
}

Parsed<ClientHelloInfo> parse_client_hello_ex(std::span<const std::uint8_t> record) {
  using Result = Parsed<ClientHelloInfo>;
  ClientHelloInfo info;
  const ParseError err = parse_client_hello_into(record, info);
  if (err != ParseError::kNone) return Result::failure(err);
  return Result::success(std::move(info));
}

std::optional<ClientHelloInfo> parse_client_hello(std::span<const std::uint8_t> record) {
  return parse_client_hello_ex(record).value;
}

}  // namespace wlm::classify
