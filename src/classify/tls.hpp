// TLS ClientHello codec — the slow path inspects "packets containing SSL
// handshakes" (paper §2.1); the Server Name Indication extension carries the
// hostname used to classify HTTPS flows.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classify/parse_error.hpp"

namespace wlm::classify {

struct ClientHelloInfo {
  std::uint16_t legacy_version = 0x0303;  // TLS 1.2 on the wire
  std::string sni;                        // empty when the extension is absent
  std::size_t cipher_suite_count = 0;
};

/// Builds a syntactically valid ClientHello record with an SNI extension.
/// `random32` seeds the 32-byte client random deterministically.
[[nodiscard]] std::vector<std::uint8_t> build_client_hello(std::string_view sni,
                                                           std::uint64_t random32 = 0);

/// Same record written into a caller-owned buffer (cleared first) in a
/// single pass — the generator's hot loop reuses one allocation per flow.
void build_client_hello_into(std::string_view sni, std::uint64_t random32,
                             std::vector<std::uint8_t>& out);

/// Parses a TLS record containing a ClientHello; extracts SNI when present.
/// Every malformed record fails typed: kBadMagic for non-handshake /
/// non-ClientHello bytes, kBadLength for lying record or handshake lengths,
/// kTruncated for bodies that run out mid-field, kBadValue for an odd
/// cipher-suite length.
[[nodiscard]] Parsed<ClientHelloInfo> parse_client_hello_ex(
    std::span<const std::uint8_t> record);

/// Same parse into a caller-owned info whose sni string keeps its capacity
/// across records — for the classifier's hot loop. Returns kNone on
/// success; `out` holds default values for absent fields either way.
ParseError parse_client_hello_into(std::span<const std::uint8_t> record, ClientHelloInfo& out);

/// Optional-returning wrapper around parse_client_hello_ex.
[[nodiscard]] std::optional<ClientHelloInfo> parse_client_hello(
    std::span<const std::uint8_t> record);

}  // namespace wlm::classify
