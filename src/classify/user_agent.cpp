#include "classify/user_agent.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace wlm::classify {

namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  const auto it = std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end(),
                              [](unsigned char a, unsigned char b) {
                                return std::tolower(a) == std::tolower(b);
                              });
  return it != haystack.end();
}

}  // namespace

std::optional<OsType> os_from_user_agent(std::string_view ua) {
  if (ua.empty()) return std::nullopt;
  // Order matters: more specific tokens first. "Mobile Safari" on iPad/iPhone
  // must win over the generic "Mac OS X" token iOS UAs also carry.
  if (contains_ci(ua, "iPhone") || contains_ci(ua, "iPad") || contains_ci(ua, "iPod")) {
    return OsType::kAppleIos;
  }
  // Modern Windows Phone UAs spoof "Android", so test them first.
  if (contains_ci(ua, "Windows Phone") || contains_ci(ua, "Windows CE") ||
      contains_ci(ua, "IEMobile")) {
    return OsType::kWindowsMobile;
  }
  if (contains_ci(ua, "Android")) return OsType::kAndroid;
  if (contains_ci(ua, "CrOS")) return OsType::kChromeOs;
  // Console UAs embed desktop tokens ("Windows NT ...; Xbox"), so test them
  // ahead of the generic desktop checks.
  if (contains_ci(ua, "PlayStation")) return OsType::kPlaystation;
  if (contains_ci(ua, "Xbox")) return OsType::kXbox;
  if (contains_ci(ua, "Windows NT") || contains_ci(ua, "Win64")) return OsType::kWindows;
  if (contains_ci(ua, "Mac OS X") || contains_ci(ua, "Macintosh")) return OsType::kMacOsX;
  if (contains_ci(ua, "BlackBerry") || contains_ci(ua, "BB10")) return OsType::kBlackberry;
  if (contains_ci(ua, "Linux")) return OsType::kLinux;
  return std::nullopt;
}

std::string canonical_user_agent(OsType os, unsigned variant) {
  return std::string(canonical_user_agent_view(os, variant));
}

std::string_view canonical_user_agent_view(OsType os, unsigned variant) {
  switch (os) {
    case OsType::kWindows: {
      static const std::array<const char*, 3> uas = {
          "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) "
          "Chrome/39.0.2171.95 Safari/537.36",
          "Mozilla/5.0 (Windows NT 6.3; Trident/7.0; rv:11.0) like Gecko",
          "Mozilla/5.0 (Windows NT 6.1; rv:34.0) Gecko/20100101 Firefox/34.0"};
      return uas[variant % uas.size()];
    }
    case OsType::kAppleIos: {
      static const std::array<const char*, 3> uas = {
          "Mozilla/5.0 (iPhone; CPU iPhone OS 8_1_2 like Mac OS X) AppleWebKit/600.1.4 "
          "(KHTML, like Gecko) Version/8.0 Mobile/12B440 Safari/600.1.4",
          "Mozilla/5.0 (iPad; CPU OS 8_1 like Mac OS X) AppleWebKit/600.1.4 (KHTML, like "
          "Gecko) Version/8.0 Mobile/12B410 Safari/600.1.4",
          "YouTube/9.38 (iPhone; CPU iPhone OS 8_1 like Mac OS X)"};
      return uas[variant % uas.size()];
    }
    case OsType::kMacOsX: {
      static const std::array<const char*, 2> uas = {
          "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_1) AppleWebKit/600.2.5 (KHTML, "
          "like Gecko) Version/8.0.2 Safari/600.2.5",
          "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_9_5) AppleWebKit/537.36 (KHTML, like "
          "Gecko) Chrome/39.0.2171.95 Safari/537.36"};
      return uas[variant % uas.size()];
    }
    case OsType::kAndroid: {
      static const std::array<const char*, 2> uas = {
          "Mozilla/5.0 (Linux; Android 5.0; Nexus 5 Build/LRX21O) AppleWebKit/537.36 "
          "(KHTML, like Gecko) Chrome/39.0.2171.93 Mobile Safari/537.36",
          "Dalvik/1.6.0 (Linux; U; Android 4.4.4; SM-G900F Build/KTU84P)"};
      return uas[variant % uas.size()];
    }
    case OsType::kChromeOs:
      return "Mozilla/5.0 (X11; CrOS x86_64 6310.68.0) AppleWebKit/537.36 (KHTML, like "
             "Gecko) Chrome/39.0.2171.96 Safari/537.36";
    case OsType::kPlaystation:
      return "Mozilla/5.0 (PlayStation 4 2.03) AppleWebKit/537.73 (KHTML, like Gecko)";
    case OsType::kLinux:
      return "Mozilla/5.0 (X11; Linux x86_64; rv:34.0) Gecko/20100101 Firefox/34.0";
    case OsType::kBlackberry:
      return "Mozilla/5.0 (BlackBerry; U; BlackBerry 9900; en) AppleWebKit/534.11+ (KHTML, "
             "like Gecko) Version/7.1.0.346 Mobile Safari/534.11+";
    case OsType::kWindowsMobile:
      return "Mozilla/5.0 (Mobile; Windows Phone 8.1; Android 4.0; ARM; Trident/7.0; "
             "Touch; rv:11.0; IEMobile/11.0; NOKIA; Lumia 630) like Gecko";
    case OsType::kXbox:
      return "Mozilla/5.0 (Windows NT 6.2; Trident/7.0; Xbox; Xbox One) like Gecko";
    case OsType::kOther:
    case OsType::kUnknown:
      return "EmbeddedClient/1.0";
  }
  return "EmbeddedClient/1.0";
}

}  // namespace wlm::classify
