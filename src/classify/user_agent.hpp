// HTTP User-Agent inspection (the paper's third device-typing signal, §3.2).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "classify/os.hpp"

namespace wlm::classify {

/// OS detected from a User-Agent string; nullopt when unrecognized.
[[nodiscard]] std::optional<OsType> os_from_user_agent(std::string_view ua);

/// A realistic User-Agent string for an OS (used by the traffic generator).
/// `variant` selects among several browsers/apps per OS.
[[nodiscard]] std::string canonical_user_agent(OsType os, unsigned variant = 0);

/// Allocation-free variant: a view into the static table canonical_user_agent
/// copies from. The hot generator path reads it without materializing a
/// string per flow.
[[nodiscard]] std::string_view canonical_user_agent_view(OsType os, unsigned variant = 0);

}  // namespace wlm::classify
