#include "classify/verdict_cache.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

namespace wlm::classify {

VerdictCache::VerdictCache(std::size_t capacity, std::uint32_t slow_fragments)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      slow_fragments_(std::max<std::uint32_t>(slow_fragments, 1)) {}

std::optional<AppId> VerdictCache::lookup(const FlowKey& key) {
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.slow_seen >= slow_fragments_) {
    ++stats_.hits;
    return it->second.verdict;
  }
  ++stats_.misses;
  return std::nullopt;
}

void VerdictCache::record(const FlowKey& key, AppId verdict) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      // Recycle the evicted node for the incoming key instead of a
      // free+malloc pair per eviction — a full cache turns over once per
      // flow, so the churn is material at fleet scale.
      auto node = entries_.extract(fifo_.front());
      fifo_.pop_front();
      ++stats_.evictions;
      node.key() = key;
      node.mapped() = Entry{};
      it = entries_.insert(std::move(node)).position;
    } else {
      it = entries_.emplace(key, Entry{}).first;
    }
    fifo_.push_back(key);
  }
  it->second.verdict = verdict;
  if (it->second.slow_seen < slow_fragments_ && ++it->second.slow_seen == slow_fragments_) {
    ++stats_.pinned;
  }
}

void VerdictCache::clear() {
  entries_.clear();
  fifo_.clear();
  stats_ = Stats{};
}

std::vector<VerdictCache::SavedEntry> VerdictCache::snapshot() const {
  std::vector<SavedEntry> out;
  out.reserve(fifo_.size());
  for (const auto& key : fifo_) {
    const auto& entry = entries_.at(key);
    out.push_back(SavedEntry{key, entry.verdict, entry.slow_seen});
  }
  return out;
}

void VerdictCache::restore(const std::vector<SavedEntry>& entries, const Stats& stats) {
  entries_.clear();
  fifo_.clear();
  for (const auto& e : entries) {
    entries_.emplace(e.key, Entry{e.verdict, e.slow_seen});
    fifo_.push_back(e.key);
  }
  stats_ = stats;
}

void SlowPathProfile::record(std::uint64_t ns) {
  const std::size_t bucket =
      ns == 0 ? 0 : std::min<std::size_t>(std::bit_width(ns) - 1, kBuckets - 1);
  ++buckets[bucket];
  ++count;
  total_ns += ns;
}

TwoTierClassifier::TwoTierClassifier(ClassifierMode mode, std::size_t cache_capacity)
    : mode_(mode), cache_(cache_capacity) {}

AppId TwoTierClassifier::classify(const FlowKey& key, const FlowSample& sample) {
  if (mode_ == ClassifierMode::kReference) return classify_slow(sample);
  if (const auto verdict = cache_.lookup(key)) return *verdict;
  const AppId verdict = classify_slow(sample);
  cache_.record(key, verdict);
  return verdict;
}

AppId TwoTierClassifier::classify_slow(const FlowSample& sample) {
  const auto start = std::chrono::steady_clock::now();
  AppId verdict;
  if (mode_ == ClassifierMode::kIndexed) {
    extract_metadata_fast_into(sample, meta_scratch_);
    verdict = RuleIndex::standard().classify(meta_scratch_);
  } else {
    verdict = RuleSet::standard().classify(extract_metadata(sample));
  }
  const auto end = std::chrono::steady_clock::now();
  ++slow_path_calls_;
  profile_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count()));
  return verdict;
}

}  // namespace wlm::classify
