// Per-flow verdict cache — the fast-path tier of the two-tier classifier.
//
// The paper's Click pipeline classifies a flow's first packets in the slow
// path, then pins the verdict in a flow cache so subsequent packets are
// attributed without reparsing (§2.1). VerdictCache mirrors that: keyed by
// (client MAC, 5-tuple), bounded, FIFO-evicted, and deterministic — a miss
// merely re-runs the slow path, which returns the same verdict for the same
// sample, so byte-level attribution is invariant to capacity.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "classify/apps.hpp"
#include "classify/classifier.hpp"
#include "classify/rule_index.hpp"

namespace wlm::classify {

/// Identifies one flow: the client and the connection 5-tuple.
struct FlowKey {
  std::uint64_t client_mac = 0;  // MacAddress::to_u64()
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // IPPROTO_TCP / IPPROTO_UDP

  [[nodiscard]] bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  [[nodiscard]] std::size_t operator()(const FlowKey& k) const {
    // splitmix64-style mix over the packed fields; quality matters only for
    // bucket spread, not determinism (values never leave the process).
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    const std::uint64_t a = mix(k.client_mac);
    const std::uint64_t b =
        mix((std::uint64_t{k.src_addr} << 32) | k.dst_addr) ^
        mix((std::uint64_t{k.src_port} << 24) | (std::uint64_t{k.dst_port} << 8) | k.protocol);
    return static_cast<std::size_t>(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  }
};

class VerdictCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t pinned = 0;  // entries that completed their slow-path quota

    [[nodiscard]] bool operator==(const Stats&) const = default;
  };

  /// `slow_fragments` is the number of fragments a flow must take through
  /// the slow path before its verdict is pinned (the paper's "first N
  /// packets"); until then every lookup is a miss.
  explicit VerdictCache(std::size_t capacity = kDefaultCapacity, std::uint32_t slow_fragments = 1);

  /// Pinned verdict for the flow, or nullopt (counts a hit or a miss).
  [[nodiscard]] std::optional<AppId> lookup(const FlowKey& key);

  /// Records a slow-path verdict for the flow; pins it once the flow has
  /// been seen `slow_fragments` times. Evicts FIFO when at capacity.
  void record(const FlowKey& key, AppId verdict);

  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t slow_fragments() const { return slow_fragments_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Checkpoint support: entries in FIFO (insertion) order.
  struct SavedEntry {
    FlowKey key;
    AppId verdict = AppId::kUnclassified;
    std::uint32_t slow_seen = 0;
  };
  [[nodiscard]] std::vector<SavedEntry> snapshot() const;
  /// Rebuilds the cache from a snapshot (entries pushed in FIFO order).
  void restore(const std::vector<SavedEntry>& entries, const Stats& stats);

 private:
  struct Entry {
    AppId verdict = AppId::kUnclassified;
    std::uint32_t slow_seen = 0;
  };

  std::size_t capacity_;
  std::uint32_t slow_fragments_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> entries_;
  std::deque<FlowKey> fifo_;  // insertion order; front is next eviction
  Stats stats_;
};

/// Wall-clock profile of slow-path invocations. Lives OUTSIDE the
/// deterministic telemetry registry on purpose: registry exports must be
/// bit-identical across --jobs, and nanoseconds are not. The bench harness
/// reads this directly into BENCH_classify.json.
struct SlowPathProfile {
  static constexpr std::size_t kBuckets = 20;  // log2(ns) buckets: [2^i, 2^(i+1))

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  void record(std::uint64_t ns);
  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count);
  }
};

/// The two-tier classifier: slow path (parse + rule match) plus the verdict
/// cache fast path. kReference mode bypasses both index and cache, running
/// the legacy linear engine on every fragment — the differential oracle.
class TwoTierClassifier {
 public:
  explicit TwoTierClassifier(ClassifierMode mode = ClassifierMode::kIndexed,
                             std::size_t cache_capacity = VerdictCache::kDefaultCapacity);

  /// Classifies one observed fragment of the flow. Indexed mode consults the
  /// cache first; reference mode reparses every time.
  [[nodiscard]] AppId classify(const FlowKey& key, const FlowSample& sample);

  /// One uncached slow-path pass in the configured mode (used by benches).
  [[nodiscard]] AppId classify_slow(const FlowSample& sample);

  [[nodiscard]] ClassifierMode mode() const { return mode_; }
  [[nodiscard]] VerdictCache& cache() { return cache_; }
  [[nodiscard]] const VerdictCache& cache() const { return cache_; }
  [[nodiscard]] std::uint64_t slow_path_calls() const { return slow_path_calls_; }
  [[nodiscard]] const SlowPathProfile& profile() const { return profile_; }

  /// Checkpoint support: restores mutable state (cache contents + counters).
  void restore(std::uint64_t slow_path_calls) { slow_path_calls_ = slow_path_calls; }

 private:
  ClassifierMode mode_;
  VerdictCache cache_;
  std::uint64_t slow_path_calls_ = 0;
  SlowPathProfile profile_;
  FlowMetadata meta_scratch_;  // reused across indexed slow-path calls
};

}  // namespace wlm::classify
