#include "cli/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace wlm::cli {

namespace {

/// True when `text` is (sign) digits [ '.' digits ] [ e/E (sign) digits ],
/// with at least one digit in the integer-or-fraction part. This is the
/// whitelist; strtod below only supplies the value.
bool is_plain_decimal(std::string_view text) {
  std::size_t i = 0;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
  std::size_t digits = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i, ++digits;
  if (i < text.size() && text[i] == '.') {
    ++i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i, ++digits;
  }
  if (digits == 0) return false;
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
    std::size_t exp_digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i, ++exp_digits;
    if (exp_digits == 0) return false;
  }
  return i == text.size();
}

}  // namespace

std::optional<long long> parse_int(std::string_view text, long long min, long long max) {
  std::size_t i = 0;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
  if (i == text.size()) return std::nullopt;
  for (std::size_t j = i; j < text.size(); ++j) {
    if (text[j] < '0' || text[j] > '9') return std::nullopt;
  }
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(owned.c_str(), &end, 10);
  if (errno == ERANGE || end != owned.c_str() + owned.size()) return std::nullopt;
  if (v < min || v > max) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view text) {
  if (!is_plain_decimal(text)) return std::nullopt;
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  // ERANGE covers overflow-to-inf; underflow-to-0 is fine. The isfinite
  // check is belt-and-braces for platforms that skip errno.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace wlm::cli
