// Strict numeric parsing for command-line flags.
//
// The C library's strtol/strtod are the wrong contract for operator-facing
// flags: strtod happily accepts "nan", "inf", "infinity", hex floats
// ("0x1p4"), and locale surprises, and both silently stop at the first
// non-numeric byte unless the caller remembers to check *end. A NaN that
// sneaks through a flag poisons every downstream clamp (NaN fails every
// comparison, so clamped() range checks pass it along), which is how a
// `--roam-prob nan` run once differed across --jobs counts.
//
// These parsers accept exactly the boring subset a human types:
//   integers: optional sign, decimal digits, nothing else
//   doubles:  optional sign, decimal digits with optional '.' fraction and
//             optional e/E exponent, finite result, nothing else
// Everything else — empty strings, whitespace, trailing junk, NaN/inf in
// any spelling, hex, values that overflow the target type — returns
// nullopt so the caller can fail the flag loudly.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace wlm::cli {

/// Strict decimal integer. Rejects empty input, whitespace, trailing
/// junk, hex/octal spellings, and anything outside [min, max].
[[nodiscard]] std::optional<long long> parse_int(std::string_view text,
                                                 long long min = INT64_MIN,
                                                 long long max = INT64_MAX);

/// Strict finite decimal double. Rejects empty input, whitespace, trailing
/// junk, every NaN/infinity spelling, hex floats, and values whose
/// magnitude overflows to infinity.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

}  // namespace wlm::cli
