// A small bump arena for per-window scratch memory.
//
// The fleet inner loop produces short-lived containers in bursts — usage
// rows while a shard simulates a week, pending events in the discrete-event
// engine, decode scratch at harvest — whose lifetimes all end at the next
// harvest window boundary. A bump allocator turns that churn into pointer
// arithmetic: allocation is an offset add, and reset() reclaims everything
// at once while keeping the largest chunk, so steady state allocates no new
// memory from the system at all.
//
// Lifetime rules (see DESIGN.md §4f):
//   * Memory handed out by an Arena is valid until the next reset() or the
//     arena's destruction, whichever comes first.
//   * Containers using ArenaAllocator must be cleared/destroyed before
//     reset() — reset() does not run destructors.
//   * Arenas are single-threaded by design; each shard/worker owns its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace wlm::core {

class Arena {
 public:
  explicit Arena(std::size_t initial_chunk_bytes = 16 * 1024)
      : min_chunk_(initial_chunk_bytes < 64 ? 64 : initial_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two). Alignment is
  /// applied to the absolute address, not the chunk-relative offset — chunk
  /// bases from new[] only guarantee alignof(max_align_t), so over-aligned
  /// requests must pad from the real pointer value.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = aligned_offset(align);
    if (current_ == nullptr || offset + bytes > capacity_) {
      grow(bytes + align);
      offset = aligned_offset(align);
    }
    used_ = offset + bytes;
    bytes_served_ += bytes;
    return current_ + offset;
  }

  /// Reclaims every allocation at once. The largest chunk is kept so a
  /// steady-state window re-runs entirely inside recycled memory; the rest
  /// are returned to the system.
  void reset() {
    if (chunks_.size() > 1) {
      // Keep only the newest (largest — growth is geometric) chunk.
      auto keep = std::move(chunks_.back());
      chunks_.clear();
      chunks_.push_back(std::move(keep));
    }
    if (!chunks_.empty()) {
      current_ = chunks_.back().data.get();
      capacity_ = chunks_.back().size;
    }
    used_ = 0;
    ++resets_;
  }

  /// Total bytes handed out since construction (diagnostics).
  [[nodiscard]] std::uint64_t bytes_served() const { return bytes_served_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  /// Bytes currently held from the system.
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Smallest offset >= used_ whose absolute address is `align`-aligned.
  [[nodiscard]] std::size_t aligned_offset(std::size_t align) const {
    const auto base = reinterpret_cast<std::uintptr_t>(current_);
    const std::uintptr_t aligned =
        (base + used_ + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    return static_cast<std::size_t>(aligned - base);
  }

  void grow(std::size_t at_least) {
    std::size_t next = capacity_ > 0 ? capacity_ * 2 : min_chunk_;
    while (next < at_least) next *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(next), next});
    current_ = chunks_.back().data.get();
    capacity_ = next;
    used_ = 0;
  }

  std::size_t min_chunk_;
  std::vector<Chunk> chunks_;
  std::byte* current_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::uint64_t bytes_served_ = 0;
  std::uint64_t resets_ = 0;
};

/// Minimal std-compatible allocator over an Arena. deallocate() is a no-op;
/// memory comes back at Arena::reset(). Suitable for scratch containers
/// whose lifetime is bounded by a harvest window.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by Arena::reset()

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

/// Convenience alias for arena-backed scratch vectors.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace wlm::core
