#include "core/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace wlm {

namespace {

constexpr char kSeriesGlyphs[] = {'*', 'o', '+', 'x', '@', '%'};

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range data_range(const std::vector<Series>& series, bool use_x) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double v = use_x ? x : y;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(lo < hi)) {  // empty or constant
    if (!std::isfinite(lo)) lo = 0.0;
    hi = lo + 1.0;
  }
  return {lo, hi};
}

std::string axis_number(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%.2g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

std::string frame(const std::vector<std::string>& grid_rows, const Range& xr, const Range& yr,
                  const ChartOptions& opt, const std::string& legend) {
  std::ostringstream out;
  if (!opt.title.empty()) out << opt.title << '\n';
  if (!opt.y_label.empty()) out << opt.y_label << '\n';
  const std::string y_hi = axis_number(yr.hi);
  const std::string y_lo = axis_number(yr.lo);
  const std::size_t label_w = std::max(y_hi.size(), y_lo.size());
  for (std::size_t r = 0; r < grid_rows.size(); ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = std::string(label_w - y_hi.size(), ' ') + y_hi;
    if (r + 1 == grid_rows.size()) label = std::string(label_w - y_lo.size(), ' ') + y_lo;
    out << label << " |" << grid_rows[r] << '\n';
  }
  out << std::string(label_w, ' ') << " +" << std::string(opt.width, '-') << '\n';
  const std::string x_lo = axis_number(xr.lo);
  const std::string x_hi = axis_number(xr.hi);
  out << std::string(label_w + 2, ' ') << x_lo;
  if (opt.width > x_lo.size() + x_hi.size()) {
    out << std::string(opt.width - x_lo.size() - x_hi.size(), ' ');
  }
  out << x_hi << '\n';
  if (!opt.x_label.empty()) {
    const std::size_t pad = label_w + 2 + (opt.width > opt.x_label.size() ? (opt.width - opt.x_label.size()) / 2 : 0);
    out << std::string(pad, ' ') << opt.x_label << '\n';
  }
  if (!legend.empty()) out << legend << '\n';
  return out.str();
}

}  // namespace

std::string render_line_chart(const std::vector<Series>& series, const ChartOptions& options) {
  Range xr = options.fix_x ? Range{options.x_min, options.x_max} : data_range(series, true);
  Range yr = options.fix_y ? Range{options.y_min, options.y_max} : data_range(series, false);

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  std::string legend = "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kSeriesGlyphs[si % sizeof kSeriesGlyphs];
    legend += "  ";
    legend += glyph;
    legend += " = " + series[si].label;
    for (const auto& [x, y] : series[si].points) {
      if (x < xr.lo || x > xr.hi || y < yr.lo || y > yr.hi) continue;
      const auto col = static_cast<std::size_t>(std::min(
          static_cast<double>(options.width - 1),
          (x - xr.lo) / (xr.hi - xr.lo) * static_cast<double>(options.width - 1) + 0.5));
      const auto row_from_bottom = static_cast<std::size_t>(std::min(
          static_cast<double>(options.height - 1),
          (y - yr.lo) / (yr.hi - yr.lo) * static_cast<double>(options.height - 1) + 0.5));
      const std::size_t row = options.height - 1 - row_from_bottom;
      grid[row][col] = glyph;
    }
  }
  return frame(grid, xr, yr, options, series.size() > 1 ? legend : std::string{});
}

std::string render_scatter(const Series& series, const ChartOptions& options) {
  Range xr = options.fix_x ? Range{options.x_min, options.x_max} : data_range({series}, true);
  Range yr = options.fix_y ? Range{options.y_min, options.y_max} : data_range({series}, false);

  std::vector<std::vector<int>> density(options.height, std::vector<int>(options.width, 0));
  for (const auto& [x, y] : series.points) {
    if (x < xr.lo || x > xr.hi || y < yr.lo || y > yr.hi) continue;
    const auto col = static_cast<std::size_t>(std::min(
        static_cast<double>(options.width - 1),
        (x - xr.lo) / (xr.hi - xr.lo) * static_cast<double>(options.width - 1) + 0.5));
    const auto row_from_bottom = static_cast<std::size_t>(std::min(
        static_cast<double>(options.height - 1),
        (y - yr.lo) / (yr.hi - yr.lo) * static_cast<double>(options.height - 1) + 0.5));
    ++density[options.height - 1 - row_from_bottom][col];
  }
  int max_d = 0;
  for (const auto& row : density) {
    for (int d : row) max_d = std::max(max_d, d);
  }
  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  const char ramp[] = {'.', ':', '*', '#'};
  for (std::size_t r = 0; r < options.height; ++r) {
    for (std::size_t c = 0; c < options.width; ++c) {
      const int d = density[r][c];
      if (d == 0) continue;
      const int level = max_d <= 1 ? 0 : std::min(3, d * 4 / (max_d + 1));
      grid[r][c] = ramp[level];
    }
  }
  return frame(grid, xr, yr, options, {});
}

std::string render_bars(const std::vector<std::pair<std::string, double>>& bars,
                        const std::string& title, std::size_t width) {
  double max_v = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    max_v = std::max(max_v, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  for (const auto& [label, v] : bars) {
    const auto n = max_v > 0.0
                       ? static_cast<std::size_t>(v / max_v * static_cast<double>(width) + 0.5)
                       : 0;
    out << label << std::string(label_w - label.size(), ' ') << " |" << std::string(n, '#') << ' '
        << axis_number(v) << '\n';
  }
  return out.str();
}

std::string render_psd(const std::vector<double>& psd_db, double floor_db, double ceil_db,
                       std::size_t width) {
  static const char kRamp[] = " .:-=+*#%@";
  const std::size_t levels = sizeof kRamp - 2;
  std::string out;
  out.reserve(width);
  if (psd_db.empty() || width == 0) return out;
  for (std::size_t c = 0; c < width; ++c) {
    // Average the FFT bins that fall into this column.
    const std::size_t b0 = c * psd_db.size() / width;
    const std::size_t b1 = std::max(b0 + 1, (c + 1) * psd_db.size() / width);
    double acc = 0.0;
    for (std::size_t b = b0; b < b1 && b < psd_db.size(); ++b) acc += psd_db[b];
    const double v = acc / static_cast<double>(b1 - b0);
    const double t = std::clamp((v - floor_db) / (ceil_db - floor_db), 0.0, 1.0);
    out.push_back(kRamp[static_cast<std::size_t>(t * static_cast<double>(levels))]);
  }
  return out;
}

}  // namespace wlm
