// ASCII chart rendering for reproducing the paper's figures in a terminal:
// CDF/line plots, scatter plots, bar charts, and spectral waterfalls.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace wlm {

/// One named series of (x, y) points.
struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

struct ChartOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::size_t width = 72;   // plot-area columns
  std::size_t height = 20;  // plot-area rows
  // When set, override the auto-computed data range.
  bool fix_x = false;
  double x_min = 0.0;
  double x_max = 1.0;
  bool fix_y = false;
  double y_min = 0.0;
  double y_max = 1.0;
};

/// Multi-series line chart; each series gets its own glyph and a legend line.
[[nodiscard]] std::string render_line_chart(const std::vector<Series>& series,
                                            const ChartOptions& options);

/// Scatter plot (density shown by glyph escalation: . : * #).
[[nodiscard]] std::string render_scatter(const Series& series, const ChartOptions& options);

/// Horizontal bar chart from (label, value) pairs.
[[nodiscard]] std::string render_bars(const std::vector<std::pair<std::string, double>>& bars,
                                      const std::string& title, std::size_t width = 60);

/// Power-spectral-density "waterfall" strip: one row, dB values mapped onto a
/// grayscale ramp of glyphs. Used to render Figure 11-style spectra.
[[nodiscard]] std::string render_psd(const std::vector<double>& psd_db, double floor_db,
                                     double ceil_db, std::size_t width = 96);

}  // namespace wlm
