#include "core/checksum.hpp"

#include <array>

namespace wlm {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = kCrcTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) { return crc32_update(0, data); }

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text) {
  return fnv1a64(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                               text.size()));
}

}  // namespace wlm
