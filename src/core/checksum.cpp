#include "core/checksum.hpp"

#include <array>

namespace wlm {

namespace {

// Slice-by-16 CRC-32: sixteen derived tables let the update loop fold
// sixteen input bytes per iteration instead of one. The tables are pure
// functions of the byte-at-a-time table, so the computed CRC is
// bit-identical to the classic loop for every input (the tier-1 wire tests
// pin known vectors).
constexpr std::array<std::array<std::uint32_t, 256>, 16> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 16; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

constexpr auto kCrcTables = make_crc_tables();

inline std::uint32_t load_le32(const std::uint8_t* p) {
  // Explicit little-endian assembly (endian-independent); GCC and Clang
  // recognize the idiom and emit a single 32-bit load on LE targets.
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 16) {
    // Fold the CRC through sixteen bytes at once. Byte j of the group passes
    // through 15-j further table stages, which is exactly what table 15-j
    // precomputes; XORing the sixteen lookups advances the register as the
    // byte-at-a-time loop would.
    const std::uint32_t a = c ^ load_le32(p);
    const std::uint32_t b = load_le32(p + 4);
    const std::uint32_t d = load_le32(p + 8);
    const std::uint32_t e = load_le32(p + 12);
    c = kCrcTables[15][a & 0xFFu] ^ kCrcTables[14][(a >> 8) & 0xFFu] ^
        kCrcTables[13][(a >> 16) & 0xFFu] ^ kCrcTables[12][(a >> 24) & 0xFFu] ^
        kCrcTables[11][b & 0xFFu] ^ kCrcTables[10][(b >> 8) & 0xFFu] ^
        kCrcTables[9][(b >> 16) & 0xFFu] ^ kCrcTables[8][(b >> 24) & 0xFFu] ^
        kCrcTables[7][d & 0xFFu] ^ kCrcTables[6][(d >> 8) & 0xFFu] ^
        kCrcTables[5][(d >> 16) & 0xFFu] ^ kCrcTables[4][(d >> 24) & 0xFFu] ^
        kCrcTables[3][e & 0xFFu] ^ kCrcTables[2][(e >> 8) & 0xFFu] ^
        kCrcTables[1][(e >> 16) & 0xFFu] ^ kCrcTables[0][(e >> 24) & 0xFFu];
    p += 16;
    n -= 16;
  }
  while (n > 0) {
    c = kCrcTables[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
    ++p;
    --n;
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) { return crc32_update(0, data); }

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text) {
  return fnv1a64(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                               text.size()));
}

}  // namespace wlm
