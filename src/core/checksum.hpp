// CRC-32 (IEEE 802.3 polynomial) and FNV-1a hashing.
//
// CRC-32 guards the telemetry framing layer (wire/framing); FNV-1a is used
// for stable, platform-independent anonymization of identifiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace wlm {

/// CRC-32 with the reflected 0xEDB88320 polynomial (same as zlib's crc32).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: feed `crc` from a previous call (start with 0).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data);

/// 64-bit FNV-1a — stable across platforms, good avalanche for short keys.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

}  // namespace wlm
