#include "core/ids.hpp"

#include <cctype>
#include <cstdio>

namespace wlm {

namespace {

std::optional<int> hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Expect exactly "xx:xx:xx:xx:xx:xx" (17 chars).
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const auto hi = hex_digit(text[static_cast<std::size_t>(i * 3)]);
    const auto lo = hex_digit(text[static_cast<std::size_t>(i * 3 + 1)]);
    if (!hi || !lo) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((*hi << 4) | *lo);
    if (i < 5 && text[static_cast<std::size_t>(i * 3 + 2)] != ':') return std::nullopt;
  }
  return MacAddress{octets};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace wlm
