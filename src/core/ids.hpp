// Identifier types: MAC addresses and strongly typed entity ids.
//
// MAC addresses are the primary join key of the whole system — the backend
// aggregates usage by client MAC across roaming (paper §2.3) and OS
// fingerprinting starts from the OUI prefix (paper §3.2).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace wlm {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Build from a packed 48-bit integer (top 16 bits of the u64 ignored).
  [[nodiscard]] static constexpr MacAddress from_u64(std::uint64_t v) {
    return MacAddress{{static_cast<std::uint8_t>(v >> 40), static_cast<std::uint8_t>(v >> 32),
                       static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)}};
  }

  /// Parse "aa:bb:cc:dd:ee:ff" (case-insensitive). Returns nullopt on syntax error.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  /// 24-bit Organizationally Unique Identifier (vendor prefix).
  [[nodiscard]] constexpr std::uint32_t oui() const {
    return (static_cast<std::uint32_t>(octets_[0]) << 16) |
           (static_cast<std::uint32_t>(octets_[1]) << 8) | octets_[2];
  }

  /// Locally administered MACs (bit 1 of first octet) are randomized client
  /// addresses; they defeat OUI-based fingerprinting.
  [[nodiscard]] constexpr bool locally_administered() const { return (octets_[0] & 0x02) != 0; }
  [[nodiscard]] constexpr bool multicast() const { return (octets_[0] & 0x01) != 0; }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// The all-ones broadcast address.
[[nodiscard]] constexpr MacAddress broadcast_mac() {
  return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
}

// Strongly typed numeric ids. Distinct tag types prevent passing an ApId
// where a NetworkId is expected.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  auto operator<=>(const Id&) const = default;

 private:
  std::uint32_t v_ = 0;
};

struct NetworkTag {};
struct ApTag {};
struct ClientTag {};
struct OrgTag {};
struct SiteTag {};

using NetworkId = Id<NetworkTag>;
using ApId = Id<ApTag>;
using ClientId = Id<ClientTag>;
using OrgId = Id<OrgTag>;
using SiteId = Id<SiteTag>;

}  // namespace wlm

template <>
struct std::hash<wlm::MacAddress> {
  std::size_t operator()(const wlm::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

template <typename Tag>
struct std::hash<wlm::Id<Tag>> {
  std::size_t operator()(const wlm::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
