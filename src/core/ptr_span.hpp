// A flat, non-owning view over objects that live in several owners.
//
// The sharded fleet runtime keeps APs and mesh links inside per-network
// shards; PtrSpan presents them to analyses and tests as one contiguous
// sequence of references (range-for, operator[], front/size) without
// copying or exposing the pointer vector itself.
#pragma once

#include <cstddef>
#include <iterator>

namespace wlm {

template <typename T>
class PtrSpan {
 public:
  class iterator {
   public:
    using difference_type = std::ptrdiff_t;
    using value_type = T;
    using pointer = T*;
    using reference = T&;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    explicit iterator(T* const* p) : p_(p) {}
    reference operator*() const { return **p_; }
    pointer operator->() const { return *p_; }
    iterator& operator++() {
      ++p_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++p_;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) { return a.p_ == b.p_; }
    friend bool operator!=(const iterator& a, const iterator& b) { return a.p_ != b.p_; }

   private:
    T* const* p_ = nullptr;
  };

  PtrSpan() = default;
  PtrSpan(T* const* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) const { return *data_[i]; }
  [[nodiscard]] T& front() const { return *data_[0]; }
  [[nodiscard]] T& back() const { return *data_[size_ - 1]; }
  [[nodiscard]] iterator begin() const { return iterator(data_); }
  [[nodiscard]] iterator end() const { return iterator(data_ + size_); }

 private:
  T* const* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace wlm
