#include "core/rng.hpp"

#include <cassert>
#include <cmath>

namespace wlm {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

double Rng::rayleigh(double sigma) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return sigma * std::sqrt(-2.0 * std::log(u));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric edge: land on the last positive bucket
}

Rng Rng::fork() { return Rng{next_u64()}; }

void Rng::fill_uniform(std::span<double> out) {
  // Definitionally sequence-identical to repeated uniform() calls: the point
  // of the batched form is that callers hoist the draws out of branchy inner
  // loops (better scheduling, no per-frame call), not that the stream
  // changes. Any deviation here would break the determinism contract.
  for (double& v : out) v = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill_normal(std::span<double> out) {
  for (double& v : out) v = normal();
}

void Rng::fill_normal(std::span<double> out, double mean, double stddev) {
  for (double& v : out) v = mean + stddev * normal();
}

Rng Rng::substream(std::uint64_t base_seed, std::uint64_t stream_id) {
  return Rng{substream_seed(base_seed, stream_id)};
}

std::uint64_t substream_seed(std::uint64_t base_seed, std::uint64_t stream_id) {
  // Two splitmix64 rounds over a state that folds in the stream id with a
  // distinct odd multiplier, so (base, id) and (base, id+1) share no
  // low-dimensional structure and id 0 never degenerates to the base seed.
  std::uint64_t state = base_seed ^ (stream_id + 1) * 0xd1342543de82ef95ULL;
  (void)splitmix64(state);
  return splitmix64(state);
}

}  // namespace wlm
