// Deterministic random number generation.
//
// Every experiment in this repository must be exactly reproducible from a
// seed, so we carry our own xoshiro256** generator (public-domain algorithm
// by Blackman & Vigna) instead of std::mt19937, whose distributions are not
// specified bit-for-bit across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace wlm {

/// xoshiro256** 1.0 — fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);
  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);
  /// Pareto (heavy-tailed usage distributions) with scale xm>0, shape alpha>0.
  double pareto(double xm, double alpha);
  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large means).
  std::int64_t poisson(double mean);
  /// Rayleigh-distributed amplitude with scale sigma (fading envelopes).
  double rayleigh(double sigma);

  /// Batched draws: fills `out` with exactly the values the scalar calls
  /// would produce in sequence (fill_uniform(out) ≡ out[i] = uniform() in
  /// index order; likewise fill_normal, including the Box–Muller cache).
  /// The inner loops consume precomputed blocks instead of calling through
  /// per frame; substream semantics and checkpointed state are unchanged —
  /// after a fill the generator state equals the state after the scalar
  /// sequence.
  void fill_uniform(std::span<double> out);
  void fill_normal(std::span<double> out);
  void fill_normal(std::span<double> out, double mean, double stddev);

  /// Index in [0, weights.size()) sampled proportionally to weights.
  /// Zero/negative weights are treated as zero; requires a positive total.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (stable given call order).
  Rng fork();

  /// An independent generator for stream `stream_id` of `base_seed`,
  /// independent of call order — the parallel-safe alternative to fork().
  /// Shards seeded this way produce bit-identical sequences no matter how
  /// many workers run them or in what order they are built.
  [[nodiscard]] static Rng substream(std::uint64_t base_seed, std::uint64_t stream_id);

  /// Complete generator state, exposed for checkpoint/restore. The cached
  /// Box–Muller variate is part of it: without it a restored generator
  /// would emit its next normal() one draw out of phase.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;

    bool operator==(const State&) const = default;
  };
  [[nodiscard]] State state() const { return State{s_, cached_normal_, has_cached_normal_}; }
  void restore(const State& state) {
    s_ = state.s;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Seed of the `stream_id`-th substream of `base_seed` (splitmix64-style
/// avalanche over both words). Distinct stream ids give statistically
/// independent xoshiro seeds; the mapping is bit-stable across platforms.
[[nodiscard]] std::uint64_t substream_seed(std::uint64_t base_seed, std::uint64_t stream_id);

}  // namespace wlm
