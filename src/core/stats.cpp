#include "core/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (sorted_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t n) const {
  std::vector<std::pair<double, double>> pts;
  if (sorted_.empty() || n == 0) return pts;
  pts.reserve(n);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        n == 1 ? hi : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    pts.emplace_back(x, at(x));
  }
  return pts;
}

double quantile(std::span<const double> xs, double p) {
  return EmpiricalCdf{std::vector<double>(xs.begin(), xs.end())}.quantile(p);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::bin_fraction(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace wlm
