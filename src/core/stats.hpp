// Statistics primitives used by every analysis: running moments, empirical
// CDFs/quantiles, fixed-bin histograms, and simple correlation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wlm {

/// Streaming mean/variance/min/max (Welford's algorithm; numerically stable).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical distribution built from a sample set. Immutable once built.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// P(X <= x), step CDF. 0 for empty distributions.
  [[nodiscard]] double at(double x) const;
  /// Quantile for p in [0,1], linear interpolation between order statistics.
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Evaluation points for plotting: `n` (x, F(x)) pairs spanning the range.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t n = 100) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// One-shot quantile of a sample span (copies + sorts; use EmpiricalCdf for
/// repeated queries).
[[nodiscard]] double quantile(std::span<const double> xs, double p);

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so that totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double bin_weight(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total_weight() const { return total_; }
  /// Fraction of total weight in bin i (0 when empty).
  [[nodiscard]] double bin_fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Pearson correlation coefficient; 0 when either side has no variance.
[[nodiscard]] double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace wlm
