#include "core/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace wlm {

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  assert(!headers_.empty());
  if (aligns_.empty()) aligns_.assign(headers_.size(), Align::kLeft);
  assert(aligns_.size() == headers_.size());
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_cell = [&](std::ostringstream& out, const std::string& text, std::size_t c) {
    const auto pad = widths[c] - text.size();
    out << ' ';
    if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
    out << text;
    if (aligns_[c] == Align::kLeft) out << std::string(pad, ' ');
    out << " |";
  };

  std::ostringstream out;
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) emit_cell(out, headers_[c], c);
  out << '\n' << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + (aligns_[c] == Align::kRight ? 1 : 2), '-');
    if (aligns_[c] == Align::kRight) out << ':';
    out << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) emit_cell(out, row[c], c);
    out << '\n';
  }
  return out.str();
}

std::string with_commas(long long value) {
  const bool neg = value < 0;
  unsigned long long v = neg ? static_cast<unsigned long long>(-(value + 1)) + 1
                             : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string pct(double fraction01) {
  const double p = fraction01 * 100.0;
  char buf[64];
  const double mag = p < 0 ? -p : p;
  if (mag >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.0f%%", p);
  } else if (mag >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f%%", p);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%%", p);
  }
  return buf;
}

}  // namespace wlm
