// Plain-text table rendering for reproducing the paper's tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wlm {

/// Column alignment within a TextTable.
enum class Align { kLeft, kRight };

/// Builds monospaced tables like:
///
///   | Industry    | # networks |
///   |-------------|-----------:|
///   | Education   |      4,075 |
class TextTable {
 public:
  /// Columns are fixed at construction; every row must match.
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// 12,345,678 with thousands separators, as the paper prints client counts.
[[nodiscard]] std::string with_commas(long long value);

/// Fixed-precision double ("25.3").
[[nodiscard]] std::string fixed(double v, int decimals);

/// Percent with sensible precision: "25%", "9.1%", "0.42%".
[[nodiscard]] std::string pct(double fraction01);

}  // namespace wlm
