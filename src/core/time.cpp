#include "core/time.hpp"

#include <cstdio>

namespace wlm {

std::string SimTime::to_string() const {
  const std::int64_t day = day_index();
  std::int64_t rem = us_ % (24LL * 3600 * 1'000'000);
  if (rem < 0) rem += 24LL * 3600 * 1'000'000;
  const auto h = rem / 3'600'000'000LL;
  rem %= 3'600'000'000LL;
  const auto m = rem / 60'000'000LL;
  rem %= 60'000'000LL;
  const auto s = rem / 1'000'000LL;
  const auto ms = (rem % 1'000'000LL) / 1000;
  char buf[48];
  std::snprintf(buf, sizeof buf, "d%lld %02lld:%02lld:%02lld.%03lld", static_cast<long long>(day),
                static_cast<long long>(h), static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace wlm
