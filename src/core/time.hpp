// Simulation time.
//
// All timestamps are integer microseconds from the start of an experiment
// epoch. Microsecond resolution matches the Atheros channel-busy counters the
// paper reads (§5.3) and exactly represents the 802.11 timing constants used
// throughout (102.4 ms beacon interval, 0.42 ms beacon airtime, ...).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace wlm {

/// A span of simulated time, in microseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration{v}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return Duration{v * 1000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000}; }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t v) { return seconds(v * 3600); }
  [[nodiscard]] static constexpr Duration days(std::int64_t v) { return hours(v * 24); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double as_hours() const { return as_seconds() / 3600.0; }

  [[nodiscard]] constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  [[nodiscard]] constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  [[nodiscard]] constexpr Duration operator*(std::int64_t k) const { return Duration{us_ * k}; }
  [[nodiscard]] constexpr Duration operator/(std::int64_t k) const { return Duration{us_ / k}; }
  [[nodiscard]] constexpr std::int64_t operator/(Duration o) const { return us_ / o.us_; }
  constexpr Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }

  auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An instant, measured from the experiment epoch.
class SimTime {
 public:
  constexpr SimTime() = default;
  [[nodiscard]] static constexpr SimTime epoch() { return SimTime{}; }
  [[nodiscard]] static constexpr SimTime from_micros(std::int64_t us) { return SimTime{us}; }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration::micros(us_); }

  [[nodiscard]] constexpr SimTime operator+(Duration d) const {
    return SimTime{us_ + d.as_micros()};
  }
  [[nodiscard]] constexpr Duration operator-(SimTime o) const {
    return Duration::micros(us_ - o.us_);
  }
  constexpr SimTime& operator+=(Duration d) {
    us_ += d.as_micros();
    return *this;
  }

  /// Hour of the (simulated) day in [0, 24), assuming the epoch is midnight
  /// local time. Used by diurnal activity models.
  [[nodiscard]] constexpr double hour_of_day() const {
    const std::int64_t day_us = 24LL * 3600 * 1'000'000;
    const std::int64_t in_day = ((us_ % day_us) + day_us) % day_us;
    return static_cast<double>(in_day) / 3.6e9;
  }
  /// Day index since epoch (0-based).
  [[nodiscard]] constexpr std::int64_t day_index() const {
    return us_ / (24LL * 3600 * 1'000'000);
  }

  /// "d2 07:15:00.250" — compact timestamp for logs and figures.
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace wlm
