#include "core/units.hpp"

#include <cstdio>

namespace wlm {

PowerDbm combine_power(PowerDbm a, PowerDbm b) {
  return PowerDbm::from_milliwatts(a.milliwatts() + b.milliwatts());
}

namespace {

std::string format_value(double v, const char* unit) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, unit);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, unit);
  }
  return buf;
}

}  // namespace

std::string Bytes::human() const {
  const double n = static_cast<double>(n_);
  if (n >= 1e12) return format_value(n / 1e12, "TB");
  if (n >= 1e9) return format_value(n / 1e9, "GB");
  if (n >= 1e6) return format_value(n / 1e6, "MB");
  if (n >= 1e3) return format_value(n / 1e3, "kB");
  return format_value(n, "B");
}

std::string percent_increase(double before, double after) {
  char buf[64];
  if (before <= 0.0) {
    return "n/a";
  }
  const double pct = (after - before) / before * 100.0;
  if (pct >= 100.0 || pct <= -100.0) {
    std::snprintf(buf, sizeof buf, "%.0f%%", pct);
  } else if (pct >= 10.0 || pct <= -10.0) {
    std::snprintf(buf, sizeof buf, "%.0f%%", pct);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f%%", pct);
  }
  return buf;
}

}  // namespace wlm
