// Strong unit types for RF and traffic quantities.
//
// Power is carried in dBm (the natural unit for link budgets); conversion to
// and from milliwatts is explicit so that accidental linear/log mixing is a
// compile error rather than a silent 30 dB bug.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace wlm {

/// Transmit/receive power in dBm.
class PowerDbm {
 public:
  constexpr PowerDbm() = default;
  constexpr explicit PowerDbm(double dbm) : dbm_(dbm) {}

  [[nodiscard]] constexpr double dbm() const { return dbm_; }
  [[nodiscard]] double milliwatts() const { return std::pow(10.0, dbm_ / 10.0); }

  [[nodiscard]] static PowerDbm from_milliwatts(double mw) {
    return PowerDbm{10.0 * std::log10(mw)};
  }

  /// Apply a gain (antenna) or loss (path) in dB.
  [[nodiscard]] constexpr PowerDbm operator+(double gain_db) const {
    return PowerDbm{dbm_ + gain_db};
  }
  [[nodiscard]] constexpr PowerDbm operator-(double loss_db) const {
    return PowerDbm{dbm_ - loss_db};
  }
  /// Difference between two powers is a plain ratio in dB.
  [[nodiscard]] constexpr double operator-(PowerDbm other) const {
    return dbm_ - other.dbm_;
  }

  auto operator<=>(const PowerDbm&) const = default;

 private:
  double dbm_ = -200.0;  // effectively "no signal"
};

/// Sum powers in the linear domain (combining interference sources).
[[nodiscard]] PowerDbm combine_power(PowerDbm a, PowerDbm b);

/// Frequency in MHz with band classification helpers.
class FrequencyMhz {
 public:
  constexpr FrequencyMhz() = default;
  constexpr explicit FrequencyMhz(double mhz) : mhz_(mhz) {}

  [[nodiscard]] constexpr double mhz() const { return mhz_; }
  [[nodiscard]] constexpr double hz() const { return mhz_ * 1e6; }
  [[nodiscard]] constexpr bool is_2_4ghz() const { return mhz_ >= 2400.0 && mhz_ < 2500.0; }
  [[nodiscard]] constexpr bool is_5ghz() const { return mhz_ >= 5000.0 && mhz_ < 6000.0; }

  auto operator<=>(const FrequencyMhz&) const = default;

 private:
  double mhz_ = 0.0;
};

/// Data rate in kilobits per second (exact for all 802.11 rates incl. 5.5 Mb/s).
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(std::int64_t kbps) : kbps_(kbps) {}

  [[nodiscard]] static constexpr DataRate mbps(double m) {
    return DataRate{static_cast<std::int64_t>(m * 1000.0 + 0.5)};
  }
  [[nodiscard]] constexpr std::int64_t kbps() const { return kbps_; }
  [[nodiscard]] constexpr double as_mbps() const { return static_cast<double>(kbps_) / 1000.0; }

  /// Microseconds to serialize `bits` payload bits at this rate (ceil).
  [[nodiscard]] constexpr std::int64_t micros_for_bits(std::int64_t bits) const {
    // kbps == bits per millisecond == bits/1000us; us = bits*1000/kbps.
    return (bits * 1000 + kbps_ - 1) / kbps_;
  }

  auto operator<=>(const DataRate&) const = default;

 private:
  std::int64_t kbps_ = 0;
};

/// Byte counter with human-friendly formatting (used by usage tables).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t n) : n_(n) {}

  [[nodiscard]] static constexpr Bytes kb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e3)}; }
  [[nodiscard]] static constexpr Bytes mb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e6)}; }
  [[nodiscard]] static constexpr Bytes gb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e9)}; }
  [[nodiscard]] static constexpr Bytes tb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e12)}; }

  [[nodiscard]] constexpr std::int64_t count() const { return n_; }
  [[nodiscard]] constexpr double as_mb() const { return static_cast<double>(n_) / 1e6; }
  [[nodiscard]] constexpr double as_gb() const { return static_cast<double>(n_) / 1e9; }
  [[nodiscard]] constexpr double as_tb() const { return static_cast<double>(n_) / 1e12; }

  constexpr Bytes& operator+=(Bytes other) {
    n_ += other.n_;
    return *this;
  }
  [[nodiscard]] constexpr Bytes operator+(Bytes other) const { return Bytes{n_ + other.n_}; }
  [[nodiscard]] constexpr Bytes operator-(Bytes other) const { return Bytes{n_ - other.n_}; }

  auto operator<=>(const Bytes&) const = default;

  /// "1.2 GB", "367 MB", "980 kB" — SI units as in the paper's tables.
  [[nodiscard]] std::string human() const;

 private:
  std::int64_t n_ = 0;
};

/// Fraction clamped to [0,1] with percent formatting (delivery/utilization).
class Ratio {
 public:
  constexpr Ratio() = default;
  constexpr explicit Ratio(double v) : v_(v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v)) {}

  [[nodiscard]] constexpr double value() const { return v_; }
  [[nodiscard]] constexpr double percent() const { return v_ * 100.0; }
  auto operator<=>(const Ratio&) const = default;

 private:
  double v_ = 0.0;
};

/// Year-over-year change formatted like the paper ("62%", "-9.2%").
[[nodiscard]] std::string percent_increase(double before, double after);

}  // namespace wlm
