#include "deploy/capabilities.hpp"

#include <algorithm>

namespace wlm::deploy {

int Capabilities::spatial_streams() const {
  if (has(kCapFourStreams)) return 4;
  if (has(kCapThreeStreams)) return 3;
  if (has(kCapTwoStreams)) return 2;
  return 1;
}

std::string Capabilities::to_string() const {
  std::string out;
  if (has(kCap11ac)) {
    out = "11ac";
  } else if (has(kCap11n)) {
    out = "11n";
  } else {
    out = "11g";
  }
  out += dual_band() ? "/dual-band" : "/2.4-only";
  out += has(kCap40MHz) ? "/40MHz" : "/20MHz";
  out += "/" + std::to_string(spatial_streams()) + "ss";
  return out;
}

CapabilityTargets capability_targets(Epoch epoch) {
  // Table 4.
  const CapabilityTargets jan2014{0.999, 0.957, 0.489, 0.234, 0.025, 0.077, 0.024, 0.007};
  const CapabilityTargets jan2015{0.999, 0.977, 0.649, 0.638, 0.180, 0.193, 0.038, 0.018};
  switch (epoch) {
    case Epoch::kJan2014:
      return jan2014;
    case Epoch::kJan2015:
      return jan2015;
    case Epoch::kJul2014: {
      auto mid = [](double a, double b) { return (a + b) / 2.0; };
      return CapabilityTargets{mid(jan2014.p_11g, jan2015.p_11g),
                               mid(jan2014.p_11n, jan2015.p_11n),
                               mid(jan2014.p_5ghz, jan2015.p_5ghz),
                               mid(jan2014.p_40mhz, jan2015.p_40mhz),
                               mid(jan2014.p_11ac, jan2015.p_11ac),
                               mid(jan2014.p_two_streams, jan2015.p_two_streams),
                               mid(jan2014.p_three_streams, jan2015.p_three_streams),
                               mid(jan2014.p_four_streams, jan2015.p_four_streams)};
    }
  }
  return jan2015;
}

Capabilities sample_capabilities(Epoch epoch, Rng& rng) {
  const CapabilityTargets t = capability_targets(epoch);
  Capabilities c;
  if (!rng.chance(t.p_11g)) c.bits = 0;  // the rare pre-11g relic

  const bool ac = rng.chance(t.p_11ac);
  if (ac) {
    // 11ac implies dual-band 11n with wide channels.
    c.bits |= kCap11ac | kCap11n | kCap5GHz | kCap40MHz | kCap11g;
  } else {
    // Conditional probabilities chosen so the unconditional marginals hit
    // the targets: P(x) = P(ac) + P(x|!ac) (1 - P(ac)).
    const double q = 1.0 - t.p_11ac;
    const auto residual = [&](double p_total) {
      return std::clamp((p_total - t.p_11ac) / q, 0.0, 1.0);
    };
    const double p_11n_given = residual(t.p_11n);
    if (rng.chance(p_11n_given)) c.bits |= kCap11n;
    if (rng.chance(residual(t.p_5ghz))) c.bits |= kCap5GHz;
    // 40 MHz requires 11n; divide out the 11n probability so the
    // unconditional marginal still lands on the target.
    if ((c.bits & kCap11n) != 0 && p_11n_given > 0.0 &&
        rng.chance(std::clamp(residual(t.p_40mhz) / p_11n_given, 0.0, 1.0))) {
      c.bits |= kCap40MHz;
    }
  }

  // Spatial streams: categorical over {1,2,3,4}; multi-stream implies 11n.
  if ((c.bits & kCap11n) != 0) {
    const double p1 =
        std::max(0.0, 1.0 - t.p_two_streams - t.p_three_streams - t.p_four_streams);
    const double weights[] = {p1, t.p_two_streams, t.p_three_streams, t.p_four_streams};
    switch (rng.weighted_index(weights)) {
      case 1:
        c.bits |= kCapTwoStreams;
        break;
      case 2:
        c.bits |= kCapThreeStreams;
        break;
      case 3:
        c.bits |= kCapFourStreams;
        break;
      default:
        break;
    }
  }
  return c;
}

}  // namespace wlm::deploy
