// Client 802.11 capability model (the paper's Table 4).
//
// Capabilities are what a client advertises in its association request; the
// population model samples them per epoch so that the fleet-wide marginals
// match the paper's measured columns for January 2014 and January 2015.
#pragma once

#include <cstdint>
#include <string>

#include "core/rng.hpp"
#include "deploy/epoch.hpp"

namespace wlm::deploy {

/// Bitmask flags — also the wire representation (ClientSnapshot.capability_bits).
enum CapabilityBit : std::uint32_t {
  kCap11g = 1u << 0,
  kCap11n = 1u << 1,
  kCap5GHz = 1u << 2,
  kCap40MHz = 1u << 3,
  kCap11ac = 1u << 4,
  kCapTwoStreams = 1u << 5,
  kCapThreeStreams = 1u << 6,
  kCapFourStreams = 1u << 7,
};

struct Capabilities {
  std::uint32_t bits = kCap11g;

  [[nodiscard]] bool has(CapabilityBit b) const { return (bits & b) != 0; }
  [[nodiscard]] bool dual_band() const { return has(kCap5GHz); }
  [[nodiscard]] int spatial_streams() const;
  [[nodiscard]] std::string to_string() const;
};

/// Marginal prevalence targets for an epoch (fractions in [0,1]).
struct CapabilityTargets {
  double p_11g = 0.999;
  double p_11n = 0.0;
  double p_5ghz = 0.0;
  double p_40mhz = 0.0;
  double p_11ac = 0.0;
  double p_two_streams = 0.0;
  double p_three_streams = 0.0;
  double p_four_streams = 0.0;
};

/// Table 4 columns. kJul2014 interpolates between the two survey weeks.
[[nodiscard]] CapabilityTargets capability_targets(Epoch epoch);

/// Samples one client's capability set. Draws are hierarchical so that
/// implications hold (11ac => 11n + 5 GHz + 40 MHz; multi-stream => 11n)
/// while the marginals track the epoch targets.
[[nodiscard]] Capabilities sample_capabilities(Epoch epoch, Rng& rng);

}  // namespace wlm::deploy
