#include "deploy/epoch.hpp"

namespace wlm::deploy {

std::string_view epoch_name(Epoch e) {
  switch (e) {
    case Epoch::kJan2014:
      return "Jan 2014";
    case Epoch::kJul2014:
      return "Jul 2014";
    case Epoch::kJan2015:
      return "Jan 2015";
  }
  return "?";
}

}  // namespace wlm::deploy
