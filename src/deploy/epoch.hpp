// Measurement epochs used throughout the paper's comparisons.
#pragma once

#include <cstdint>
#include <string_view>

namespace wlm::deploy {

enum class Epoch : std::uint8_t {
  kJan2014,  // usage/capability baseline week (Jan 15-22, 2014)
  kJul2014,  // "six months ago" for interference comparisons
  kJan2015,  // the primary measurement week (Jan 15-22, 2015)
};

[[nodiscard]] std::string_view epoch_name(Epoch e);

}  // namespace wlm::deploy
