#include "deploy/generator.hpp"

#include <cassert>

namespace wlm::deploy {

int Fleet::total_aps() const {
  int n = 0;
  for (const auto& net : networks) n += static_cast<int>(net.aps.size());
  return n;
}

double clients_per_ap(Industry industry) {
  switch (industry) {
    case Industry::kEducation:
      return 25.0;
    case Industry::kHospitality:
    case Industry::kRestaurants:
      return 18.0;
    case Industry::kRetail:
      return 15.0;
    case Industry::kHealthcare:
    case Industry::kGovernment:
      return 12.0;
    case Industry::kTech:
    case Industry::kConsulting:
    case Industry::kFinanceInsurance:
      return 10.0;
    default:
      return 8.0;
  }
}

Fleet generate_fleet(const FleetConfig& config) {
  Fleet fleet;
  fleet.config = config;
  Rng rng(config.seed);

  std::uint32_t next_ap = 1;
  for (int n = 0; n < config.network_count; ++n) {
    NetworkConfig net;
    net.id = NetworkId{static_cast<std::uint32_t>(n + 1)};
    // ~1.75 networks per organization in the paper (20,667 / 11,788).
    net.org = OrgId{static_cast<std::uint32_t>(rng.uniform_int(1, (config.network_count * 4) / 7 + 1))};
    net.industry = sample_industry(rng);
    net.clients_per_ap = clients_per_ap(net.industry);

    const auto density = static_cast<Density>(rng.weighted_index(config.density_mix));
    net.site = sample_site_config(density, rng);

    Site site(SiteId{net.id.value()}, net.site, rng);
    const NeighborGenerator neighbor_gen(config.epoch, density);

    // Channel planning: some networks stagger 1/6/11 for capacity, others
    // (meshes, or auto-channel convergence) share one channel site-wide —
    // the configuration under which the paper's link probes are measured.
    static const int plan24[] = {1, 6, 11};
    const bool shared_24 = rng.chance(0.6);
    const int shared_channel_24 = plan24[rng.uniform_int(0, 2)];
    const bool shared_5 = rng.chance(0.6);
    const int shared_channel_5 = sample_channel_5(rng);
    for (std::size_t a = 0; a < site.ap_positions().size(); ++a) {
      ApConfig ap;
      ap.id = ApId{next_ap++};
      // Fleet BSSIDs come from a Cisco OUI block.
      ap.mac = MacAddress::from_u64((0x88154EULL << 24) | ap.id.value());
      ap.model = config.model;
      ap.position = site.ap_positions()[a];
      ap.channel_24 = shared_24 ? shared_channel_24 : plan24[a % 3];
      ap.channel_5 = shared_5 ? shared_channel_5 : sample_channel_5(rng);
      if (config.model == ApModel::kMr18) {
        ap.tx_power_24_dbm = 24.0;  // Table 1: MR18 runs 24 dBm on both bands
      }
      ap.environment = neighbor_gen.generate(rng);
      net.aps.push_back(std::move(ap));
    }
    fleet.networks.push_back(std::move(net));
  }
  return fleet;
}

}  // namespace wlm::deploy
