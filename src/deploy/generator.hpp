// Deployment generator: turns a scale parameter into a concrete fleet of
// networks, sites, access points, and their foreign-network environments.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "deploy/epoch.hpp"
#include "deploy/industry.hpp"
#include "deploy/neighbors.hpp"
#include "deploy/site.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"

namespace wlm::deploy {

/// Access-point hardware profile (paper Table 1).
enum class ApModel : std::uint8_t { kMr16, kMr18 };

struct ApConfig {
  ApId id;
  MacAddress mac;
  ApModel model = ApModel::kMr16;
  phy::Position position;
  int channel_24 = 1;   // serving channel, 2.4 GHz radio
  int channel_5 = 36;   // serving channel, 5 GHz radio
  double tx_power_24_dbm = 23.0;  // MR16: 23 dBm @2.4, 24 dBm @5 (Table 1)
  double tx_power_5_dbm = 24.0;
  NeighborEnvironment environment;
};

struct NetworkConfig {
  NetworkId id;
  OrgId org;
  Industry industry = Industry::kOther;
  SiteConfig site;
  std::vector<ApConfig> aps;
  /// Average clients per AP for this network's vertical.
  double clients_per_ap = 12.0;
};

struct FleetConfig {
  Epoch epoch = Epoch::kJan2015;
  int network_count = 200;
  ApModel model = ApModel::kMr16;
  std::uint64_t seed = 1;
  /// Density mix (must sum to 1): rural/suburban/urban/dense-urban.
  double density_mix[4] = {0.15, 0.45, 0.30, 0.10};
};

/// The generated fleet.
struct Fleet {
  FleetConfig config;
  std::vector<NetworkConfig> networks;

  [[nodiscard]] int total_aps() const;
};

/// Generates a deterministic fleet from the config. Channel assignment uses
/// the same 1/6/11 + UNII selection model as foreign networks (the fleet
/// behaves like everyone else's gear).
[[nodiscard]] Fleet generate_fleet(const FleetConfig& config);

/// Expected clients/AP by industry (education and hospitality run hot).
[[nodiscard]] double clients_per_ap(Industry industry);

}  // namespace wlm::deploy
