#include "deploy/industry.hpp"

#include <array>
#include <numeric>
#include <vector>

namespace wlm::deploy {

namespace {

// Table 2, in enum order.
constexpr std::array<int, kIndustryCount> kCounts = {
    127,   // Architecture/Engineering
    333,   // Construction
    365,   // Consulting
    4075,  // Education
    737,   // Finance/Insurance
    1112,  // Government/Public Sector
    1382,  // Healthcare
    493,   // Hospitality
    1220,  // Industrial/Manufacturing
    264,   // Legal
    427,   // Media/Advertising
    640,   // Non-Profit
    386,   // Real Estate
    296,   // Restaurants
    2355,  // Retail
    983,   // Tech
    442,   // Telecom
    2876,  // VAR/System Integrator
    2154,  // Other
};

constexpr std::array<std::string_view, kIndustryCount> kNames = {
    "Architecture/Engineering",
    "Construction",
    "Consulting",
    "Education",
    "Finance/Insurance",
    "Government/Public Sector",
    "Healthcare",
    "Hospitality",
    "Industrial/Manufacturing",
    "Legal",
    "Media/Advertising",
    "Non-Profit",
    "Real Estate",
    "Restaurants",
    "Retail",
    "Tech",
    "Telecom",
    "VAR/System Integrator",
    "Other",
};

}  // namespace

std::string_view industry_name(Industry i) { return kNames[static_cast<std::size_t>(i)]; }

std::span<const int> industry_network_counts() { return kCounts; }

int total_network_count() { return std::accumulate(kCounts.begin(), kCounts.end(), 0); }

Industry sample_industry(Rng& rng) {
  static const std::vector<double> weights(kCounts.begin(), kCounts.end());
  return static_cast<Industry>(rng.weighted_index(weights));
}

}  // namespace wlm::deploy
