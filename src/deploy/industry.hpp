// Industry verticals of the studied networks (the paper's Table 2).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "core/rng.hpp"

namespace wlm::deploy {

enum class Industry : std::uint8_t {
  kArchitectureEngineering,
  kConstruction,
  kConsulting,
  kEducation,
  kFinanceInsurance,
  kGovernment,
  kHealthcare,
  kHospitality,
  kIndustrialManufacturing,
  kLegal,
  kMediaAdvertising,
  kNonProfit,
  kRealEstate,
  kRestaurants,
  kRetail,
  kTech,
  kTelecom,
  kVarSystemIntegrator,
  kOther,
};

inline constexpr int kIndustryCount = 19;

[[nodiscard]] std::string_view industry_name(Industry i);

/// Network counts per industry from Table 2 (total 20,667).
[[nodiscard]] std::span<const int> industry_network_counts();
[[nodiscard]] int total_network_count();

/// Samples an industry proportionally to the Table 2 mix.
[[nodiscard]] Industry sample_industry(Rng& rng);

}  // namespace wlm::deploy
