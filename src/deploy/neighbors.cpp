#include "deploy/neighbors.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "classify/oui.hpp"

namespace wlm::deploy {

NeighborModelParams neighbor_params(Epoch epoch) {
  NeighborModelParams p;
  switch (epoch) {
    case Epoch::kJan2015:
      // Table 7 "now": 527,087 networks / 9,502 APs and 35,010 / 9,502.
      p.mean_24 = 55.47;
      p.mean_5 = 3.68;
      p.hotspot_frac_24 = 0.194;  // 102,344 / 527,087
      p.hotspot_frac_5 = 0.017;
      break;
    case Epoch::kJul2014:
      // Table 7 "six months ago": 230,628 / 8,062 and 19,921 / 8,062.
      p.mean_24 = 28.60;
      p.mean_5 = 2.47;
      p.hotspot_frac_24 = 0.244;  // 56,293 / 230,628
      p.hotspot_frac_5 = 0.017;
      break;
    case Epoch::kJan2014:
      // Extrapolated half a year before Jul 2014 on the same growth curve.
      p.mean_24 = 15.0;
      p.mean_5 = 1.7;
      p.hotspot_frac_24 = 0.25;
      p.hotspot_frac_5 = 0.017;
      break;
  }
  return p;
}

int sample_channel_24(Rng& rng) {
  // Figure 2: mass on 1/6/11 with channel 1 about 37% above 6 and 11;
  // off-grid channels carry small slivers.
  static const std::array<double, 11> weights = {
      1.37, 0.06, 0.06, 0.06, 0.06, 1.00, 0.06, 0.06, 0.06, 0.06, 1.00};
  return static_cast<int>(rng.weighted_index(weights)) + 1;
}

int sample_channel_5(Rng& rng) {
  struct Entry {
    int channel;
    double weight;
  };
  // UNII-1 and UNII-3 dominate (no DFS requirement); UNII-2 sees some use,
  // the UNII-2 extended band very little (Figure 2 and paper §4.1).
  static const std::array<Entry, 24> entries = {{
      {36, 2.0},  {40, 1.0},  {44, 0.95}, {48, 0.9},
      {52, 0.22}, {56, 0.20}, {60, 0.18}, {64, 0.20},
      {100, 0.05}, {104, 0.04}, {108, 0.04}, {112, 0.04}, {116, 0.05},
      {120, 0.03}, {124, 0.03}, {128, 0.03}, {132, 0.04}, {136, 0.03}, {140, 0.04},
      {149, 1.8}, {153, 0.85}, {157, 0.85}, {161, 0.9}, {165, 0.7},
  }};
  static const auto weights = [] {
    std::array<double, entries.size()> w{};
    for (std::size_t i = 0; i < entries.size(); ++i) w[i] = entries[i].weight;
    return w;
  }();
  return entries[rng.weighted_index(weights)].channel;
}

NeighborGenerator::NeighborGenerator(Epoch epoch, Density density)
    : params_(neighbor_params(epoch)), density_(density) {}

double NeighborGenerator::density_multiplier(Density d) {
  // Chosen so the *AP-weighted* average is ~1.0 under the deployment
  // generator's 15/45/30/10% density mix: denser sites also hold more APs
  // (mean 3/5/7.5/9.5 per site), so the per-network multipliers are scaled
  // down by that weighting to keep the fleet mean on the Table 7 numbers.
  switch (d) {
    case Density::kRural:
      return 0.12;
    case Density::kSuburban:
      return 0.40;
    case Density::kUrban:
      return 1.19;
    case Density::kDenseUrban:
      return 2.39;
  }
  return 1.0;
}

std::vector<NeighborInfo> NeighborGenerator::generate_band(phy::Band band, Rng& rng) const {
  const bool is24 = band == phy::Band::k2_4GHz;
  const double mean =
      (is24 ? params_.mean_24 : params_.mean_5) * density_multiplier(density_);
  // Poisson-mixed lognormal: the Poisson keeps E[count] exactly on the
  // calibrated mean (a plain floor(lognormal) loses ~0.5 — material for the
  // 5 GHz band's small means) while the lognormal mixing supplies the heavy
  // tail (the paper's §6.1 skyscraper APs hearing hundreds of networks).
  const double sigma = params_.count_sigma;
  const double mu = std::log(std::max(mean, 1e-3)) - sigma * sigma / 2.0;
  const auto count = static_cast<int>(rng.poisson(rng.lognormal(mu, sigma)));

  std::vector<NeighborInfo> out;
  out.reserve(static_cast<std::size_t>(count));
  const double hotspot_frac = is24 ? params_.hotspot_frac_24 : params_.hotspot_frac_5;
  for (int i = 0; i < count; ++i) {
    NeighborInfo n;
    n.band = band;
    n.channel = is24 ? sample_channel_24(rng) : sample_channel_5(rng);
    n.is_hotspot = rng.chance(hotspot_frac);
    // Audible neighbors cluster near the beacon-decode floor: coverage area
    // grows with the square of range, so far networks dominate the count.
    // Only the minority above the CCA thresholds contribute busy time —
    // the mechanism behind the paper's "AP count does not predict
    // utilization" finding (Figures 7/8).
    n.rssi_dbm = std::clamp(rng.normal(-80.0, 9.0), -92.0, -40.0);
    // Mint a BSSID from a hotspot vendor or a generic infrastructure OUI.
    const auto vendor = n.is_hotspot
                            ? (rng.chance(0.4) ? classify::Vendor::kNovatel
                               : rng.chance(0.5) ? classify::Vendor::kSierraWireless
                                                 : classify::Vendor::kPantech)
                            : (rng.chance(0.5) ? classify::Vendor::kNetgear
                                               : classify::Vendor::kTpLink);
    const std::uint64_t low = rng.next_u64() & 0xFFFFFF;
    n.bssid = MacAddress::from_u64(
        (static_cast<std::uint64_t>(classify::representative_oui(vendor)) << 24) | low);
    // SSIDs in the style the vendor ships: hotspots carry carrier names,
    // infrastructure gear its default-or-corporate label.
    {
      char ssid[36];
      const unsigned tag = static_cast<unsigned>(low & 0xFFFF);
      if (n.is_hotspot) {
        std::snprintf(ssid, sizeof ssid, "%s-MiFi-%04X",
                      rng.chance(0.5) ? "Verizon" : "Sprint", tag);
      } else if (rng.chance(0.4)) {
        std::snprintf(ssid, sizeof ssid, "%s-%04X",
                      std::string(classify::vendor_name(vendor)).c_str(), tag);
      } else {
        std::snprintf(ssid, sizeof ssid, "corp-net-%04X", tag);
      }
      n.ssid = ssid;
    }
    n.legacy_11b = is24 && !n.is_hotspot && rng.chance(0.08);
    n.ssid_count = n.is_hotspot ? 1 : 1 + static_cast<int>(rng.uniform_int(0, 2));
    // Foreign traffic duty (beacons excluded): heavy-tailed, mostly light.
    // The (fewer) networks that bothered to deploy 5 GHz carry real load.
    const double base = is24 ? rng.pareto(0.008, 1.4) : rng.pareto(0.016, 1.3);
    n.day_duty = std::min(0.40, base);
    // Hotspots travel home at night; offices go quiet but not silent.
    n.night_duty = n.day_duty * (n.is_hotspot ? 0.1 : rng.uniform(0.2, 0.6));
    out.push_back(n);
  }
  return out;
}

NeighborEnvironment NeighborGenerator::generate(Rng& rng) const {
  NeighborEnvironment env;
  env.neighbors = generate_band(phy::Band::k2_4GHz, rng);
  auto five = generate_band(phy::Band::k5GHz, rng);
  env.neighbors.insert(env.neighbors.end(), five.begin(), five.end());

  // Non-802.11 interference lives almost entirely in the 2.4 GHz ISM band:
  // Bluetooth hoppers and the occasional microwave oven / video sender.
  const double density_scale = density_multiplier(density_);
  const auto bt_count = static_cast<int>(rng.poisson(1.5 * density_scale));
  for (int i = 0; i < bt_count; ++i) {
    NonWifiInterferer bt;
    bt.band = phy::Band::k2_4GHz;
    bt.channel = static_cast<int>(rng.uniform_int(1, 11));
    bt.rssi_dbm = std::clamp(rng.normal(-70.0, 8.0), -90.0, -45.0);
    bt.day_duty = rng.uniform(0.005, 0.04);  // hopping: little time per channel
    bt.night_duty = bt.day_duty * 0.3;
    env.interferers.push_back(bt);
  }
  if (rng.chance(0.15)) {  // microwave oven in a kitchenette
    NonWifiInterferer mw;
    mw.band = phy::Band::k2_4GHz;
    mw.channel = static_cast<int>(rng.uniform_int(6, 11));  // 2.45 GHz centered
    mw.rssi_dbm = rng.normal(-55.0, 6.0);
    mw.day_duty = rng.uniform(0.005, 0.03);  // duty over the whole day
    mw.night_duty = 0.001;
    env.interferers.push_back(mw);
  }
  return env;
}

}  // namespace wlm::deploy
