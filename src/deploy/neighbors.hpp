// Foreign-network environment generator.
//
// For each access point we synthesize the population of *other people's*
// networks audible at its location: how many (heavy-tailed, grown between
// epochs per Table 7), on which channels (the 1/6/11 skew and UNII-band
// preferences of Figure 2), how strong, whether they are personal mobile
// hotspots, whether they still beacon in 802.11b format, and how much
// traffic they carry by day and night.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "deploy/epoch.hpp"
#include "deploy/site.hpp"
#include "phy/channel.hpp"

namespace wlm::deploy {

/// One foreign BSS audible at an AP.
struct NeighborInfo {
  MacAddress bssid;
  std::string ssid;          // as broadcast in the beacon's SSID IE
  phy::Band band = phy::Band::k2_4GHz;
  int channel = 1;
  double rssi_dbm = -80.0;
  bool is_hotspot = false;
  bool legacy_11b = false;   // long 2.592 ms beacons
  int ssid_count = 1;        // virtual APs beacon once per SSID
  /// Data-traffic duty cycle (beacons excluded) during busy daytime hours
  /// and at night. Day >= night for business-hour-driven deployments.
  double day_duty = 0.0;
  double night_duty = 0.0;
};

/// Non-802.11 interferers co-located with the AP (Bluetooth, microwave
/// ovens, analog video senders) — pure energy, never decodable.
struct NonWifiInterferer {
  phy::Band band = phy::Band::k2_4GHz;
  int channel = 1;        // channel whose band it pollutes most
  double rssi_dbm = -70.0;
  double day_duty = 0.0;
  double night_duty = 0.0;
};

struct NeighborEnvironment {
  std::vector<NeighborInfo> neighbors;
  std::vector<NonWifiInterferer> interferers;
};

struct NeighborModelParams {
  /// Fleet-wide mean foreign networks audible per AP, by band.
  double mean_24 = 55.47;
  double mean_5 = 3.68;
  /// Fraction of 2.4 GHz / 5 GHz neighbors that are mobile hotspots.
  double hotspot_frac_24 = 0.194;
  double hotspot_frac_5 = 0.017;
  /// Heavy-tail shape (lognormal sigma) of the per-AP neighbor count.
  double count_sigma = 0.95;
};

/// Table 7 calibration for an epoch.
[[nodiscard]] NeighborModelParams neighbor_params(Epoch epoch);

/// Samples a 2.4 GHz channel number with the Figure 2 skew
/// (channel 1 ~37% more popular than 6/11, slivers on 2-10).
[[nodiscard]] int sample_channel_24(Rng& rng);

/// Samples a 5 GHz channel with UNII-1/UNII-3 dominating and the DFS bands
/// (UNII-2/2e) lightly used.
[[nodiscard]] int sample_channel_5(Rng& rng);

class NeighborGenerator {
 public:
  NeighborGenerator(Epoch epoch, Density density);

  /// The full audible environment for one AP.
  [[nodiscard]] NeighborEnvironment generate(Rng& rng) const;

  /// Density multiplier applied to the fleet-wide mean counts.
  [[nodiscard]] static double density_multiplier(Density d);

 private:
  NeighborModelParams params_;
  Density density_;

  [[nodiscard]] std::vector<NeighborInfo> generate_band(phy::Band band, Rng& rng) const;
};

}  // namespace wlm::deploy
