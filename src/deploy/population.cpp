#include "deploy/population.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "classify/oui.hpp"

namespace wlm::deploy {

namespace {

using classify::OsType;
using classify::Vendor;

struct OsRow {
  OsType os;
  double clients_2015;
  double increase;  // fraction: clients_2014 = clients_2015 / (1 + increase)
};

// Table 3 "# clients" and "% increase" columns.
constexpr std::array<OsRow, 11> kOsRows = {{
    {OsType::kWindows, 822'761, 0.28},
    {OsType::kAppleIos, 2'550'379, 0.34},
    {OsType::kMacOsX, 313'976, 0.24},
    {OsType::kAndroid, 1'535'859, 0.61},
    {OsType::kUnknown, 228'182, -0.089},
    {OsType::kChromeOs, 178'095, 2.22},
    {OsType::kOther, 13'969, -0.33},
    {OsType::kPlaystation, 4'267, -0.13},
    {OsType::kLinux, 4'402, 1.65},
    {OsType::kBlackberry, 13'681, -0.53},
    {OsType::kWindowsMobile, 4'943, -0.42},
}};

double row_clients(const OsRow& row, Epoch epoch) {
  switch (epoch) {
    case Epoch::kJan2015:
      return row.clients_2015;
    case Epoch::kJan2014:
      return row.clients_2015 / (1.0 + row.increase);
    case Epoch::kJul2014:
      return (row.clients_2015 + row.clients_2015 / (1.0 + row.increase)) / 2.0;
  }
  return row.clients_2015;
}

Vendor sample_vendor_for_os(OsType os, Rng& rng) {
  switch (os) {
    case OsType::kAppleIos:
    case OsType::kMacOsX:
      return Vendor::kApple;
    case OsType::kAndroid: {
      const double w[] = {0.5, 0.2, 0.15, 0.15};
      constexpr Vendor v[] = {Vendor::kSamsung, Vendor::kLg, Vendor::kHtc, Vendor::kMotorola};
      return v[rng.weighted_index(w)];
    }
    case OsType::kWindows: {
      const double w[] = {0.4, 0.3, 0.2, 0.1};
      constexpr Vendor v[] = {Vendor::kIntel, Vendor::kDell, Vendor::kHp, Vendor::kMicrosoft};
      return v[rng.weighted_index(w)];
    }
    case OsType::kChromeOs:
      return rng.chance(0.5) ? Vendor::kGoogle : Vendor::kIntel;
    case OsType::kPlaystation:
      return Vendor::kSony;
    case OsType::kBlackberry:
      return Vendor::kRim;
    case OsType::kWindowsMobile:
      return Vendor::kNokia;
    case OsType::kLinux:
      return rng.chance(0.6) ? Vendor::kIntel : Vendor::kUnknown;
    case OsType::kXbox:
      return Vendor::kMicrosoft;
    case OsType::kOther:
      return rng.chance(0.3) ? Vendor::kDropcam : Vendor::kUnknown;
    case OsType::kUnknown:
      return Vendor::kUnknown;
  }
  return Vendor::kUnknown;
}

}  // namespace

std::vector<double> os_client_weights(Epoch epoch) {
  std::vector<double> weights(static_cast<std::size_t>(classify::kOsTypeCount), 0.0);
  for (const auto& row : kOsRows) {
    weights[static_cast<std::size_t>(row.os)] = row_clients(row, epoch);
  }
  return weights;
}

double total_clients(Epoch epoch) {
  double total = 0.0;
  for (const auto& row : kOsRows) total += row_clients(row, epoch);
  return total;
}

PopulationModel::PopulationModel(Epoch epoch, double roam_probability)
    : epoch_(epoch), roam_probability_(roam_probability) {
  if (std::isnan(roam_probability_)) roam_probability_ = kDefaultRoamProbability;
  roam_probability_ = std::clamp(roam_probability_, 0.0, 1.0);
}

ClientDevice PopulationModel::sample(ClientId id, Rng& rng) const {
  ClientDevice dev;
  dev.id = id;

  const auto weights = os_client_weights(epoch_);
  dev.os = static_cast<OsType>(rng.weighted_index(weights));

  // MAC: vendor OUI + unique low bits from the client id (collision-free).
  const Vendor vendor = sample_vendor_for_os(dev.os, rng);
  std::uint64_t mac = 0;
  if (vendor == Vendor::kUnknown && rng.chance(0.3)) {
    // Some unknowns are randomized (locally administered) MACs.
    mac = ((0x02ULL | (rng.next_u64() & 0xFCULL)) << 40) | (rng.next_u64() & 0xFFFFFFFFFFULL);
  } else {
    mac = (static_cast<std::uint64_t>(classify::representative_oui(vendor)) << 24) |
          (static_cast<std::uint64_t>(id.value()) & 0xFFFFFF);
  }
  dev.mac = MacAddress::from_u64(mac);

  dev.caps = sample_capabilities(epoch_, rng);
  // Consoles and legacy handhelds never gained 11ac.
  if (dev.os == OsType::kPlaystation || dev.os == OsType::kBlackberry ||
      dev.os == OsType::kWindowsMobile) {
    dev.caps.bits &= ~static_cast<std::uint32_t>(kCap11ac);
  }
  const auto dc = classify::device_class(dev.os);
  dev.roams = dc == classify::DeviceClass::kMobile && rng.chance(roam_probability_);
  return dev;
}

}  // namespace wlm::deploy
