// Client-device population model.
//
// Samples the devices that connect to the studied networks: operating
// system (Table 3 client-count mix per epoch), 802.11 capabilities
// (Table 4), and a vendor-consistent MAC address so that OUI-based
// fingerprinting sees realistic evidence.
#pragma once

#include <vector>

#include "classify/os.hpp"
#include "core/ids.hpp"
#include "core/rng.hpp"
#include "deploy/capabilities.hpp"
#include "deploy/epoch.hpp"

namespace wlm::deploy {

struct ClientDevice {
  ClientId id;
  MacAddress mac;
  classify::OsType os = classify::OsType::kUnknown;
  Capabilities caps;
  /// True for devices that roam between APs during the week (phones).
  bool roams = false;
};

/// Client-count weights per OS for an epoch (Table 3's "# clients" column;
/// 2014 derived from the year-over-year increases).
[[nodiscard]] std::vector<double> os_client_weights(Epoch epoch);

/// Total unique clients in the study week for an epoch (4.07 M -> 5.58 M).
[[nodiscard]] double total_clients(Epoch epoch);

class PopulationModel {
 public:
  explicit PopulationModel(Epoch epoch) : epoch_(epoch) {}

  /// Samples one device. MAC vendor, OS, and capabilities are mutually
  /// consistent (e.g. a Playstation is never 11ac, iPhones are Apple OUIs).
  [[nodiscard]] ClientDevice sample(ClientId id, Rng& rng) const;

 private:
  Epoch epoch_;
};

}  // namespace wlm::deploy
