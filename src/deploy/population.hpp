// Client-device population model.
//
// Samples the devices that connect to the studied networks: operating
// system (Table 3 client-count mix per epoch), 802.11 capabilities
// (Table 4), and a vendor-consistent MAC address so that OUI-based
// fingerprinting sees realistic evidence.
#pragma once

#include <vector>

#include "classify/os.hpp"
#include "core/ids.hpp"
#include "core/rng.hpp"
#include "deploy/capabilities.hpp"
#include "deploy/epoch.hpp"

namespace wlm::deploy {

struct ClientDevice {
  ClientId id;
  MacAddress mac;
  classify::OsType os = classify::OsType::kUnknown;
  Capabilities caps;
  /// True for devices that roam between APs during the week (phones).
  bool roams = false;
};

/// Client-count weights per OS for an epoch (Table 3's "# clients" column;
/// 2014 derived from the year-over-year increases).
[[nodiscard]] std::vector<double> os_client_weights(Epoch epoch);

/// Total unique clients in the study week for an epoch (4.07 M -> 5.58 M).
[[nodiscard]] double total_clients(Epoch epoch);

/// Fraction of mobile-class devices (phones/tablets) that roam between APs
/// during the week when no scenario overrides it.
inline constexpr double kDefaultRoamProbability = 0.6;

class PopulationModel {
 public:
  /// `roam_probability` is clamped to [0, 1] (NaN falls back to the
  /// default). Because Rng::chance consumes one draw for ANY probability,
  /// every other sampled field is byte-identical across roam settings.
  explicit PopulationModel(Epoch epoch,
                           double roam_probability = kDefaultRoamProbability);

  /// Samples one device. MAC vendor, OS, and capabilities are mutually
  /// consistent (e.g. a Playstation is never 11ac, iPhones are Apple OUIs).
  [[nodiscard]] ClientDevice sample(ClientId id, Rng& rng) const;

  [[nodiscard]] double roam_probability() const { return roam_probability_; }

 private:
  Epoch epoch_;
  double roam_probability_;
};

}  // namespace wlm::deploy
