#include "deploy/site.hpp"

#include <algorithm>
#include <cmath>

namespace wlm::deploy {

const char* density_name(Density d) {
  switch (d) {
    case Density::kRural:
      return "rural";
    case Density::kSuburban:
      return "suburban";
    case Density::kUrban:
      return "urban";
    case Density::kDenseUrban:
      return "dense-urban";
  }
  return "?";
}

Site::Site(SiteId id, const SiteConfig& config, Rng& rng) : id_(id), config_(config) {
  // Jittered grid: close to how real surveys place APs for coverage.
  const int n = std::max(1, config.ap_count);
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                    static_cast<double>(n) * config.width_m / config.height_m))));
  const int rows = (n + cols - 1) / cols;
  positions_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int r = i / cols;
    const int c = i % cols;
    const double cell_w = config.width_m / static_cast<double>(cols);
    const double cell_h = config.height_m / static_cast<double>(rows);
    phy::Position p;
    p.x = (static_cast<double>(c) + 0.5) * cell_w + rng.uniform(-0.2, 0.2) * cell_w;
    p.y = (static_cast<double>(r) + 0.5) * cell_h + rng.uniform(-0.2, 0.2) * cell_h;
    p.x = std::clamp(p.x, 0.0, config.width_m);
    p.y = std::clamp(p.y, 0.0, config.height_m);
    positions_.push_back(p);
  }
}

phy::Position Site::random_position(Rng& rng) const {
  return phy::Position{rng.uniform(0.0, config_.width_m), rng.uniform(0.0, config_.height_m)};
}

int Site::walls_between(const phy::Position& a, const phy::Position& b) const {
  const double d = phy::distance_m(a, b);
  return static_cast<int>(d / 10.0 * config_.walls_per_10m);
}

SiteConfig sample_site_config(Density density, Rng& rng) {
  SiteConfig cfg;
  cfg.density = density;
  switch (density) {
    case Density::kRural:
      cfg.ap_count = static_cast<int>(rng.uniform_int(2, 4));
      cfg.width_m = rng.uniform(40.0, 120.0);
      cfg.height_m = rng.uniform(30.0, 80.0);
      cfg.walls_per_10m = rng.uniform(0.5, 1.2);
      break;
    case Density::kSuburban:
      cfg.ap_count = static_cast<int>(rng.uniform_int(2, 8));
      cfg.width_m = rng.uniform(40.0, 100.0);
      cfg.height_m = rng.uniform(25.0, 60.0);
      cfg.walls_per_10m = rng.uniform(0.8, 1.6);
      break;
    case Density::kUrban:
      cfg.ap_count = static_cast<int>(rng.uniform_int(3, 12));
      cfg.width_m = rng.uniform(30.0, 80.0);
      cfg.height_m = rng.uniform(20.0, 50.0);
      cfg.walls_per_10m = rng.uniform(1.2, 2.2);
      break;
    case Density::kDenseUrban:
      cfg.ap_count = static_cast<int>(rng.uniform_int(3, 16));
      cfg.width_m = rng.uniform(25.0, 60.0);
      cfg.height_m = rng.uniform(15.0, 40.0);
      cfg.walls_per_10m = rng.uniform(1.5, 2.5);
      break;
  }
  return cfg;
}

}  // namespace wlm::deploy
