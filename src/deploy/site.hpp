// Site geometry: a rectangular floor with access points on a jittered grid
// and a wall model that converts distance into an interior-wall count for
// the propagation model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "phy/propagation.hpp"

namespace wlm::deploy {

/// Deployment environment density — drives both site size and how many
/// foreign networks are audible (urban cores see dozens, rural sites few).
enum class Density : std::uint8_t { kRural, kSuburban, kUrban, kDenseUrban };

[[nodiscard]] const char* density_name(Density d);

struct SiteConfig {
  double width_m = 60.0;
  double height_m = 40.0;
  int ap_count = 4;
  /// Average interior walls crossed per 10 m of straight-line path.
  double walls_per_10m = 1.2;
  Density density = Density::kSuburban;
};

class Site {
 public:
  Site(SiteId id, const SiteConfig& config, Rng& rng);

  [[nodiscard]] SiteId id() const { return id_; }
  [[nodiscard]] const SiteConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<phy::Position>& ap_positions() const { return positions_; }

  /// Random in-bounds client position.
  [[nodiscard]] phy::Position random_position(Rng& rng) const;

  /// Expected interior walls on the path between two points.
  [[nodiscard]] int walls_between(const phy::Position& a, const phy::Position& b) const;

 private:
  SiteId id_;
  SiteConfig config_;
  std::vector<phy::Position> positions_;
};

/// Plausible site dimensions/AP counts for a density class.
[[nodiscard]] SiteConfig sample_site_config(Density density, Rng& rng);

}  // namespace wlm::deploy
