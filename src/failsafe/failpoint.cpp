#include "failsafe/failpoint.hpp"

#include <cmath>
#include <cstdlib>
#include <new>

namespace wlm::failsafe {

namespace {

std::string describe(std::string_view site, std::uint64_t entity) {
  std::string out = "failpoint '";
  out += site;
  out += "' fired (entity ";
  out += std::to_string(entity);
  out += ")";
  return out;
}

/// Strict double parse, same contract as fault::FaultSpec's.
std::optional<double> parse_double(std::string_view text) {
  const std::string s(text);
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const auto v = parse_double(text);
  if (!v || *v < 0.0 || *v != std::floor(*v) || *v > 1e15) return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

/// FNV-1a over the site name: folds the site into the probabilistic
/// schedule's substream id so two sites armed with the same seed draw
/// independent sequences.
std::uint64_t site_hash(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : site) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

thread_local ScopedShardContext* g_current_context = nullptr;

}  // namespace

FailpointError::FailpointError(std::string_view site, std::uint64_t entity)
    : std::runtime_error(describe(site, entity)) {}

WatchdogTimeout::WatchdogTimeout(std::uint64_t entity, double delay_hours,
                                 double deadline_hours)
    : std::runtime_error("watchdog: shard " + std::to_string(entity) + " stalled " +
                         std::to_string(delay_hours) + " sim-hours (deadline " +
                         std::to_string(deadline_hours) + ")") {}

std::optional<std::vector<FailpointSpec>> FailpointSpec::parse_list(std::string_view text,
                                                                    std::string* error) {
  std::vector<FailpointSpec> specs;
  auto fail = [&](const std::string& why) -> std::optional<std::vector<FailpointSpec>> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  std::size_t clause_pos = 0;
  while (clause_pos <= text.size()) {
    std::size_t semi = text.find(';', clause_pos);
    if (semi == std::string_view::npos) semi = text.size();
    const std::string_view clause = text.substr(clause_pos, semi - clause_pos);
    clause_pos = semi + 1;
    if (clause.empty()) continue;

    FailpointSpec spec;
    std::size_t pos = 0;
    while (pos < clause.size()) {
      std::size_t comma = clause.find(',', pos);
      if (comma == std::string_view::npos) comma = clause.size();
      const std::string_view pair = clause.substr(pos, comma - pos);
      pos = comma + 1;
      if (pair.empty()) continue;

      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        return fail("expected key=value, got '" + std::string(pair) + "'");
      }
      const std::string_view key = pair.substr(0, eq);
      const std::string_view value = pair.substr(eq + 1);

      if (key == "site") {
        if (value.empty()) return fail("site must not be empty");
        spec.site = std::string(value);
      } else if (key == "net") {
        const auto n = parse_u64(value);
        if (!n) return fail("net must be a non-negative integer");
        spec.entity = *n;
        spec.any_entity = false;
      } else if (key == "action") {
        if (value == "throw") {
          spec.action = FailAction::kThrow;
        } else if (value == "error") {
          spec.action = FailAction::kError;
        } else if (value == "delay") {
          spec.action = FailAction::kDelay;
        } else if (value == "oom") {
          spec.action = FailAction::kOom;
        } else {
          return fail("action must be throw|error|delay|oom, got '" + std::string(value) +
                      "'");
        }
      } else if (key == "after") {
        const auto n = parse_u64(value);
        if (!n) return fail("after must be a non-negative integer");
        spec.after = *n;
      } else if (key == "times") {
        const auto n = parse_u64(value);
        if (!n) return fail("times must be a non-negative integer");
        spec.times = *n;
      } else if (key == "hours") {
        const auto v = parse_double(value);
        if (!v || std::isnan(*v) || std::isinf(*v) || *v < 0.0) {
          return fail("hours must be a non-negative number");
        }
        spec.delay_hours = *v;
      } else if (key == "prob") {
        const auto v = parse_double(value);
        if (!v || std::isnan(*v) || *v < 0.0 || *v > 1.0) {
          return fail("prob must be a probability in [0,1]");
        }
        spec.probability = *v;
      } else if (key == "seed") {
        const auto n = parse_u64(value);
        if (!n) return fail("seed must be a non-negative integer");
        spec.seed = *n;
      } else {
        return fail("unknown failpoint key '" + std::string(key) +
                    "' (known: site, net, action, after, times, hours, prob, seed)");
      }
    }
    if (spec.site.empty()) return fail("every failpoint clause needs site=<name>");
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) return fail("empty failpoint spec: need at least one clause");
  return specs;
}

void FailpointRegistry::arm(FailpointSpec spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back(Armed{std::move(spec), {}, {}});
  armed_.store(true, std::memory_order_relaxed);
}

bool FailpointRegistry::arm_list(std::string_view text, std::string* error) {
  auto specs = FailpointSpec::parse_list(text, error);
  if (!specs) return false;
  for (auto& spec : *specs) arm(std::move(spec));
  return true;
}

void FailpointRegistry::disarm_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

std::optional<FailAction> FailpointRegistry::fire_locked(std::string_view site,
                                                         std::uint64_t entity) {
  std::optional<FailAction> fired;
  for (auto& armed : specs_) {
    if (armed.spec.site != site) continue;
    if (!armed.spec.any_entity && armed.spec.entity != entity) continue;
    // Every matching clause counts the hit (schedules stay independent);
    // the first clause that fires decides the action.
    const std::uint64_t idx = armed.hits[entity]++;
    if (fired) continue;
    if (idx < armed.spec.after) continue;
    if (armed.spec.times != 0 && idx >= armed.spec.after + armed.spec.times) continue;
    if (armed.spec.probability < 1.0) {
      auto [it, inserted] = armed.rngs.try_emplace(
          entity, Rng::substream(armed.spec.seed ^ site_hash(armed.spec.site), entity));
      // One draw per eligible hit: the schedule is a fixed function of the
      // hit index for this (clause, entity), independent of thread count.
      if (!it->second.chance(armed.spec.probability)) continue;
    }
    fired = armed.spec.action;
  }
  return fired;
}

void FailpointRegistry::eval(std::string_view site, std::uint64_t entity) {
  std::optional<FailAction> action;
  double delay_hours = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    action = fire_locked(site, entity);
    if (action == FailAction::kDelay) {
      for (const auto& armed : specs_) {
        if (armed.spec.site == site && armed.spec.action == FailAction::kDelay) {
          delay_hours = armed.spec.delay_hours;
          break;
        }
      }
    }
  }
  if (!action) return;
  switch (*action) {
    case FailAction::kThrow:
    case FailAction::kError:
      // An injected error return still means failure at a throwing site.
      throw FailpointError(site, entity);
    case FailAction::kDelay:
      ScopedShardContext::add_delay_hours(delay_hours);
      return;
    case FailAction::kOom:
      throw std::bad_alloc();
  }
}

bool FailpointRegistry::eval_fails(std::string_view site, std::uint64_t entity) {
  const std::lock_guard<std::mutex> lock(mu_);
  return fire_locked(site, entity).has_value();
}

std::uint64_t FailpointRegistry::hits(std::string_view site, std::uint64_t entity) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& armed : specs_) {
    if (armed.spec.site != site) continue;
    const auto it = armed.hits.find(entity);
    if (it != armed.hits.end()) total = std::max(total, it->second);
  }
  return total;
}

FailpointRegistry& failpoints() {
  static FailpointRegistry registry;
  return registry;
}

ScopedShardContext::ScopedShardContext(std::uint64_t entity, double deadline_hours)
    : prev_(g_current_context), entity_(entity), deadline_hours_(deadline_hours) {
  g_current_context = this;
}

ScopedShardContext::~ScopedShardContext() { g_current_context = prev_; }

std::uint64_t ScopedShardContext::current_entity() {
  return g_current_context != nullptr ? g_current_context->entity_ : 0;
}

double ScopedShardContext::current_delay_hours() {
  return g_current_context != nullptr ? g_current_context->delay_hours_ : 0.0;
}

void ScopedShardContext::add_delay_hours(double hours) {
  ScopedShardContext* ctx = g_current_context;
  if (ctx == nullptr) return;
  ctx->delay_hours_ += hours;
  if (ctx->deadline_hours_ > 0.0 && ctx->delay_hours_ > ctx->deadline_hours_) {
    throw WatchdogTimeout(ctx->entity_, ctx->delay_hours_, ctx->deadline_hours_);
  }
}

}  // namespace wlm::failsafe
