// Deterministic failpoints: named trigger sites the supervision layer can
// arm to inject *system-level* failures — exceptions, I/O errors, stalls,
// allocation pressure — as reproducibly as fault::FaultSpec injects
// simulated ones.
//
// A failpoint site is a string constant compiled into the code path it
// guards (`shard.step`, `poller.poll`, `harvest.merge`, `shard.alloc`,
// `ckpt.save.write`). Sites cost one relaxed atomic load when nothing is
// armed, so they stay in production paths permanently. Arming comes from
// the `--failpoints` mini language (mirroring `--faults`): clauses
// separated by ';', each clause comma-separated key=value pairs, e.g.
//
//   --failpoints "site=shard.step,net=7,action=throw,times=2"
//   --failpoints "site=poller.poll,action=delay,hours=6;site=ckpt.save.write,action=error"
//
// Schedules are deterministic by construction: each armed clause keeps a
// per-entity hit counter, and whether hit N fires is a pure function of
// (clause, entity, N) — `after` skips the first hits, `times` bounds how
// many fire, and `prob`/`seed` draw from a dedicated RNG substream keyed by
// (seed, site, entity) so probabilistic schedules replay bit-identically
// for any worker count (every entity's hits arrive in shard order on
// whatever thread owns the shard).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hpp"

namespace wlm::failsafe {

/// What a firing failpoint does to the code path that evaluated it.
enum class FailAction : std::uint8_t {
  kThrow,  // throw FailpointError (the generic "this component crashed")
  kError,  // sites polled via failpoint_fails() report an error return
  kDelay,  // accumulate sim-time stall hours; may trip the shard watchdog
  kOom,    // throw std::bad_alloc (allocation pressure at shard.alloc)
};

/// Thrown by kThrow (and by kError at sites evaluated via the throwing
/// entry point — an injected error is still a failure there).
struct FailpointError : std::runtime_error {
  FailpointError(std::string_view site, std::uint64_t entity);
};

/// Thrown when a shard's accumulated injected stall exceeds its sim-time
/// deadline (see ScopedShardContext); the supervisor treats it like any
/// other shard failure.
struct WatchdogTimeout : std::runtime_error {
  WatchdogTimeout(std::uint64_t entity, double delay_hours, double deadline_hours);
};

/// One armed clause of the --failpoints mini language.
struct FailpointSpec {
  std::string site;            // required: which trigger site
  std::uint64_t entity = 0;    // net=N targets one network; default any
  bool any_entity = true;
  FailAction action = FailAction::kThrow;
  std::uint64_t after = 0;     // skip the first `after` hits
  std::uint64_t times = 0;     // fire at most `times` hits; 0 = forever
  double delay_hours = 1.0;    // stall magnitude for action=delay
  double probability = 1.0;    // per-hit firing probability
  std::uint64_t seed = 1;      // substream base for probabilistic schedules

  /// Parses the ';'-separated clause list. On failure returns nullopt and,
  /// if `error` is non-null, a one-line diagnostic naming the bad token.
  [[nodiscard]] static std::optional<std::vector<FailpointSpec>> parse_list(
      std::string_view text, std::string* error = nullptr);

  bool operator==(const FailpointSpec&) const = default;
};

/// The process-global registry of armed failpoints. Like FleetRunner's
/// campaign phase hook, this is injection configuration, not world state:
/// it is never serialized into checkpoints, and tests arm/disarm it around
/// each scenario. Evaluation takes a mutex — sites sit on per-phase and
/// per-report-period boundaries, never in per-frame loops, and the armed()
/// fast path keeps unarmed processes lock-free.
class FailpointRegistry {
 public:
  void arm(FailpointSpec spec);
  /// Parses and arms a clause list; returns false (arming nothing) on a
  /// parse error.
  bool arm_list(std::string_view text, std::string* error = nullptr);
  void disarm_all();
  [[nodiscard]] bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates `site` for `entity` at a throw-capable call site. Fires at
  /// most one clause per hit (first armed match wins). May throw
  /// FailpointError, WatchdogTimeout (via a delay), or std::bad_alloc.
  void eval(std::string_view site, std::uint64_t entity);

  /// Evaluates `site` at a call site that reports failure by error return
  /// instead of unwinding (ckpt.save.write). Never throws: any firing
  /// clause — whatever its action — reads as "the operation failed".
  [[nodiscard]] bool eval_fails(std::string_view site, std::uint64_t entity);

  /// Lifetime hits of `site` for `entity` (tests pin schedules with this).
  [[nodiscard]] std::uint64_t hits(std::string_view site, std::uint64_t entity) const;

 private:
  struct Armed {
    FailpointSpec spec;
    /// Per-entity hit counters and (for prob < 1) schedule substreams.
    std::map<std::uint64_t, std::uint64_t> hits;
    std::map<std::uint64_t, Rng> rngs;
  };

  /// Returns the firing clause's action, or nullopt. Must be called with
  /// mu_ held; the caller performs the action outside the lock.
  [[nodiscard]] std::optional<FailAction> fire_locked(std::string_view site,
                                                      std::uint64_t entity);

  mutable std::mutex mu_;
  std::vector<Armed> specs_;
  std::atomic<bool> armed_{false};
};

/// The process-global registry every site evaluates against.
[[nodiscard]] FailpointRegistry& failpoints();

/// Thread-local shard context, set by the supervisor around shard work so
/// failpoint sites know which entity they belong to without plumbing ids
/// through every layer, and so injected delays charge against the shard's
/// sim-time watchdog deadline.
class ScopedShardContext {
 public:
  /// `deadline_hours` <= 0 disables the watchdog for this scope.
  ScopedShardContext(std::uint64_t entity, double deadline_hours);
  ~ScopedShardContext();

  ScopedShardContext(const ScopedShardContext&) = delete;
  ScopedShardContext& operator=(const ScopedShardContext&) = delete;

  /// Entity of the innermost context on this thread; 0 when none.
  [[nodiscard]] static std::uint64_t current_entity();
  /// Charges an injected stall to the current context (no-op without one).
  /// Throws WatchdogTimeout once the accumulated stall exceeds the deadline.
  static void add_delay_hours(double hours);
  /// Accumulated stall of the innermost context (tests).
  [[nodiscard]] static double current_delay_hours();

 private:
  ScopedShardContext* prev_;
  std::uint64_t entity_;
  double deadline_hours_;
  double delay_hours_ = 0.0;
};

/// Site evaluation helpers: one relaxed load when nothing is armed.
inline void failpoint(std::string_view site) {
  auto& reg = failpoints();
  if (reg.armed()) reg.eval(site, ScopedShardContext::current_entity());
}

[[nodiscard]] inline bool failpoint_fails(std::string_view site) {
  auto& reg = failpoints();
  return reg.armed() && reg.eval_fails(site, ScopedShardContext::current_entity());
}

}  // namespace wlm::failsafe
