#include "failsafe/supervisor.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "failsafe/failpoint.hpp"

namespace wlm::failsafe {

namespace {

std::string current_exception_what() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

std::int64_t backoff_end_us(std::int64_t start_us, double backoff_hours) {
  return start_us + static_cast<std::int64_t>(backoff_hours * 3.6e9);
}

}  // namespace

bool DegradedRunManifest::degraded() const {
  return std::any_of(incidents.begin(), incidents.end(), [](const ShardIncident& inc) {
    return inc.outcome == IncidentOutcome::kQuarantined;
  });
}

std::vector<std::uint64_t> DegradedRunManifest::quarantined_networks() const {
  std::vector<std::uint64_t> ids;
  for (const auto& inc : incidents) {
    if (inc.outcome == IncidentOutcome::kQuarantined) ids.push_back(inc.network);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::uint64_t DegradedRunManifest::total_failures() const {
  std::uint64_t n = 0;
  for (const auto& inc : incidents) n += inc.failures;
  return n;
}

std::uint64_t DegradedRunManifest::total_retries() const {
  std::uint64_t n = 0;
  for (const auto& inc : incidents) n += inc.retries;
  return n;
}

std::string DegradedRunManifest::render() const {
  char line[512];
  std::snprintf(line, sizeof line,
                "degraded-run manifest: %zu incident(s), %llu failure(s), %llu "
                "retr%s, %zu network(s) quarantined",
                incidents.size(), static_cast<unsigned long long>(total_failures()),
                static_cast<unsigned long long>(total_retries()),
                total_retries() == 1 ? "y" : "ies", quarantined_networks().size());
  std::string out = line;
  for (const auto& inc : incidents) {
    const bool q = inc.outcome == IncidentOutcome::kQuarantined;
    std::snprintf(line, sizeof line,
                  "\n  [%s] network %llu in %s: %llu failure(s), %llu retr%s, "
                  "%.1fh backoff — %s",
                  q ? "quarantined" : "recovered",
                  static_cast<unsigned long long>(inc.network), inc.phase.c_str(),
                  static_cast<unsigned long long>(inc.failures),
                  static_cast<unsigned long long>(inc.retries),
                  inc.retries == 1 ? "y" : "ies", inc.backoff_hours, inc.error.c_str());
    out += line;
    if (q) {
      const fault::LossLedger view = ShardSupervisor::quarantined_view(inc.ledger);
      std::snprintf(line, sizeof line, "\n    lost to supervision: %llu report(s)",
                    static_cast<unsigned long long>(view.lost_supervision));
      out += line;
    }
  }
  return out;
}

void ShardSupervisor::configure(SupervisorConfig config, std::size_t shard_count,
                                ShardHooks hooks) {
  config_ = config;
  hooks_ = std::move(hooks);
  quarantined_.assign(shard_count, 0);
  snapshots_.assign(shard_count, {});
  has_snapshot_.assign(shard_count, 0);
  manifest_ = {};
}

std::size_t ShardSupervisor::quarantined_count() const {
  std::size_t n = 0;
  for (const std::uint8_t q : quarantined_) n += q != 0 ? 1 : 0;
  return n;
}

void ShardSupervisor::run_phase(
    std::string_view phase, std::int64_t sim_now_us,
    const std::function<void(std::size_t)>& body,
    const std::function<void(const std::function<void(std::size_t)>&)>& run_all) {
  const std::size_t count = quarantined_.size();
  std::vector<Failure> failures(count);
  const bool capture =
      config_.capture_checkpoints && config_.max_shard_retries > 0 && hooks_.snapshot;

  // Worker pass: each shard's failure lands in its own slot, so the only
  // cross-thread state is index-addressed and write-once per phase.
  run_all([&](std::size_t i) {
    if (quarantined_[i] != 0) return;
    try {
      if (capture) {
        snapshots_[i] = hooks_.snapshot(i);
        has_snapshot_[i] = 1;
      }
      const ScopedShardContext ctx(hooks_.network_id(i), config_.shard_deadline_hours);
      body(i);
    } catch (...) {
      failures[i] = Failure{true, current_exception_what()};
    }
  });

  // Recovery pass: serial, fleet order, on the orchestrating thread — the
  // manifest and every restored shard's state end up identical for any
  // worker-pool size.
  for (std::size_t i = 0; i < count; ++i) {
    if (!failures[i].failed) continue;
    recover(i, phase, sim_now_us, std::move(failures[i].error), body);
  }
}

void ShardSupervisor::recover(std::size_t shard, std::string_view phase,
                              std::int64_t sim_now_us, std::string first_error,
                              const std::function<void(std::size_t)>& body) {
  const std::uint64_t network = hooks_.network_id(shard);
  ShardIncident incident;
  incident.network = network;
  incident.phase = std::string(phase);
  incident.error = std::move(first_error);
  incident.sim_us = sim_now_us;
  incident.failures = 1;

  const bool can_restore = has_snapshot_[shard] != 0 && hooks_.restore != nullptr;
  while (can_restore && incident.retries < config_.max_shard_retries) {
    if (!hooks_.restore(shard, snapshots_[shard])) break;
    // Backoff is a recorded sim-time penalty (base doubling per retry), not
    // a wall-clock sleep — determinism forbids waiting.
    incident.backoff_hours +=
        config_.retry_backoff_hours * static_cast<double>(1ULL << incident.retries);
    ++incident.retries;
    try {
      const ScopedShardContext ctx(network, config_.shard_deadline_hours);
      body(shard);
      incident.outcome = IncidentOutcome::kRecovered;
      if (hooks_.ledger) incident.ledger = hooks_.ledger(shard);
      manifest_.incidents.push_back(std::move(incident));
      return;
    } catch (...) {
      ++incident.failures;
      incident.error = current_exception_what();
    }
  }

  // Retries exhausted (or no snapshot to retry from): park the shard in its
  // last good state so its ledger stays internally consistent, and
  // quarantine it — later phases and harvest merges skip it.
  if (can_restore) hooks_.restore(shard, snapshots_[shard]);
  quarantined_[shard] = 1;
  incident.outcome = IncidentOutcome::kQuarantined;
  if (hooks_.ledger) incident.ledger = hooks_.ledger(shard);
  manifest_.incidents.push_back(std::move(incident));
}

bool ShardSupervisor::guard_merge(std::size_t shard, std::int64_t sim_now_us) {
  if (quarantined(shard)) return false;
  if (!failpoints().armed()) return true;

  const std::uint64_t network = hooks_.network_id(shard);
  ShardIncident incident;
  incident.network = network;
  incident.phase = "harvest.merge";
  incident.sim_us = sim_now_us;
  for (;;) {
    try {
      const ScopedShardContext ctx(network, config_.shard_deadline_hours);
      failpoint("harvest.merge");
      if (incident.failures > 0) {
        incident.outcome = IncidentOutcome::kRecovered;
        if (hooks_.ledger) incident.ledger = hooks_.ledger(shard);
        manifest_.incidents.push_back(std::move(incident));
      }
      return true;
    } catch (...) {
      ++incident.failures;
      incident.error = current_exception_what();
      if (incident.retries >= config_.max_shard_retries) break;
      incident.backoff_hours +=
          config_.retry_backoff_hours * static_cast<double>(1ULL << incident.retries);
      ++incident.retries;
    }
  }
  quarantined_[shard] = 1;
  incident.outcome = IncidentOutcome::kQuarantined;
  if (hooks_.ledger) incident.ledger = hooks_.ledger(shard);
  manifest_.incidents.push_back(std::move(incident));
  return false;
}

void ShardSupervisor::publish(telemetry::MetricsRegistry& metrics,
                              std::vector<telemetry::TraceSpan>& trace) const {
  if (manifest_.incidents.empty()) return;

  for (const auto& inc : manifest_.incidents) {
    metrics.counter("wlm_supervisor_failures_total", inc.network).inc(inc.failures);
    if (inc.retries > 0) {
      metrics.counter("wlm_supervisor_retries_total", inc.network).inc(inc.retries);
      trace.push_back({telemetry::SpanKind::kShardRetry, inc.network, inc.sim_us,
                       backoff_end_us(inc.sim_us, inc.backoff_hours), inc.retries});
    }
    if (inc.outcome == IncidentOutcome::kQuarantined) {
      trace.push_back({telemetry::SpanKind::kShardQuarantine, inc.network, inc.sim_us,
                       inc.sim_us, inc.failures});
    }
  }
  metrics.counter("wlm_supervisor_failures_total").inc(manifest_.total_failures());
  metrics.counter("wlm_supervisor_retries_total").inc(manifest_.total_retries());

  const std::vector<std::uint64_t> quarantined = manifest_.quarantined_networks();
  metrics.gauge("wlm_supervisor_quarantined_networks")
      .set(static_cast<double>(quarantined.size()));
  for (const std::uint64_t network : quarantined) {
    metrics.gauge("wlm_supervisor_quarantined", network).set(1.0);
  }
}

void ShardSupervisor::restore_manifest(DegradedRunManifest manifest) {
  manifest_ = std::move(manifest);
  std::fill(quarantined_.begin(), quarantined_.end(), 0);
  for (const auto& inc : manifest_.incidents) {
    if (inc.outcome != IncidentOutcome::kQuarantined) continue;
    for (std::size_t i = 0; i < quarantined_.size(); ++i) {
      if (hooks_.network_id && hooks_.network_id(i) == inc.network) {
        quarantined_[i] = 1;
        break;
      }
    }
  }
}

fault::LossLedger ShardSupervisor::quarantined_view(const fault::LossLedger& ledger) {
  fault::LossLedger view = ledger;
  view.lost_supervision += view.delivered + view.in_flight;
  view.delivered = 0;
  view.in_flight = 0;
  return view;
}

}  // namespace wlm::failsafe
