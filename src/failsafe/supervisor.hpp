// Shard supervision: exception isolation, sim-time watchdog deadlines,
// checkpoint-based retry, and quarantine with accounted degradation.
//
// The paper's backend kept collecting from 20,667 networks while individual
// components crashed (§2, §6.1); this layer gives the *simulator of that
// backend* the same property. FleetRunner wraps every campaign phase in
// ShardSupervisor::run_phase: each shard's work runs inside a try/catch on
// its worker thread, a failing shard is restored from its last good
// checkpoint section and retried serially with exponential sim-time backoff,
// and a shard that exhausts its retries is quarantined — excluded from
// every later phase and from harvest merges — instead of killing the
// campaign. Nothing here sleeps or reads the wall clock: backoff is a
// recorded sim-time penalty, deadlines are accumulated injected stall hours
// (failsafe::WatchdogTimeout), and the retry pass runs in fleet order on
// the orchestrating thread, so a supervised run is bit-identical for any
// --jobs and a clean run is byte-identical to one with supervision off.
//
// Degradation is accounted, never silent (Syed et al. 2020's warning about
// silent partial data): every recovery or quarantine becomes a
// ShardIncident in the DegradedRunManifest, quarantined work moves into the
// LossLedger's explicit lost_supervision bucket via quarantined_view(), and
// publish() derives all supervisor metrics and trace spans from the
// manifest alone — so they serialize with it, rebuild identically after a
// checkpoint restore, and are absent entirely when nothing went wrong.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/loss_ledger.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wlm::failsafe {

struct SupervisorConfig {
  /// Restore-and-rerun attempts per shard failure before quarantine.
  std::uint64_t max_shard_retries = 2;
  /// Sim-hours of injected stall a shard may accumulate per phase before
  /// the watchdog trips (0 disables the watchdog).
  double shard_deadline_hours = 0.0;
  /// First retry's sim-time penalty; doubles per subsequent retry.
  double retry_backoff_hours = 1.0;
  /// Capture a per-shard state snapshot at each phase boundary so retry can
  /// restore. Off by default (snapshots cost time and memory); wlmctl turns
  /// it on whenever a supervision flag is present. Without snapshots a
  /// failed shard quarantines on its first failure.
  bool capture_checkpoints = false;

  bool operator==(const SupervisorConfig&) const = default;
};

enum class IncidentOutcome : std::uint8_t {
  kRecovered,    // a retry re-ran the phase from the last good snapshot
  kQuarantined,  // retries exhausted (or impossible); shard excluded
};

/// One supervised failure, recovered or not. Everything the manifest,
/// telemetry, and checkpoint need derives from these fields.
struct ShardIncident {
  std::uint64_t network = 0;       // network id of the failed shard
  std::string phase;               // campaign phase (or "harvest.merge")
  std::string error;               // what() of the final failure
  std::int64_t sim_us = 0;         // sim time at the failing phase's start
  std::uint64_t failures = 0;      // attempts that failed (>= 1)
  std::uint64_t retries = 0;       // restore-and-rerun attempts made
  double backoff_hours = 0.0;      // total sim-time retry penalty charged
  IncidentOutcome outcome = IncidentOutcome::kRecovered;
  /// The shard's ledger after the incident settled (post-recovery state, or
  /// the restored last-good state a quarantined shard was parked in).
  fault::LossLedger ledger;

  bool operator==(const ShardIncident&) const = default;
};

/// Emitted alongside results by harvest(kFinal) when a campaign degraded;
/// serialized into checkpoints so a resumed run keeps its history.
struct DegradedRunManifest {
  std::vector<ShardIncident> incidents;

  [[nodiscard]] bool degraded() const;
  /// Ascending, deduplicated network ids of quarantined shards.
  [[nodiscard]] std::vector<std::uint64_t> quarantined_networks() const;
  [[nodiscard]] std::uint64_t total_failures() const;
  [[nodiscard]] std::uint64_t total_retries() const;

  /// Deterministic multi-line summary (wlmctl prints this for degraded
  /// runs; incidents in occurrence order).
  [[nodiscard]] std::string render() const;

  bool operator==(const DegradedRunManifest&) const = default;
};

/// How the supervisor reaches into shards without depending on sim:
/// FleetRunner wires these to NetworkShard + the wlm::ckpt per-shard
/// serializers. All hooks are called with a valid shard index; snapshot and
/// restore may be empty when checkpoint capture is off.
struct ShardHooks {
  std::function<std::uint64_t(std::size_t)> network_id;
  std::function<std::vector<std::uint8_t>(std::size_t)> snapshot;
  std::function<bool(std::size_t, const std::vector<std::uint8_t>&)> restore;
  std::function<fault::LossLedger(std::size_t)> ledger;
};

class ShardSupervisor {
 public:
  void configure(SupervisorConfig config, std::size_t shard_count, ShardHooks hooks);

  [[nodiscard]] const SupervisorConfig& config() const { return config_; }
  [[nodiscard]] bool quarantined(std::size_t shard) const {
    return shard < quarantined_.size() && quarantined_[shard] != 0;
  }
  [[nodiscard]] std::size_t quarantined_count() const;
  [[nodiscard]] const DegradedRunManifest& manifest() const { return manifest_; }
  [[nodiscard]] bool degraded() const { return manifest_.degraded(); }

  /// Runs one campaign phase under supervision. `run_all` is the caller's
  /// worker-pool dispatcher (it invokes its argument once per shard index,
  /// possibly concurrently); `body` is the phase work for one shard. Each
  /// shard executes inside a ScopedShardContext (failpoint entity + watchdog
  /// deadline) with exceptions confined to a per-shard failure slot; failed
  /// shards are then restored/retried/quarantined serially in fleet order.
  void run_phase(std::string_view phase, std::int64_t sim_now_us,
                 const std::function<void(std::size_t)>& body,
                 const std::function<void(const std::function<void(std::size_t)>&)>& run_all);

  /// Guards one shard's harvest merge: false means "do not merge this
  /// shard" (already quarantined, or the harvest.merge failpoint exhausted
  /// its retries — merge has no shard state to restore, so retry is a
  /// plain re-evaluation).
  [[nodiscard]] bool guard_merge(std::size_t shard, std::int64_t sim_now_us);

  /// Re-derives every supervisor metric and trace span from the manifest
  /// into freshly rebuilt fleet telemetry. Publishes nothing when there are
  /// no incidents, so clean runs carry no trace of the supervision layer.
  void publish(telemetry::MetricsRegistry& metrics,
               std::vector<telemetry::TraceSpan>& trace) const;

  /// Checkpoint restore: adopt a saved manifest and rebuild the quarantine
  /// set from its kQuarantined incidents (configure() must have run).
  void restore_manifest(DegradedRunManifest manifest);

  /// A quarantined shard's contribution to the fleet ledger: its delivered
  /// and in-flight work is struck from those buckets and accounted as
  /// lost_supervision, keeping the conservation invariant closed while
  /// recording that supervision — not the simulated network — lost it.
  [[nodiscard]] static fault::LossLedger quarantined_view(const fault::LossLedger& ledger);

 private:
  struct Failure {
    bool failed = false;
    std::string error;
  };

  void recover(std::size_t shard, std::string_view phase, std::int64_t sim_now_us,
               std::string first_error, const std::function<void(std::size_t)>& body);

  SupervisorConfig config_;
  ShardHooks hooks_;
  std::vector<std::uint8_t> quarantined_;
  std::vector<std::vector<std::uint8_t>> snapshots_;
  std::vector<std::uint8_t> has_snapshot_;
  DegradedRunManifest manifest_;
};

}  // namespace wlm::failsafe
