#include "fault/injector.hpp"

#include "wire/framing.hpp"

namespace wlm::fault {

FaultInjector::FaultInjector(const FaultSpec& spec, FaultPlan plan)
    : spec_(spec.clamped()), plan_(std::move(plan)), states_(plan_.ap_count()),
      enabled_(spec_.enabled()) {}

void FaultInjector::bind_telemetry(telemetry::MetricsRegistry* metrics,
                                   telemetry::FlightRecorder* recorder,
                                   std::vector<std::uint64_t> ap_entities) {
  metrics_ = metrics;
  recorder_ = recorder;
  ap_entities_ = std::move(ap_entities);
}

std::uint64_t FaultInjector::entity_of(std::size_t ap) const {
  return ap < ap_entities_.size() ? ap_entities_[ap] : ap;
}

void FaultInjector::reboot_now(std::size_t ap, ApState& state, backend::Tunnel& tunnel,
                               std::int64_t t_us) {
  // A restart loses everything queued device-side and bounces the WAN
  // session. The disconnect is momentary unless the AP is inside an outage,
  // in which case the tunnel stays down.
  const std::size_t lost = tunnel.flush();
  tunnel.disconnect();
  if (!state.in_outage) tunnel.reconnect();
  ++reboots_applied_;
  if (metrics_) metrics_->counter("wlm_fault_reboots_total").inc();
  if (recorder_) {
    recorder_->record({telemetry::SpanKind::kReboot, entity_of(ap), t_us, t_us,
                       static_cast<std::uint64_t>(lost)});
  }
}

void FaultInjector::advance(std::size_t ap, std::int64_t t_us, backend::Tunnel& tunnel) {
  if (!enabled_ || ap >= states_.size()) return;
  ApState& state = states_[ap];
  const auto& events = plan_.schedule(ap).events;
  while (state.cursor < events.size() && events[state.cursor].t_us <= t_us) {
    const FaultEvent& event = events[state.cursor++];
    switch (event.type) {
      case FaultEventType::kOutageStart:
        state.in_outage = true;
        state.outage_start_us = event.t_us;
        tunnel.disconnect();
        if (metrics_) metrics_->counter("wlm_fault_outages_total").inc();
        break;
      case FaultEventType::kOutageEnd:
        state.in_outage = false;
        tunnel.reconnect();
        if (recorder_) {
          recorder_->record({telemetry::SpanKind::kOutage, entity_of(ap),
                             state.outage_start_us, event.t_us, 0});
        }
        break;
      case FaultEventType::kReboot:
        reboot_now(ap, state, tunnel, event.t_us);
        break;
    }
  }
  if (t_us > state.clock) state.clock = t_us;
}

void FaultInjector::on_report(std::size_t ap, wire::ApReport& report,
                              backend::Tunnel& tunnel, Rng& rng) {
  if (!enabled_ || ap >= states_.size()) return;
  advance(ap, report.timestamp_us, tunnel);

  // Skyscraper environments: scan reports hear hundreds of foreign BSSes.
  // Only reports that carry a neighbor table (MR16/MR18 scans) inflate.
  if (plan_.schedule(ap).skyscraper && !report.neighbors.empty()) {
    report.neighbors.reserve(report.neighbors.size() + spec_.skyscraper_neighbors);
    for (std::size_t i = 0; i < spec_.skyscraper_neighbors; ++i) {
      wire::NeighborBss bss;
      // Locally-administered MACs: synthetic, never colliding with OUIs.
      bss.bssid = MacAddress::from_u64(0x020000000000ULL | (rng.next_u64() & 0xFFFFFFFFFFULL));
      bss.band = 0;
      bss.channel = static_cast<std::int32_t>(1 + 5 * rng.uniform_int(0, 2));  // 1/6/11
      bss.rssi_dbm = rng.uniform(-88.0, -40.0);
      bss.is_hotspot = rng.chance(0.2);
      bss.is_same_fleet = false;
      report.neighbors.push_back(bss);
    }
  }

  // §6.1: the neighbor table outgrows the 64 MB box and the AP OOM-reboots,
  // taking its unsent telemetry with it.
  if (spec_.oom_neighbor_threshold > 0 &&
      report.neighbors.size() > spec_.oom_neighbor_threshold) {
    reboot_now(ap, states_[ap], tunnel, report.timestamp_us);
    ++oom_reboots_;
    if (metrics_) metrics_->counter("wlm_fault_oom_reboots_total").inc();
  }
}

void FaultInjector::on_frame(std::vector<std::uint8_t>& frame, Rng& rng) {
  if (!enabled_ || spec_.corrupt_probability <= 0.0) return;
  if (!rng.chance(spec_.corrupt_probability)) return;
  const auto range = wire::frame_payload_range(frame);
  if (!range || range->second <= range->first) return;
  const auto offset = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(range->first),
                      static_cast<std::int64_t>(range->second) - 1));
  frame[offset] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
  ++frames_corrupted_;
  if (metrics_) metrics_->counter("wlm_fault_frames_corrupted_total").inc();
}

void FaultInjector::on_harvest(std::size_t ap, backend::Tunnel& tunnel,
                               bool final_catch_up) {
  if (!enabled_ || ap >= states_.size()) return;
  advance(ap, FaultPlan::horizon().as_micros(), tunnel);
  if (final_catch_up) {
    ApState& state = states_[ap];
    if (state.in_outage && recorder_) {
      // The outage was still open at the horizon; close its span there so
      // the window's true extent survives in the trace.
      recorder_->record({telemetry::SpanKind::kOutage, entity_of(ap),
                         state.outage_start_us, FaultPlan::horizon().as_micros(), 0});
    }
    state.in_outage = false;
    tunnel.reconnect();
  }
}

bool FaultInjector::in_outage(std::size_t ap) const {
  return enabled_ && ap < states_.size() && states_[ap].in_outage;
}

std::vector<FaultInjector::ApCursor> FaultInjector::cursor_states() const {
  std::vector<ApCursor> out;
  out.reserve(states_.size());
  for (const ApState& s : states_) {
    out.push_back({static_cast<std::uint64_t>(s.cursor), s.clock, s.in_outage,
                   s.outage_start_us});
  }
  return out;
}

bool FaultInjector::restore(const std::vector<ApCursor>& cursors,
                            std::uint64_t reboots_applied, std::uint64_t oom_reboots,
                            std::uint64_t frames_corrupted) {
  if (cursors.size() != states_.size()) return false;
  for (std::size_t ap = 0; ap < cursors.size(); ++ap) {
    if (cursors[ap].cursor > plan_.schedule(ap).events.size()) return false;
  }
  for (std::size_t ap = 0; ap < cursors.size(); ++ap) {
    const ApCursor& c = cursors[ap];
    states_[ap] = {static_cast<std::size_t>(c.cursor), c.clock, c.in_outage,
                   c.outage_start_us};
  }
  reboots_applied_ = reboots_applied;
  oom_reboots_ = oom_reboots;
  frames_corrupted_ = frames_corrupted;
  return true;
}

}  // namespace wlm::fault
