// Applies a FaultPlan to a shard's tunnels as campaigns generate telemetry.
//
// The injector is shard-confined, like everything else a campaign touches:
// NetworkShard owns one, hands it each report on the way to the tunnel, and
// lets it advance that AP's fault clock — WAN outage transitions disconnect
// and reconnect the tunnel, reboots flush its queued frames (the loss the
// §6.1 OOM story is about), and wire corruption flips payload bits so the
// poller's CRC path runs under load. All randomness comes from the shard's
// own stream, so scenarios replay bit-identically at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/tunnel.hpp"
#include "core/rng.hpp"
#include "fault/plan.hpp"
#include "fault/spec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "wire/messages.hpp"

namespace wlm::fault {

class FaultInjector {
 public:
  /// A disabled injector: every hook is a no-op.
  FaultInjector() = default;
  FaultInjector(const FaultSpec& spec, FaultPlan plan);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Points the injector at its shard's telemetry sinks (neither owned; both
  /// may be null). `ap_entities` maps shard-local AP index to the globally
  /// unique AP id, so outage/reboot spans carry the same entity the rest of
  /// the fleet's telemetry uses; an unmapped index falls back to the raw
  /// index.
  void bind_telemetry(telemetry::MetricsRegistry* metrics,
                      telemetry::FlightRecorder* recorder,
                      std::vector<std::uint64_t> ap_entities);

  /// Advances AP `ap`'s fault clock to `t_us`, applying every scheduled
  /// event in between to its tunnel. Idempotent for t <= the clock.
  void advance(std::size_t ap, std::int64_t t_us, backend::Tunnel& tunnel);

  /// Per-report hook, before framing: advances the clock to the report's
  /// timestamp, inflates skyscraper neighbor tables, and raises the OOM
  /// reboot when the table crosses the threshold.
  void on_report(std::size_t ap, wire::ApReport& report, backend::Tunnel& tunnel, Rng& rng);

  /// Per-frame hook, after framing: maybe flips bits inside the payload
  /// (never the header — a corrupt length would desynchronize the stream
  /// instead of exercising the CRC path).
  void on_frame(std::vector<std::uint8_t>& frame, Rng& rng);

  /// Harvest-time hook: drives the schedule to the horizon. With
  /// `final_catch_up` the tunnel reconnects regardless (the paper's §2
  /// catch-up contract); without it, an AP whose outage is still open stays
  /// unreachable — that is what "offline" looks like from the backend.
  void on_harvest(std::size_t ap, backend::Tunnel& tunnel, bool final_catch_up);

  /// True if AP `ap` is inside a WAN outage at its current clock.
  [[nodiscard]] bool in_outage(std::size_t ap) const;

  // Telemetry for tests and scenario summaries.
  [[nodiscard]] std::uint64_t reboots_applied() const { return reboots_applied_; }
  [[nodiscard]] std::uint64_t oom_reboots() const { return oom_reboots_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return frames_corrupted_; }

  /// The plan this injector is executing (empty for a disabled injector).
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// One AP's position in its schedule — everything advance() mutates.
  /// Mirrors the private ApState so checkpoints capture open outages exactly.
  struct ApCursor {
    std::uint64_t cursor = 0;
    std::int64_t clock = -1;
    bool in_outage = false;
    std::int64_t outage_start_us = 0;

    bool operator==(const ApCursor&) const = default;
  };

  [[nodiscard]] std::vector<ApCursor> cursor_states() const;

  /// Exact overwrite for checkpoint restore. Returns false (changing
  /// nothing) unless `cursors` matches the plan's AP count and every cursor
  /// is within its AP's schedule.
  bool restore(const std::vector<ApCursor>& cursors, std::uint64_t reboots_applied,
               std::uint64_t oom_reboots, std::uint64_t frames_corrupted);

 private:
  struct ApState {
    std::size_t cursor = 0;
    std::int64_t clock = -1;
    bool in_outage = false;
    /// Sim time the open outage began; valid only while `in_outage`.
    std::int64_t outage_start_us = 0;
  };

  void reboot_now(std::size_t ap, ApState& state, backend::Tunnel& tunnel,
                  std::int64_t t_us);
  [[nodiscard]] std::uint64_t entity_of(std::size_t ap) const;

  FaultSpec spec_;
  FaultPlan plan_;
  std::vector<ApState> states_;
  bool enabled_ = false;
  std::uint64_t reboots_applied_ = 0;
  std::uint64_t oom_reboots_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::FlightRecorder* recorder_ = nullptr;
  std::vector<std::uint64_t> ap_entities_;
};

}  // namespace wlm::fault
