#include "fault/loss_ledger.hpp"

#include <cstdio>

namespace wlm::fault {

LossLedger& LossLedger::merge(const LossLedger& other) {
  generated += other.generated;
  delivered += other.delivered;
  shed += other.shed;
  lost_reboot += other.lost_reboot;
  lost_corruption += other.lost_corruption;
  in_flight += other.in_flight;
  lost_supervision += other.lost_supervision;
  lost_mesh_partition += other.lost_mesh_partition;
  return *this;
}

std::string LossLedger::render() const {
  // The mesh bucket prints only when it holds anything: non-mesh runs keep
  // the historical one-liner byte for byte.
  char mesh[64] = "";
  if (lost_mesh_partition > 0) {
    std::snprintf(mesh, sizeof mesh, " + %llu lost-mesh-partition",
                  static_cast<unsigned long long>(lost_mesh_partition));
  }
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "loss ledger: %llu generated = %llu delivered (%.1f%%) + %llu shed + "
                "%llu lost-reboot + %llu lost-corruption + %llu in-flight + "
                "%llu lost-supervision%s [%s]",
                static_cast<unsigned long long>(generated),
                static_cast<unsigned long long>(delivered), 100.0 * delivery_ratio(),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(lost_reboot),
                static_cast<unsigned long long>(lost_corruption),
                static_cast<unsigned long long>(in_flight),
                static_cast<unsigned long long>(lost_supervision), mesh,
                conserved() ? "conserved" : "NOT CONSERVED");
  return buf;
}

}  // namespace wlm::fault
