#include "fault/loss_ledger.hpp"

#include <cstdio>

namespace wlm::fault {

LossLedger& LossLedger::merge(const LossLedger& other) {
  generated += other.generated;
  delivered += other.delivered;
  shed += other.shed;
  lost_reboot += other.lost_reboot;
  lost_corruption += other.lost_corruption;
  in_flight += other.in_flight;
  lost_supervision += other.lost_supervision;
  return *this;
}

std::string LossLedger::render() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "loss ledger: %llu generated = %llu delivered (%.1f%%) + %llu shed + "
                "%llu lost-reboot + %llu lost-corruption + %llu in-flight + "
                "%llu lost-supervision [%s]",
                static_cast<unsigned long long>(generated),
                static_cast<unsigned long long>(delivered), 100.0 * delivery_ratio(),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(lost_reboot),
                static_cast<unsigned long long>(lost_corruption),
                static_cast<unsigned long long>(in_flight),
                static_cast<unsigned long long>(lost_supervision),
                conserved() ? "conserved" : "NOT CONSERVED");
  return buf;
}

}  // namespace wlm::fault
