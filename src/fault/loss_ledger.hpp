// End-to-end loss accounting for fleet telemetry.
//
// Every report a device generates must end up in exactly one bucket:
// delivered (decoded into the backend store), shed (dropped by the bounded
// device-side queue), lost to a reboot (queue flushed by a power/OOM/firmware
// restart), lost to wire corruption (framing CRC or message decode failure),
// still in flight (queued on a tunnel the backend has not drained yet),
// lost to supervision (the work of a shard the failsafe layer quarantined —
// degradation accounted, never silent), or lost to a mesh partition (a
// WAN-less AP whose relay path was down — gateway in outage or no route —
// when the report would have entered the backhaul). The conservation
// invariant
//
//     generated == delivered + shed + lost_reboot + lost_corruption
//                  + in_flight + lost_supervision + lost_mesh_partition
//
// is structural: each counter is derived from the tunnel and poller
// statistics at the layer where the frame's fate is decided, so a violation
// means double- or under-counting somewhere in the pipeline, not a modelling
// choice. tests/fault/fault_injection_test.cpp enforces it under a mixed
// outage + reboot + corruption scenario.
#pragma once

#include <cstdint>
#include <string>

namespace wlm::fault {

struct LossLedger {
  std::uint64_t generated = 0;        // reports enqueued at devices
  std::uint64_t delivered = 0;        // decoded into the backend store
  std::uint64_t shed = 0;             // bounded-queue overflow (oldest-first)
  std::uint64_t lost_reboot = 0;      // queue flushed by an AP restart
  std::uint64_t lost_corruption = 0;  // framing CRC / message decode failure
  std::uint64_t in_flight = 0;        // still queued device-side
  std::uint64_t lost_supervision = 0; // shard quarantined by the failsafe layer
  std::uint64_t lost_mesh_partition = 0;  // relay path down (no gateway reachable)

  [[nodiscard]] std::uint64_t lost() const { return lost_reboot + lost_corruption; }
  [[nodiscard]] std::uint64_t accounted() const {
    return delivered + shed + lost_reboot + lost_corruption + in_flight +
           lost_supervision + lost_mesh_partition;
  }
  [[nodiscard]] bool conserved() const { return generated == accounted(); }
  [[nodiscard]] double delivery_ratio() const {
    return generated == 0 ? 1.0
                          : static_cast<double>(delivered) / static_cast<double>(generated);
  }

  LossLedger& merge(const LossLedger& other);

  /// One-line human-readable summary (wlmctl, examples).
  [[nodiscard]] std::string render() const;

  bool operator==(const LossLedger&) const = default;
};

}  // namespace wlm::fault
