#include "fault/plan.hpp"

#include <algorithm>

namespace wlm::fault {

namespace {

struct Interval {
  std::int64_t start;
  std::int64_t end;
};

/// Merges overlapping outage intervals into a disjoint, sorted set so the
/// event stream alternates strictly Start/End.
std::vector<Interval> merge_intervals(std::vector<Interval> raw) {
  std::sort(raw.begin(), raw.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> merged;
  for (const auto& iv : raw) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace

FaultPlan FaultPlan::build(const FaultSpec& raw_spec, Rng rng, std::size_t ap_count) {
  const FaultSpec spec = raw_spec.clamped();
  const std::int64_t horizon_us = horizon().as_micros();

  FaultPlan plan;
  plan.schedules_.resize(ap_count);
  for (auto& schedule : plan.schedules_) {
    std::vector<Interval> outages;

    // Legacy one-shot flap: down from campaign start, never recovering
    // inside the horizon (final harvest reconnects and catches up).
    if (rng.chance(spec.flap_fraction)) {
      outages.push_back(Interval{0, horizon_us * 2});
    }
    // WAN outage process: Poisson count, uniform starts, exponential
    // durations (a long tail of multi-day outages at high means).
    const std::int64_t n_outages = rng.poisson(spec.outage_rate_per_week);
    for (std::int64_t i = 0; i < n_outages; ++i) {
      const auto start = static_cast<std::int64_t>(
          rng.uniform(0.0, static_cast<double>(horizon_us)));
      const auto duration_us = static_cast<std::int64_t>(
          rng.exponential(1.0 / (spec.outage_mean_hours * 3.6e9)));
      outages.push_back(Interval{start, start + std::max<std::int64_t>(duration_us, 1)});
    }

    std::vector<FaultEvent> events;
    for (const auto& iv : merge_intervals(std::move(outages))) {
      events.push_back(FaultEvent{iv.start, FaultEventType::kOutageStart});
      events.push_back(FaultEvent{iv.end, FaultEventType::kOutageEnd});
    }

    // Random power events.
    const std::int64_t n_reboots = rng.poisson(spec.reboot_rate_per_week);
    for (std::int64_t i = 0; i < n_reboots; ++i) {
      events.push_back(FaultEvent{
          static_cast<std::int64_t>(rng.uniform(0.0, static_cast<double>(horizon_us))),
          FaultEventType::kReboot});
    }
    // Firmware-upgrade wave: affected APs restart inside the wave hour.
    if (rng.chance(spec.firmware_wave_fraction)) {
      const double t_hours = spec.firmware_wave_hour + rng.uniform(0.0, 1.0);
      events.push_back(FaultEvent{static_cast<std::int64_t>(t_hours * 3.6e9),
                                  FaultEventType::kReboot});
    }

    schedule.skyscraper = rng.chance(spec.skyscraper_fraction);

    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.t_us < b.t_us; });
    schedule.events = std::move(events);
  }
  return plan;
}

std::size_t FaultPlan::total_outages() const {
  std::size_t n = 0;
  for (const auto& s : schedules_) {
    for (const auto& e : s.events) n += e.type == FaultEventType::kOutageStart;
  }
  return n;
}

std::size_t FaultPlan::total_reboots() const {
  std::size_t n = 0;
  for (const auto& s : schedules_) {
    for (const auto& e : s.events) n += e.type == FaultEventType::kReboot;
  }
  return n;
}

}  // namespace wlm::fault
