// Deterministic per-network fault schedules.
//
// A FaultPlan is drawn once, at shard construction, from a dedicated RNG
// substream keyed by the network id — never from the shard's campaign
// stream. Two consequences: (1) the same seed replays the same disruptions
// bit-identically at any thread count, and (2) enabling faults does not
// perturb the campaign's own draws, so a flap-only plan reproduces the
// legacy one-shot behavior exactly.
//
// The schedule for one AP is a time-sorted list of events over the one-week
// campaign horizon: WAN outage start/end transitions (merged into disjoint
// intervals; an outage may remain open past the horizon — the AP is then
// offline at week-end harvest), and reboot instants from random power
// events plus the firmware-upgrade wave. Dynamic events (the §6.1 OOM
// reboot) are not scheduled here; FaultInjector raises them when a report's
// neighbor table crosses the configured threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "fault/spec.hpp"

namespace wlm::fault {

enum class FaultEventType : std::uint8_t {
  kOutageStart,  // WAN down: tunnel disconnects, telemetry queues
  kOutageEnd,    // WAN restored: backend catches up on the next poll
  kReboot,       // power/firmware restart: queued telemetry is flushed
};

struct FaultEvent {
  std::int64_t t_us = 0;
  FaultEventType type = FaultEventType::kReboot;

  bool operator==(const FaultEvent&) const = default;
};

struct ApFaultSchedule {
  /// Sorted by time; outage intervals are disjoint. An OutageStart without a
  /// matching OutageEnd inside the horizon keeps the AP down through
  /// week-end harvest.
  std::vector<FaultEvent> events;
  /// Skyscraper-afflicted: scan reports gain extra audible networks.
  bool skyscraper = false;
};

class FaultPlan {
 public:
  /// Campaign horizon all schedules are drawn over.
  [[nodiscard]] static constexpr Duration horizon() { return Duration::days(7); }

  /// Draws a schedule for each of `ap_count` APs. `rng` must be a dedicated
  /// substream (see file comment); the plan consumes it in AP order.
  [[nodiscard]] static FaultPlan build(const FaultSpec& spec, Rng rng, std::size_t ap_count);

  /// Rebuilds a plan from explicit schedules (checkpoint round-trips and
  /// hand-crafted test scenarios).
  [[nodiscard]] static FaultPlan from_schedules(std::vector<ApFaultSchedule> schedules) {
    FaultPlan plan;
    plan.schedules_ = std::move(schedules);
    return plan;
  }

  [[nodiscard]] std::size_t ap_count() const { return schedules_.size(); }
  [[nodiscard]] const ApFaultSchedule& schedule(std::size_t ap) const {
    return schedules_[ap];
  }

  // Aggregate counts, for tests and scenario summaries.
  [[nodiscard]] std::size_t total_outages() const;
  [[nodiscard]] std::size_t total_reboots() const;

 private:
  std::vector<ApFaultSchedule> schedules_;
};

}  // namespace wlm::fault
