#include "fault/spec.hpp"

#include <cmath>
#include <cstdlib>

namespace wlm::fault {

namespace {

double clamp01(double v, double fallback = 0.0) {
  if (std::isnan(v)) return fallback;
  if (v < 0.0) return 0.0;
  if (v > 1.0) return 1.0;
  return v;
}

double clamp_nonneg(double v, double fallback) {
  if (std::isnan(v) || std::isinf(v)) return fallback;
  return v < 0.0 ? 0.0 : v;
}

/// Strict double parse: the whole token must be consumed.
std::optional<double> parse_double(std::string_view text) {
  const std::string s(text);
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::size_t> parse_size(std::string_view text) {
  const auto v = parse_double(text);
  if (!v || *v < 0.0 || *v != std::floor(*v) || *v > 1e12) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

}  // namespace

bool FaultSpec::enabled() const {
  return flap_fraction > 0.0 || outage_rate_per_week > 0.0 || reboot_rate_per_week > 0.0 ||
         firmware_wave_fraction > 0.0 || corrupt_probability > 0.0 ||
         oom_neighbor_threshold > 0 || skyscraper_fraction > 0.0;
}

FaultSpec FaultSpec::clamped() const {
  const FaultSpec defaults;
  FaultSpec out = *this;
  out.flap_fraction = clamp01(flap_fraction);
  out.outage_rate_per_week = clamp_nonneg(outage_rate_per_week, 0.0);
  out.outage_mean_hours = clamp_nonneg(outage_mean_hours, defaults.outage_mean_hours);
  if (out.outage_mean_hours <= 0.0) out.outage_mean_hours = defaults.outage_mean_hours;
  out.reboot_rate_per_week = clamp_nonneg(reboot_rate_per_week, 0.0);
  out.firmware_wave_fraction = clamp01(firmware_wave_fraction);
  out.firmware_wave_hour = clamp_nonneg(firmware_wave_hour, defaults.firmware_wave_hour);
  if (out.firmware_wave_hour > 7.0 * 24.0) out.firmware_wave_hour = defaults.firmware_wave_hour;
  out.corrupt_probability = clamp01(corrupt_probability);
  out.skyscraper_fraction = clamp01(skyscraper_fraction);
  if (out.tunnel_queue_limit == 0) out.tunnel_queue_limit = 1;
  return out;
}

std::optional<FaultSpec> FaultSpec::parse(std::string_view text, std::string* error) {
  FaultSpec spec;
  auto fail = [&](const std::string& why) -> std::optional<FaultSpec> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view pair = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;

    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected key=value, got '" + std::string(pair) + "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    const auto num = parse_double(value);
    if (!num) return fail("bad value for '" + std::string(key) + "': '" +
                          std::string(value) + "'");
    auto fraction = [&](double v) -> std::optional<double> {
      if (std::isnan(v) || v < 0.0 || v > 1.0) return std::nullopt;
      return v;
    };
    auto nonneg = [&](double v) -> std::optional<double> {
      if (std::isnan(v) || std::isinf(v) || v < 0.0) return std::nullopt;
      return v;
    };

    if (key == "flap") {
      const auto v = fraction(*num);
      if (!v) return fail("flap must be a fraction in [0,1]");
      spec.flap_fraction = *v;
    } else if (key == "outage_rate") {
      const auto v = nonneg(*num);
      if (!v) return fail("outage_rate must be >= 0");
      spec.outage_rate_per_week = *v;
    } else if (key == "outage_hours") {
      const auto v = nonneg(*num);
      if (!v || *v == 0.0) return fail("outage_hours must be > 0");
      spec.outage_mean_hours = *v;
    } else if (key == "reboot_rate") {
      const auto v = nonneg(*num);
      if (!v) return fail("reboot_rate must be >= 0");
      spec.reboot_rate_per_week = *v;
    } else if (key == "fw_wave") {
      const auto v = fraction(*num);
      if (!v) return fail("fw_wave must be a fraction in [0,1]");
      spec.firmware_wave_fraction = *v;
    } else if (key == "fw_hour") {
      const auto v = nonneg(*num);
      if (!v || *v > 7.0 * 24.0) return fail("fw_hour must be within [0,168]");
      spec.firmware_wave_hour = *v;
    } else if (key == "corrupt") {
      const auto v = fraction(*num);
      if (!v) return fail("corrupt must be a probability in [0,1]");
      spec.corrupt_probability = *v;
    } else if (key == "oom_threshold") {
      const auto n = parse_size(value);
      if (!n) return fail("oom_threshold must be a non-negative integer");
      spec.oom_neighbor_threshold = *n;
    } else if (key == "skyscraper") {
      const auto v = fraction(*num);
      if (!v) return fail("skyscraper must be a fraction in [0,1]");
      spec.skyscraper_fraction = *v;
    } else if (key == "skyscraper_neighbors") {
      const auto n = parse_size(value);
      if (!n) return fail("skyscraper_neighbors must be a non-negative integer");
      spec.skyscraper_neighbors = *n;
    } else if (key == "queue") {
      const auto n = parse_size(value);
      if (!n || *n == 0) return fail("queue must be a positive integer");
      spec.tunnel_queue_limit = *n;
    } else {
      return fail("unknown fault key '" + std::string(key) +
                  "' (known: flap, outage_rate, outage_hours, reboot_rate, fw_wave, "
                  "fw_hour, corrupt, oom_threshold, skyscraper, skyscraper_neighbors, "
                  "queue)");
    }
  }
  return spec.clamped();
}

}  // namespace wlm::fault
