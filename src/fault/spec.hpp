// Fault-scenario configuration: which disruptions a campaign injects.
//
// Paper §6 is a catalogue of operational failures the system had to survive:
// WAN outages bridged by queue-and-catch-up (§2), the Manhattan-skyscraper
// neighbor-table OOM reboots (§6.1), and firmware-upgrade restart waves. A
// FaultSpec names those processes with rates and magnitudes; FaultPlan turns
// it into a concrete, deterministic per-AP schedule.
//
// All knobs are clamped to sane ranges by clamped() — out-of-range values
// from the CLI or config code degrade to the nearest legal value instead of
// silently misbehaving. parse() understands the `wlmctl --faults` mini
// language: comma-separated key=value pairs, e.g.
//   --faults "outage_rate=2,outage_hours=36,reboot_rate=1,corrupt=0.02"
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wlm::fault {

struct FaultSpec {
  /// Legacy one-shot WAN flap: this fraction of tunnels goes down at campaign
  /// start and stays down until harvest — the degenerate outage plan.
  double flap_fraction = 0.0;
  /// Poisson rate of WAN outages per AP per simulated week.
  double outage_rate_per_week = 0.0;
  /// Mean outage duration in hours (exponentially distributed).
  double outage_mean_hours = 4.0;
  /// Poisson rate of random power-event reboots per AP per week.
  double reboot_rate_per_week = 0.0;
  /// Fraction of the fleet swept by a firmware-upgrade restart wave.
  double firmware_wave_fraction = 0.0;
  /// Hour-of-week the firmware wave starts; each AP restarts at a random
  /// point inside the following hour (a rolling upgrade, not a thundering
  /// herd).
  double firmware_wave_hour = 60.0;
  /// Per-frame probability of wire-level corruption (bit flips in the framed
  /// payload, caught by the poller's CRC path).
  double corrupt_probability = 0.0;
  /// Neighbor-table size beyond which an AP OOM-reboots on its next report,
  /// flushing its queued telemetry (§6.1). 0 disables the trigger.
  std::size_t oom_neighbor_threshold = 0;
  /// Fraction of APs afflicted by a "skyscraper" environment: their scan
  /// reports carry this many extra audible networks (the §6.1 signature).
  double skyscraper_fraction = 0.0;
  std::size_t skyscraper_neighbors = 600;
  /// Device-side tunnel queue bound (frames). The paper's APs are 64 MB
  /// boxes; shrinking this models memory pressure and exercises shedding.
  std::size_t tunnel_queue_limit = 4096;

  /// True when any disruption process is active (queue limit alone is a
  /// capacity knob, not a disruption).
  [[nodiscard]] bool enabled() const;

  /// Returns a copy with every knob clamped to its legal range: fractions
  /// and probabilities to [0,1], rates and durations to non-negative finite
  /// values, the queue limit to at least 1. NaNs degrade to the default.
  [[nodiscard]] FaultSpec clamped() const;

  /// Parses the comma-separated key=value mini language. On failure returns
  /// nullopt and, if `error` is non-null, stores a one-line diagnostic
  /// naming the offending token.
  [[nodiscard]] static std::optional<FaultSpec> parse(std::string_view text,
                                                      std::string* error = nullptr);

  bool operator==(const FaultSpec&) const = default;
};

}  // namespace wlm::fault
