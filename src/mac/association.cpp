#include "mac/association.hpp"

#include <algorithm>

namespace wlm::mac {

std::optional<AssociationResult> select_bss(const std::vector<BssCandidate>& candidates,
                                            bool client_has_5ghz,
                                            const AssociationPolicy& policy, Rng& rng) {
  const BssCandidate* best24 = nullptr;
  const BssCandidate* best5 = nullptr;
  for (const auto& c : candidates) {
    if (c.rssi < policy.min_rssi) continue;
    if (c.band == phy::Band::k5GHz && !client_has_5ghz) continue;
    auto*& slot = c.band == phy::Band::k5GHz ? best5 : best24;
    if (slot == nullptr || c.rssi > slot->rssi) slot = &c;
  }
  const BssCandidate* pick = nullptr;
  if (best5 != nullptr && best5->rssi >= policy.prefer_5ghz_above) {
    // Usable 5 GHz; most dual-band clients take it, some stick to 2.4.
    pick = (best24 != nullptr && rng.chance(policy.sticky_2_4_prob)) ? best24 : best5;
  } else if (best24 != nullptr) {
    pick = best24;
  } else {
    pick = best5;  // weak 5 GHz beats nothing
  }
  if (pick == nullptr) return std::nullopt;
  return AssociationResult{pick->ap, pick->band, pick->rssi};
}

std::optional<AssociationResult> select_handoff(const std::vector<BssCandidate>& candidates,
                                                bool client_has_5ghz, ApId serving_ap,
                                                phy::Band serving_band, PowerDbm serving_rssi,
                                                const AssociationPolicy& policy) {
  const auto score = [&](phy::Band band, double rssi_dbm) {
    return rssi_dbm +
           (band == phy::Band::k5GHz && client_has_5ghz ? policy.band_steer_bonus_db : 0.0);
  };
  const BssCandidate* best = nullptr;
  double best_score = 0.0;
  for (const auto& c : candidates) {
    if (c.rssi < policy.min_rssi) continue;  // unusable — never a roam target
    if (c.band == phy::Band::k5GHz && !client_has_5ghz) continue;
    if (c.ap == serving_ap && c.band == serving_band) continue;  // that's us
    const double s = score(c.band, c.rssi.dbm());
    if (best == nullptr || s > best_score) {
      best = &c;
      best_score = s;
    }
  }
  if (best == nullptr) return std::nullopt;
  // Strict ">": an exact tie at the hysteresis margin (including the
  // equal-RSSI, zero-hysteresis corner) stays on the serving BSS.
  if (!(best_score > score(serving_band, serving_rssi.dbm()) + policy.handoff_hysteresis_db)) {
    return std::nullopt;
  }
  return AssociationResult{best->ap, best->band, best->rssi};
}

}  // namespace wlm::mac
