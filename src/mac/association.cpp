#include "mac/association.hpp"

#include <algorithm>

namespace wlm::mac {

std::optional<AssociationResult> select_bss(const std::vector<BssCandidate>& candidates,
                                            bool client_has_5ghz,
                                            const AssociationPolicy& policy, Rng& rng) {
  const BssCandidate* best24 = nullptr;
  const BssCandidate* best5 = nullptr;
  for (const auto& c : candidates) {
    if (c.rssi < policy.min_rssi) continue;
    if (c.band == phy::Band::k5GHz && !client_has_5ghz) continue;
    auto*& slot = c.band == phy::Band::k5GHz ? best5 : best24;
    if (slot == nullptr || c.rssi > slot->rssi) slot = &c;
  }
  const BssCandidate* pick = nullptr;
  if (best5 != nullptr && best5->rssi >= policy.prefer_5ghz_above) {
    // Usable 5 GHz; most dual-band clients take it, some stick to 2.4.
    pick = (best24 != nullptr && rng.chance(policy.sticky_2_4_prob)) ? best24 : best5;
  } else if (best24 != nullptr) {
    pick = best24;
  } else {
    pick = best5;  // weak 5 GHz beats nothing
  }
  if (pick == nullptr) return std::nullopt;
  return AssociationResult{pick->ap, pick->band, pick->rssi};
}

}  // namespace wlm::mac
