// Client association: band and AP selection.
//
// Paper §3.1 observes that although ~65% of clients are 5 GHz capable, 80%
// of associated clients sit on 2.4 GHz, "presumably due to greater
// attenuation at 5 GHz". This module models exactly that mechanism: clients
// evaluate per-band RSSI and only take 5 GHz when it clears a usability
// threshold, with a device-dependent stickiness to 2.4 GHz.
#pragma once

#include <optional>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "phy/channel.hpp"

namespace wlm::mac {

/// One candidate BSS as seen by the scanning client.
struct BssCandidate {
  ApId ap;
  phy::Band band = phy::Band::k2_4GHz;
  PowerDbm rssi;
};

struct AssociationPolicy {
  /// Minimum RSSI to consider a BSS usable at all.
  PowerDbm min_rssi{-88.0};
  /// Minimum 5 GHz RSSI before a dual-band client prefers it. 5 GHz
  /// attenuates harder indoors, so clients demand a solid signal before
  /// taking the upper band (this is what pins ~80% of associations to
  /// 2.4 GHz despite ~65% dual-band capability, paper §3.1).
  PowerDbm prefer_5ghz_above{-65.0};
  /// Probability a dual-band client nevertheless joins 2.4 GHz when both are
  /// usable (legacy drivers, band-scan order, power saving).
  double sticky_2_4_prob = 0.45;
  /// Roaming hysteresis: a rival BSS must beat the serving BSS by strictly
  /// more than this many dB before a moving client hands off. Strict ">"
  /// means an equal-RSSI tie never triggers a handoff (and neither does the
  /// serving BSS itself, which always scores a zero margin).
  double handoff_hysteresis_db = 6.0;
  /// Band-steering bonus credited to 5 GHz candidates during handoff
  /// evaluation only (infrastructure nudging dual-band clients up-band).
  /// 0 disables steering; it never applies to single-band clients.
  double band_steer_bonus_db = 0.0;
};

struct AssociationResult {
  ApId ap;
  phy::Band band = phy::Band::k2_4GHz;
  PowerDbm rssi;
};

/// Picks the BSS a client joins; nullopt when nothing clears min_rssi.
/// `client_has_5ghz` comes from the capability model (Table 4).
[[nodiscard]] std::optional<AssociationResult> select_bss(
    const std::vector<BssCandidate>& candidates, bool client_has_5ghz,
    const AssociationPolicy& policy, Rng& rng);

/// Mid-session handoff decision for a moving client: returns the BSS to
/// roam to, or nullopt to stay put. Deterministic — no RNG — so the
/// mobility layer's handoff sequence is a pure function of the RSSI trace.
///
/// Rules: candidates below min_rssi are unusable; the best usable rival
/// (by RSSI plus the 5 GHz band-steer bonus for dual-band clients) wins
/// only if it beats the serving BSS's score by STRICTLY more than
/// handoff_hysteresis_db. Consequences the boundary tests pin: an
/// equal-RSSI tie stays, a single-AP network never roams, and a client on
/// the cell edge (serving below min_rssi, nothing usable) stays rather
/// than flapping to an unusable BSS.
[[nodiscard]] std::optional<AssociationResult> select_handoff(
    const std::vector<BssCandidate>& candidates, bool client_has_5ghz,
    ApId serving_ap, phy::Band serving_band, PowerDbm serving_rssi,
    const AssociationPolicy& policy);

}  // namespace wlm::mac
