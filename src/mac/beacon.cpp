#include "mac/beacon.hpp"

#include <algorithm>
#include <cassert>

namespace wlm::mac {

std::int64_t beacon_airtime_us(bool legacy_11b) {
  const Frame f = make_beacon(MacAddress{}, legacy_11b);
  return f.airtime_us();
}

double beacon_duty_cycle(const std::vector<BeaconSource>& sources) {
  double duty = 0.0;
  for (const auto& s : sources) {
    assert(s.interval_us > 0);
    const double per_beacon = static_cast<double>(beacon_airtime_us(s.legacy_11b));
    duty += per_beacon * static_cast<double>(s.ssid_count) / static_cast<double>(s.interval_us);
  }
  return std::min(duty, 1.0);
}

BeaconSchedule::BeaconSchedule(std::int64_t interval_us, std::int64_t offset_us,
                               std::int64_t airtime_us)
    : interval_us_(interval_us), offset_us_(offset_us % interval_us), airtime_us_(airtime_us) {
  assert(interval_us > 0 && airtime_us >= 0 && airtime_us <= interval_us);
}

int BeaconSchedule::beacons_in_window(std::int64_t start_us, std::int64_t len_us) const {
  // Beacon k is on air during [offset + k*I, offset + k*I + airtime).
  // Count k with offset + k*I < start+len and offset + k*I + airtime > start.
  const std::int64_t end = start_us + len_us;
  // First k whose transmission has not finished by `start`:
  // k > (start - airtime - offset) / I.
  const auto floor_div = [](std::int64_t a, std::int64_t b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  const std::int64_t k_lo = floor_div(start_us - airtime_us_ - offset_us_, interval_us_) + 1;
  // Last k that starts before `end`: k <= (end - offset - 1) / I.
  const std::int64_t k_hi = floor_div(end - offset_us_ - 1, interval_us_);
  return static_cast<int>(std::max<std::int64_t>(0, k_hi - k_lo + 1));
}

std::int64_t BeaconSchedule::airtime_in_window(std::int64_t start_us, std::int64_t len_us) const {
  const std::int64_t end = start_us + len_us;
  const auto floor_div = [](std::int64_t a, std::int64_t b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  const std::int64_t k_lo = floor_div(start_us - airtime_us_ - offset_us_, interval_us_) + 1;
  const std::int64_t k_hi = floor_div(end - offset_us_ - 1, interval_us_);
  std::int64_t total = 0;
  for (std::int64_t k = k_lo; k <= k_hi; ++k) {
    const std::int64_t tx_start = offset_us_ + k * interval_us_;
    const std::int64_t tx_end = tx_start + airtime_us_;
    total += std::max<std::int64_t>(0, std::min(end, tx_end) - std::max(start_us, tx_start));
  }
  return total;
}

}  // namespace wlm::mac
