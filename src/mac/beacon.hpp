// Beacon airtime accounting.
//
// Paper §4.1: every nearby BSSID beacons each 102.4 ms, occupying 0.42 ms
// (OFDM) or 2.592 ms (802.11b) of airtime per beacon; virtual APs multiply
// the count. This module computes the resulting baseline duty cycle on a
// channel — the floor under which client traffic rides.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/frame.hpp"

namespace wlm::mac {

/// A beaconing network as seen on one channel.
struct BeaconSource {
  int ssid_count = 1;        // virtual APs broadcast one beacon per SSID
  bool legacy_11b = false;   // long-preamble DSSS beacons
  std::int64_t interval_us = kBeaconIntervalUs;
};

/// Airtime of one beacon of the given flavor, in microseconds.
[[nodiscard]] std::int64_t beacon_airtime_us(bool legacy_11b);

/// Fraction of channel time consumed by a set of beacon sources. Caps at 1.
[[nodiscard]] double beacon_duty_cycle(const std::vector<BeaconSource>& sources);

/// Deterministic beacon schedule used by the scanning radio to decide how
/// many beacons fall inside a dwell window (paper §5: 5 ms dwells).
class BeaconSchedule {
 public:
  /// `offset_us` is the TBTT phase of this BSS within its interval.
  BeaconSchedule(std::int64_t interval_us, std::int64_t offset_us, std::int64_t airtime_us);

  /// Number of beacon transmissions overlapping [start, start+len) at all.
  [[nodiscard]] int beacons_in_window(std::int64_t start_us, std::int64_t len_us) const;

  /// Total on-air microseconds of beacon transmission inside the window.
  [[nodiscard]] std::int64_t airtime_in_window(std::int64_t start_us, std::int64_t len_us) const;

 private:
  std::int64_t interval_us_;
  std::int64_t offset_us_;
  std::int64_t airtime_us_;
};

}  // namespace wlm::mac
