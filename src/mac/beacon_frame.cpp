#include "mac/beacon_frame.hpp"

#include <algorithm>

#include "core/checksum.hpp"

namespace wlm::mac {

bool BeaconFrame::is_11b_only() const {
  // OFDM rates are 6 Mb/s and up: 12+ in 500 kb/s units (rate & 0x7F).
  return !rates.empty() &&
         std::all_of(rates.begin(), rates.end(),
                     [](std::uint8_t r) { return (r & 0x7F) <= 22; });
}

std::vector<std::uint8_t> rates_11b() { return {0x82, 0x84, 0x8B, 0x96}; }

std::vector<std::uint8_t> rates_11g() {
  return {0x82, 0x84, 0x8B, 0x96, 0x0C, 0x12, 0x18, 0x24, 0x30, 0x48, 0x60, 0x6C};
}

namespace {

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_ie(std::vector<std::uint8_t>& out, std::uint8_t id,
            std::span<const std::uint8_t> payload) {
  out.push_back(id);
  out.push_back(static_cast<std::uint8_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

std::vector<std::uint8_t> encode_beacon_frame(const BeaconFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + frame.ssid.size());
  // Frame control: type=management(00), subtype=beacon(1000) -> 0x80 0x00.
  out.push_back(0x80);
  out.push_back(0x00);
  put_u16le(out, 0);  // duration
  const MacAddress da = broadcast_mac();
  for (auto o : da.octets()) out.push_back(o);  // DA
  for (auto o : frame.bssid.octets()) out.push_back(o);      // SA
  for (auto o : frame.bssid.octets()) out.push_back(o);      // BSSID
  put_u16le(out, 0);  // sequence control

  // Fixed parameters: timestamp (8), interval (2), capabilities (2).
  out.insert(out.end(), 8, 0);
  put_u16le(out, frame.interval_tus);
  std::uint16_t caps = 0;
  if (frame.ess) caps |= 0x0001;
  if (frame.privacy) caps |= 0x0010;
  put_u16le(out, caps);

  // IEs: SSID, supported rates, DS parameter set, optional HT caps.
  put_ie(out, 0,
         std::span<const std::uint8_t>(
             reinterpret_cast<const std::uint8_t*>(frame.ssid.data()),
             std::min<std::size_t>(frame.ssid.size(), 32)));
  if (!frame.rates.empty()) {
    // Supported Rates carries at most 8 entries; the remainder goes into
    // the Extended Supported Rates IE, exactly as 802.11g gear does.
    const std::size_t head = std::min<std::size_t>(frame.rates.size(), 8);
    put_ie(out, 1, std::span<const std::uint8_t>(frame.rates.data(), head));
    if (frame.rates.size() > head) {
      put_ie(out, 50,
             std::span<const std::uint8_t>(frame.rates.data() + head,
                                           frame.rates.size() - head));
    }
  }
  const std::uint8_t ds = static_cast<std::uint8_t>(frame.channel);
  put_ie(out, 3, std::span<const std::uint8_t>(&ds, 1));
  if (frame.has_ht) {
    std::uint8_t ht[26] = {};
    ht[0] = 0x2C;  // plausible HT capability info LSB
    put_ie(out, 45, ht);
  }

  // FCS over the whole frame.
  const std::uint32_t fcs = crc32(out);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(fcs >> (8 * i)));
  return out;
}

std::optional<BeaconFrame> parse_beacon_frame(std::span<const std::uint8_t> data) {
  // Header(24) + fixed(12) minimum, plus FCS(4).
  if (data.size() < 24 + 12 + 4) return std::nullopt;
  if (data[0] != 0x80 || data[1] != 0x00) return std::nullopt;

  // Verify the FCS: a frame whose checksum fails was not "decodable".
  const std::size_t body = data.size() - 4;
  std::uint32_t fcs = 0;
  for (int i = 3; i >= 0; --i) fcs = (fcs << 8) | data[body + static_cast<std::size_t>(i)];
  if (crc32(data.first(body)) != fcs) return std::nullopt;

  BeaconFrame frame;
  std::uint64_t bssid = 0;
  for (int i = 0; i < 6; ++i) bssid = (bssid << 8) | data[16 + static_cast<std::size_t>(i)];
  frame.bssid = MacAddress::from_u64(bssid);
  frame.interval_tus = static_cast<std::uint16_t>(data[32] | (data[33] << 8));
  const std::uint16_t caps = static_cast<std::uint16_t>(data[34] | (data[35] << 8));
  frame.ess = (caps & 0x0001) != 0;
  frame.privacy = (caps & 0x0010) != 0;

  frame.has_ht = false;
  std::size_t pos = 36;
  while (pos + 2 <= body) {
    const std::uint8_t id = data[pos];
    const std::uint8_t len = data[pos + 1];
    pos += 2;
    if (pos + len > body) break;  // truncated IE
    const auto payload = data.subspan(pos, len);
    pos += len;
    switch (id) {
      case 0:
        frame.ssid.assign(payload.begin(), payload.end());
        break;
      case 1:
        frame.rates.assign(payload.begin(), payload.end());
        break;
      case 50:  // Extended Supported Rates continues the list
        frame.rates.insert(frame.rates.end(), payload.begin(), payload.end());
        break;
      case 3:
        if (len == 1) frame.channel = payload[0];
        break;
      case 45:
        frame.has_ht = true;
        break;
      default:
        break;
    }
  }
  return frame;
}

}  // namespace wlm::mac
