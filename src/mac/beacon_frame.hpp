// 802.11 beacon frame codec: management-frame header, fixed parameters, and
// the information elements a scanner needs (SSID, supported rates, DS
// parameter set, HT capabilities). The scanning radio builds its neighbor
// table by parsing exactly these bytes off the air; this codec is the
// packet-level substrate under the neighbor reports of Table 7 / Figure 2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"

namespace wlm::mac {

struct BeaconFrame {
  MacAddress bssid;
  std::string ssid;                 // empty = hidden network
  int channel = 1;                  // DS parameter set
  std::uint16_t interval_tus = 100; // beacon interval in time units
  bool privacy = false;             // WEP/WPA bit in the capability field
  bool ess = true;                  // infrastructure (vs IBSS)
  /// Supported rates in 500 kb/s units (0x82 = basic 1 Mb/s, ...).
  std::vector<std::uint8_t> rates;
  bool has_ht = false;              // HT capabilities IE present (802.11n)

  /// True when only DSSS/CCK rates are advertised — the networks whose
  /// beacons occupy 2.592 ms of airtime (paper §4.1).
  [[nodiscard]] bool is_11b_only() const;
};

/// Rate sets used by the generator.
[[nodiscard]] std::vector<std::uint8_t> rates_11b();
[[nodiscard]] std::vector<std::uint8_t> rates_11g();

/// Serializes the beacon's MAC frame (header + fixed params + IEs + FCS).
[[nodiscard]] std::vector<std::uint8_t> encode_beacon_frame(const BeaconFrame& frame);

/// Parses a beacon frame; nullopt unless the frame-control says
/// management/beacon and the fixed parameters are intact. Unknown IEs are
/// skipped; a truncated IE list yields what was parsed.
[[nodiscard]] std::optional<BeaconFrame> parse_beacon_frame(
    std::span<const std::uint8_t> data);

}  // namespace wlm::mac
