#include "mac/frame.hpp"

#include <cstdio>

namespace wlm::mac {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kBeacon:
      return "beacon";
    case FrameType::kProbeRequest:
      return "probe-req";
    case FrameType::kProbeResponse:
      return "probe-resp";
    case FrameType::kData:
      return "data";
    case FrameType::kQosData:
      return "qos-data";
    case FrameType::kAck:
      return "ack";
    case FrameType::kLinkProbe:
      return "link-probe";
  }
  return "?";
}

int mac_overhead_bytes(FrameType t) {
  switch (t) {
    case FrameType::kAck:
      return 14;  // 10-byte header + FCS
    case FrameType::kQosData:
      return 30;  // 26-byte header (QoS control) + FCS
    default:
      return 28;  // 24-byte header + FCS
  }
}

std::int64_t Frame::airtime_us() const {
  return phy::airtime_us(modulation, total_bytes(), /*long_preamble=*/true);
}

std::string Frame::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s %s->%s %dB @%s", frame_type_name(type),
                source.to_string().c_str(), destination.to_string().c_str(), total_bytes(),
                phy::rate_info(modulation).name);
  return buf;
}

Frame make_link_probe(MacAddress source, bool band_5ghz) {
  Frame f;
  f.type = FrameType::kLinkProbe;
  f.source = source;
  f.destination = broadcast_mac();
  f.modulation = band_5ghz ? phy::Modulation::kOfdm6 : phy::Modulation::kDsss1;
  // 60 bytes total on air (paper §4.2) => payload is the remainder.
  f.payload_bytes = 60 - mac_overhead_bytes(FrameType::kLinkProbe);
  return f;
}

Frame make_beacon(MacAddress bssid, bool legacy_11b) {
  Frame f;
  f.type = FrameType::kBeacon;
  f.source = bssid;
  f.destination = broadcast_mac();
  if (legacy_11b) {
    // 2.592 ms total: 192 us PLCP + 2400 us payload at 1 Mb/s = 300 bytes.
    f.modulation = phy::Modulation::kDsss1;
    f.payload_bytes = 300 - mac_overhead_bytes(FrameType::kBeacon);
  } else {
    // ~0.42 ms at OFDM 6 Mb/s: 20 us PLCP + 100 symbols * 4 us.
    f.modulation = phy::Modulation::kOfdm6;
    f.payload_bytes = 270 - mac_overhead_bytes(FrameType::kBeacon);
  }
  return f;
}

}  // namespace wlm::mac
