// 802.11 frame model: types, header sizes, and airtime of the frames the
// measurement system cares about (beacons, probe broadcasts, data frames).
#pragma once

#include <cstdint>
#include <string>

#include "core/ids.hpp"
#include "core/units.hpp"
#include "phy/modulation.hpp"

namespace wlm::mac {

enum class FrameType : std::uint8_t {
  kBeacon,
  kProbeRequest,
  kProbeResponse,
  kData,
  kQosData,
  kAck,
  kLinkProbe,  // Meraki 60-byte mesh metric broadcast (paper §4.2)
};

[[nodiscard]] const char* frame_type_name(FrameType t);

/// MAC header + FCS bytes for a frame type (3-address data format).
[[nodiscard]] int mac_overhead_bytes(FrameType t);

struct Frame {
  FrameType type = FrameType::kData;
  MacAddress source;
  MacAddress destination;
  phy::Modulation modulation = phy::Modulation::kDsss1;
  int payload_bytes = 0;  // body, excluding MAC header/FCS

  /// Total on-air size including MAC header and FCS.
  [[nodiscard]] int total_bytes() const { return payload_bytes + mac_overhead_bytes(type); }
  /// On-air duration including PHY preamble/header.
  [[nodiscard]] std::int64_t airtime_us() const;

  [[nodiscard]] std::string to_string() const;
};

/// The Meraki link-metric probe: 60 bytes on air, broadcast, sent at 1 Mb/s
/// on 2.4 GHz radios and 6 Mb/s on 5 GHz radios.
[[nodiscard]] Frame make_link_probe(MacAddress source, bool band_5ghz);

/// A beacon for an SSID; 802.11b beacons occupy 2.592 ms of airtime,
/// 802.11a/g/n beacons about 0.42 ms (paper §4.1).
[[nodiscard]] Frame make_beacon(MacAddress bssid, bool legacy_11b);

/// Default beacon interval: 102.4 ms (100 TUs).
inline constexpr std::int64_t kBeaconIntervalUs = 102'400;

}  // namespace wlm::mac
