#include "mac/medium.hpp"

#include <algorithm>
#include <cmath>

namespace wlm::mac {

ChannelCounters& ChannelCounters::operator+=(const ChannelCounters& o) {
  cycle_us += o.cycle_us;
  busy_us += o.busy_us;
  rx_frame_us += o.rx_frame_us;
  tx_us += o.tx_us;
  return *this;
}

bool MediumObserver::senses(const ActivitySource& s) const {
  // 802.11 preambles assert carrier sense from -82 dBm; arbitrary energy
  // needs to clear the -62 dBm energy-detect threshold. Nothing below the
  // local noise floor + 6 dB is distinguishable from noise at all.
  if (s.rx_power.dbm() < noise_.dbm() + 6.0) return false;
  switch (s.kind) {
    case SourceKind::kWifi:
      return s.rx_power.dbm() >= kPreambleSenseDbm;
    case SourceKind::kWifiCorrupt:
    case SourceKind::kNonWifi:
      return s.rx_power.dbm() >= kEnergyDetectDbm ||
             // Strong-enough energy near the preamble threshold still trips
             // the rx-clear counters in practice on Atheros parts once it is
             // well above the noise floor.
             s.rx_power.dbm() >= noise_.dbm() + 16.0;
  }
  return false;
}

ChannelCounters MediumObserver::observe(Duration window,
                                        const std::vector<ActivitySource>& sources,
                                        double own_tx_duty) const {
  double idle_prob = 1.0;
  double decodable_duty = 0.0;
  double total_duty = 0.0;
  for (const auto& s : sources) {
    if (!senses(s)) continue;
    const double d = std::clamp(s.duty_cycle, 0.0, 1.0);
    idle_prob *= 1.0 - d;
    total_duty += d;
    if (s.kind == SourceKind::kWifi) {
      decodable_duty += d * std::clamp(s.plcp_decode_prob, 0.0, 1.0);
    }
  }
  const double busy_frac = 1.0 - idle_prob;
  const double decodable_share = total_duty > 0.0 ? decodable_duty / total_duty : 0.0;

  ChannelCounters c;
  c.cycle_us = window.as_micros();
  const double tx = std::clamp(own_tx_duty, 0.0, 1.0);
  c.tx_us = static_cast<std::int64_t>(tx * static_cast<double>(c.cycle_us));
  // Busy time is measured while not transmitting ourselves.
  const auto listen_us = static_cast<double>(c.cycle_us - c.tx_us);
  c.busy_us = static_cast<std::int64_t>(busy_frac * listen_us);
  c.rx_frame_us = static_cast<std::int64_t>(busy_frac * decodable_share * listen_us);
  return c;
}

ChannelCounters MediumObserver::observe_sampled(Duration window,
                                                const std::vector<ActivitySource>& sources,
                                                Rng& rng) const {
  // For a short dwell, each source is modeled as an alternating on/off
  // renewal process; we sample the fraction of the window it is on. With a
  // frame-scale on-period (~1 ms) and a 5 ms dwell, the on-time within the
  // window is roughly binomial over 5 slots — cheap and close enough.
  constexpr int kSlots = 16;
  const std::int64_t window_us = window.as_micros();
  std::vector<double> slot_busy(kSlots, 0.0);
  std::vector<double> slot_decodable(kSlots, 0.0);
  for (const auto& s : sources) {
    if (!senses(s)) continue;
    // Bursty sources are either absent from this window or concentrated:
    // the duty conditional on being active preserves the long-term mean.
    const double p_active = std::clamp(s.window_active_prob, 1e-6, 1.0);
    if (!rng.chance(p_active)) continue;
    const double d = std::clamp(s.duty_cycle / p_active, 0.0, 1.0);
    for (int i = 0; i < kSlots; ++i) {
      if (!rng.chance(d)) continue;
      slot_busy[static_cast<std::size_t>(i)] = 1.0;
      if (s.kind == SourceKind::kWifi && rng.chance(std::clamp(s.plcp_decode_prob, 0.0, 1.0))) {
        slot_decodable[static_cast<std::size_t>(i)] = 1.0;
      }
    }
  }
  double busy = 0.0;
  double decodable = 0.0;
  for (int i = 0; i < kSlots; ++i) {
    busy += slot_busy[static_cast<std::size_t>(i)];
    decodable += slot_decodable[static_cast<std::size_t>(i)];
  }
  ChannelCounters c;
  c.cycle_us = window_us;
  c.busy_us = static_cast<std::int64_t>(busy / kSlots * static_cast<double>(window_us));
  c.rx_frame_us = static_cast<std::int64_t>(decodable / kSlots * static_cast<double>(window_us));
  return c;
}

}  // namespace wlm::mac
