// Channel-occupancy model with Atheros-style microsecond counters.
//
// Paper §4.3/§5.3: the MR16/MR18 radios expose cycle counters measuring (a)
// how long the energy-detect/carrier-sense mechanism was triggered and (b)
// how long the radio spent receiving frames with intact 802.11 PLCP headers.
// This module reproduces those counters for a simulated channel observed by
// one radio: a set of activity sources (802.11 transmitters and non-WiFi
// interferers), each with a received power and duty cycle, is reduced to
// busy/decodable microsecond counts over a measurement window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "core/units.hpp"

namespace wlm::mac {

/// CCA thresholds from 802.11-2012 (20 MHz OFDM PHY): preamble detection at
/// -82 dBm and raw energy detection 20 dB above that.
inline constexpr double kPreambleSenseDbm = -82.0;
inline constexpr double kEnergyDetectDbm = -62.0;

/// Raw microsecond counters, matching the semantics of the Atheros
/// cycle/rx-clear/rx-frame registers the paper reads.
struct ChannelCounters {
  std::int64_t cycle_us = 0;     // measurement window length
  std::int64_t busy_us = 0;      // carrier-sense/energy-detect asserted
  std::int64_t rx_frame_us = 0;  // receiving decodable 802.11 (PLCP intact)
  std::int64_t tx_us = 0;        // own transmissions

  /// Channel utilization as the paper plots it (Figures 6/9).
  [[nodiscard]] double utilization() const {
    return cycle_us > 0 ? static_cast<double>(busy_us) / static_cast<double>(cycle_us) : 0.0;
  }
  /// Fraction of busy time with decodable 802.11 headers (Figure 10).
  [[nodiscard]] double decodable_fraction() const {
    return busy_us > 0 ? static_cast<double>(rx_frame_us) / static_cast<double>(busy_us) : 0.0;
  }

  ChannelCounters& operator+=(const ChannelCounters& o);
};

/// What kind of emitter an activity source is.
enum class SourceKind : std::uint8_t {
  kWifi,          // 802.11 frames; decodable if the PLCP header survives
  kWifiCorrupt,   // 802.11 energy whose preamble never decodes here (too weak
                  // or collided) — contributes to busy time only
  kNonWifi,       // Bluetooth, microwave ovens, analog video, ZigBee, ...
};

/// One emitter as seen at the observing radio on a specific channel.
struct ActivitySource {
  SourceKind kind = SourceKind::kWifi;
  PowerDbm rx_power;        // at the observer, after path + overlap rejection
  double duty_cycle = 0.0;  // long-term fraction of time on air, [0,1]
  double plcp_decode_prob = 1.0;  // for kWifi: chance a header decodes
  /// Traffic burstiness over short windows: the probability the source is
  /// active at all during one measurement window. 1.0 = steady (beacons);
  /// e.g. 0.25 = downloads happen in one window out of four, at 4x the
  /// long-term duty while they last. Expected busy time is unchanged; the
  /// window-to-window variance is what rises (the reason Figures 7/8 show
  /// no clean utilization-vs-AP-count relationship).
  double window_active_prob = 1.0;
};

/// Reduces a source set to expected counters over a window.
///
/// Sources are assumed independent in time, so the probability the medium is
/// sensed busy at a random instant is 1 - prod(1 - d_i) over the sources that
/// clear their sensing threshold. Decodable time divides the busy time in
/// proportion to the decodable sources' share of total duty.
class MediumObserver {
 public:
  /// `noise` sets the absolute floor; sources below both CCA thresholds and
  /// below noise+6dB are invisible.
  explicit MediumObserver(PowerDbm noise) : noise_(noise) {}

  /// Expected-value counters (deterministic; used for long aggregation
  /// windows where the law of large numbers holds).
  [[nodiscard]] ChannelCounters observe(Duration window,
                                        const std::vector<ActivitySource>& sources,
                                        double own_tx_duty = 0.0) const;

  /// Sampled counters for short windows (e.g. the MR18's 5 ms dwells) where
  /// a single beacon either lands in the window or does not.
  [[nodiscard]] ChannelCounters observe_sampled(Duration window,
                                                const std::vector<ActivitySource>& sources,
                                                Rng& rng) const;

  /// True if the source is strong enough to assert carrier sense here.
  [[nodiscard]] bool senses(const ActivitySource& s) const;

 private:
  PowerDbm noise_;
};

}  // namespace wlm::mac
