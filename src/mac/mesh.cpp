#include "mac/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wlm::mesh {

MeshConfig MeshConfig::clamped() const {
  MeshConfig c = *this;
  // NaN comparisons are false, so each test is phrased to catch NaN too.
  if (!(c.mesh_fraction > 0.0)) c.mesh_fraction = 0.0;
  if (c.mesh_fraction > 0.95) c.mesh_fraction = 0.95;
  c.max_hops = std::clamp(c.max_hops, 1, 16);
  if (!(c.relay_floor_dbm >= -100.0 && c.relay_floor_dbm <= -40.0)) {
    c.relay_floor_dbm = -88.0;
  }
  if (!(c.drift_sigma_db >= 0.0)) c.drift_sigma_db = 2.0;
  if (c.drift_sigma_db > 10.0) c.drift_sigma_db = 10.0;
  return c;
}

std::vector<RouteEntry> compute_routes(std::size_t n_aps,
                                       const std::vector<bool>& is_mesh,
                                       const std::vector<MeshEdge>& edges,
                                       const MeshConfig& config) {
  std::vector<RouteEntry> routes(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i) {
    RouteEntry& r = routes[i];
    r.is_gateway = i >= is_mesh.size() || !is_mesh[i];
    r.next_hop = static_cast<std::uint32_t>(i);
    r.gateway = static_cast<std::uint32_t>(i);
    if (!r.is_gateway) {
      r.routable = false;  // until BFS assigns a path below
      r.next_hop_rx_dbm = -200.0;
    }
  }

  // Out-adjacency, strongest usable edge per (from, to) pair: two bands can
  // connect the same AP pair, and the relay always picks the better one.
  std::vector<std::vector<MeshEdge>> out(n_aps);
  for (const MeshEdge& e : edges) {
    if (e.from >= n_aps || e.to >= n_aps || e.from == e.to) continue;
    if (!(e.rx_dbm >= config.relay_floor_dbm)) continue;  // also drops NaN
    auto& lane = out[e.from];
    const auto it = std::find_if(lane.begin(), lane.end(),
                                 [&](const MeshEdge& x) { return x.to == e.to; });
    if (it == lane.end()) {
      lane.push_back(e);
    } else if (e.rx_dbm > it->rx_dbm) {
      *it = e;
    }
  }

  // Multi-source BFS by increasing hop count. Scanning candidates in
  // ascending AP index with (strongest rx, lowest next-hop index) tie-breaks
  // makes the table a pure function of the inputs.
  std::vector<std::uint32_t> dist(n_aps, std::numeric_limits<std::uint32_t>::max());
  for (std::size_t i = 0; i < n_aps; ++i) {
    if (routes[i].is_gateway) dist[i] = 0;
  }
  for (int d = 0; d < config.max_hops; ++d) {
    bool assigned = false;
    for (std::size_t x = 0; x < n_aps; ++x) {
      if (dist[x] != std::numeric_limits<std::uint32_t>::max()) continue;
      const MeshEdge* best = nullptr;
      for (const MeshEdge& e : out[x]) {
        if (dist[e.to] != static_cast<std::uint32_t>(d)) continue;
        if (best == nullptr || e.rx_dbm > best->rx_dbm ||
            (e.rx_dbm == best->rx_dbm && e.to < best->to)) {
          best = &e;
        }
      }
      if (best == nullptr) continue;
      RouteEntry& r = routes[x];
      r.routable = true;
      r.next_hop = best->to;
      r.gateway = routes[best->to].gateway;
      r.hop_count = static_cast<std::uint32_t>(d + 1);
      r.next_hop_rx_dbm = best->rx_dbm;
      dist[x] = r.hop_count;
      assigned = true;
    }
    if (!assigned) break;
  }
  return routes;
}

double relay_rate_mbps(double rx_dbm) {
  // Coarse 802.11n single-stream MCS ladder (20 MHz, long GI). The exact
  // thresholds matter less than being monotone and deterministic.
  if (rx_dbm >= -65.0) return 65.0;
  if (rx_dbm >= -71.0) return 39.0;
  if (rx_dbm >= -77.0) return 26.0;
  if (rx_dbm >= -82.0) return 13.0;
  if (rx_dbm >= -86.0) return 6.5;
  return 1.0;
}

int relay_attempts(double rx_dbm) {
  if (rx_dbm >= -72.0) return 1;
  if (rx_dbm >= -79.0) return 2;
  if (rx_dbm >= -84.0) return 3;
  return 4;
}

std::uint64_t hop_airtime_us(std::size_t frame_bytes, double rx_dbm) {
  /// Fixed per-attempt MAC cost: DIFS + average backoff + PHY preamble +
  /// block-ack turnaround, rounded to a flat number.
  constexpr double kPerAttemptOverheadUs = 250.0;
  const double serialize_us =
      static_cast<double>(frame_bytes) * 8.0 / relay_rate_mbps(rx_dbm);
  const double total =
      static_cast<double>(relay_attempts(rx_dbm)) * (kPerAttemptOverheadUs + serialize_us);
  return static_cast<std::uint64_t>(total);
}

}  // namespace wlm::mesh
