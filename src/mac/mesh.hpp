// Multi-hop mesh backhaul: deterministic shortest-path routing from
// WAN-less APs to gateway APs over the per-network link budget graph.
//
// The paper's fleet assumes every AP has a wired uplink; real managed
// deployments relay telemetry over 802.11s-style wireless mesh to the few
// APs that do (the ngwmn 7x7-grid study measures exactly this regime:
// packet delivery ratio and delay as a function of hop count). This module
// supplies the routing layer: given which APs are mesh (no WAN) and the
// directed AP-to-AP link budgets, it computes one next-hop route per AP
// toward its nearest gateway, plus the per-hop airtime/retry cost model the
// shard uses to account relay delay.
//
// Determinism contract: route selection is a pure function of its inputs
// (ties broken by strongest receive power, then lowest AP index), and every
// random decision feeding those inputs — mesh-AP selection, per-phase
// shadowing drift — draws from a dedicated per-shard substream
// (seed ^ kMeshSeedSalt, keyed by network id, mirroring kFaultSeedSalt and
// mobility::kMobilitySeedSalt). A campaign with mesh disabled consumes
// exactly the same campaign randomness as before this module existed, so
// mesh-off runs stay byte-identical to historical output; mesh-on runs are
// byte-identical across any --jobs count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlm::mesh {

/// Salt separating the mesh substreams from the campaign, fault, and
/// mobility substreams; keyed by the network id below it.
inline constexpr std::uint64_t kMeshSeedSalt = 0xBACC4A07BACC4AULL;

/// Fleet-wide mesh backhaul knobs. `mesh_fraction == 0` (the default)
/// bypasses the module entirely: no routes, no relay accounting, no extra
/// randomness consumed.
struct MeshConfig {
  /// Fraction of APs with no WAN uplink that relay over the mesh. The
  /// lowest-indexed AP of every network is always a gateway, so a network
  /// never loses its last uplink.
  double mesh_fraction = 0.0;
  /// Longest usable relay path; APs farther than this from every gateway
  /// are partitioned (their reports land in lost_mesh_partition).
  int max_hops = 8;
  /// Weakest drifted link a relay hop will use, dBm. Below it the edge is
  /// not part of the routing graph at all.
  double relay_floor_dbm = -88.0;
  /// Sigma of the per-link shadowing drift (dB) drawn at every campaign
  /// phase boundary before routes are recomputed. 0 freezes the topology.
  double drift_sigma_db = 2.0;

  [[nodiscard]] bool enabled() const { return mesh_fraction > 0.0; }

  /// Degrades every knob to the nearest legal value (NaN/negative fraction,
  /// zero hops, out-of-range floor) instead of producing nonsense.
  [[nodiscard]] MeshConfig clamped() const;
};

/// One AP's routing decision. Indices are positions in the shard's aps_
/// vector (stable within a campaign), not ApId values.
struct RouteEntry {
  /// True when the AP has a WAN uplink and terminates relay paths.
  bool is_gateway = true;
  /// False for a mesh AP with no usable path to any gateway this phase.
  bool routable = true;
  /// Next relay toward the gateway; self for gateways and unroutable APs.
  std::uint32_t next_hop = 0;
  /// Terminal gateway of this AP's path; self for gateways.
  std::uint32_t gateway = 0;
  /// Relay hops to the gateway; 0 for gateways and unroutable APs.
  std::uint32_t hop_count = 0;
  /// Drifted receive power on the chosen first-hop edge, dBm (0 when none).
  double next_hop_rx_dbm = 0.0;

  bool operator==(const RouteEntry&) const = default;
};

/// One directed candidate edge of the routing graph: `from` transmits,
/// `to` receives at `rx_dbm` (already including this phase's drift).
struct MeshEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double rx_dbm = -200.0;
};

/// Deterministic multi-source BFS from every gateway: each mesh AP gets the
/// hop-minimal route, ties broken by strongest rx_dbm then lowest next-hop
/// index. Edges below config.relay_floor_dbm are ignored; APs beyond
/// config.max_hops stay unroutable. Pure function — identical inputs yield
/// identical tables on any thread or host.
[[nodiscard]] std::vector<RouteEntry> compute_routes(std::size_t n_aps,
                                                     const std::vector<bool>& is_mesh,
                                                     const std::vector<MeshEdge>& edges,
                                                     const MeshConfig& config);

/// Effective relay PHY rate for a hop at `rx_dbm`, Mbit/s. A coarse
/// 802.11n single-stream ladder; deterministic (no draws), so per-hop
/// airtime is a pure function of frame size and link budget.
[[nodiscard]] double relay_rate_mbps(double rx_dbm);

/// Transmission attempts (1 + retries) a hop at `rx_dbm` spends per frame.
/// Weak links retry more; deterministic for the same reason as the rate.
[[nodiscard]] int relay_attempts(double rx_dbm);

/// Total airtime one relay hop spends on a `frame_bytes` frame at
/// `rx_dbm`: attempts x (fixed MAC overhead + serialization time).
[[nodiscard]] std::uint64_t hop_airtime_us(std::size_t frame_bytes, double rx_dbm);

}  // namespace wlm::mesh
