#include "mac/rate_control.hpp"

#include <algorithm>

namespace wlm::mac {

MinstrelController::MinstrelController(RateControlConfig config, Rng rng)
    : config_(config), rng_(rng) {
  for (const auto& info : phy::all_rates()) {
    if (config_.ofdm_only && !info.is_ofdm) continue;
    rates_.push_back(RateState{info.modulation, 0.5, 0});
  }
}

double MinstrelController::expected_throughput(const RateState& state) const {
  const double rate_mbps = phy::rate_info(state.modulation).rate.as_mbps();
  // A failed frame costs a retry at the same airtime; heavily lossy rates
  // are additionally penalized to avoid the classic EWMA 'high rate with
  // 30% delivery still wins' trap.
  const double p = state.ewma_success;
  if (p < 0.1) return 0.0;
  return rate_mbps * p;
}

phy::Modulation MinstrelController::select() {
  ++transmissions_;
  // Probe an under-sampled or random rate a fraction of the time.
  if (rng_.chance(config_.probe_fraction)) {
    ++probes_;
    // Prefer the least-recently-attempted rate for probing.
    const auto it = std::min_element(rates_.begin(), rates_.end(),
                                     [](const RateState& a, const RateState& b) {
                                       return a.attempts < b.attempts;
                                     });
    return it->modulation;
  }
  return best_rate();
}

phy::Modulation MinstrelController::best_rate() const {
  const RateState* best = &rates_.front();
  for (const auto& state : rates_) {
    if (expected_throughput(state) > expected_throughput(*best)) best = &state;
  }
  return best->modulation;
}

void MinstrelController::on_result(phy::Modulation rate, bool success) {
  for (auto& state : rates_) {
    if (state.modulation != rate) continue;
    ++state.attempts;
    state.ewma_success = config_.ewma_alpha * (success ? 1.0 : 0.0) +
                         (1.0 - config_.ewma_alpha) * state.ewma_success;
    return;
  }
}

double MinstrelController::delivery_estimate(phy::Modulation rate) const {
  for (const auto& state : rates_) {
    if (state.modulation == rate) return state.ewma_success;
  }
  return 0.0;
}

double simulate_throughput(MinstrelController& controller, double sinr_db,
                           int payload_bytes, int n, Rng& rng,
                           const phy::PerTableSet* tables) {
  const bool use_tables = tables != nullptr && tables->payload_bytes() == payload_bytes;
  double delivered_bits = 0.0;
  double airtime_us = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto rate = controller.select();
    // One uniform draw either way; chance_error(u) == (u < exact PER), so
    // the table path consumes the stream identically to rng.chance(per).
    const bool ok =
        use_tables
            ? !tables->table(rate).chance_error(sinr_db, rng.uniform())
            : !rng.chance(phy::packet_error_rate(rate, sinr_db, payload_bytes));
    controller.on_result(rate, ok);
    airtime_us += static_cast<double>(phy::airtime_us(rate, payload_bytes));
    if (ok) delivered_bits += static_cast<double>(payload_bytes) * 8.0;
  }
  return airtime_us > 0.0 ? delivered_bits / airtime_us : 0.0;  // bits/us == Mb/s
}

}  // namespace wlm::mac
