// Sampling-based transmit rate control in the style of minstrel (the
// controller the paper's Atheros-based APs actually ran). Related work the
// paper cites (Rodrig et al.) found bit-rate selection to be a first-order
// factor in observed network capacity; this controller is the substrate for
// studying that coupling in simulation.
//
// Per rate it keeps an EWMA of delivery probability and ranks rates by
// expected throughput (rate x P(success), with a retransmission penalty);
// a fraction of transmissions probe non-optimal rates so the table stays
// fresh as the channel moves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "phy/modulation.hpp"
#include "phy/per_table.hpp"

namespace wlm::mac {

struct RateControlConfig {
  double ewma_alpha = 0.25;     // weight of the newest observation
  double probe_fraction = 0.1;  // share of transmissions used for sampling
  bool ofdm_only = false;       // 5 GHz radios have no DSSS rates
};

class MinstrelController {
 public:
  explicit MinstrelController(RateControlConfig config, Rng rng);

  /// Rate for the next transmission (occasionally a probe).
  [[nodiscard]] phy::Modulation select();

  /// Feedback from the MAC: did the frame (eventually) get ACKed at `rate`?
  void on_result(phy::Modulation rate, bool success);

  /// Current throughput-optimal rate (never a probe).
  [[nodiscard]] phy::Modulation best_rate() const;

  /// Estimated delivery probability of a rate.
  [[nodiscard]] double delivery_estimate(phy::Modulation rate) const;

  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }

 private:
  struct RateState {
    phy::Modulation modulation;
    double ewma_success = 0.5;  // optimistic-neutral prior
    std::uint64_t attempts = 0;
  };

  [[nodiscard]] double expected_throughput(const RateState& state) const;

  RateControlConfig config_;
  Rng rng_;
  std::vector<RateState> rates_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t probes_ = 0;
};

/// Convenience: simulate `n` transmissions of `payload_bytes` frames over a
/// channel at the given SINR and report the mean achieved throughput in
/// Mb/s (successful payload bits over total airtime). When `tables` is
/// supplied (and built for this payload size) per-frame loss draws go
/// through the guarded SINR->PER lookup — bit-identical outcomes, no
/// pow/erfc in the loop.
[[nodiscard]] double simulate_throughput(MinstrelController& controller, double sinr_db,
                                         int payload_bytes, int n, Rng& rng,
                                         const phy::PerTableSet* tables = nullptr);

}  // namespace wlm::mac
