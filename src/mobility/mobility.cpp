#include "mobility/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/diurnal.hpp"

namespace wlm::mobility {

MobilityConfig MobilityConfig::clamped() const {
  MobilityConfig c = *this;
  if (!(c.speed_mps > 0.0)) c.speed_mps = 1.1;  // also catches NaN
  c.speed_mps = std::min(c.speed_mps, 10.0);
  if (!(c.pause_mean_s >= 0.0)) c.pause_mean_s = 600.0;
  c.pause_mean_s = std::min(c.pause_mean_s, 1e6);
  if (c.steps_per_week < 1) c.steps_per_week = 168;
  c.steps_per_week = std::min(c.steps_per_week, 100'000);
  if (c.handoff_settle_steps < 1) c.handoff_settle_steps = 1;
  c.handoff_settle_steps = std::min(c.handoff_settle_steps, 100);
  if (!(c.handoff_hysteresis_db >= 0.0)) c.handoff_hysteresis_db = 6.0;
  c.handoff_hysteresis_db = std::min(c.handoff_hysteresis_db, 50.0);
  if (std::isnan(c.band_steer_bonus_db)) c.band_steer_bonus_db = 0.0;
  c.band_steer_bonus_db = std::clamp(c.band_steer_bonus_db, -20.0, 20.0);
  if (std::isnan(c.roam_probability)) c.roam_probability = 0.6;
  c.roam_probability = std::clamp(c.roam_probability, 0.0, 1.0);
  return c;
}

double occupancy(double hour_of_day, deploy::Industry industry) {
  // The diurnal curve averages ~1 over the day; treating half of it as an
  // on-site probability gives busy hours near-certain presence and night
  // hours the kMinOccupancy trickle.
  const double p = 0.5 * traffic::diurnal_multiplier(hour_of_day, industry);
  return std::clamp(p, kMinOccupancy, 1.0);
}

void advance(MotionState& m, double dt_s, const MobilityConfig& config,
             double width_m, double height_m, Rng& rng) {
  if (m.pause_s > 0.0) {
    m.pause_s = std::max(0.0, m.pause_s - dt_s);
    return;
  }
  const double dx = m.target.x - m.pos.x;
  const double dy = m.target.y - m.pos.y;
  const double dist = std::hypot(dx, dy);
  const double reach = config.speed_mps * dt_s;
  if (dist <= reach) {
    // Arrived (or parked at the initial pos==target state): dwell, then
    // pick the next waypoint uniformly inside the site.
    m.pos = m.target;
    m.target = phy::Position{rng.uniform(0.0, std::max(width_m, 0.0)),
                             rng.uniform(0.0, std::max(height_m, 0.0))};
    m.pause_s = config.pause_mean_s > 0.0
                    ? rng.exponential(1.0 / config.pause_mean_s)
                    : 0.0;
    return;
  }
  m.pos.x += dx / dist * reach;
  m.pos.y += dy / dist * reach;
}

}  // namespace wlm::mobility
