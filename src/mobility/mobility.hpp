// Client mobility: random-waypoint walks inside site geometry plus a
// day/night occupancy wave.
//
// The paper's backend aggregates usage by client MAC precisely because
// clients roam across APs during the week (§2.3). This module supplies the
// movement that exercises that path: each roaming client carries a motion
// state (position, waypoint target, pause timer) advanced in fixed simulated
// steps, and an occupancy wave layered on the diurnal curve decides whether
// the client is on-site and moving at a given hour.
//
// Determinism contract: every random decision here draws from a dedicated
// per-shard substream (seed ^ kMobilitySeedSalt, keyed by network id —
// mirroring the fault layer's kFaultSeedSalt). A campaign with mobility
// disabled consumes exactly the same campaign randomness as before this
// module existed, so mobility-off runs stay byte-identical to historical
// output; mobility-on runs are byte-identical across any --jobs count.
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "deploy/industry.hpp"
#include "phy/propagation.hpp"

namespace wlm::mobility {

/// Salt separating the mobility substreams from the campaign and fault
/// substreams; keyed by the network id below it (see sim::NetworkShard).
inline constexpr std::uint64_t kMobilitySeedSalt = 0x30B17E30B17E30ULL;

/// Fleet-wide mobility knobs. Defaults model an office walker: ~1.1 m/s
/// pace, ten-minute dwells, one motion/handoff evaluation per simulated
/// hour. `enabled == false` (the default) bypasses the module entirely.
struct MobilityConfig {
  bool enabled = false;
  /// Walk speed between waypoints, meters per second.
  double speed_mps = 1.1;
  /// Mean pause at a reached waypoint, seconds (exponentially distributed).
  double pause_mean_s = 600.0;
  /// Motion/handoff evaluations across the simulated week. 168 = hourly.
  int steps_per_week = 168;
  /// Consecutive steps a rival BSS must stay past the hysteresis margin
  /// before the handoff commits (debounce against shadowing flicker).
  int handoff_settle_steps = 2;
  /// dB margin a rival BSS must clear over the serving BSS (threaded into
  /// mac::AssociationPolicy::handoff_hysteresis_db for walk evaluations).
  double handoff_hysteresis_db = 6.0;
  /// Band-steering bonus credited to 5 GHz rivals during handoffs
  /// (mac::AssociationPolicy::band_steer_bonus_db); 0 disables steering.
  double band_steer_bonus_db = 0.0;
  /// Probability a mobile-class device (phone/tablet) roams at all —
  /// hoisted from the old hard-coded 0.6 in deploy::PopulationModel so
  /// scenario presets control it.
  double roam_probability = 0.6;

  /// Degrades every knob to the nearest legal value (NaN/negative speed,
  /// zero steps, out-of-range probability) instead of producing nonsense.
  [[nodiscard]] MobilityConfig clamped() const;
};

/// Per-client random-waypoint state. `pos == target` with no pause means
/// "pick a new waypoint on the next step", which is also the natural
/// initial condition (clients start parked at their drawn position).
struct MotionState {
  phy::Position pos{};
  phy::Position target{};
  /// Remaining dwell at the current waypoint, seconds.
  double pause_s = 0.0;
};

/// Probability the client is on-site and moving at `hour` of day, layered
/// on the industry's diurnal activity curve (offices empty out at night;
/// hospitality stays warm). Always within [kMinOccupancy, 1].
[[nodiscard]] double occupancy(double hour_of_day, deploy::Industry industry);

/// Floor of the occupancy wave: even at 3 a.m. a few devices wander
/// (cleaning crews, on-call staff), so roaming never fully freezes.
inline constexpr double kMinOccupancy = 0.05;

/// Advances one random-waypoint step of `dt_s` seconds inside the
/// [0, width] x [0, height] rectangle. Pauses burn down first; a reached
/// (or initial) waypoint draws a fresh uniform target and an exponential
/// pause from `rng`. Positions never leave the site.
void advance(MotionState& m, double dt_s, const MobilityConfig& config,
             double width_m, double height_m, Rng& rng);

}  // namespace wlm::mobility
