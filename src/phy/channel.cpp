#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wlm::phy {

const char* unii_name(Unii u) {
  switch (u) {
    case Unii::kNone:
      return "ISM 2.4";
    case Unii::kUnii1:
      return "UNII-1";
    case Unii::kUnii2:
      return "UNII-2";
    case Unii::kUnii2Ext:
      return "UNII-2e";
    case Unii::kUnii3:
      return "UNII-3";
  }
  return "?";
}

std::string Channel::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ch%d (%s, %.0f MHz)", number, band_name(band), center.mhz());
  return buf;
}

FrequencyMhz channel_center(Band band, int number) {
  if (band == Band::k2_4GHz) {
    if (number == 14) return FrequencyMhz{2484.0};
    return FrequencyMhz{2407.0 + 5.0 * number};
  }
  return FrequencyMhz{5000.0 + 5.0 * number};
}

namespace {

Channel make(Band band, int number, bool dfs, Unii unii) {
  return Channel{number, band, channel_center(band, number), ChannelWidth::k20MHz, dfs, unii};
}

std::vector<Channel> us_channels() {
  std::vector<Channel> v;
  for (int n = 1; n <= 11; ++n) v.push_back(make(Band::k2_4GHz, n, false, Unii::kNone));
  for (int n : {36, 40, 44, 48}) v.push_back(make(Band::k5GHz, n, false, Unii::kUnii1));
  for (int n : {52, 56, 60, 64}) v.push_back(make(Band::k5GHz, n, true, Unii::kUnii2));
  for (int n : {100, 104, 108, 112, 116, 120, 124, 128, 132, 136, 140}) {
    v.push_back(make(Band::k5GHz, n, true, Unii::kUnii2Ext));
  }
  for (int n : {149, 153, 157, 161, 165}) v.push_back(make(Band::k5GHz, n, false, Unii::kUnii3));
  return v;
}

}  // namespace

const ChannelPlan& ChannelPlan::us() {
  static const ChannelPlan plan{us_channels()};
  return plan;
}

std::vector<Channel> ChannelPlan::band_channels(Band band) const {
  std::vector<Channel> out;
  std::copy_if(channels_.begin(), channels_.end(), std::back_inserter(out),
               [band](const Channel& c) { return c.band == band; });
  return out;
}

std::vector<Channel> ChannelPlan::non_overlapping_2_4() const {
  std::vector<Channel> out;
  for (int n : {1, 6, 11}) {
    if (auto c = find(Band::k2_4GHz, n)) out.push_back(*c);
  }
  return out;
}

std::optional<Channel> ChannelPlan::find(Band band, int number) const {
  const auto it = std::find_if(channels_.begin(), channels_.end(), [&](const Channel& c) {
    return c.band == band && c.number == number;
  });
  if (it == channels_.end()) return std::nullopt;
  return *it;
}

double channel_overlap(const Channel& a, const Channel& b) {
  if (a.band != b.band) return 0.0;
  const double a_lo = a.center.mhz() - a.width_mhz() / 2.0;
  const double a_hi = a.center.mhz() + a.width_mhz() / 2.0;
  const double b_lo = b.center.mhz() - b.width_mhz() / 2.0;
  const double b_hi = b.center.mhz() + b.width_mhz() / 2.0;
  const double inter = std::min(a_hi, b_hi) - std::max(a_lo, b_lo);
  if (inter <= 0.0) return 0.0;
  return inter / a.width_mhz();
}

double adjacent_channel_rejection_db(const Channel& a, const Channel& b) {
  const double overlap = channel_overlap(a, b);
  if (overlap >= 0.999) return 0.0;
  if (overlap <= 0.0) return 200.0;  // disjoint: effectively infinite rejection
  // Energy from a partially overlapping transmitter falls off roughly with
  // the overlapped fraction; the OFDM spectral mask adds extra rolloff.
  return -10.0 * std::log10(overlap) + (1.0 - overlap) * 16.0;
}

}  // namespace wlm::phy
