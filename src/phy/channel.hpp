// 802.11 channel plans for the 2.4 GHz ISM band and the 5 GHz UNII bands,
// including the US (FCC Part 15) channel set the paper's access points used,
// DFS flags, and spectral-overlap computation between 20/40 MHz channels.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace wlm::phy {

enum class Band : std::uint8_t { k2_4GHz, k5GHz };

[[nodiscard]] constexpr const char* band_name(Band b) {
  return b == Band::k2_4GHz ? "2.4 GHz" : "5 GHz";
}

/// Sub-bands of the 5 GHz spectrum as described in paper §4.1.
enum class Unii : std::uint8_t {
  kNone,      // 2.4 GHz channel
  kUnii1,     // 36-48, lower band
  kUnii2,     // 52-64, middle band (DFS)
  kUnii2Ext,  // 100-140, extended band (DFS)
  kUnii3,     // 149-165, upper band
};

[[nodiscard]] const char* unii_name(Unii u);

enum class ChannelWidth : std::uint8_t { k20MHz = 20, k40MHz = 40 };

/// One assignable channel.
struct Channel {
  int number = 0;
  Band band = Band::k2_4GHz;
  FrequencyMhz center;
  ChannelWidth width = ChannelWidth::k20MHz;
  bool requires_dfs = false;
  Unii unii = Unii::kNone;

  [[nodiscard]] double width_mhz() const { return static_cast<double>(width); }
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Channel&) const = default;
};

/// The US regulatory channel plan (what the paper's fleet used).
class ChannelPlan {
 public:
  /// All 20 MHz channels: 2.4 GHz 1-11 plus the 5 GHz UNII channels.
  [[nodiscard]] static const ChannelPlan& us();

  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }
  [[nodiscard]] std::vector<Channel> band_channels(Band band) const;
  /// The three non-overlapping 2.4 GHz channels: 1, 6, 11.
  [[nodiscard]] std::vector<Channel> non_overlapping_2_4() const;
  [[nodiscard]] std::optional<Channel> find(Band band, int number) const;

 private:
  explicit ChannelPlan(std::vector<Channel> channels) : channels_(std::move(channels)) {}
  std::vector<Channel> channels_;
};

/// Center frequency for a channel number within a band (20 MHz grid).
[[nodiscard]] FrequencyMhz channel_center(Band band, int number);

/// Fraction of `a`'s occupied bandwidth that overlaps `b`'s, in [0,1].
/// Adjacent 2.4 GHz channels overlap partially (the reason channels 1/6/11
/// are the only clean choices); most 5 GHz channels do not overlap at all.
[[nodiscard]] double channel_overlap(const Channel& a, const Channel& b);

/// Attenuation applied to interference from a partially overlapping channel:
/// 0 dB co-channel, rising as overlap shrinks, +inf (represented as 200 dB)
/// when disjoint.
[[nodiscard]] double adjacent_channel_rejection_db(const Channel& a, const Channel& b);

}  // namespace wlm::phy
