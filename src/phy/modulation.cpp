#include "phy/modulation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm::phy {

namespace {

// Ordered from most to least robust.
const std::vector<RateInfo> kRates = {
    {Modulation::kDsss1, DataRate::mbps(1), "DSSS 1", 4.0, false},
    {Modulation::kDsss2, DataRate::mbps(2), "DSSS 2", 6.0, false},
    {Modulation::kCck5_5, DataRate::mbps(5.5), "CCK 5.5", 8.0, false},
    {Modulation::kCck11, DataRate::mbps(11), "CCK 11", 10.0, false},
    {Modulation::kOfdm6, DataRate::mbps(6), "OFDM 6", 5.0, true},
    {Modulation::kOfdm9, DataRate::mbps(9), "OFDM 9", 6.0, true},
    {Modulation::kOfdm12, DataRate::mbps(12), "OFDM 12", 7.5, true},
    {Modulation::kOfdm18, DataRate::mbps(18), "OFDM 18", 9.5, true},
    {Modulation::kOfdm24, DataRate::mbps(24), "OFDM 24", 12.5, true},
    {Modulation::kOfdm36, DataRate::mbps(36), "OFDM 36", 16.0, true},
    {Modulation::kOfdm48, DataRate::mbps(48), "OFDM 48", 20.0, true},
    {Modulation::kOfdm54, DataRate::mbps(54), "OFDM 54", 22.0, true},
};

// Hoisted out of q_function: sqrt(2) is correctly rounded, so dividing by
// the cached constant yields bit-identical results to recomputing it per
// call (pinned by phy tests).
const double kSqrt2 = std::sqrt(2.0);

double q_function(double x) { return 0.5 * std::erfc(x / kSqrt2); }

}  // namespace

const RateInfo& rate_info(Modulation m) {
  for (const auto& r : kRates) {
    if (r.modulation == m) return r;
  }
  assert(false && "unknown modulation");
  return kRates.front();
}

const std::vector<RateInfo>& all_rates() { return kRates; }

double bit_error_rate(Modulation m, double sinr_db) {
  // Eb/N0 = SINR * bandwidth / bitrate. 802.11 DSSS spreads 1-2 Mb/s over
  // 11 MHz of chip bandwidth (large processing gain); OFDM uses ~bitrate-
  // proportional occupied bandwidth, so SINR maps to Es/N0 per subcarrier.
  const double snr = std::pow(10.0, sinr_db / 10.0);
  switch (m) {
    case Modulation::kDsss1: {
      const double ebn0 = snr * 11.0;  // 11 chips/bit processing gain
      return q_function(std::sqrt(2.0 * ebn0 / 11.0 * 10.0));  // DBPSK approx
    }
    case Modulation::kDsss2: {
      const double ebn0 = snr * 5.5;
      return q_function(std::sqrt(ebn0));
    }
    case Modulation::kCck5_5:
      return q_function(std::sqrt(snr * 2.0));
    case Modulation::kCck11:
      return q_function(std::sqrt(snr));
    case Modulation::kOfdm6:  // BPSK r=1/2, ~5 dB coding gain
      return q_function(std::sqrt(2.0 * snr * 3.2));
    case Modulation::kOfdm9:
      return q_function(std::sqrt(2.0 * snr * 2.0));
    case Modulation::kOfdm12:  // QPSK r=1/2
      return q_function(std::sqrt(snr * 3.2));
    case Modulation::kOfdm18:
      return q_function(std::sqrt(snr * 2.0));
    case Modulation::kOfdm24:  // 16-QAM r=1/2
      return 0.75 * q_function(std::sqrt(snr / 5.0 * 3.2));
    case Modulation::kOfdm36:
      return 0.75 * q_function(std::sqrt(snr / 5.0 * 2.0));
    case Modulation::kOfdm48:  // 64-QAM r=2/3
      return (7.0 / 12.0) * q_function(std::sqrt(snr / 21.0 * 2.66));
    case Modulation::kOfdm54:
      return (7.0 / 12.0) * q_function(std::sqrt(snr / 21.0 * 2.0));
  }
  return 0.5;
}

double plcp_decode_probability(double sinr_db) {
  // The PLCP preamble/header is sent at the most robust modulation; model as
  // a 48-bit DBPSK-grade header with capture threshold near 3 dB.
  const double ber = bit_error_rate(Modulation::kDsss1, sinr_db);
  return std::pow(1.0 - ber, 48.0 * 4.0);
}

double packet_error_rate(Modulation m, double sinr_db, int payload_bytes) {
  const double ber = bit_error_rate(m, sinr_db);
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  const double payload_ok = std::pow(1.0 - ber, bits);
  return 1.0 - plcp_decode_probability(sinr_db) * payload_ok;
}

std::int64_t airtime_us(Modulation m, int payload_bytes, bool long_preamble) {
  const RateInfo& info = rate_info(m);
  if (!info.is_ofdm) {
    // 802.11b: long preamble 144 us + PLCP header 48 us (shipped at 1 Mb/s),
    // short variant halves the preamble and sends the header at 2 Mb/s.
    const std::int64_t plcp = long_preamble ? 144 + 48 : 72 + 24;
    return plcp + info.rate.micros_for_bits(static_cast<std::int64_t>(payload_bytes) * 8);
  }
  // 802.11a/g OFDM: 16 us preamble + 4 us SIGNAL, then 4 us symbols carrying
  // N_DBPS data bits each; SERVICE(16) + tail(6) bits are prepended/appended.
  const std::int64_t n_dbps = info.rate.kbps() * 4 / 1000;  // bits per 4 us symbol
  const std::int64_t bits = 16 + 6 + static_cast<std::int64_t>(payload_bytes) * 8;
  const std::int64_t symbols = (bits + n_dbps - 1) / n_dbps;
  return 16 + 4 + symbols * 4;
}

Modulation select_rate(double sinr_db, bool ofdm_only) {
  Modulation best = ofdm_only ? Modulation::kOfdm6 : Modulation::kDsss1;
  DataRate best_rate = rate_info(best).rate;
  for (const auto& r : kRates) {
    if (ofdm_only && !r.is_ofdm) continue;
    if (sinr_db >= r.sinr_threshold_db && r.rate > best_rate) {
      best = r.modulation;
      best_rate = r.rate;
    }
  }
  return best;
}

}  // namespace wlm::phy
