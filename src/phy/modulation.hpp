// 802.11 modulations: rate tables (DSSS/CCK, OFDM, HT MCS), BER/PER versus
// SINR, and frame airtime computation including PLCP preamble and header.
//
// The probe broadcasts in paper §4.2 are sent at 1 Mb/s (2.4 GHz, DSSS) and
// 6 Mb/s (5 GHz, OFDM); beacons occupy 2.592 ms (802.11b) or 0.42 ms
// (802.11a/g/n) of airtime — all reproduced by airtime_us().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace wlm::phy {

enum class Modulation : std::uint8_t {
  kDsss1,    // 802.11 DBPSK, 1 Mb/s
  kDsss2,    // DQPSK, 2 Mb/s
  kCck5_5,   // CCK, 5.5 Mb/s
  kCck11,    // CCK, 11 Mb/s
  kOfdm6,    // BPSK 1/2
  kOfdm9,    // BPSK 3/4
  kOfdm12,   // QPSK 1/2
  kOfdm18,   // QPSK 3/4
  kOfdm24,   // 16-QAM 1/2
  kOfdm36,   // 16-QAM 3/4
  kOfdm48,   // 64-QAM 2/3
  kOfdm54,   // 64-QAM 3/4
};

struct RateInfo {
  Modulation modulation;
  DataRate rate;
  const char* name;
  /// Minimum SINR (dB) for roughly 90% delivery of a 1500-byte frame;
  /// receiver-sensitivity style threshold used for rate selection.
  double sinr_threshold_db;
  bool is_ofdm;
};

[[nodiscard]] const RateInfo& rate_info(Modulation m);
[[nodiscard]] const std::vector<RateInfo>& all_rates();

/// Bit error rate for the modulation at the given SINR (dB), in an AWGN
/// channel with standard matched-filter approximations.
[[nodiscard]] double bit_error_rate(Modulation m, double sinr_db);

/// Packet error rate for `payload_bytes` at the modulation/SINR; includes
/// the more robustly modulated PLCP header succeeding first.
[[nodiscard]] double packet_error_rate(Modulation m, double sinr_db, int payload_bytes);

/// Probability the PLCP preamble+header alone decodes (paper §5.3 counts
/// "decodable 802.11" channel time by exactly this criterion).
[[nodiscard]] double plcp_decode_probability(double sinr_db);

/// Total frame airtime in microseconds: preamble + PLCP header + payload,
/// with OFDM symbol padding. `long_preamble` selects the 802.11b 144 us
/// preamble + 48 us header used by beacons on the 2.4 GHz band.
[[nodiscard]] std::int64_t airtime_us(Modulation m, int payload_bytes, bool long_preamble = true);

/// Highest rate whose threshold the SINR clears (minstrel-style ideal pick);
/// returns the lowest rate when nothing clears.
[[nodiscard]] Modulation select_rate(double sinr_db, bool ofdm_only);

}  // namespace wlm::phy
