#include "phy/per_table.hpp"

#include <algorithm>
#include <cmath>

namespace wlm::phy {

namespace {

// How far each interval bound is pushed outward, in ULPs. The true PER is
// monotone in SINR, but its floating-point realization (pow + erfc chains)
// can wiggle by a couple of ULPs against the trend; a handful of ULPs of
// slack absorbs that while keeping the bracket tight enough that fallback
// draws stay vanishingly rare. The differential test hammers the bracket
// with 100k random off-grid SINRs to prove containment.
constexpr int kWidenUlps = 8;

double ulp_down(double x, int ulps) {
  for (int i = 0; i < ulps; ++i) x = std::nextafter(x, -1.0);
  return x < 0.0 ? 0.0 : x;
}

double ulp_up(double x, int ulps) {
  for (int i = 0; i < ulps; ++i) x = std::nextafter(x, 2.0);
  return x > 1.0 ? 1.0 : x;
}

}  // namespace

PerTable::PerTable(Modulation m, int payload_bytes)
    : modulation_(m), payload_bytes_(payload_bytes) {
  for (int i = 0; i < kGridPoints; ++i) {
    per_[static_cast<std::size_t>(i)] =
        packet_error_rate(m, grid_sinr_db(i), payload_bytes);
  }
  for (std::size_t i = 0; i + 1 < kGridPoints; ++i) {
    // PER decreases with SINR, so the right endpoint is nominally the lower
    // bound — but take min/max anyway so a locally non-monotone FP wiggle
    // at the endpoints can never invert the bracket.
    lo_[i] = ulp_down(std::min(per_[i], per_[i + 1]), kWidenUlps);
    hi_[i] = ulp_up(std::max(per_[i], per_[i + 1]), kWidenUlps);
  }
}

double PerTable::interpolated(double sinr_db) const {
  if (!(sinr_db >= kGridMinDb) || !(sinr_db <= kGridMaxDb)) {
    return packet_error_rate(modulation_, sinr_db, payload_bytes_);
  }
  auto i = static_cast<std::size_t>((sinr_db - kGridMinDb) / kGridStepDb);
  if (i >= kGridPoints - 1) i = kGridPoints - 2;
  const double t = (sinr_db - grid_sinr_db(static_cast<int>(i))) / kGridStepDb;
  return per_[i] + t * (per_[i + 1] - per_[i]);
}

const char* per_mode_name(PerMode mode) {
  return mode == PerMode::kReference ? "reference" : "table";
}

std::optional<PerMode> per_mode_from_name(std::string_view name) {
  if (name == "reference") return PerMode::kReference;
  if (name == "table") return PerMode::kTable;
  return std::nullopt;
}

const PerTable& probe_per_table(Modulation m) {
  // Probe frames are 60 bytes on both bands (sim/link.cpp). Magic statics
  // make the first lookup build the tables exactly once, thread-safely;
  // afterwards they are immutable shared state.
  static const PerTable dsss1{Modulation::kDsss1, 60};
  static const PerTable ofdm6{Modulation::kOfdm6, 60};
  return m == Modulation::kOfdm6 ? ofdm6 : dsss1;
}

PerTableSet::PerTableSet(int payload_bytes) : payload_bytes_(payload_bytes) {
  tables_.reserve(all_rates().size());
  for (const auto& info : all_rates()) {
    tables_.emplace_back(info.modulation, payload_bytes);
  }
}

const PerTable& PerTableSet::table(Modulation m) const {
  for (const auto& t : tables_) {
    if (t.modulation() == m) return t;
  }
  return tables_.front();
}

}  // namespace wlm::phy
