// Precomputed SINR -> packet-error-rate lookup tables.
//
// Profiling (EXPERIMENTS.md §phase-profile) shows the link-probe and rate-
// control inner loops spend their PHY time in packet_error_rate(): each call
// is a pow(10, x) plus an erfc plus two more pow()s. Those calls repeat over
// a narrow, smooth SINR range, so we precompute the exact scalar PER on a
// fixed grid once and answer queries from the table.
//
// Determinism contract (same oracle pattern as classify::RuleIndex): the
// scalar path in phy/modulation.cpp is kept verbatim as the reference, and
// the table must produce *byte-identical simulation outcomes*, not merely
// close ones. The trick is that the simulation never consumes a raw PER —
// it consumes Bernoulli draws `u < f(per)`. PER is monotone non-increasing
// in SINR per modulation, so a grid interval [s_i, s_{i+1}] brackets the
// exact value: per(s) in [per(s_{i+1}), per(s_i)] up to floating-point
// wiggle, which we absorb by widening the bracket a few ULPs when the table
// is built. A draw that clears the bracket is decided by the table alone;
// the rare draw that lands inside the bracket falls back to the exact
// scalar computation. Either way the boolean equals `u < per_exact`
// bit-for-bit, so verdicts, reports, and checkpoint bytes cannot change.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "phy/modulation.hpp"

namespace wlm::phy {

/// Which PER evaluation path the simulation uses. kReference keeps the
/// verbatim scalar computation as the differential oracle; kTable is the
/// production fast path. All outputs are byte-identical in both modes.
enum class PerMode : std::uint8_t {
  kReference,
  kTable,
};

/// Guaranteed bracket around the exact scalar PER at some SINR.
struct PerBounds {
  double lo = 0.0;
  double hi = 1.0;
};

/// PER lookup table for one (modulation, payload size) pair.
class PerTable {
 public:
  /// Grid: [-10, 45] dB in 1/8 dB steps. Below -10 dB every modulation is
  /// effectively opaque (PER ~ 1) and above 45 dB transparent (PER ~ 0),
  /// but out-of-grid queries simply fall back to the exact scalar path, so
  /// the grid edges are a performance choice, not a correctness one.
  static constexpr double kGridMinDb = -10.0;
  static constexpr double kGridMaxDb = 45.0;
  static constexpr double kGridStepDb = 0.125;
  static constexpr int kGridPoints = 441;  // (max - min) / step + 1

  PerTable(Modulation m, int payload_bytes);

  [[nodiscard]] Modulation modulation() const { return modulation_; }
  [[nodiscard]] int payload_bytes() const { return payload_bytes_; }

  /// Exact scalar PER stored at grid point i (tests index these directly).
  [[nodiscard]] double grid_value(int i) const { return per_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] static double grid_sinr_db(int i) {
    return kGridMinDb + kGridStepDb * static_cast<double>(i);
  }

  /// ULP-widened bracket guaranteed to contain the exact scalar PER at
  /// `sinr_db`; nullopt when the SINR is off the grid (caller must use the
  /// scalar path).
  [[nodiscard]] std::optional<PerBounds> bounds(double sinr_db) const {
    if (!(sinr_db >= kGridMinDb) || !(sinr_db <= kGridMaxDb)) return std::nullopt;
    auto i = static_cast<std::size_t>((sinr_db - kGridMinDb) / kGridStepDb);
    if (i >= kGridPoints - 1) i = kGridPoints - 2;
    return PerBounds{lo_[i], hi_[i]};
  }

  /// Deterministic linear interpolation between grid points — the analytics
  /// approximation (plots, calibration sweeps). Never used on byte-identity
  /// paths; off-grid SINR falls back to the exact scalar value.
  [[nodiscard]] double interpolated(double sinr_db) const;

  /// Guarded Bernoulli: returns `u < per_exact(sinr_db)` bit-for-bit. The
  /// table decides draws that clear the bracket; draws inside it (a few in
  /// a million) recompute the exact scalar PER. Const and stateless, so one
  /// table can be shared across shard threads without synchronization.
  [[nodiscard]] bool chance_error(double sinr_db, double u) const {
    if (const auto b = bounds(sinr_db)) {
      if (u < b->lo) return true;
      if (u >= b->hi) return false;
    }
    return u < packet_error_rate(modulation_, sinr_db, payload_bytes_);
  }

 private:
  Modulation modulation_;
  int payload_bytes_;
  std::array<double, kGridPoints> per_{};      // exact scalar PER at grid points
  std::array<double, kGridPoints - 1> lo_{};   // widened interval lower bounds
  std::array<double, kGridPoints - 1> hi_{};   // widened interval upper bounds
};

/// CLI name for a mode ("reference" / "table") and the inverse mapping;
/// nullopt for unknown names.
[[nodiscard]] const char* per_mode_name(PerMode mode);
[[nodiscard]] std::optional<PerMode> per_mode_from_name(std::string_view name);

/// Shared probe-frame tables (payload 60 bytes — the mesh link probe size):
/// DSSS 1 for 2.4 GHz, OFDM 6 for 5 GHz. Built once, never mutated after,
/// safe to share across shard threads.
[[nodiscard]] const PerTable& probe_per_table(Modulation m);

/// All twelve rate tables for one payload size (rate-control sweeps).
class PerTableSet {
 public:
  explicit PerTableSet(int payload_bytes);

  [[nodiscard]] const PerTable& table(Modulation m) const;
  [[nodiscard]] int payload_bytes() const { return payload_bytes_; }

 private:
  int payload_bytes_;
  std::vector<PerTable> tables_;  // indexed by static_cast<size_t>(Modulation)
};

}  // namespace wlm::phy
