#include "phy/propagation.hpp"

#include <cmath>

namespace wlm::phy {

double distance_m(const Position& a, const Position& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

namespace {

double reference_loss_db_uncached(FrequencyMhz freq) {
  // Friis free-space loss at 1 m: 20 log10(4*pi*d*f/c).
  const double c = 299'792'458.0;
  return 20.0 * std::log10(4.0 * M_PI * 1.0 * freq.hz() / c);
}

}  // namespace

double PathLossModel::reference_loss_db(FrequencyMhz freq) {
  // A fleet uses a handful of carrier frequencies but evaluates path loss
  // millions of times, so memoize the log10 per frequency. The cached value
  // is the same double the direct computation yields (pinned by the phy
  // hoisted-constants test); thread_local keeps the tiny cache race-free
  // without synchronizing shard workers.
  struct CacheEntry {
    double freq_hz;
    double loss_db;
  };
  thread_local std::vector<CacheEntry> cache;
  const double hz = freq.hz();
  for (const auto& e : cache) {
    if (e.freq_hz == hz) return e.loss_db;
  }
  const double loss = reference_loss_db_uncached(freq);
  cache.push_back(CacheEntry{hz, loss});
  return loss;
}

double PathLossModel::median_loss_db(double d_m, FrequencyMhz freq, int walls) const {
  const double d = d_m < 1.0 ? 1.0 : d_m;
  return reference_loss_db(freq) + 10.0 * exponent * std::log10(d) +
         static_cast<double>(walls) * wall_loss_db;
}

double draw_shadowing_db(Rng& rng, const PathLossModel& model) {
  return rng.normal(0.0, model.shadowing_sigma_db);
}

FadingProcess::FadingProcess(Rng rng, double k_factor_db, double coherence)
    : rng_(rng), coherence_(coherence) {
  // Total mean power is normalized to 1 (0 dB): K/(K+1) in the LOS ray,
  // 1/(K+1) in the scattered component.
  const double k = k_factor_db <= -100.0 ? 0.0 : std::pow(10.0, k_factor_db / 10.0);
  los_amplitude_ = std::sqrt(k / (k + 1.0));
  scatter_sigma_ = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  // AR(1) innovation keeping the stationary variance at scatter_sigma^2;
  // constructor-derived, so hoisted out of next_gain_db() (the expression is
  // identical, hence so is the double — pinned by the phy hoist test). Not
  // part of State: a restored process is rebuilt with the same parameters.
  innov_sigma_ = std::sqrt(1.0 - coherence_ * coherence_) * scatter_sigma_;
  // Start from the stationary distribution.
  re_ = rng_.normal(0.0, scatter_sigma_);
  im_ = rng_.normal(0.0, scatter_sigma_);
}

double FadingProcess::next_gain_db() {
  const double rho = coherence_;
  re_ = rho * re_ + rng_.normal(0.0, innov_sigma_);
  im_ = rho * im_ + rng_.normal(0.0, innov_sigma_);
  const double i_part = los_amplitude_ + re_;
  const double power = i_part * i_part + im_ * im_;
  const double floor = 1e-9;  // -90 dB: bound deep fades to keep logs finite
  return 10.0 * std::log10(power < floor ? floor : power);
}

PowerDbm noise_floor(double bandwidth_mhz, double noise_figure_db) {
  // kT at 290K is -174 dBm/Hz.
  return PowerDbm{-174.0 + 10.0 * std::log10(bandwidth_mhz * 1e6) + noise_figure_db};
}

}  // namespace wlm::phy
