#include "phy/propagation.hpp"

#include <cmath>

namespace wlm::phy {

double distance_m(const Position& a, const Position& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double PathLossModel::reference_loss_db(FrequencyMhz freq) {
  // Friis free-space loss at 1 m: 20 log10(4*pi*d*f/c).
  const double c = 299'792'458.0;
  return 20.0 * std::log10(4.0 * M_PI * 1.0 * freq.hz() / c);
}

double PathLossModel::median_loss_db(double d_m, FrequencyMhz freq, int walls) const {
  const double d = d_m < 1.0 ? 1.0 : d_m;
  return reference_loss_db(freq) + 10.0 * exponent * std::log10(d) +
         static_cast<double>(walls) * wall_loss_db;
}

double draw_shadowing_db(Rng& rng, const PathLossModel& model) {
  return rng.normal(0.0, model.shadowing_sigma_db);
}

FadingProcess::FadingProcess(Rng rng, double k_factor_db, double coherence)
    : rng_(rng), coherence_(coherence) {
  // Total mean power is normalized to 1 (0 dB): K/(K+1) in the LOS ray,
  // 1/(K+1) in the scattered component.
  const double k = k_factor_db <= -100.0 ? 0.0 : std::pow(10.0, k_factor_db / 10.0);
  los_amplitude_ = std::sqrt(k / (k + 1.0));
  scatter_sigma_ = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  // Start from the stationary distribution.
  re_ = rng_.normal(0.0, scatter_sigma_);
  im_ = rng_.normal(0.0, scatter_sigma_);
}

double FadingProcess::next_gain_db() {
  // AR(1) innovation keeping the stationary variance at scatter_sigma^2.
  const double rho = coherence_;
  const double innov = std::sqrt(1.0 - rho * rho) * scatter_sigma_;
  re_ = rho * re_ + rng_.normal(0.0, innov);
  im_ = rho * im_ + rng_.normal(0.0, innov);
  const double i_part = los_amplitude_ + re_;
  const double power = i_part * i_part + im_ * im_;
  const double floor = 1e-9;  // -90 dB: bound deep fades to keep logs finite
  return 10.0 * std::log10(power < floor ? floor : power);
}

PowerDbm noise_floor(double bandwidth_mhz, double noise_figure_db) {
  // kT at 290K is -174 dBm/Hz.
  return PowerDbm{-174.0 + 10.0 * std::log10(bandwidth_mhz * 1e6) + noise_figure_db};
}

}  // namespace wlm::phy
