// Indoor radio propagation: log-distance path loss with wall attenuation,
// log-normal shadowing, and temporally correlated Rayleigh/Rician fading.
//
// The paper attributes its key PHY observations — intermediate link delivery
// rates (§4.2) and weaker 5 GHz client connections (§3.1) — to indoor
// attenuation and multipath fading. This module provides those effects.
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "core/units.hpp"

namespace wlm::phy {

/// 2-D position in meters (sites are modeled per-floor).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double distance_m(const Position& a, const Position& b);

/// Parameters of the log-distance path-loss model:
///   PL(d) = PL(d0) + 10 n log10(d/d0) + walls * wall_loss + X_sigma
struct PathLossModel {
  double exponent = 3.0;         // indoor office: 2.7-3.5
  double wall_loss_db = 5.0;     // per interior wall
  double shadowing_sigma_db = 6.0;

  /// Free-space reference loss at d0=1 m for a given carrier frequency.
  [[nodiscard]] static double reference_loss_db(FrequencyMhz freq);

  /// Median path loss (no shadowing) over distance d at frequency f.
  [[nodiscard]] double median_loss_db(double d_m, FrequencyMhz freq, int walls) const;
};

/// A static, per-link shadowing value drawn once from N(0, sigma); real
/// shadowing is a property of the obstruction geometry so it does not vary
/// packet to packet.
[[nodiscard]] double draw_shadowing_db(Rng& rng, const PathLossModel& model);

/// Small-scale fading: temporally correlated Rician fading of the link gain.
///
/// The envelope is simulated as a complex Gauss-Markov process (first-order
/// autoregressive), which yields Rayleigh fading for k_factor=0 and Rician
/// fading for a dominant LOS component. `coherence` controls how fast the
/// channel decorrelates between successive samples.
class FadingProcess {
 public:
  /// k_factor_db: Rician K (LOS-to-scatter power ratio), -inf => Rayleigh.
  /// coherence: AR(1) coefficient in [0,1); 0 = i.i.d. per sample.
  FadingProcess(Rng rng, double k_factor_db, double coherence);

  /// Advance one sample interval; returns fading gain in dB (0 dB average).
  double next_gain_db();

  /// Mutable state for checkpoint/restore. The LOS amplitude, scatter sigma
  /// and coherence are constructor-derived configuration — a restored
  /// process must be rebuilt with the same parameters, then overlaid.
  struct State {
    Rng::State rng;
    double re = 0.0;
    double im = 0.0;

    bool operator==(const State&) const = default;
  };
  [[nodiscard]] State state() const { return State{rng_.state(), re_, im_}; }
  void restore(const State& state) {
    rng_.restore(state.rng);
    re_ = state.re;
    im_ = state.im;
  }

 private:
  Rng rng_;
  double los_amplitude_;
  double scatter_sigma_;
  double coherence_;
  double innov_sigma_;  // sqrt(1 - coherence^2) * scatter_sigma, hoisted
  double re_ = 0.0;
  double im_ = 0.0;
};

/// Thermal noise floor for a receiver: kTB + noise figure.
[[nodiscard]] PowerDbm noise_floor(double bandwidth_mhz, double noise_figure_db = 7.0);

}  // namespace wlm::phy
