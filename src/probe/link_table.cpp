#include "probe/link_table.hpp"

namespace wlm::probe {

LinkTable::LinkTable(std::size_t capacity) : capacity_(capacity) {}

void LinkTable::record(LinkKey key, SimTime sent_at, bool received) {
  auto it = windows_.find(key);
  if (it == windows_.end()) {
    if (windows_.size() >= capacity_) {
      // Evict the least recently heard link.
      const LinkKey victim = lru_.back();
      lru_.pop_back();
      windows_.erase(victim);
      ++evictions_;
    }
    lru_.push_front(key);
    it = windows_.emplace(key, Slot{SlidingDeliveryWindow{}, lru_.begin()}).first;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  it->second.window.record(sent_at, received);
}

std::optional<LinkMetric> LinkTable::metric(LinkKey key) const {
  const auto it = windows_.find(key);
  if (it == windows_.end()) return std::nullopt;
  LinkMetric m;
  m.key = key;
  m.expected = it->second.window.expected();
  m.received = it->second.window.received();
  m.ratio = it->second.window.ratio();
  return m;
}

std::vector<LinkMetric> LinkTable::all_metrics() const {
  std::vector<LinkMetric> out;
  out.reserve(windows_.size());
  for (const auto& [key, slot] : windows_) {
    LinkMetric m;
    m.key = key;
    m.expected = slot.window.expected();
    m.received = slot.window.received();
    m.ratio = slot.window.ratio();
    out.push_back(m);
  }
  return out;
}

}  // namespace wlm::probe
