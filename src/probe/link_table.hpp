// Per-AP link-metric table: one sliding window per heard neighbor AP, as the
// mesh routing layer maintains it. Bounded, with least-recently-heard
// eviction — the fix for the paper's §6.1 "skyscraper" out-of-memory bug,
// where APs that could decode beacons from miles away grew their tables
// without limit and fell over.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "phy/channel.hpp"
#include "probe/window.hpp"

namespace wlm::probe {

struct LinkKey {
  ApId from;
  phy::Band band = phy::Band::k2_4GHz;

  bool operator==(const LinkKey&) const = default;
};

struct LinkKeyHash {
  std::size_t operator()(const LinkKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.from.value()) << 1) |
        (k.band == phy::Band::k5GHz ? 1u : 0u));
  }
};

struct LinkMetric {
  LinkKey key;
  std::uint32_t expected = 0;
  std::uint32_t received = 0;
  double ratio = 0.0;
};

class LinkTable {
 public:
  /// `capacity` bounds the number of tracked links; the least recently
  /// updated entry is evicted on overflow.
  explicit LinkTable(std::size_t capacity = 256);

  /// Records one probe result from `from` at `sent_at`.
  void record(LinkKey key, SimTime sent_at, bool received);

  [[nodiscard]] std::size_t size() const { return windows_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  [[nodiscard]] std::optional<LinkMetric> metric(LinkKey key) const;
  [[nodiscard]] std::vector<LinkMetric> all_metrics() const;

 private:
  struct Slot {
    SlidingDeliveryWindow window;
    std::list<LinkKey>::iterator lru_pos;
  };
  std::size_t capacity_;
  std::unordered_map<LinkKey, Slot, LinkKeyHash> windows_;
  std::list<LinkKey> lru_;  // front = most recently updated
  std::uint64_t evictions_ = 0;
};

}  // namespace wlm::probe
