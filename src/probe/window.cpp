#include "probe/window.hpp"

namespace wlm::probe {

void SlidingDeliveryWindow::record(SimTime sent_at, bool received) {
  entries_.push_back(Entry{sent_at, received});
  if (received) ++received_count_;
  expire(sent_at);
}

std::uint32_t SlidingDeliveryWindow::expected() const {
  return static_cast<std::uint32_t>(entries_.size());
}

std::uint32_t SlidingDeliveryWindow::received() const { return received_count_; }

double SlidingDeliveryWindow::ratio() const {
  if (entries_.empty()) return 0.0;
  return static_cast<double>(received_count_) / static_cast<double>(entries_.size());
}

void SlidingDeliveryWindow::expire(SimTime now) {
  while (!entries_.empty() && now - entries_.front().sent >= kWindowSpan) {
    if (entries_.front().ok) --received_count_;
    entries_.pop_front();
  }
}

}  // namespace wlm::probe
