// The mesh link metric measurement (paper §4.2): every AP broadcasts a
// 60-byte probe each 15 seconds (1 Mb/s at 2.4 GHz, 6 Mb/s at 5 GHz) and
// receivers measure delivery over a 300-second sliding window.
#pragma once

#include <cstdint>
#include <deque>

#include "core/time.hpp"

namespace wlm::probe {

inline constexpr Duration kProbeInterval = Duration::seconds(15);
inline constexpr Duration kWindowSpan = Duration::seconds(300);

/// Sliding delivery window over the probe stream of one (sender, receiver)
/// pair. Probes are recorded by *send* time; the window keeps only the most
/// recent 300 seconds.
class SlidingDeliveryWindow {
 public:
  void record(SimTime sent_at, bool received);

  /// Probes currently inside the window.
  [[nodiscard]] std::uint32_t expected() const;
  [[nodiscard]] std::uint32_t received() const;
  /// Delivery ratio in [0,1]; 0 for an empty window.
  [[nodiscard]] double ratio() const;

  /// Drops entries older than `now - 300 s`.
  void expire(SimTime now);

 private:
  struct Entry {
    SimTime sent;
    bool ok;
  };
  std::deque<Entry> entries_;
  std::uint32_t received_count_ = 0;
};

}  // namespace wlm::probe
