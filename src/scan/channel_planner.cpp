#include "scan/channel_planner.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>

namespace wlm::scan {

std::optional<ChannelRecommendation> recommend_channel(
    const std::vector<ChannelScanResult>& results, phy::Band band,
    const PlannerPolicy& policy, std::optional<phy::Channel> current) {
  const ChannelScanResult* best = nullptr;
  const ChannelScanResult* incumbent = nullptr;
  for (const auto& r : results) {
    if (r.channel.band != band) continue;
    if (!policy.allow_dfs && r.channel.requires_dfs) continue;
    if (current && r.channel.number == current->number) incumbent = &r;
    if (best == nullptr) {
      best = &r;
      continue;
    }
    const bool better =
        policy.strategy == PlannerStrategy::kLeastUtilization
            ? r.counters.utilization() < best->counters.utilization()
            : r.neighbor_count < best->neighbor_count;
    if (better) best = &r;
  }
  if (best == nullptr) return std::nullopt;

  ChannelRecommendation rec;
  rec.channel = best->channel;
  rec.utilization = best->counters.utilization();
  rec.neighbor_count = best->neighbor_count;
  rec.switched = true;
  if (incumbent != nullptr) {
    // Hysteresis: only utilization-driven planning can quantify the gain.
    const double gain = incumbent->counters.utilization() - rec.utilization;
    if (best->channel.number == incumbent->channel.number ||
        (policy.strategy == PlannerStrategy::kLeastUtilization &&
         gain < policy.min_improvement)) {
      rec.channel = incumbent->channel;
      rec.utilization = incumbent->counters.utilization();
      rec.neighbor_count = incumbent->neighbor_count;
      rec.switched = false;
    }
  }
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s: ch%d at %.1f%% utilization, %d networks%s",
                policy.strategy == PlannerStrategy::kLeastUtilization
                    ? "least-utilization"
                    : "fewest-networks",
                rec.channel.number, rec.utilization * 100.0, rec.neighbor_count,
                rec.switched ? "" : " (kept incumbent)");
  rec.rationale = buf;
  return rec;
}

std::vector<ChannelScanResult> average_windows(
    const std::vector<std::vector<ChannelScanResult>>& windows) {
  std::map<std::pair<int, int>, ChannelScanResult> acc;  // (band, number)
  std::map<std::pair<int, int>, int> counts;
  for (const auto& window : windows) {
    for (const auto& r : window) {
      const auto key = std::make_pair(static_cast<int>(r.channel.band), r.channel.number);
      auto [it, inserted] = acc.emplace(key, r);
      if (!inserted) {
        it->second.counters += r.counters;
        it->second.neighbor_count += r.neighbor_count;
      }
      ++counts[key];
    }
  }
  std::vector<ChannelScanResult> out;
  out.reserve(acc.size());
  for (auto& [key, r] : acc) {
    r.neighbor_count = r.neighbor_count / std::max(1, counts[key]);
    out.push_back(r);
  }
  return out;
}

}  // namespace wlm::scan
