// Channel planning from scan data — the paper's practical implication #2:
// "channel planning using a utilization measure to identify the best
// wireless channel", as opposed to counting visible networks, which
// Figures 7/8 show does not predict utilization.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scan/scanner.hpp"

namespace wlm::scan {

enum class PlannerStrategy : std::uint8_t {
  kLeastUtilization,   // what the paper recommends
  kFewestNetworks,     // the naive baseline the paper debunks
};

struct PlannerPolicy {
  PlannerStrategy strategy = PlannerStrategy::kLeastUtilization;
  /// Skip DFS channels (radar-sensitive deployments often must).
  bool allow_dfs = true;
  /// Hysteresis: a candidate must beat the incumbent by this much
  /// utilization before a switch is recommended (avoids channel flapping).
  double min_improvement = 0.05;
};

struct ChannelRecommendation {
  phy::Channel channel;
  double utilization = 0.0;
  int neighbor_count = 0;
  bool switched = false;  // differs from the incumbent
  std::string rationale;
};

/// Picks the best channel of `band` from one scan window's results.
/// `current` (if set) is the incumbent channel for hysteresis.
[[nodiscard]] std::optional<ChannelRecommendation> recommend_channel(
    const std::vector<ChannelScanResult>& results, phy::Band band,
    const PlannerPolicy& policy, std::optional<phy::Channel> current = std::nullopt);

/// Averages several scan windows into one per-channel view before planning
/// (single 3-minute windows are noisy; the paper aggregates over time).
[[nodiscard]] std::vector<ChannelScanResult> average_windows(
    const std::vector<std::vector<ChannelScanResult>>& windows);

}  // namespace wlm::scan
