#include "scan/dfs.hpp"

#include <algorithm>

namespace wlm::scan {

bool DfsMonitor::is_available(const phy::Channel& channel, SimTime t) const {
  if (!channel.requires_dfs) return true;
  const auto it = blocked_until_.find(channel.number);
  return it == blocked_until_.end() || t >= it->second;
}

std::optional<SimTime> DfsMonitor::occupy(const phy::Channel& channel, SimTime from,
                                          Duration dwell, Rng& rng) {
  if (!channel.requires_dfs) return std::nullopt;
  const double hours = dwell.as_hours();
  const double p_detect = 1.0 - std::pow(1.0 - policy_.radar_prob_per_hour,
                                         std::max(0.0, hours));
  if (!rng.chance(p_detect)) return std::nullopt;
  // The detection lands uniformly within the dwell.
  const auto at = from + Duration::micros(static_cast<std::int64_t>(
                      rng.uniform() * static_cast<double>(dwell.as_micros())));
  blocked_until_[channel.number] = at + policy_.non_occupancy;
  ++detections_;
  return at;
}

Duration DfsMonitor::activation_delay(const phy::Channel& channel) const {
  return channel.requires_dfs ? policy_.cac : Duration{};
}

AutoChannelAgent::AutoChannelAgent(phy::Channel initial, PlannerPolicy planner,
                                   DfsPolicy dfs)
    : current_(initial), planner_(planner), dfs_(dfs) {}

void AutoChannelAgent::switch_to(const phy::Channel& next) {
  if (next.number == current_.number && next.band == current_.band) return;
  current_ = next;
  ++switches_;
}

bool AutoChannelAgent::tick(SimTime now, Duration interval,
                            const std::vector<ChannelScanResult>& scan, Rng& rng) {
  const auto before = current_.number;

  // 1. Radar exposure while serving on the current channel.
  if (const auto radar = dfs_.occupy(current_, now, interval, rng)) {
    ++radar_evacuations_;
    // Immediate evacuation: take the best *available* channel; DFS channels
    // needing a CAC are acceptable (the CAC happens off-channel on the MR18
    // scanning radio) but blocked ones are not.
    std::vector<ChannelScanResult> usable;
    for (const auto& r : scan) {
      if (r.channel.band == current_.band && dfs_.is_available(r.channel, *radar) &&
          r.channel.number != current_.number) {
        usable.push_back(r);
      }
    }
    if (const auto rec = recommend_channel(usable, current_.band, planner_)) {
      switch_to(rec->channel);
    }
    return current_.number != before;
  }

  // 2. Routine re-planning with hysteresis.
  std::vector<ChannelScanResult> usable;
  for (const auto& r : scan) {
    if (r.channel.band == current_.band && dfs_.is_available(r.channel, now)) {
      usable.push_back(r);
    }
  }
  if (const auto rec = recommend_channel(usable, current_.band, planner_, current_)) {
    if (rec->switched) switch_to(rec->channel);
  }
  return current_.number != before;
}

}  // namespace wlm::scan
