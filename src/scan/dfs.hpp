// Dynamic Frequency Selection (paper §4.1: "the UNII-2 and UNII-3 bands
// require the use of a DFS protocol where access points first check for the
// presence of a radar signal and change channels automatically if one
// exists or is detected during operation").
//
// DfsMonitor models the regulatory state machine per channel: a channel
// must pass a Channel Availability Check before use, a radar detection
// forces evacuation, and the channel enters a Non-Occupancy Period. The
// AutoChannelAgent composes this with the channel planner: it is why
// fleets gravitate to the DFS-free UNII-1/UNII-3 bands (Figure 2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "scan/channel_planner.hpp"

namespace wlm::scan {

struct DfsPolicy {
  /// Probability a radar (weather, airport) is detected on a DFS channel
  /// per occupied hour. Coastal/airport sites run far hotter than inland.
  double radar_prob_per_hour = 0.01;
  /// Channel Availability Check before first use of a DFS channel.
  Duration cac = Duration::minutes(1);
  /// Non-Occupancy Period after a detection.
  Duration non_occupancy = Duration::minutes(30);
};

class DfsMonitor {
 public:
  explicit DfsMonitor(DfsPolicy policy = DfsPolicy{}) : policy_(policy) {}

  /// True when the channel may carry traffic at `t` (non-DFS channels
  /// always may; DFS channels may not during their non-occupancy period).
  [[nodiscard]] bool is_available(const phy::Channel& channel, SimTime t) const;

  /// Simulates occupancy of `channel` for `dwell`; returns the radar-
  /// detection instant if one fires. Detection marks the channel occupied-
  /// prohibited until t + non_occupancy.
  [[nodiscard]] std::optional<SimTime> occupy(const phy::Channel& channel, SimTime from,
                                              Duration dwell, Rng& rng);

  /// Extra latency before a freshly selected DFS channel can serve (CAC).
  [[nodiscard]] Duration activation_delay(const phy::Channel& channel) const;

  [[nodiscard]] std::uint64_t detections() const { return detections_; }

 private:
  DfsPolicy policy_;
  std::map<int, SimTime> blocked_until_;
  std::uint64_t detections_ = 0;
};

/// One AP's 5 GHz auto-channel state machine: plans by utilization,
/// respects DFS availability, and evacuates on radar.
class AutoChannelAgent {
 public:
  AutoChannelAgent(phy::Channel initial, PlannerPolicy planner, DfsPolicy dfs);

  [[nodiscard]] const phy::Channel& current() const { return current_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] std::uint64_t radar_evacuations() const { return radar_evacuations_; }

  /// Advances one interval: occupies the current channel (radar may fire),
  /// then re-plans from the latest scan results. Returns true on a switch.
  bool tick(SimTime now, Duration interval, const std::vector<ChannelScanResult>& scan,
            Rng& rng);

 private:
  phy::Channel current_;
  PlannerPolicy planner_;
  DfsMonitor dfs_;
  std::uint64_t switches_ = 0;
  std::uint64_t radar_evacuations_ = 0;

  void switch_to(const phy::Channel& next);
};

}  // namespace wlm::scan
