#include "scan/scanner.hpp"

#include <algorithm>

namespace wlm::scan {

mac::ChannelCounters measure_serving_channel(const ChannelActivity& activity, Duration interval,
                                             double own_tx_duty, PowerDbm noise_floor) {
  const mac::MediumObserver observer(noise_floor);
  return observer.observe(interval, activity.sources, own_tx_duty);
}

Mr18Scanner::Mr18Scanner(Duration dwell, Duration window, int max_dwells_per_channel)
    : dwell_(dwell), window_(window), max_dwells_(max_dwells_per_channel) {}

std::vector<ChannelScanResult> Mr18Scanner::scan_window(
    const std::vector<ChannelActivity>& activities, PowerDbm noise_floor, Rng& rng) const {
  std::vector<ChannelScanResult> results;
  if (activities.empty()) return results;
  const mac::MediumObserver observer(noise_floor);

  // The radio round-robins: each channel receives window / (dwell * n)
  // dwells per aggregation window.
  const auto n = static_cast<std::int64_t>(activities.size());
  const std::int64_t dwells_per_channel =
      std::max<std::int64_t>(1, window_ / (dwell_ * n));
  const auto sampled =
      static_cast<int>(std::min<std::int64_t>(dwells_per_channel, max_dwells_));

  results.reserve(activities.size());
  for (const auto& activity : activities) {
    ChannelScanResult r;
    r.channel = activity.channel;
    r.neighbor_count = activity.neighbor_count;
    mac::ChannelCounters acc;
    for (int d = 0; d < sampled; ++d) {
      acc += observer.observe_sampled(dwell_, activity.sources, rng);
    }
    // Scale the subsample back to the full dwell budget so cycle counts
    // reflect real listening time.
    const double scale = static_cast<double>(dwells_per_channel) / sampled;
    r.counters.cycle_us = static_cast<std::int64_t>(static_cast<double>(acc.cycle_us) * scale);
    r.counters.busy_us = static_cast<std::int64_t>(static_cast<double>(acc.busy_us) * scale);
    r.counters.rx_frame_us =
        static_cast<std::int64_t>(static_cast<double>(acc.rx_frame_us) * scale);
    results.push_back(r);
  }
  return results;
}

Mr18Scanner default_mr18_scanner() {
  return Mr18Scanner{Duration::millis(5), Duration::minutes(3)};
}

}  // namespace wlm::scan
