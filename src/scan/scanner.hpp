// Channel utilization measurement, in both of the paper's flavors:
//
//  - MR16 style (§4.3 / Figure 6): the serving radio reads its own
//    energy-detect counters — it sees only its current channel, continuously.
//  - MR18 style (§5 / Figures 7-10): a dedicated third radio cycles through
//    every channel with 5 ms dwells; the backend aggregates per-channel
//    counters over three-minute windows.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "mac/medium.hpp"
#include "phy/channel.hpp"

namespace wlm::scan {

/// What is on the air on one channel, from one AP's vantage point.
struct ChannelActivity {
  phy::Channel channel;
  std::vector<mac::ActivitySource> sources;
  /// Audible foreign BSS count on this channel (for Figures 7/8 joins).
  int neighbor_count = 0;
};

/// MR16-style measurement: expected-value counters over a full interval on
/// the serving channel only.
[[nodiscard]] mac::ChannelCounters measure_serving_channel(const ChannelActivity& activity,
                                                           Duration interval,
                                                           double own_tx_duty,
                                                           PowerDbm noise_floor);

/// Result of one MR18 aggregation window for one channel.
struct ChannelScanResult {
  phy::Channel channel;
  mac::ChannelCounters counters;
  int neighbor_count = 0;
};

/// The dedicated scanning radio.
class Mr18Scanner {
 public:
  /// `dwell` is 5 ms per the paper; `max_dwells_per_channel` bounds the
  /// simulation cost of one window (dwell results are i.i.d. samples, so a
  /// capped subsample is statistically equivalent and scaled back up).
  Mr18Scanner(Duration dwell, Duration window, int max_dwells_per_channel = 24);

  /// Scans every channel in `activities` for one aggregation window.
  [[nodiscard]] std::vector<ChannelScanResult> scan_window(
      const std::vector<ChannelActivity>& activities, PowerDbm noise_floor, Rng& rng) const;

  [[nodiscard]] Duration dwell() const { return dwell_; }
  [[nodiscard]] Duration window() const { return window_; }

 private:
  Duration dwell_;
  Duration window_;
  int max_dwells_;
};

/// Default scanner matching the paper: 5 ms dwells, 3-minute windows.
[[nodiscard]] Mr18Scanner default_mr18_scanner();

}  // namespace wlm::scan
