#include "scan/spectral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm::scan {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  assert(is_power_of_two(n));
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> psd_db(std::span<const std::complex<double>> samples) {
  const std::size_t n = samples.size();
  assert(is_power_of_two(n));
  std::vector<std::complex<double>> buf(samples.begin(), samples.end());
  // Hann window.
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                                           static_cast<double>(n - 1)));
    buf[i] *= w;
  }
  fft_inplace(buf);
  std::vector<double> out(n);
  // FFT-shift: negative frequencies first.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = (i + n / 2) % n;
    const double p = std::norm(buf[src]) / static_cast<double>(n);
    out[i] = 10.0 * std::log10(p + 1e-30);
  }
  return out;
}

namespace {

/// Amplitude for a coherent tone whose FFT-bin PSD sits `power_db` above a
/// noise floor of per-sample variance sigma^2. A windowed tone of amplitude
/// A concentrates A^2 N / 4 into its bin (Hann coherent gain 1/2) while the
/// noise measures sigma^2 per bin, so A = 2 sigma 10^(p/20) / sqrt(N).
double tone_amplitude(double power_db, double noise_sigma, std::size_t n) {
  return 2.0 * noise_sigma * std::pow(10.0, power_db / 20.0) /
         std::sqrt(static_cast<double>(n));
}

/// Adds an OFDM burst: 64 subcarriers across the occupied band whose phases
/// re-randomize every symbol (4 us), which smears each subcarrier across
/// neighboring FFT bins exactly as real 802.11 captures look. Per-subcarrier
/// Rician fading supplies the frequency selectivity; total power is set so
/// the in-band per-bin PSD sits `power_db` above the noise floor.
void add_ofdm(std::vector<std::complex<double>>& iq, const SpectralSource& src,
              double sample_rate_mhz, double noise_sigma, Rng& rng) {
  const std::size_t n = iq.size();
  const int subcarriers = 64;
  const double spacing = src.occupied_mhz / subcarriers;
  // In-band per-sample signal power for the target per-bin PSD excess.
  const double noise_psd = 0.75 * 2.0 * noise_sigma * noise_sigma;
  const double p_signal = noise_psd * std::pow(10.0, src.power_db / 10.0) *
                          (src.occupied_mhz / sample_rate_mhz);
  const double amp_sc = std::sqrt(p_signal / subcarriers);
  const double k = std::pow(10.0, src.fading_k_db / 10.0);
  const double los = std::sqrt(k / (k + 1.0));
  const double scatter = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  // 4 us symbols at the configured sampling rate.
  const auto symbol_len = static_cast<std::size_t>(std::max(1.0, 4.0 * sample_rate_mhz));
  for (int sc = -subcarriers / 2; sc < subcarriers / 2; ++sc) {
    const double f = src.center_offset_mhz + (sc + 0.5) * spacing;
    if (std::abs(f) > sample_rate_mhz / 2.0) continue;
    // Per-subcarrier fading gain (frequency-selective across the burst).
    const double re = los + rng.normal(0.0, scatter);
    const double im = rng.normal(0.0, scatter);
    const double amp = amp_sc * std::hypot(re, im);
    const double w = 2.0 * M_PI * f / sample_rate_mhz;  // radians per sample
    double phase0 = rng.uniform(0.0, 2.0 * M_PI);
    for (std::size_t i = 0; i < n; ++i) {
      if (i % symbol_len == 0) phase0 = rng.uniform(0.0, 2.0 * M_PI);
      const double ph = w * static_cast<double>(i) + phase0;
      iq[i] += std::complex<double>(amp * std::cos(ph), amp * std::sin(ph));
    }
  }
}

void add_tone(std::vector<std::complex<double>>& iq, double freq_mhz, double power_db,
              double width_mhz, double sample_rate_mhz, double noise_sigma, Rng& rng) {
  const std::size_t n = iq.size();
  const double amp = tone_amplitude(power_db, noise_sigma, n);
  const double w = 2.0 * M_PI * freq_mhz / sample_rate_mhz;
  const double phase0 = rng.uniform(0.0, 2.0 * M_PI);
  // Small FM dithering spreads the tone to ~width_mhz.
  const double fm = 2.0 * M_PI * width_mhz / sample_rate_mhz;
  double drift = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    drift += fm * rng.uniform(-0.5, 0.5);
    const double ph = w * static_cast<double>(i) + phase0 + drift;
    iq[i] += std::complex<double>(amp * std::cos(ph), amp * std::sin(ph));
  }
}

}  // namespace

Waterfall capture_spectrum(const SpectrumConfig& config,
                           std::span<const SpectralSource> sources, Rng& rng) {
  Waterfall wf;
  wf.rows_db.reserve(config.slices);
  // Per-sample noise sigma chosen so the measured per-bin noise PSD sits at
  // the configured floor (the Hann window costs ~4.3 dB, compensated here).
  const double noise_sigma =
      std::pow(10.0, (config.noise_floor_db + 4.3) / 20.0) / std::sqrt(2.0);

  std::vector<double> avg_power(config.fft_size, 0.0);
  for (std::size_t slice = 0; slice < config.slices; ++slice) {
    std::vector<std::complex<double>> iq(config.fft_size);
    for (auto& s : iq) {
      s = std::complex<double>(rng.normal(0.0, noise_sigma), rng.normal(0.0, noise_sigma));
    }
    for (const auto& src : sources) {
      if (!rng.chance(src.duty_cycle)) continue;
      switch (src.kind) {
        case SpectralSource::Kind::kOfdm:
          add_ofdm(iq, src, config.sample_rate_mhz, noise_sigma, rng);
          break;
        case SpectralSource::Kind::kBluetooth: {
          // Re-hop each slice across the visible portion of the 79 MHz span.
          const double hop = rng.uniform(-config.sample_rate_mhz / 2.0 * 0.9,
                                         config.sample_rate_mhz / 2.0 * 0.9);
          add_tone(iq, hop, src.power_db, 1.0, config.sample_rate_mhz, noise_sigma, rng);
          break;
        }
        case SpectralSource::Kind::kNarrowband:
          add_tone(iq, src.center_offset_mhz, src.power_db, src.occupied_mhz,
                   config.sample_rate_mhz, noise_sigma, rng);
          break;
      }
    }
    auto row = psd_db(iq);
    for (std::size_t i = 0; i < row.size(); ++i) {
      avg_power[i] += std::pow(10.0, row[i] / 10.0);
    }
    wf.rows_db.push_back(std::move(row));
  }
  wf.average_db.resize(config.fft_size);
  for (std::size_t i = 0; i < config.fft_size; ++i) {
    wf.average_db[i] = 10.0 * std::log10(avg_power[i] / static_cast<double>(config.slices) + 1e-30);
  }
  return wf;
}

std::vector<SpectralSource> figure11_scene_2_4ghz() {
  // Tuner at 2.437 GHz (channel 6). Channels 1 (-25 MHz, mostly out of view),
  // 6 (0), and 11 (+25 MHz, partly visible) plus Bluetooth and two
  // unidentified narrowband sources; ~22% overall utilization per the paper.
  return {
      {SpectralSource::Kind::kOfdm, 0.0, 20.0, 28.0, 0.18, 15.0},
      {SpectralSource::Kind::kOfdm, -12.0, 20.0, 18.0, 0.08, 12.0},  // ch1 edge
      {SpectralSource::Kind::kOfdm, 12.0, 20.0, 20.0, 0.10, 12.0},   // ch11 edge
      {SpectralSource::Kind::kBluetooth, 0.0, 1.0, 22.0, 0.30, 0.0},
      {SpectralSource::Kind::kNarrowband, -6.5, 0.3, 16.0, 0.65, 0.0},
      {SpectralSource::Kind::kNarrowband, 9.0, 0.5, 12.0, 0.5, 0.0},
  };
}

std::vector<SpectralSource> figure11_scene_5ghz() {
  // Tuner at 5.220 GHz (channel 44). A 20 MHz BSS, a 40 MHz BSS with deep
  // frequency-selective fading (low K), and faint distant transmitters;
  // ~2% utilization.
  return {
      {SpectralSource::Kind::kOfdm, 0.0, 20.0, 26.0, 0.018, 3.0},
      {SpectralSource::Kind::kOfdm, -4.0, 40.0, 22.0, 0.012, 1.0},
      {SpectralSource::Kind::kOfdm, 8.0, 20.0, 8.0, 0.02, 2.0},  // faint, fading
  };
}

double occupied_fraction(const Waterfall& wf, double noise_floor_db, double threshold_db) {
  if (wf.rows_db.empty()) return 0.0;
  // Time-frequency occupancy: the fraction of (slice, bin) cells above the
  // floor. Averaging the spectrum first would let a 2%-duty burst paint its
  // whole band "occupied", which is not what channel utilization means.
  std::size_t occupied = 0;
  std::size_t total = 0;
  for (const auto& row : wf.rows_db) {
    for (double v : row) {
      ++total;
      if (v > noise_floor_db + threshold_db) ++occupied;
    }
  }
  return static_cast<double>(occupied) / static_cast<double>(total);
}

}  // namespace wlm::scan
