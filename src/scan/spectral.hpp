// Software-radio spectrum analysis (paper Figure 11).
//
// The paper parks a USRP B200 near one AP and runs a 32 MHz-wide, 4096-point
// FFT, seeing 20 MHz 802.11 bursts, 1 MHz frequency-hopping Bluetooth, and
// unidentified narrowband sources at 2.437 GHz, plus 20/40 MHz 802.11 with
// frequency-selective fading at 5.22 GHz. Here we synthesize the same scene
// as complex baseband IQ and run a real FFT over it.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace wlm::scan {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of two.
void fft_inplace(std::vector<std::complex<double>>& data);

/// True if n is a nonzero power of two.
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Hann-windowed power spectral density in dB (unnormalized reference),
/// FFT-shifted so index 0 is the lowest frequency.
[[nodiscard]] std::vector<double> psd_db(std::span<const std::complex<double>> samples);

/// One emitter in the synthetic scene.
struct SpectralSource {
  enum class Kind : std::uint8_t {
    kOfdm,        // 802.11 burst: occupied_mhz wide (20 or 40)
    kBluetooth,   // 1 MHz GFSK, hops over 79 MHz each slot
    kNarrowband,  // unidentified CW-ish source
  };
  Kind kind = Kind::kOfdm;
  double center_offset_mhz = 0.0;  // relative to the tuner center
  double occupied_mhz = 20.0;
  double power_db = 0.0;  // relative to the noise floor
  double duty_cycle = 0.5;
  /// Rician K-factor controlling frequency-selective fading depth for OFDM
  /// sources (low K => deep notches, as in the paper's 5 GHz pane).
  double fading_k_db = 12.0;
};

struct SpectrumConfig {
  double sample_rate_mhz = 32.0;  // USRP B200 scan width in the paper
  std::size_t fft_size = 4096;
  std::size_t slices = 48;        // waterfall rows (time slices)
  double noise_floor_db = -100.0;
};

/// A captured waterfall: `slices` rows of `fft_size` PSD bins, plus the
/// time-averaged spectrum.
struct Waterfall {
  std::vector<std::vector<double>> rows_db;
  std::vector<double> average_db;
};

/// Synthesizes IQ per time slice (each source independently on/off per its
/// duty cycle; Bluetooth re-hops each slice) and FFTs each slice.
[[nodiscard]] Waterfall capture_spectrum(const SpectrumConfig& config,
                                         std::span<const SpectralSource> sources, Rng& rng);

/// The 2.437 GHz scene from Figure 11: three 20 MHz 802.11 channels' edges
/// visible, Bluetooth hops, and a couple of narrowband mystery sources.
[[nodiscard]] std::vector<SpectralSource> figure11_scene_2_4ghz();

/// The 5.220 GHz scene: 20 MHz and 40 MHz 802.11 with selective fading and
/// fainter distant transmissions.
[[nodiscard]] std::vector<SpectralSource> figure11_scene_5ghz();

/// Fraction of bins more than `threshold_db` above the noise floor in the
/// averaged spectrum — a crude occupancy number for tests/benches.
[[nodiscard]] double occupied_fraction(const Waterfall& wf, double noise_floor_db,
                                       double threshold_db = 6.0);

}  // namespace wlm::scan
