#include "sim/ap.hpp"

#include "traffic/diurnal.hpp"

namespace wlm::sim {

ApRuntime::ApRuntime(const deploy::ApConfig& config, NetworkId network,
                     deploy::Industry industry, std::size_t queue_limit)
    : config_(config), network_(network), industry_(industry),
      tunnel_(config.id, queue_limit) {}

void ApRuntime::set_tx_duty(double duty_24, double duty_5) {
  tx_duty_24_ = duty_24;
  tx_duty_5_ = duty_5;
}

double ApRuntime::tx_duty(phy::Band band, double hour) const {
  const double base = band == phy::Band::k5GHz ? tx_duty_5_ : tx_duty_24_;
  return base * traffic::diurnal_multiplier(hour, industry_);
}

RadioEnvironment ApRuntime::environment(double hour) const {
  std::vector<FleetPeer> scaled = peers_;
  for (auto& p : scaled) {
    const double mult = traffic::diurnal_multiplier(hour, industry_);
    p.tx_duty_24 *= mult;
    p.tx_duty_5 *= mult;
  }
  return RadioEnvironment{&config_.environment, std::move(scaled)};
}

}  // namespace wlm::sim
