// Per-AP runtime state: configuration, associated clients, link table,
// tunnel to the backend, and offered-load bookkeeping.
#pragma once

#include <span>
#include <vector>

#include "backend/tunnel.hpp"
#include "classify/classifier.hpp"
#include "deploy/generator.hpp"
#include "deploy/population.hpp"
#include "mac/association.hpp"
#include "probe/link_table.hpp"
#include "sim/radio_env.hpp"

namespace wlm::sim {

/// A client currently associated to this AP (the row view used when adding).
struct AssociatedClient {
  deploy::ClientDevice device;
  phy::Band band = phy::Band::k2_4GHz;
  double rssi_at_ap_dbm = -70.0;
  classify::OsType detected_os = classify::OsType::kUnknown;
};

/// Struct-of-arrays storage for an AP's associated clients. The weekly
/// report loop re-reads every client once per reporting period, touching
/// only a few fields per pass; parallel columns keep those passes on dense,
/// homogeneous memory instead of striding over whole AssociatedClient
/// records (DESIGN.md §4f). Columns are index-aligned: entry i of every
/// column describes the same client.
class ClientColumns {
 public:
  void add(AssociatedClient client) {
    devices_.push_back(std::move(client.device));
    bands_.push_back(client.band);
    rssi_at_ap_dbm_.push_back(client.rssi_at_ap_dbm);
    detected_os_.push_back(client.detected_os);
  }

  [[nodiscard]] std::size_t size() const { return devices_.size(); }
  [[nodiscard]] bool empty() const { return devices_.empty(); }

  [[nodiscard]] std::span<const deploy::ClientDevice> devices() const { return devices_; }
  [[nodiscard]] std::span<const phy::Band> bands() const { return bands_; }
  [[nodiscard]] std::span<const double> rssi_at_ap_dbm() const { return rssi_at_ap_dbm_; }
  [[nodiscard]] std::span<const classify::OsType> detected_os() const { return detected_os_; }

  /// Materializes row i (tests and cold paths; hot loops walk the columns).
  [[nodiscard]] AssociatedClient row(std::size_t i) const {
    return AssociatedClient{devices_[i], bands_[i], rssi_at_ap_dbm_[i], detected_os_[i]};
  }

 private:
  std::vector<deploy::ClientDevice> devices_;
  std::vector<phy::Band> bands_;
  std::vector<double> rssi_at_ap_dbm_;
  std::vector<classify::OsType> detected_os_;
};

class ApRuntime {
 public:
  /// `queue_limit` bounds the device-side tunnel queue (see backend::Tunnel).
  ApRuntime(const deploy::ApConfig& config, NetworkId network, deploy::Industry industry,
            std::size_t queue_limit = 4096);

  [[nodiscard]] const deploy::ApConfig& config() const { return config_; }
  [[nodiscard]] ApId id() const { return config_.id; }
  [[nodiscard]] NetworkId network() const { return network_; }
  [[nodiscard]] deploy::Industry industry() const { return industry_; }

  [[nodiscard]] backend::Tunnel& tunnel() { return tunnel_; }
  [[nodiscard]] const backend::Tunnel& tunnel() const { return tunnel_; }
  [[nodiscard]] probe::LinkTable& link_table() { return link_table_; }
  [[nodiscard]] const probe::LinkTable& link_table() const { return link_table_; }

  void set_peers(std::vector<FleetPeer> peers) { peers_ = std::move(peers); }
  [[nodiscard]] const std::vector<FleetPeer>& peers() const { return peers_; }

  /// Offered-load duty on each band's serving channel (busy-hour average).
  void set_tx_duty(double duty_24, double duty_5);
  [[nodiscard]] double tx_duty(phy::Band band, double hour) const;

  void add_client(AssociatedClient client) { clients_.add(std::move(client)); }
  [[nodiscard]] const ClientColumns& clients() const { return clients_; }

  /// Radio environment for this AP (peers' duties scaled for the hour).
  [[nodiscard]] RadioEnvironment environment(double hour) const;

 private:
  deploy::ApConfig config_;
  NetworkId network_;
  deploy::Industry industry_;
  backend::Tunnel tunnel_;
  probe::LinkTable link_table_;
  std::vector<FleetPeer> peers_;
  ClientColumns clients_;
  double tx_duty_24_ = 0.0;
  double tx_duty_5_ = 0.0;
};

}  // namespace wlm::sim
