#include "sim/event_queue.hpp"

#include <cassert>
#include <memory>

namespace wlm::sim {

void EventQueue::schedule_at(SimTime at, Callback fn) {
  assert(at >= now_);
  queue_.push(Item{at, seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Duration delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::schedule_every(Duration period, SimTime until, Callback fn) {
  assert(period > Duration{});
  const SimTime first = now_ + period;
  if (first > until) return;
  // Each firing re-arms the next; the shared_ptr lets the closure refer to
  // itself without a dangling reference.
  auto body = std::make_shared<Callback>(std::move(fn));
  auto rearm = std::make_shared<Callback>();
  *rearm = [this, period, until, body, rearm](SimTime t) {
    (*body)(t);
    const SimTime next = t + period;
    if (next <= until) schedule_at(next, *rearm);
  };
  schedule_at(first, *rearm);
}

void EventQueue::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    item.fn(now_);
  }
  if (now_ < until) now_ = until;
}

void EventQueue::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace wlm::sim
