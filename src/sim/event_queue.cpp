#include "sim/event_queue.hpp"

#include <cassert>
#include <memory>

namespace wlm::sim {

void EventQueue::schedule_at(SimTime at, Callback fn) {
  assert(at >= now_);
  queue_.push(Item{at, seq_++, std::move(fn)});
  if (metrics_) metrics_->counter("wlm_events_scheduled_total").inc();
}

void EventQueue::schedule_in(Duration delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

namespace {

// Each firing re-queues a copy of itself; the shared_ptr keeps the user
// callback (and its state) shared across firings. Self-contained copies —
// no closure capturing its own shared_ptr — so the last firing past
// `until` releases the body instead of leaking a reference cycle.
struct Rearm {
  EventQueue* queue;
  Duration period;
  SimTime until;
  std::shared_ptr<EventQueue::Callback> body;

  void operator()(SimTime t) const {
    (*body)(t);
    const SimTime next = t + period;
    if (next <= until) queue->schedule_at(next, *this);
  }
};

}  // namespace

void EventQueue::schedule_every(Duration period, SimTime until, Callback fn) {
  assert(period > Duration{});
  const SimTime first = now_ + period;
  if (first > until) return;
  schedule_at(first,
              Rearm{this, period, until, std::make_shared<Callback>(std::move(fn))});
}

void EventQueue::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    if (metrics_) metrics_->counter("wlm_events_executed_total").inc();
    item.fn(now_);
  }
  if (now_ < until) now_ = until;
}

void EventQueue::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace wlm::sim
