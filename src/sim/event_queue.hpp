// A small discrete-event engine: a time-ordered queue of callbacks with
// support for periodic events. The campaign runners in World use fixed
// cadences directly for speed; this engine drives the finer-grained
// examples and integration tests.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/time.hpp"
#include "telemetry/metrics.hpp"

namespace wlm::sim {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  void schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` after `delay` from the current time.
  void schedule_in(Duration delay, Callback fn);
  /// Schedules `fn` every `period`, starting at now + period, until the
  /// engine stops or `until` is reached.
  void schedule_every(Duration period, SimTime until, Callback fn);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Runs until the queue drains or `until` is passed. Events scheduled at
  /// identical times run in scheduling order (stable).
  void run_until(SimTime until);

  /// Drops all pending events.
  void clear();

  /// Mirrors schedule/execute counts into `metrics` (not owned; may be null
  /// to unbind). Counts are sim-state facts, so they are deterministic.
  void bind_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Clock and counter state for checkpoint/restore. Pending callbacks are
  /// std::functions and cannot be serialized, so checkpoints cut at quiescent
  /// points where the queue has drained; clock_state() captures everything a
  /// drained queue still carries (the schedule-order counter matters — it
  /// determines tie-break order of future same-time events).
  struct ClockState {
    std::int64_t now_us = 0;
    std::uint64_t seq = 0;
    std::uint64_t executed = 0;

    bool operator==(const ClockState&) const = default;
  };
  [[nodiscard]] ClockState clock_state() const {
    return ClockState{now_.as_micros(), seq_, executed_};
  }
  /// Restores the clock into an idle queue; any still-pending events are
  /// dropped first (their callbacks belong to the dead process image).
  void restore_clock(const ClockState& state) {
    clear();
    now_ = SimTime::from_micros(state.now_us);
    seq_ = state.seq;
    executed_ = state.executed;
  }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace wlm::sim
