#include "sim/fleet_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>

// Deliberate layering exception (see src/sim/CMakeLists.txt): the
// supervisor's retry snapshots are ckpt per-shard sections, and wiring the
// serializers here keeps failsafe itself sim-independent.
#include "ckpt/container.hpp"
#include "ckpt/state.hpp"

namespace wlm::sim {

FleetRunner::FleetRunner(WorldConfig config)
    : config_(std::move(config)), fleet_(deploy::generate_fleet(config_.fleet)) {
  const telemetry::Stopwatch build_watch;
  // Knob validation: a bad scale or fraction degrades to the nearest legal
  // value instead of silently producing nonsense (negative client counts,
  // chance() calls outside [0,1]).
  if (!(config_.client_scale > 0.0)) config_.client_scale = 0.0;  // also catches NaN
  if (!(config_.wan_flap_fraction > 0.0)) config_.wan_flap_fraction = 0.0;
  if (config_.wan_flap_fraction > 1.0) config_.wan_flap_fraction = 1.0;
  // Legacy flap shorthand folds into the fault spec; an explicit
  // faults.flap_fraction wins.
  if (config_.wan_flap_fraction > 0.0 && config_.faults.flap_fraction == 0.0) {
    config_.faults.flap_fraction = config_.wan_flap_fraction;
  }
  config_.faults = config_.faults.clamped();
  config_.mobility = config_.mobility.clamped();
  config_.mesh = config_.mesh.clamped();

  // Segment vault knobs: the MiB ceiling becomes a byte budget for sealed
  // segments; spill decisions inside the vault key on deterministic byte
  // accounting only (never getrusage), so output is spill-invariant.
  fleet_tsdb_.set_mem_ceiling(config_.mem_ceiling_mb * 1024 * 1024);
  fleet_tsdb_.set_spill_dir(config_.spill_dir);

  ShardConfig shard_config;
  shard_config.epoch = config_.fleet.epoch;
  shard_config.client_scale = config_.client_scale;
  shard_config.seed = config_.seed;
  shard_config.faults = config_.faults;
  shard_config.classifier = config_.classifier;
  shard_config.verdict_cache_capacity = config_.verdict_cache_capacity;
  shard_config.per_mode = config_.per_mode;
  shard_config.mobility = config_.mobility;
  shard_config.mesh = config_.mesh;

  // Shard construction is independent per network (each shard's RNG is a
  // substream of the base seed), so it parallelizes like the campaigns do.
  shards_.resize(fleet_.networks.size());
  parallel_for(fleet_.networks.size(), [&](std::size_t i) {
    shards_[i] = std::make_unique<NetworkShard>(fleet_.networks[i], shard_config);
  });

  // Flat views and the AP lookup are built serially in fleet order, so the
  // global AP/link ordering matches the monolithic World's exactly.
  std::size_t total_aps = 0;
  std::size_t total_links = 0;
  for (const auto& shard : shards_) {
    total_aps += shard->aps().size();
    total_links += shard->links().size();
  }
  ap_ptrs_.reserve(total_aps);
  link_ptrs_.reserve(total_links);
  for (const auto& shard : shards_) {
    for (auto& ap : shard->aps()) {
      ap_ptrs_.push_back(&ap);
      ap_lookup_[ap.id().value()] = &ap;
    }
    for (auto& link : shard->links()) link_ptrs_.push_back(&link);
  }

  // Supervision hooks: retry snapshots are ckpt per-shard sections, so a
  // supervised retry is a checkpoint restore scoped to one shard.
  failsafe::ShardHooks hooks;
  hooks.network_id = [this](std::size_t i) {
    return static_cast<std::uint64_t>(shards_[i]->id().value());
  };
  hooks.snapshot = [this](std::size_t i) {
    ckpt::Buf b;
    ckpt::save_shard_state(b, *shards_[i]);
    return b.take();
  };
  hooks.restore = [this](std::size_t i, const std::vector<std::uint8_t>& bytes) {
    ckpt::Cursor c(bytes);
    return ckpt::load_shard_state(c, *shards_[i]);
  };
  hooks.ledger = [this](std::size_t i) { return shards_[i]->loss_ledger(); };
  supervisor_.configure(config_.supervision, shards_.size(), std::move(hooks));

  record_phase("build", build_watch.seconds());
}

void FleetRunner::record_phase(const char* phase, double seconds) {
  profiler_.record(phase, seconds);
  telemetry::global_profiler().record(phase, seconds);
}

namespace {
// Process-global, installed from the orchestrating thread before campaigns
// start (see set_campaign_phase_hook's contract).
FleetRunner::CampaignPhaseHook& campaign_phase_hook() {
  static FleetRunner::CampaignPhaseHook hook;
  return hook;
}
}  // namespace

void FleetRunner::set_campaign_phase_hook(CampaignPhaseHook hook) {
  campaign_phase_hook() = std::move(hook);
}

void FleetRunner::notify_phase(const char* phase) {
  if (auto& hook = campaign_phase_hook()) hook(*this, phase);
}

void FleetRunner::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  const auto n_workers = static_cast<std::size_t>(std::max(1, config_.threads));
  if (n_workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  const std::size_t n = std::min(n_workers, count);
  pool.reserve(n);
  for (std::size_t t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

void FleetRunner::for_each_shard(const std::function<void(NetworkShard&)>& fn) {
  parallel_for(shards_.size(), [&](std::size_t i) { fn(*shards_[i]); });
}

void FleetRunner::run_supervised(const char* phase,
                                 const std::function<void(NetworkShard&)>& fn) {
  supervisor_.run_phase(
      phase, sim_now_us(), [&](std::size_t i) { fn(*shards_[i]); },
      [&](const std::function<void(std::size_t)>& body) {
        parallel_for(shards_.size(), body);
      });
}

backend::ReportStore& FleetRunner::store() {
  if (store_stale_) {
    // Materialize the legacy row view from the segments: exact round-trip,
    // canonical order, so readers of either view see identical bytes.
    store_ = backend::ReportStore{};
    fleet_tsdb_.for_each([&](const wire::ApReport& report) { store_.add(report); });
    store_stale_ = false;
  }
  return store_;
}

void FleetRunner::seal_shard(std::size_t i) {
  backend::ReportStore& local = shards_[i]->store();
  if (local.report_count() == 0) return;
  fleet_tsdb_.append_store(shards_[i]->id().value(), std::move(local));
  store_stale_ = true;
}

void FleetRunner::incremental_harvest() {
  const telemetry::Stopwatch watch;
  const std::int64_t now_us = sim_now_us();
  // Drains are shard-confined (poller + tunnels + local store), so they fan
  // out like campaigns; sealing then runs serially in fleet order, so the
  // vault's segment sequence is independent of worker scheduling.
  parallel_for(shards_.size(), [&](std::size_t i) {
    if (supervisor_.quarantined(i)) return;
    shards_[i]->drain_connected(now_us);
  });
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (supervisor_.quarantined(i)) continue;
    seal_shard(i);
  }
  if (const tsdb::Error err = fleet_tsdb_.maybe_spill()) {
    // An unwritable spill dir is an I/O problem, not a simulation problem:
    // segments stay resident (correct, just over budget) and the operator
    // hears about it once per failing phase.
    std::fprintf(stderr, "wlm: tsdb spill failed (%s): %s\n",
                 tsdb::status_name(err.status), err.detail.c_str());
  }
  record_phase("incremental_harvest", watch.seconds());
}

ApRuntime* FleetRunner::find_ap(ApId id) {
  const auto it = ap_lookup_.find(id.value());
  return it == ap_lookup_.end() ? nullptr : it->second;
}

std::size_t FleetRunner::client_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->client_count();
  return total;
}

void FleetRunner::run_usage_week(int reports_per_week,
                                 const std::vector<traffic::UpdateSpike>& spikes) {
  const telemetry::Stopwatch watch;
  run_supervised("usage_week",
                 [&](NetworkShard& shard) { shard.run_usage_week(reports_per_week, spikes); });
  record_phase("usage_week", watch.seconds());
  campaign_sim_hours_ += Duration::days(7).as_hours();
  if (config_.mem_ceiling_mb > 0) incremental_harvest();
  notify_phase("usage_week");
}

void FleetRunner::snapshot_clients(SimTime t) {
  const telemetry::Stopwatch watch;
  run_supervised("snapshot", [&](NetworkShard& shard) { shard.snapshot_clients(t); });
  record_phase("snapshot", watch.seconds());
  if (config_.mem_ceiling_mb > 0) incremental_harvest();
  notify_phase("snapshot");
}

void FleetRunner::run_mr16_interference(SimTime t) {
  const telemetry::Stopwatch watch;
  run_supervised("mr16", [&](NetworkShard& shard) { shard.run_mr16_interference(t); });
  record_phase("mr16", watch.seconds());
  if (config_.mem_ceiling_mb > 0) incremental_harvest();
  notify_phase("mr16");
}

void FleetRunner::run_mr18_scan(SimTime t, double hour) {
  const telemetry::Stopwatch watch;
  run_supervised("mr18", [&](NetworkShard& shard) { shard.run_mr18_scan(t, hour); });
  record_phase("mr18", watch.seconds());
  if (config_.mem_ceiling_mb > 0) incremental_harvest();
  notify_phase("mr18");
}

void FleetRunner::run_link_windows(SimTime t) {
  const telemetry::Stopwatch watch;
  run_supervised("link_windows", [&](NetworkShard& shard) { shard.run_link_windows(t); });
  record_phase("link_windows", watch.seconds());
  if (config_.mem_ceiling_mb > 0) incremental_harvest();
  notify_phase("link_windows");
}

void FleetRunner::harvest(HarvestMode mode) {
  // Drain in parallel (each poller touches only its shard's tunnels and
  // store), then merge serially in fleet order: the global store's content
  // is then independent of worker scheduling.
  const telemetry::Stopwatch drain_watch;
  run_supervised("harvest_drain",
                 [mode](NetworkShard& shard) { shard.harvest_local(mode); });
  record_phase("harvest_drain", drain_watch.seconds());

  const telemetry::Stopwatch merge_watch;
  const std::int64_t now_us = sim_now_us();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // guard_merge is false for quarantined shards (their work is accounted
    // as lost_supervision, never merged) and for shards the harvest.merge
    // failpoint just quarantined. A quarantined shard may have sealed
    // batches earlier (streaming harvest runs before the failure): those
    // are dropped too, so no partial work reaches any analysis.
    if (!supervisor_.guard_merge(i, now_us)) {
      fleet_tsdb_.drop_network(shards_[i]->id().value());
      store_stale_ = true;
      continue;
    }
    seal_shard(i);
  }
  if (config_.mem_ceiling_mb > 0) {
    if (const tsdb::Error err = fleet_tsdb_.maybe_spill()) {
      std::fprintf(stderr, "wlm: tsdb spill failed (%s): %s\n",
                   tsdb::status_name(err.status), err.detail.c_str());
    }
  }

  // Rebuild the merged telemetry from scratch each harvest: shard registries
  // and recorders are cumulative, so re-merging (not appending) keeps a
  // second harvest from double-counting. Fleet order, like the store merge,
  // so the snapshot is bit-identical for any thread count. Quarantined
  // shards are excluded — their surviving peers' series must be identical
  // to a clean run's — and the supervisor then re-derives its own metrics
  // and spans from the manifest (nothing, on a clean run).
  metrics_.clear();
  trace_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (supervisor_.quarantined(i)) continue;
    metrics_.merge(shards_[i]->metrics());
    const auto spans = shards_[i]->recorder().snapshot();
    trace_.insert(trace_.end(), spans.begin(), spans.end());
  }
  // A quarantined shard still contributes its (reattributed) ledger view to
  // the fleet ledger gauges, so `wlmctl stats` reconciliation keeps closing.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!supervisor_.quarantined(i)) continue;
    const fault::LossLedger view =
        failsafe::ShardSupervisor::quarantined_view(shards_[i]->loss_ledger());
    metrics_.gauge("wlm_ledger_generated").add(static_cast<double>(view.generated));
    metrics_.gauge("wlm_ledger_shed").add(static_cast<double>(view.shed));
    metrics_.gauge("wlm_ledger_lost_reboot").add(static_cast<double>(view.lost_reboot));
    metrics_.gauge("wlm_ledger_lost_corruption")
        .add(static_cast<double>(view.lost_corruption));
    metrics_.gauge("wlm_ledger_lost_supervision")
        .add(static_cast<double>(view.lost_supervision));
  }
  supervisor_.publish(metrics_, trace_);
  metrics_.gauge("wlm_fleet_networks").set(static_cast<double>(shards_.size()));
  metrics_.gauge("wlm_fleet_aps").set(static_cast<double>(ap_ptrs_.size()));
  metrics_.gauge("wlm_fleet_clients").set(static_cast<double>(client_count()));
  metrics_.gauge("wlm_fleet_mesh_links").set(static_cast<double>(link_ptrs_.size()));
  // Segment-vault gauges. Only spill-invariant values belong here: where
  // the bytes live (resident vs spilled, spill file count) depends on the
  // ceiling pressing, and the export must be bit-identical across spill
  // on/off for a fixed config. Those splits stay on FleetStore::stats(),
  // for bench records and stderr.
  const tsdb::FleetStoreStats& ts = fleet_tsdb_.stats();
  metrics_.gauge("wlm_tsdb_segments_sealed").set(static_cast<double>(ts.segments_sealed));
  metrics_.gauge("wlm_tsdb_reports").set(static_cast<double>(ts.reports));
  metrics_.gauge("wlm_tsdb_raw_wire_bytes").set(static_cast<double>(ts.raw_wire_bytes));
  metrics_.gauge("wlm_tsdb_segment_bytes").set(static_cast<double>(ts.segment_bytes()));
  metrics_.gauge("wlm_tsdb_compression_ratio").set(ts.compression_ratio());
  record_phase("harvest_merge", merge_watch.seconds());
  notify_phase("harvest");
}

std::vector<SeriesPoint> FleetRunner::link_week_series(std::size_t link_index,
                                                       Duration step) {
  std::vector<SeriesPoint> series;
  if (link_index >= link_ptrs_.size()) return series;
  MeshLink& link = *link_ptrs_[link_index];
  ApRuntime* receiver = find_ap(link.to());
  if (receiver == nullptr) return series;
  for (SimTime t; t < SimTime::epoch() + Duration::days(7); t += step) {
    ProbeOutcomeModel model;
    model.receiver_utilization = serving_utilization(*receiver, link.band(), t.hour_of_day());
    model.hidden_fraction = ProbeOutcomeModel::default_hidden_fraction(link.band());
    const auto window = link.measure_window(model);
    series.push_back(SeriesPoint{t.since_epoch().as_hours(), window.ratio()});
  }
  return series;
}

std::uint64_t FleetRunner::flows_classified() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->flows_classified();
  return total;
}

std::uint64_t FleetRunner::flows_misclassified() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->flows_misclassified();
  return total;
}

fault::LossLedger FleetRunner::loss_ledger() const {
  fault::LossLedger total;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const fault::LossLedger shard_ledger = shards_[i]->loss_ledger();
    total.merge(supervisor_.quarantined(i)
                    ? failsafe::ShardSupervisor::quarantined_view(shard_ledger)
                    : shard_ledger);
  }
  return total;
}

void FleetRunner::restore_supervision(failsafe::DegradedRunManifest manifest) {
  supervisor_.restore_manifest(std::move(manifest));
}

double FleetRunner::mean_report_bytes_per_ap() const {
  if (ap_ptrs_.empty()) return 0.0;
  double total = 0.0;
  for (const ApRuntime* ap : ap_ptrs_) {
    total += static_cast<double>(ap->tunnel().stats().bytes_delivered);
  }
  return total / static_cast<double>(ap_ptrs_.size());
}

}  // namespace wlm::sim
