// The fleet runtime: partitions a generated fleet into per-network shards,
// fans campaigns out across a worker pool, and merges the shard-local report
// stores into one backend store at harvest.
//
// Determinism contract: for a fixed WorldConfig (minus `threads`), every
// byte of simulated output is identical for any thread count, including 1.
// Three properties carry that guarantee:
//   1. each shard draws its RNG from a substream keyed by the network id,
//      so no draw depends on cross-shard scheduling;
//   2. every mutable object a campaign touches (APs, tunnels, poller, store)
//      is confined to its shard, so workers never contend;
//   3. harvest merges shard stores in fleet order, so the global store's
//      contents are independent of which worker ran which shard.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/report_source.hpp"
#include "backend/store.hpp"
#include "core/ptr_span.hpp"
#include "deploy/generator.hpp"
#include "failsafe/supervisor.hpp"
#include "sim/network_shard.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "tsdb/fleet_store.hpp"

namespace wlm::sim {

struct WorldConfig {
  deploy::FleetConfig fleet;
  /// Scales clients per AP (1.0 = the industry-calibrated counts).
  /// Negative or NaN values clamp to 0 at construction.
  double client_scale = 1.0;
  std::uint64_t seed = 7;
  /// Legacy shorthand for faults.flap_fraction: the fraction of tunnels
  /// that experience a one-shot WAN flap during a campaign. Folded into
  /// `faults` at construction (kept so existing callers stay source
  /// compatible); `faults.flap_fraction` wins when both are set.
  double wan_flap_fraction = 0.0;
  /// Fault scenario applied per shard; all-zeros runs a clean campaign.
  fault::FaultSpec faults;
  /// Classification engine every shard runs (indexed fast path by default;
  /// reference keeps the linear oracle). Verdicts are identical in both.
  classify::ClassifierMode classifier = classify::ClassifierMode::kIndexed;
  /// Per-shard verdict cache bound; any value >= 1 is verdict-equivalent.
  std::size_t verdict_cache_capacity = classify::VerdictCache::kDefaultCapacity;
  /// PER evaluation path for mesh-link probes (table fast path by default;
  /// reference recomputes the scalar). Outputs are byte-identical in both.
  phy::PerMode per_mode = phy::PerMode::kTable;
  /// Client mobility: random-waypoint walks + occupancy-wave handoffs.
  /// Disabled by default; disabled runs are byte-identical to pre-mobility
  /// builds (mobility draws live in their own salted substream).
  mobility::MobilityConfig mobility;
  /// Mesh backhaul: a fraction of each network's APs lose their WAN uplink
  /// and relay report batches hop by hop to gateway APs. Disabled by
  /// default (mesh_fraction == 0); disabled runs are byte-identical to
  /// pre-mesh builds (mesh draws live in their own salted substream).
  mesh::MeshConfig mesh;
  /// Worker threads for shard campaigns; 1 runs fully serial. Output is
  /// bit-identical regardless of this value.
  int threads = 1;
  /// Per-shard memory ceiling in MiB; 0 runs the classic hold-until-final
  /// harvest. Nonzero turns on streaming harvest: every campaign phase
  /// boundary drains connected tunnels, seals each shard's batch into a
  /// columnar tsdb segment, releases the shard's row store, and spills
  /// sealed segments to `spill_dir` when resident segment bytes press the
  /// ceiling. The on/off bit is determinism-relevant (phase drains add poll
  /// cycles) and is checkpointed; the value itself is a host resource knob
  /// like `threads` — output is bit-identical for ANY nonzero ceiling,
  /// across thread counts, and across spill on/off.
  std::uint64_t mem_ceiling_mb = 0;
  /// Where sealed segments spill when the ceiling presses (see above).
  std::string spill_dir = ".";
  /// Shard supervision knobs (retry budget, watchdog deadline, snapshot
  /// capture). Defaults supervise without snapshots: a failing shard is
  /// isolated and quarantined rather than retried. A clean campaign's
  /// output is byte-identical whatever these are set to.
  failsafe::SupervisorConfig supervision;
};

/// Delivery-ratio time series sample for one link (Figures 4/5).
struct SeriesPoint {
  double hour_of_week = 0.0;
  double ratio = 0.0;
};

class FleetRunner {
 public:
  explicit FleetRunner(WorldConfig config);

  // --- structure ---
  [[nodiscard]] const WorldConfig& config() const { return config_; }
  [[nodiscard]] deploy::Epoch epoch() const { return config_.fleet.epoch; }
  [[nodiscard]] const deploy::Fleet& fleet() const { return fleet_; }
  [[nodiscard]] const std::vector<std::unique_ptr<NetworkShard>>& shards() const {
    return shards_;
  }
  /// All AP runtimes across shards, in fleet order (flat non-owning view).
  [[nodiscard]] PtrSpan<ApRuntime> aps() { return {ap_ptrs_.data(), ap_ptrs_.size()}; }
  [[nodiscard]] PtrSpan<const ApRuntime> aps() const {
    return {ap_ptrs_.data(), ap_ptrs_.size()};
  }
  [[nodiscard]] PtrSpan<MeshLink> mesh_links() {
    return {link_ptrs_.data(), link_ptrs_.size()};
  }
  /// Legacy row view of the harvested fleet. Reports live in columnar tsdb
  /// segments after harvest(); the first store() call after a segment
  /// change materializes them back into rows (canonical order, exact
  /// round-trip). Prefer reports() — it reads the segments directly, one
  /// network resident at a time.
  [[nodiscard]] backend::ReportStore& store();
  /// The harvested fleet as a columnar read source (backend/report_source
  /// contract: canonical order, byte-identical to store()'s view).
  [[nodiscard]] const backend::ReportSource& reports() const { return fleet_tsdb_; }
  /// Segment vault access for checkpointing and bench accounting.
  [[nodiscard]] const tsdb::FleetStore& fleet_tsdb() const { return fleet_tsdb_; }
  [[nodiscard]] tsdb::FleetStore& fleet_tsdb() { return fleet_tsdb_; }
  /// Marks the legacy row view stale (checkpoint restore adopts segments
  /// behind store()'s back).
  void invalidate_store_view() { store_stale_ = true; }
  [[nodiscard]] std::size_t client_count() const;
  [[nodiscard]] ApRuntime* find_ap(ApId id);

  // --- campaigns: each fans out shard-by-shard across the worker pool ---

  /// The one-week usage study (Tables 3/5/6): generates each client's
  /// weekly workload, classifies its flows AT THE AP with the real parsers
  /// and rule engine, and emits `reports_per_week` usage reports per AP.
  /// `spikes` injects fleet-wide software-update events (paper §6.2).
  void run_usage_week(int reports_per_week = 7,
                      const std::vector<traffic::UpdateSpike>& spikes = {});

  /// Associated-client snapshot (Figure 1 / Table 4): capabilities + RSSI.
  void snapshot_clients(SimTime t);

  /// MR16-style interference measurement: serving-channel utilization plus
  /// the neighbor scan table (Figures 2/6, Table 7).
  void run_mr16_interference(SimTime t);

  /// MR18-style dedicated-radio scan window across all channels
  /// (Figures 7/8/9/10). `hour` selects day/night activity.
  void run_mr18_scan(SimTime t, double hour);

  /// Link-probe windows for every mesh link, recorded at the receiver and
  /// reported (Figure 3).
  void run_link_windows(SimTime t);

  /// Drains each shard's tunnels into its local store in parallel, then
  /// merges the shard stores into the global store in fleet order. kFinal
  /// reconnects every tunnel first (queued reports must survive a WAN
  /// outage, per the paper's §2 design); kWeekEnd leaves APs inside a
  /// still-open outage offline, their backlog in flight.
  void harvest(HarvestMode mode = HarvestMode::kFinal);

  /// Delivery-ratio time series for one link across a simulated week
  /// (Figures 4/5); `link_index` indexes the flat mesh_links() view.
  [[nodiscard]] std::vector<SeriesPoint> link_week_series(std::size_t link_index,
                                                          Duration step);

  // --- pipeline statistics ---
  [[nodiscard]] std::uint64_t flows_classified() const;
  [[nodiscard]] std::uint64_t flows_misclassified() const;
  /// Total framed bytes enqueued per AP over the last usage campaign, for
  /// the ~1 kbit/s overhead claim.
  [[nodiscard]] double mean_report_bytes_per_ap() const;
  /// Fleet-wide end-to-end loss accounting, summed over shards in fleet
  /// order (see fault::LossLedger for the conservation invariant). A
  /// quarantined shard contributes its quarantined view: delivered and
  /// in-flight work moves to lost_supervision, keeping the fleet invariant
  /// closed while naming what supervision cost.
  [[nodiscard]] fault::LossLedger loss_ledger() const;

  // --- supervision ---

  /// The shard supervision layer: exception isolation, watchdog deadlines,
  /// checkpoint-based retry, quarantine (see failsafe::ShardSupervisor).
  /// Every campaign phase runs through it.
  [[nodiscard]] const failsafe::ShardSupervisor& supervisor() const { return supervisor_; }
  [[nodiscard]] failsafe::ShardSupervisor& supervisor() { return supervisor_; }
  /// Checkpoint restore: adopt a saved degraded-run manifest and rebuild
  /// the quarantine set from it.
  void restore_supervision(failsafe::DegradedRunManifest manifest);

  // --- telemetry ---

  /// Merged fleet metrics, rebuilt from the shard registries (in fleet
  /// order) at every harvest(). Empty before the first harvest. Like the
  /// store, the snapshot is bit-identical for any thread count.
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  /// Mutable access for checkpoint restore (overlays the merged snapshot).
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  /// Merged trace spans, shard-major in fleet order, same rebuild rule.
  [[nodiscard]] const std::vector<telemetry::TraceSpan>& trace() const { return trace_; }
  [[nodiscard]] std::vector<telemetry::TraceSpan>& trace() { return trace_; }
  /// Wall-clock phase breakdown (build, campaigns, harvest). Real elapsed
  /// time: NOT deterministic, and never part of metrics()/trace().
  [[nodiscard]] const telemetry::PhaseProfiler& profiler() const { return profiler_; }

  // --- campaign progress ---

  /// Simulated hours covered by campaigns so far (usage weeks contribute
  /// 168 h each; instantaneous snapshots contribute none). Checkpoint
  /// cadence (`--checkpoint-every <sim-hours>`) keys off this.
  [[nodiscard]] double campaign_sim_hours() const { return campaign_sim_hours_; }
  /// Restore-side overwrite, paired with the checkpoint's progress record.
  void set_campaign_sim_hours(double hours) { campaign_sim_hours_ = hours; }

  /// Process-global hook invoked on the orchestrating thread after every
  /// campaign phase (and harvest) completes, when shards are quiescent —
  /// exactly the boundary where a checkpoint cut is safe. Used by
  /// bench_common's auto-checkpointer; pass nullptr to clear. Not
  /// thread-safe against concurrently running campaigns: install it before
  /// the campaign starts.
  using CampaignPhaseHook = std::function<void(FleetRunner&, const char* phase)>;
  static void set_campaign_phase_hook(CampaignPhaseHook hook);

 private:
  WorldConfig config_;
  deploy::Fleet fleet_;
  std::vector<std::unique_ptr<NetworkShard>> shards_;
  std::vector<ApRuntime*> ap_ptrs_;
  std::vector<MeshLink*> link_ptrs_;
  std::unordered_map<std::uint32_t, ApRuntime*> ap_lookup_;
  tsdb::FleetStore fleet_tsdb_;
  backend::ReportStore store_;
  /// True when segments changed since store_ was last materialized.
  bool store_stale_ = false;
  telemetry::MetricsRegistry metrics_;
  std::vector<telemetry::TraceSpan> trace_;
  telemetry::PhaseProfiler profiler_;
  failsafe::ShardSupervisor supervisor_;
  double campaign_sim_hours_ = 0.0;

  /// Runs `fn(i)` for every i in [0, count) on the worker pool (serial when
  /// threads <= 1). `fn` must confine itself to shard i's state.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);
  void for_each_shard(const std::function<void(NetworkShard&)>& fn);
  /// Campaign-phase dispatch under supervision: fans `fn` out across the
  /// worker pool with per-shard exception isolation, then lets the
  /// supervisor restore/retry/quarantine failed shards in fleet order.
  void run_supervised(const char* phase, const std::function<void(NetworkShard&)>& fn);
  /// Streaming harvest (mem_ceiling_mb > 0): drains connected tunnels in
  /// parallel, seals each shard's batch into the segment vault in fleet
  /// order, releases the shard row stores, and spills if the ceiling
  /// presses. Runs at every campaign phase boundary, before the phase hook,
  /// so checkpoint cuts see sealed segments.
  void incremental_harvest();
  /// Seals one shard's local store into the vault (no-op when empty).
  void seal_shard(std::size_t i);
  /// Sim-time stamp for supervision incidents/spans: the campaign clock at
  /// the current phase's start.
  [[nodiscard]] std::int64_t sim_now_us() const {
    return static_cast<std::int64_t>(campaign_sim_hours_ * 3.6e9);
  }
  /// Records a wall-clock phase into this runner's profiler and the
  /// process-wide one (telemetry::global_profiler), which bench mains dump.
  void record_phase(const char* phase, double seconds);
  /// Fires the process-global campaign phase hook (if any) with this runner.
  void notify_phase(const char* phase);
};

}  // namespace wlm::sim
