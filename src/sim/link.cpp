#include "sim/link.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace wlm::sim {

MeshLink::MeshLink(ApId from, ApId to, LinkBudget budget, Rng rng, phy::PerMode per_mode)
    : from_(from),
      to_(to),
      budget_(budget),
      rng_(rng),
      per_mode_(per_mode),
      // Multipath: Rician K ~ 6 dB indoors, mild probe-to-probe correlation
      // (15 s apart). Slow drift: high coherence, small swing via K.
      fast_fading_(rng_.fork(), 6.0, 0.35),
      slow_drift_(rng_.fork(), 11.0, 0.997) {
  advance();
}

void MeshLink::advance() {
  current_fast_db_ = fast_fading_.next_gain_db();
  current_slow_db_ = slow_drift_.next_gain_db() * 2.5;  // amplify drift swing
}

double MeshLink::delivery_probability(const ProbeOutcomeModel& model) {
  const bool is5 = budget_.band == phy::Band::k5GHz;
  const double rx = budget_.median_rx_dbm + current_fast_db_ + current_slow_db_;
  const double noise = phy::noise_floor(20.0).dbm();
  const double sinr = rx - noise;
  const auto modulation = is5 ? phy::Modulation::kOfdm6 : phy::Modulation::kDsss1;
  const double per = phy::packet_error_rate(modulation, sinr, 60);
  const double p_collision =
      std::clamp(model.receiver_utilization * model.hidden_fraction, 0.0, 1.0);
  return (1.0 - per) * (1.0 - p_collision);
}

bool MeshLink::probe_with(const ProbeOutcomeModel& model, double u) {
  // The SINR uses the pre-advance fading state, exactly like the original
  // delivery_probability()-then-advance() sequence did.
  const bool is5 = budget_.band == phy::Band::k5GHz;
  const double rx = budget_.median_rx_dbm + current_fast_db_ + current_slow_db_;
  const double noise = phy::noise_floor(20.0).dbm();
  const double sinr = rx - noise;
  const auto modulation = is5 ? phy::Modulation::kOfdm6 : phy::Modulation::kDsss1;
  const double p_collision =
      std::clamp(model.receiver_utilization * model.hidden_fraction, 0.0, 1.0);
  advance();
  if (per_mode_ == phy::PerMode::kTable) {
    if (const auto b = phy::probe_per_table(modulation).bounds(sinr)) {
      // Delivery p = (1 - per) * (1 - p_collision) is monotone decreasing
      // in per, and IEEE rounding preserves monotonicity, so the PER
      // bracket maps straight to a delivery-probability bracket. A draw
      // that clears the bracket is decided without touching pow/erfc.
      const double p_lo = (1.0 - b->hi) * (1.0 - p_collision);
      const double p_hi = (1.0 - b->lo) * (1.0 - p_collision);
      if (u < p_lo) return true;
      if (u >= p_hi) return false;
    }
  }
  const double per = phy::packet_error_rate(modulation, sinr, 60);
  return u < (1.0 - per) * (1.0 - p_collision);
}

bool MeshLink::probe_once(const ProbeOutcomeModel& model) {
  // rng_ and the fading generators are independent streams, so drawing the
  // probe uniform up front is sequence-identical to the original
  // advance()-then-chance() order.
  return probe_with(model, rng_.uniform());
}

MeshLink::WindowResult MeshLink::measure_window(const ProbeOutcomeModel& model, int probes) {
  WindowResult result;
  result.expected = probes;
  if (probes <= 0) return result;
  // Prefetch the whole window's probe draws in one batch. Each stream's
  // sequence is unchanged (fill_uniform is definitionally the scalar
  // sequence, and the fading processes own independent generators), so the
  // window result is bit-identical to per-probe draws.
  double stack_buf[64];
  std::vector<double> heap_buf;
  std::span<double> draws;
  if (probes <= 64) {
    draws = std::span<double>(stack_buf, static_cast<std::size_t>(probes));
  } else {
    heap_buf.resize(static_cast<std::size_t>(probes));
    draws = heap_buf;
  }
  rng_.fill_uniform(draws);
  for (const double u : draws) {
    if (probe_with(model, u)) ++result.received;
  }
  return result;
}

LinkBudget compute_link_budget(const phy::Position& a, const phy::Position& b, int walls,
                               phy::Band band, double tx_power_dbm,
                               const phy::PathLossModel& model, Rng& rng) {
  LinkBudget budget;
  budget.band = band;
  const double d = phy::distance_m(a, b);
  const auto freq = band == phy::Band::k5GHz ? FrequencyMhz{5250.0} : FrequencyMhz{2437.0};
  const double antenna_gain = band == phy::Band::k5GHz ? 5.0 : 3.0;  // Table 1 antennas
  const double loss = model.median_loss_db(d, freq, walls);
  budget.median_rx_dbm =
      tx_power_dbm + 2.0 * antenna_gain - loss + phy::draw_shadowing_db(rng, model);
  return budget;
}

}  // namespace wlm::sim
