#include "sim/link.hpp"

#include <algorithm>
#include <cmath>

namespace wlm::sim {

MeshLink::MeshLink(ApId from, ApId to, LinkBudget budget, Rng rng)
    : from_(from),
      to_(to),
      budget_(budget),
      rng_(rng),
      // Multipath: Rician K ~ 6 dB indoors, mild probe-to-probe correlation
      // (15 s apart). Slow drift: high coherence, small swing via K.
      fast_fading_(rng_.fork(), 6.0, 0.35),
      slow_drift_(rng_.fork(), 11.0, 0.997) {
  advance();
}

void MeshLink::advance() {
  current_fast_db_ = fast_fading_.next_gain_db();
  current_slow_db_ = slow_drift_.next_gain_db() * 2.5;  // amplify drift swing
}

double MeshLink::delivery_probability(const ProbeOutcomeModel& model) {
  const bool is5 = budget_.band == phy::Band::k5GHz;
  const double rx = budget_.median_rx_dbm + current_fast_db_ + current_slow_db_;
  const double noise = phy::noise_floor(20.0).dbm();
  const double sinr = rx - noise;
  const auto modulation = is5 ? phy::Modulation::kOfdm6 : phy::Modulation::kDsss1;
  const double per = phy::packet_error_rate(modulation, sinr, 60);
  const double p_collision =
      std::clamp(model.receiver_utilization * model.hidden_fraction, 0.0, 1.0);
  return (1.0 - per) * (1.0 - p_collision);
}

bool MeshLink::probe_once(const ProbeOutcomeModel& model) {
  const double p = delivery_probability(model);
  advance();
  return rng_.chance(p);
}

MeshLink::WindowResult MeshLink::measure_window(const ProbeOutcomeModel& model, int probes) {
  WindowResult result;
  result.expected = probes;
  for (int i = 0; i < probes; ++i) {
    if (probe_once(model)) ++result.received;
  }
  return result;
}

LinkBudget compute_link_budget(const phy::Position& a, const phy::Position& b, int walls,
                               phy::Band band, double tx_power_dbm,
                               const phy::PathLossModel& model, Rng& rng) {
  LinkBudget budget;
  budget.band = band;
  const double d = phy::distance_m(a, b);
  const auto freq = band == phy::Band::k5GHz ? FrequencyMhz{5250.0} : FrequencyMhz{2437.0};
  const double antenna_gain = band == phy::Band::k5GHz ? 5.0 : 3.0;  // Table 1 antennas
  const double loss = model.median_loss_db(d, freq, walls);
  budget.median_rx_dbm =
      tx_power_dbm + 2.0 * antenna_gain - loss + phy::draw_shadowing_db(rng, model);
  return budget;
}

}  // namespace wlm::sim
