// One directed mesh link between two fleet APs on a shared channel, with a
// static budget (path loss + shadowing), slow shadowing drift (hours), fast
// multipath fading (per probe), and interference-driven collision loss.
#pragma once

#include "core/rng.hpp"
#include "core/time.hpp"
#include "core/ids.hpp"
#include "phy/channel.hpp"
#include "phy/modulation.hpp"
#include "phy/per_table.hpp"
#include "phy/propagation.hpp"

namespace wlm::sim {

struct LinkBudget {
  double median_rx_dbm = -80.0;  // tx power - path loss - walls + shadowing
  phy::Band band = phy::Band::k2_4GHz;
};

/// Probability model for one probe transmission.
struct ProbeOutcomeModel {
  /// Channel busy fraction at the receiver (collision exposure).
  double receiver_utilization = 0.0;
  /// Fraction of the busy time hidden from the sender (CSMA cannot defer).
  double hidden_fraction = 0.55;

  /// Band defaults: 2.4 GHz propagates through more walls it cannot carrier-
  /// sense across (more hidden terminals); 5 GHz cells are smaller and the
  /// OFDM preamble detection more uniform.
  [[nodiscard]] static double default_hidden_fraction(phy::Band band) {
    return band == phy::Band::k5GHz ? 0.25 : 0.55;
  }
};

class MeshLink {
 public:
  /// `per_mode` picks the PER evaluation path for probe outcomes: kTable
  /// consults the shared SINR->PER lookup (guarded-exact, byte-identical
  /// booleans), kReference recomputes the scalar PER per probe. Probe
  /// results, RNG consumption, and checkpoint state are identical in both.
  MeshLink(ApId from, ApId to, LinkBudget budget, Rng rng,
           phy::PerMode per_mode = phy::PerMode::kTable);

  [[nodiscard]] ApId from() const { return from_; }
  [[nodiscard]] ApId to() const { return to_; }
  [[nodiscard]] phy::Band band() const { return budget_.band; }
  [[nodiscard]] double median_rx_dbm() const { return budget_.median_rx_dbm; }

  /// Simulates one probe at hour `hour`; advances the fading processes.
  [[nodiscard]] bool probe_once(const ProbeOutcomeModel& model);

  /// Simulates a full 300 s window (20 probes); returns (expected, received).
  struct WindowResult {
    int expected = 0;
    int received = 0;
    [[nodiscard]] double ratio() const {
      return expected > 0 ? static_cast<double>(received) / expected : 0.0;
    }
  };
  [[nodiscard]] WindowResult measure_window(const ProbeOutcomeModel& model, int probes = 20);

  /// Current per-probe delivery probability (for tests/calibration).
  [[nodiscard]] double delivery_probability(const ProbeOutcomeModel& model);

  /// Mutable link state for checkpoint/restore. The budget and endpoints are
  /// construction-time configuration; only the RNG and the two fading
  /// processes evolve as probes run.
  struct State {
    Rng::State rng;
    phy::FadingProcess::State fast_fading;
    phy::FadingProcess::State slow_drift;
    double current_fast_db = 0.0;
    double current_slow_db = 0.0;

    bool operator==(const State&) const = default;
  };
  [[nodiscard]] State state() const {
    return State{rng_.state(), fast_fading_.state(), slow_drift_.state(),
                 current_fast_db_, current_slow_db_};
  }
  void restore(const State& state) {
    rng_.restore(state.rng);
    fast_fading_.restore(state.fast_fading);
    slow_drift_.restore(state.slow_drift);
    current_fast_db_ = state.current_fast_db;
    current_slow_db_ = state.current_slow_db;
  }

 private:
  ApId from_;
  ApId to_;
  LinkBudget budget_;
  Rng rng_;
  phy::PerMode per_mode_;
  phy::FadingProcess fast_fading_;  // multipath, decorrelates probe to probe
  phy::FadingProcess slow_drift_;   // doors/people/inventory, hours timescale
  double current_fast_db_ = 0.0;
  double current_slow_db_ = 0.0;

  void advance();
  /// One probe with the uniform draw `u` supplied by the caller; shared by
  /// probe_once (scalar draw) and measure_window (batched draws).
  [[nodiscard]] bool probe_with(const ProbeOutcomeModel& model, double u);
};

/// Static link budget between two APs in the same site.
[[nodiscard]] LinkBudget compute_link_budget(const phy::Position& a, const phy::Position& b,
                                             int walls, phy::Band band, double tx_power_dbm,
                                             const phy::PathLossModel& model, Rng& rng);

}  // namespace wlm::sim
