#include "sim/network_shard.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "classify/dhcp.hpp"
#include "classify/oui.hpp"
#include "failsafe/failpoint.hpp"
#include "classify/user_agent.hpp"
#include "mac/beacon_frame.hpp"
#include "scan/scanner.hpp"
#include "telemetry/profile.hpp"
#include "traffic/broadcast.hpp"
#include "traffic/os_model.hpp"
#include "traffic/sessions.hpp"
#include "traffic/workload.hpp"

namespace wlm::sim {

namespace {

/// Client radios transmit well below an AP (battery, antenna): 15 dBm EIRP.
constexpr double kClientTxDbm = 15.0;
/// Extra uplink loss vs the downlink beacon path: body absorption, pocket/
/// desk orientation, and the elevation mismatch against a ceiling antenna.
constexpr double kClientBodyLossDb = 9.0;

/// Effective MAC-layer throughput used to convert offered bytes into duty.
double effective_rate_mbps(phy::Band band) {
  return band == phy::Band::k5GHz ? 80.0 : 20.0;
}

std::uint8_t band_code(phy::Band band) { return band == phy::Band::k5GHz ? 1 : 0; }

}  // namespace

double serving_utilization(const ApRuntime& ap, phy::Band band, double hour) {
  const auto& plan = phy::ChannelPlan::us();
  const int number = band == phy::Band::k5GHz ? ap.config().channel_5 : ap.config().channel_24;
  const auto channel = plan.find(band, number);
  if (!channel) return 0.0;
  const auto env = ap.environment(hour);
  const auto activity = env.activity_on(*channel, hour);
  const auto counters = scan::measure_serving_channel(
      activity, Duration::minutes(5), ap.tx_duty(band, hour), phy::noise_floor(20.0));
  return counters.utilization();
}

namespace {
/// Salt separating the fault substreams from the campaign substreams; both
/// are keyed by the network id below it.
constexpr std::uint64_t kFaultSeedSalt = 0xFA171FA171FA17ULL;
}  // namespace

NetworkShard::NetworkShard(const deploy::NetworkConfig& net, const ShardConfig& config)
    : net_(&net), config_(config),
      rng_(Rng::substream(config.seed, net.id.value())), poller_(store_),
      classifier_(config.classifier, config.verdict_cache_capacity) {
  config_.faults = config_.faults.clamped();
  config_.mobility = config_.mobility.clamped();
  config_.mesh = config_.mesh.clamped();
  pathloss_.exponent = 3.2;
  pathloss_.shadowing_sigma_db = 7.0;

  if (config_.mobility.enabled) {
    // Same substream discipline as the fault layer: mobility draws come
    // from a dedicated salted stream, so campaigns consume exactly the
    // same randomness with mobility on or off.
    mobility_rng_ =
        Rng::substream(config_.seed ^ mobility::kMobilitySeedSalt, net_->id.value());
  }
  if (config_.mesh.enabled()) {
    // Same discipline again for the mesh backhaul: gateway selection and
    // per-phase link drift draw from their own salted stream.
    mesh_rng_ = Rng::substream(config_.seed ^ mesh::kMeshSeedSalt, net_->id.value());
  }

  aps_.reserve(net_->aps.size());
  for (const auto& ap : net_->aps) {
    ap_index_[ap.id.value()] = aps_.size();
    aps_.emplace_back(ap, net_->id, net_->industry, config_.faults.tunnel_queue_limit);
  }
  // aps_ never grows after this point; tunnel pointers stay valid.
  for (auto& ap : aps_) poller_.attach(ap.tunnel());
  poller_.bind_telemetry(&metrics_, &recorder_);

  if (config_.faults.enabled()) {
    // The plan and the runtime fault draws come from a dedicated substream
    // pair: campaigns consume exactly the same randomness with faults on or
    // off, so a faulted run perturbs only what the faults themselves touch.
    Rng fault_stream = Rng::substream(config_.seed ^ kFaultSeedSalt, net_->id.value());
    injector_ = fault::FaultInjector(
        config_.faults, fault::FaultPlan::build(config_.faults, fault_stream.fork(), aps_.size()));
    fault_rng_ = fault_stream.fork();
    std::vector<std::uint64_t> ap_entities;
    ap_entities.reserve(aps_.size());
    for (const auto& ap : aps_) ap_entities.push_back(ap.id().value());
    injector_.bind_telemetry(&metrics_, &recorder_, std::move(ap_entities));
  }

  build_clients();
  build_duties_and_peers();
  build_links();

  if (config_.mesh.enabled()) {
    // Mesh membership draws in AP index order from the dedicated substream.
    // Index 0 is always a gateway, so a network never loses its last uplink.
    is_mesh_.assign(aps_.size(), false);
    for (std::size_t i = 1; i < aps_.size(); ++i) {
      is_mesh_[i] = mesh_rng_.chance(config_.mesh.mesh_fraction);
    }
    mesh_busy_until_us_.assign(aps_.size(), 0);
    mesh_enqueued_by_hops_.assign(static_cast<std::size_t>(config_.mesh.max_hops) + 1, 0);
  }
}

ApRuntime* NetworkShard::find_ap(ApId id) {
  const auto it = ap_index_.find(id.value());
  return it == ap_index_.end() ? nullptr : &aps_[it->second];
}

void NetworkShard::build_clients() {
  const deploy::PopulationModel population(epoch(), config_.mobility.roam_probability);
  const auto n_clients = static_cast<int>(
      net_->clients_per_ap * static_cast<double>(net_->aps.size()) * config_.client_scale + 0.5);
  const mac::AssociationPolicy policy;
  if (config_.mobility.enabled) mobility_roster_.resize(aps_.size());

  for (int i = 0; i < n_clients; ++i) {
    const ClientId cid{static_cast<std::uint32_t>((net_->id.value() << 16) | (i + 1))};
    deploy::ClientDevice device = population.sample(cid, rng_);
    // Place the client and evaluate every in-network BSS.
    const phy::Position pos{rng_.uniform(0.0, net_->site.width_m),
                            rng_.uniform(0.0, net_->site.height_m)};
    std::vector<mac::BssCandidate> candidates;
    for (ApRuntime& ap : aps_) {
      const double d = phy::distance_m(pos, ap.config().position);
      const int walls = static_cast<int>(d / 10.0 * net_->site.walls_per_10m);
      const double rx24 = ap.config().tx_power_24_dbm + 3.0 -
                          pathloss_.median_loss_db(d, FrequencyMhz{2437.0}, walls) +
                          rng_.normal(0.0, 3.0);
      candidates.push_back(mac::BssCandidate{ap.id(), phy::Band::k2_4GHz, PowerDbm{rx24}});
      // 5 GHz: more free-space loss and worse wall penetration.
      const double rx5 = ap.config().tx_power_5_dbm + 5.0 -
                         pathloss_.median_loss_db(d, FrequencyMhz{5250.0}, walls) -
                         static_cast<double>(walls) * 2.0 + rng_.normal(0.0, 3.0);
      candidates.push_back(mac::BssCandidate{ap.id(), phy::Band::k5GHz, PowerDbm{rx5}});
    }
    const auto result = mac::select_bss(candidates, device.caps.dual_band(), policy, rng_);
    if (!result) continue;  // out of coverage

    AssociatedClient client;
    client.device = device;
    client.band = result->band;
    // Uplink RSSI at the AP: client EIRP replaces the AP's; the path is
    // reciprocal, so reuse the downlink loss implied by the beacon RSSI.
    ApRuntime& home = aps_[ap_index_[result->ap.value()]];
    const double ap_tx = result->band == phy::Band::k5GHz
                             ? home.config().tx_power_5_dbm + 5.0
                             : home.config().tx_power_24_dbm + 3.0;
    client.rssi_at_ap_dbm =
        result->rssi.dbm() - ap_tx + kClientTxDbm + 3.0 - kClientBodyLossDb;

    // Device-typing evidence as the AP's slow path would collect it: the
    // client emits real DHCP packets, which the AP parses off the wire.
    classify::ClientEvidence evidence;
    evidence.mac = device.mac;
    auto emit_dhcp = [&](classify::OsType os) {
      classify::DhcpPacket pkt;
      pkt.type = classify::DhcpMessageType::kDiscover;
      pkt.xid = static_cast<std::uint32_t>(rng_.next_u64());
      pkt.client_mac = device.mac;
      pkt.parameter_request_list = classify::canonical_dhcp_params(os);
      pkt.vendor_class = classify::canonical_vendor_class(os);
      const auto bytes = classify::encode_dhcp(pkt);
      if (const auto parsed = classify::parse_dhcp(bytes)) {
        evidence.dhcp_fingerprints.push_back(parsed->parameter_request_list);
      }
    };
    if (device.os == classify::OsType::kUnknown) {
      // The genuinely ambiguous population: dual-boot boxes, VM hosts,
      // headless embedded devices.
      if (rng_.chance(0.5)) {
        emit_dhcp(classify::OsType::kWindows);
        emit_dhcp(classify::OsType::kLinux);
      }
    } else {
      emit_dhcp(device.os);
      if (rng_.chance(0.8)) {
        evidence.user_agents.push_back(classify::canonical_user_agent(
            device.os, static_cast<unsigned>(rng_.next_u64() & 3)));
      }
    }
    // Indexed mode routes the evidence lookups through the exact-match
    // buckets; the decision procedure (and result) is the same either way.
    client.detected_os = classify::classify_os(
        evidence, classify::HeuristicsVersion::k2015,
        config_.classifier == classify::ClassifierMode::kIndexed ? &classify::RuleIndex::standard()
                                                                 : nullptr);
    home.add_client(std::move(client));
    if (config_.mobility.enabled) {
      // Roster rides the already-drawn placement (no extra campaign draws);
      // pos == target parks the client until its first mobility step.
      const std::size_t home_idx = ap_index_[result->ap.value()];
      MobileClient entry;
      entry.walks = device.roams;
      entry.dual_band = device.caps.dual_band();
      entry.motion.pos = pos;
      entry.motion.target = pos;
      entry.serving_ap = home_idx;
      entry.serving_band = result->band;
      entry.pending_ap = home_idx;
      entry.pending_band = result->band;
      mobility_roster_[home_idx].push_back(entry);
    }
    ++client_count_;
  }
}

void NetworkShard::build_duties_and_peers() {
  // Offered load per AP -> duty, then peer tables. Broadcast chatter
  // (ARP/mDNS/SSDP at the 1 Mb/s basic rate, paper §6.3) rides on every
  // AP of the shared L2 domain, scaled by the network's client count.
  std::size_t net_clients = 0;
  for (const ApRuntime& ap : aps_) net_clients += ap.clients().size();
  const auto bcast = traffic::broadcast_load(static_cast<int>(net_clients),
                                             traffic::BroadcastProfile{},
                                             phy::Modulation::kDsss1);
  for (ApRuntime& ap : aps_) {
    double bytes_24 = 0.0;
    double bytes_5 = 0.0;
    const auto devices = ap.clients().devices();
    const auto bands = ap.clients().bands();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const double mb = traffic::os_usage(devices[i].os, epoch()).mb_per_client;
      (bands[i] == phy::Band::k5GHz ? bytes_5 : bytes_24) += mb * 1e6;
    }
    const double week_s = 7.0 * 24 * 3600;
    // x2 for MAC overhead, retries, and rate fallback.
    const double duty24 =
        bytes_24 * 8.0 * 2.0 / (week_s * effective_rate_mbps(phy::Band::k2_4GHz) * 1e6) +
        bcast.airtime_duty;
    const double duty5 =
        bytes_5 * 8.0 * 2.0 / (week_s * effective_rate_mbps(phy::Band::k5GHz) * 1e6);
    ap.set_tx_duty(duty24, duty5);
  }
  for (ApRuntime& ap : aps_) {
    std::vector<FleetPeer> peers;
    for (const ApRuntime& other : aps_) {
      if (&other == &ap) continue;
      const double d = phy::distance_m(ap.config().position, other.config().position);
      const int walls = static_cast<int>(d / 10.0 * net_->site.walls_per_10m);
      FleetPeer peer;
      peer.channel_24 = other.config().channel_24;
      peer.channel_5 = other.config().channel_5;
      peer.rx_power_24_dbm = other.config().tx_power_24_dbm + 6.0 -
                             pathloss_.median_loss_db(d, FrequencyMhz{2437.0}, walls);
      peer.rx_power_5_dbm = other.config().tx_power_5_dbm + 10.0 -
                            pathloss_.median_loss_db(d, FrequencyMhz{5250.0}, walls);
      peer.tx_duty_24 = other.tx_duty(phy::Band::k2_4GHz, 12.0);
      peer.tx_duty_5 = other.tx_duty(phy::Band::k5GHz, 12.0);
      peers.push_back(peer);
    }
    ap.set_peers(std::move(peers));
  }
}

void NetworkShard::build_links() {
  for (const ApRuntime& a : aps_) {
    for (const ApRuntime& b : aps_) {
      if (&a == &b) continue;
      for (const phy::Band band : {phy::Band::k2_4GHz, phy::Band::k5GHz}) {
        const int ch_a = band == phy::Band::k5GHz ? a.config().channel_5 : a.config().channel_24;
        const int ch_b = band == phy::Band::k5GHz ? b.config().channel_5 : b.config().channel_24;
        if (ch_a != ch_b) continue;  // probes are heard co-channel only
        const double d = phy::distance_m(a.config().position, b.config().position);
        // APs are ceiling-mounted: roughly half the walls a floor-level
        // client path would cross.
        const int walls = static_cast<int>(d / 10.0 * net_->site.walls_per_10m * 0.5);
        const double tx = band == phy::Band::k5GHz ? a.config().tx_power_5_dbm
                                                   : a.config().tx_power_24_dbm;
        const LinkBudget budget =
            compute_link_budget(a.config().position, b.config().position, walls, band, tx,
                                pathloss_, rng_);
        if (budget.median_rx_dbm < -95.0) continue;  // never decodable
        links_.emplace_back(a.id(), b.id(), budget, rng_.fork(), config_.per_mode);
      }
    }
  }
}

void NetworkShard::enqueue_report(ApRuntime& ap, wire::ApReport& report) {
  report.ap_id = ap.id().value();
  // Relay fields are per-enqueue outputs; callers reuse one scratch report
  // across APs, so clear them before any path stamps or frames them.
  report.mesh_hops = 0;
  report.mesh_relay_us = 0;
  const bool mesh_on = config_.mesh.enabled();
  if (mesh_on && is_mesh_[ap_index_[ap.id().value()]]) {
    if (!enqueue_via_mesh(ap_index_[ap.id().value()], ap, report)) {
      // Stranded: the report dies before any tunnel sees it, so the shard
      // counts it at the drop site (generated + lost_mesh_partition) to
      // keep the conservation invariant structural.
      ++mesh_partition_lost_;
      metrics_.counter("wlm_mesh_partition_lost_total").inc();
    }
    return;
  }
  if (!injector_.enabled()) {
    auto frame = backend::frame_report(report);
    record_enqueue(ap, report.timestamp_us, frame.size());
    ap.tunnel().enqueue(std::move(frame));
    if (mesh_on) record_mesh_hops(0, 0);
    return;
  }
  // The injector advances this AP's fault clock to the report's timestamp
  // (outages and reboots fire here, in time order), inflates skyscraper scan
  // tables, raises OOM reboots, and maybe corrupts the frame on the wire.
  const std::size_t idx = ap_index_[ap.id().value()];
  injector_.on_report(idx, report, ap.tunnel(), fault_rng_);
  auto frame = backend::frame_report(report);
  injector_.on_frame(frame, fault_rng_);
  record_enqueue(ap, report.timestamp_us, frame.size());
  ap.tunnel().enqueue(std::move(frame));
  if (mesh_on) record_mesh_hops(0, 0);
}

bool NetworkShard::enqueue_via_mesh(std::size_t idx, ApRuntime& origin,
                                    wire::ApReport& report) {
  if (mesh_routes_.empty() || !mesh_routes_[idx].routable) return false;
  const std::size_t gw_idx = mesh_routes_[idx].gateway;
  ApRuntime& gw = aps_[gw_idx];
  if (injector_.enabled()) {
    // The origin's own fault schedule still fires in time order (reboots,
    // skyscraper tables) even though its tunnel carries nothing; then the
    // gateway's clock advances to the report's time — a gateway inside a
    // WAN outage strands its whole subtree.
    injector_.on_report(idx, report, origin.tunnel(), fault_rng_);
    injector_.advance(gw_idx, report.timestamp_us, gw.tunnel());
    if (injector_.in_outage(gw_idx)) return false;
  }
  // Provisional encode sizes the frame before the relay walk: the relay
  // delay itself rides in the frame, so airtime is computed over the
  // pre-stamp bytes (the stamp adds a few varint bytes charged to no hop —
  // the approximation is deterministic, which is the contract that matters).
  const std::size_t frame_bytes = backend::frame_report(report).size();
  std::uint32_t hops = 0;
  std::int64_t cur = report.timestamp_us;
  std::size_t at = idx;
  while (!mesh_routes_[at].is_gateway) {
    const mesh::RouteEntry& r = mesh_routes_[at];
    // Store-and-forward: each relay radio serializes one frame at a time,
    // so a frame waits out the radio's previous transmission first.
    const std::int64_t start = std::max(cur, mesh_busy_until_us_[at]);
    const std::int64_t done =
        start +
        static_cast<std::int64_t>(mesh::hop_airtime_us(frame_bytes, r.next_hop_rx_dbm));
    mesh_busy_until_us_[at] = done;
    cur = done;
    at = r.next_hop;
    ++hops;
  }
  report.mesh_hops = hops;
  report.mesh_relay_us = static_cast<std::uint64_t>(cur - report.timestamp_us);
  // Final encode with the relay fields stamped; the frame enters the
  // GATEWAY's tunnel (ap_id stays the origin, so the store buckets the
  // report under the AP that generated it).
  auto frame = backend::frame_report(report);
  if (injector_.enabled()) injector_.on_frame(frame, fault_rng_);
  record_enqueue(origin, report.timestamp_us, frame.size());
  gw.tunnel().enqueue(std::move(frame));
  record_mesh_hops(hops, report.mesh_relay_us);
  return true;
}

void NetworkShard::record_mesh_hops(std::uint32_t hops, std::uint64_t relay_us) {
  // Ground truth for the hop-count property test, plus the per-hop generated
  // counter the delivery-vs-hops analysis divides by. Mesh runs only, so the
  // mesh-off metrics export stays byte-identical to pre-mesh builds.
  const std::size_t bucket =
      std::min<std::size_t>(hops, mesh_enqueued_by_hops_.size() - 1);
  ++mesh_enqueued_by_hops_[bucket];
  metrics_.counter("wlm_mesh_reports_by_hops_total", hops).inc();
  if (hops > 0) {
    metrics_.counter("wlm_mesh_relayed_reports_total").inc();
    metrics_.counter("wlm_mesh_hops_total").inc(hops);
    metrics_.counter("wlm_mesh_relay_us_total").inc(relay_us);
  }
}

void NetworkShard::mesh_phase_begin() {
  if (!config_.mesh.enabled()) return;
  // Shadowing drifts between campaign phases: redraw every directed link's
  // budget (in links_ order, so substream consumption is schedule-free) and
  // recompute routes over the drifted graph. Relay radios start the phase
  // idle.
  std::vector<mesh::MeshEdge> edges;
  edges.reserve(links_.size());
  for (auto& link : links_) {
    mesh::MeshEdge e;
    e.from = static_cast<std::uint32_t>(ap_index_[link.from().value()]);
    e.to = static_cast<std::uint32_t>(ap_index_[link.to().value()]);
    e.rx_dbm = link.median_rx_dbm() + mesh_rng_.normal(0.0, config_.mesh.drift_sigma_db);
    edges.push_back(e);
  }
  mesh_routes_ = mesh::compute_routes(aps_.size(), is_mesh_, edges, config_.mesh);
  mesh_busy_until_us_.assign(aps_.size(), 0);
}

void NetworkShard::record_enqueue(const ApRuntime& ap, std::int64_t t_us,
                                  std::size_t frame_bytes) {
  metrics_.counter("wlm_sim_reports_enqueued_total").inc();
  metrics_
      .histogram("wlm_sim_report_bytes",
                 {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0})
      .observe(static_cast<double>(frame_bytes));
  recorder_.record({telemetry::SpanKind::kEnqueue, ap.id().value(), t_us, t_us,
                    static_cast<std::uint64_t>(frame_bytes)});
}

std::vector<wire::NeighborBss> NetworkShard::neighbor_records(const ApRuntime& ap) const {
  std::vector<wire::NeighborBss> out;
  for (const auto& n : ap.config().environment.neighbors) {
    if (n.rssi_dbm < kBeaconDecodeFloorDbm) continue;
    // The scan table entry comes from actually decoding the neighbor's
    // beacon frame: build the bytes it transmits and parse them as the
    // scanning radio would. A corrupted frame never enters the table.
    mac::BeaconFrame beacon;
    beacon.bssid = n.bssid;
    beacon.ssid = n.ssid;
    beacon.channel = n.channel;
    beacon.rates = n.legacy_11b ? mac::rates_11b() : mac::rates_11g();
    beacon.has_ht = !n.legacy_11b;
    const auto parsed = mac::parse_beacon_frame(mac::encode_beacon_frame(beacon));
    if (!parsed) continue;
    wire::NeighborBss rec;
    rec.bssid = parsed->bssid;
    rec.band = band_code(n.band);
    rec.channel = parsed->channel;
    rec.rssi_dbm = n.rssi_dbm;
    // The AP classifies hotspots by OUI, as the backend pipeline does.
    rec.is_hotspot = classify::is_hotspot_vendor(classify::vendor_for(parsed->bssid));
    rec.is_same_fleet = false;
    out.push_back(rec);
  }
  // Same-site fleet APs are audible too; flagged and excluded from Table 7.
  for (const auto& peer : ap.peers()) {
    if (peer.rx_power_24_dbm < kBeaconDecodeFloorDbm) continue;
    wire::NeighborBss rec;
    rec.bssid = MacAddress{};  // filled by nothing: fleet ids are internal
    rec.band = 0;
    rec.channel = peer.channel_24;
    rec.rssi_dbm = peer.rx_power_24_dbm;
    rec.is_same_fleet = true;
    out.push_back(rec);
  }
  return out;
}

void NetworkShard::mobility_candidates(const phy::Position& pos,
                                       std::vector<mac::BssCandidate>& out) {
  // Same propagation math as build_clients; only the shadowing draws differ
  // (they come from the mobility substream, never the campaign stream).
  out.clear();
  for (ApRuntime& ap : aps_) {
    const double d = phy::distance_m(pos, ap.config().position);
    const int walls = static_cast<int>(d / 10.0 * net_->site.walls_per_10m);
    const double rx24 = ap.config().tx_power_24_dbm + 3.0 -
                        pathloss_.median_loss_db(d, FrequencyMhz{2437.0}, walls) +
                        mobility_rng_.normal(0.0, 3.0);
    out.push_back(mac::BssCandidate{ap.id(), phy::Band::k2_4GHz, PowerDbm{rx24}});
    const double rx5 = ap.config().tx_power_5_dbm + 5.0 -
                       pathloss_.median_loss_db(d, FrequencyMhz{5250.0}, walls) -
                       static_cast<double>(walls) * 2.0 + mobility_rng_.normal(0.0, 3.0);
    out.push_back(mac::BssCandidate{ap.id(), phy::Band::k5GHz, PowerDbm{rx5}});
  }
}

std::uint32_t NetworkShard::walk_client_week(MobileClient& entry,
                                             std::vector<std::size_t>& visited,
                                             std::vector<mac::BssCandidate>& scan_scratch,
                                             MobilityWeekStats& stats) {
  visited.push_back(entry.serving_ap);
  // Static clients and single-AP networks never hand off; skipping the walk
  // outright keeps the mobility substream cheap without changing any other
  // client's draws (the substream is consumed strictly in client order).
  if (!entry.walks || aps_.size() <= 1) return 0;

  const mobility::MobilityConfig& mc = config_.mobility;
  const double dt_s = 7.0 * 24.0 * 3600.0 / static_cast<double>(mc.steps_per_week);
  mac::AssociationPolicy policy;
  policy.handoff_hysteresis_db = mc.handoff_hysteresis_db;
  policy.band_steer_bonus_db = mc.band_steer_bonus_db;

  std::uint32_t roams = 0;
  for (int step = 0; step < mc.steps_per_week; ++step) {
    const double hour = std::fmod(static_cast<double>(step) * dt_s / 3600.0, 24.0);
    if (!mobility_rng_.chance(mobility::occupancy(hour, net_->industry))) {
      // Off-site: the client neither moves nor scans, and any half-settled
      // handoff goes stale.
      if (entry.pending_steps > 0) {
        entry.pending_steps = 0;
        ++stats.handoffs_aborted;
      }
      continue;
    }
    ++stats.active_steps;
    mobility::advance(entry.motion, dt_s, mc, net_->site.width_m, net_->site.height_m,
                      mobility_rng_);
    mobility_candidates(entry.motion.pos, scan_scratch);
    // Candidates are pushed 2.4 GHz then 5 GHz per AP, in aps_ order.
    const mac::BssCandidate& serving =
        scan_scratch[entry.serving_ap * 2 + (entry.serving_band == phy::Band::k5GHz ? 1 : 0)];
    const auto rival = mac::select_handoff(scan_scratch, entry.dual_band, serving.ap,
                                           entry.serving_band, serving.rssi, policy);
    if (!rival) {
      if (entry.pending_steps > 0) {
        entry.pending_steps = 0;
        ++stats.handoffs_aborted;
      }
      continue;
    }
    const std::size_t rival_idx = ap_index_[rival->ap.value()];
    if (entry.pending_steps > 0 && rival_idx == entry.pending_ap &&
        rival->band == entry.pending_band) {
      ++entry.pending_steps;
    } else {
      if (entry.pending_steps > 0) ++stats.handoffs_aborted;  // rival changed mid-settle
      entry.pending_ap = rival_idx;
      entry.pending_band = rival->band;
      entry.pending_steps = 1;
      ++stats.handoffs_armed;
    }
    if (entry.pending_steps >= static_cast<std::uint32_t>(mc.handoff_settle_steps)) {
      if (rival_idx != entry.serving_ap) {
        ++roams;
        ++stats.roams;
        entry.serving_ap = rival_idx;
        if (std::find(visited.begin(), visited.end(), rival_idx) == visited.end()) {
          visited.push_back(rival_idx);
        }
      }
      if (rival->band != entry.serving_band) ++stats.band_switches;
      entry.serving_band = rival->band;
      entry.pending_steps = 0;
    }
  }
  return roams;
}

void NetworkShard::run_usage_week(int reports_per_week,
                                  const std::vector<traffic::UpdateSpike>& spikes) {
  mesh_phase_begin();
  traffic::WorkloadModel workload(epoch(), rng_.fork());

  // Per-report-period download multiplier for each OS under the injected
  // update spikes (paper §6.2: vendor releases drive fleet-wide surges).
  const Duration period = Duration::days(7) / reports_per_week;
  auto spike_multiplier = [&](classify::OsType os, int report_index) {
    const bool apple = os == classify::OsType::kAppleIos || os == classify::OsType::kMacOsX;
    const bool windows = os == classify::OsType::kWindows;
    double extra = 0.0;
    const SimTime start = SimTime::epoch() + period * report_index;
    const SimTime end = start + period;
    for (const auto& s : spikes) {
      if (!(apple ? s.affects_apple : windows && s.affects_windows)) continue;
      // Overlap of the spike with this reporting period, as a fraction.
      const auto lo = std::max(start.as_micros(), s.start.as_micros());
      const auto hi = std::min(end.as_micros(), (s.start + s.duration).as_micros());
      if (hi <= lo) continue;
      const double frac = static_cast<double>(hi - lo) / static_cast<double>(period.as_micros());
      extra += (s.download_multiplier - 1.0) * frac;
    }
    return 1.0 + extra;
  };

  // Per-report-period usage rows, accumulated per (client, app) at the AP
  // that carried the traffic. Struct-of-arrays, indexed by AP position (not
  // a map keyed by AP id): the report loop below re-walks every row once
  // per reporting period touching two or three columns per pass, so the
  // columns keep those passes dense. Backed by the shard arena — the rows
  // die when the week's reports are built, and reset() below recycles the
  // memory for the next campaign.
  struct RowColumns {
    core::ArenaVector<MacAddress> mac;
    core::ArenaVector<classify::OsType> os;
    core::ArenaVector<classify::AppId> app;
    core::ArenaVector<std::uint64_t> up;
    core::ArenaVector<std::uint64_t> down;

    explicit RowColumns(core::Arena& arena)
        : mac(core::ArenaAllocator<MacAddress>(arena)),
          os(core::ArenaAllocator<classify::OsType>(arena)),
          app(core::ArenaAllocator<classify::AppId>(arena)),
          up(core::ArenaAllocator<std::uint64_t>(arena)),
          down(core::ArenaAllocator<std::uint64_t>(arena)) {}

    void push(MacAddress m, classify::OsType o, classify::AppId a, std::uint64_t u,
              std::uint64_t d) {
      mac.push_back(m);
      os.push_back(o);
      app.push_back(a);
      up.push_back(u);
      down.push_back(d);
    }
    [[nodiscard]] std::size_t size() const { return mac.size(); }
  };

  {
  // Allocation-pressure site: arms as action=oom to model the arena build
  // OOMing under a pathological week (the supervisor catches bad_alloc like
  // any other shard failure).
  failsafe::failpoint("shard.alloc");
  std::vector<RowColumns> rows_by_ap;
  rows_by_ap.reserve(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i) rows_by_ap.emplace_back(arena_);

  const auto cache_before = classifier_.cache().stats();
  const auto slow_before = classifier_.slow_path_calls();
  std::uint64_t fragments_seen = 0;
  // One scratch week for the whole sweep: flow slots and their payload
  // buffers are rewritten in place per device instead of reallocated.
  traffic::DeviceWeek week;
  const bool mobility_on = config_.mobility.enabled;
  MobilityWeekStats mob_stats;
  std::vector<std::size_t> walk_visited;
  std::vector<mac::BssCandidate> scan_scratch;
  if (mobility_on) {
    mobility_traces_.clear();
    mobility_traces_.reserve(client_count_);
    scan_scratch.reserve(aps_.size() * 2);
  }
  for (std::size_t home_idx = 0; home_idx < aps_.size(); ++home_idx) {
    ApRuntime& home = aps_[home_idx];
    const auto devices = home.clients().devices();
    for (std::size_t row = 0; row < devices.size(); ++row) {
      const auto& device = devices[row];
      workload.generate_week(device, week);

      // Roaming phones appear on several of the network's APs during the
      // week; their bytes split across them and the backend must re-merge
      // by MAC (paper §2.3). With mobility off, the legacy coin-flip picks
      // at most home + 2 extras; with mobility on, the set is the APs the
      // client's waypoint walk genuinely handed off to.
      std::array<std::size_t, 3> visited{home_idx, 0, 0};
      std::size_t n_visited = 1;
      const std::size_t* visited_aps = visited.data();
      std::uint32_t client_roams = 0;
      if (!mobility_on) {
        if (device.roams && aps_.size() > 1) {
          const int extra = static_cast<int>(rng_.uniform_int(1, std::min<std::int64_t>(
                                                  2, static_cast<std::int64_t>(aps_.size()) - 1)));
          for (int e = 0; e < extra; ++e) {
            const auto other = static_cast<std::size_t>(
                rng_.uniform_int(0, static_cast<std::int64_t>(aps_.size()) - 1));
            if (other != home_idx) visited[n_visited++] = other;
          }
        }
      } else {
        walk_visited.clear();
        client_roams = walk_client_week(mobility_roster_[home_idx][row], walk_visited,
                                        scan_scratch, mob_stats);
        visited_aps = walk_visited.data();
        n_visited = walk_visited.size();
      }

      for (const auto& flow : week.flows) {
        // The AP observes the flow `fragments` times. The first observation
        // takes the slow path (parse + rule match) and pins the verdict; the
        // rest are attributed from the cache — or reparsed end to end in
        // reference mode, which is exactly the contrast bench_perf_micro
        // measures. Verdicts are identical either way.
        const classify::FlowKey key{device.mac.to_u64(), home.id().value(),
                                    flow.dst_host, flow.src_port, flow.sample.dst_port,
                                    flow.sample.transport == classify::Transport::kUdp
                                        ? std::uint8_t{17}
                                        : std::uint8_t{6}};
        classify::AppId detected = classifier_.classify(key, flow.sample);
        for (std::uint16_t frag = 1; frag < flow.fragments; ++frag) {
          detected = classifier_.classify(key, flow.sample);
        }
        fragments_seen += flow.fragments;
        ++flows_classified_;
        if (detected != flow.truth) ++flows_misclassified_;
        const auto share = static_cast<std::uint64_t>(n_visited);
        for (std::size_t v = 0; v < n_visited; ++v) {
          rows_by_ap[visited_aps[v]].push(device.mac, device.os, detected,
                                          flow.upstream_bytes / share,
                                          flow.downstream_bytes / share);
        }
      }

      if (mobility_on) {
        // Ground truth for the backend's ap_count: APs that carried usage
        // rows (only when the device generated flows at all) plus the home
        // AP, which client snapshots pin regardless of the walk.
        ClientTrace trace;
        trace.mac = device.mac.to_u64();
        trace.roams = client_roams;
        if (!week.flows.empty()) {
          for (std::size_t v = 0; v < n_visited; ++v) {
            trace.ap_ids.push_back(aps_[visited_aps[v]].id().value());
          }
        }
        const std::uint32_t home_id = home.id().value();
        if (std::find(trace.ap_ids.begin(), trace.ap_ids.end(), home_id) ==
            trace.ap_ids.end()) {
          trace.ap_ids.push_back(home_id);
        }
        std::sort(trace.ap_ids.begin(), trace.ap_ids.end());
        mobility_traces_.push_back(std::move(trace));
      }
    }
  }

  if (mobility_on) {
    // Folded once per week, and only on mobility runs: the mobility-off
    // Prometheus export must stay byte-identical to pre-mobility builds.
    std::uint64_t walkers = 0;
    for (const auto& roster : mobility_roster_) {
      for (const auto& entry : roster) walkers += entry.walks ? 1 : 0;
    }
    metrics_.counter("wlm_mobility_clients_walking_total").inc(walkers);
    metrics_.counter("wlm_mobility_steps_active_total").inc(mob_stats.active_steps);
    metrics_.counter("wlm_mobility_roams_total").inc(mob_stats.roams);
    metrics_.counter("wlm_mobility_handoffs_armed_total").inc(mob_stats.handoffs_armed);
    metrics_.counter("wlm_mobility_handoffs_aborted_total").inc(mob_stats.handoffs_aborted);
    metrics_.counter("wlm_mobility_band_switches_total").inc(mob_stats.band_switches);
  }

  // Deterministic event counts only (hit/miss/evict/slow-path tallies depend
  // on the flow sequence, never on wall time); the nanosecond slow-path
  // profile stays in the classifier, outside this registry, because registry
  // exports must be bit-identical across --jobs.
  const auto& cache_after = classifier_.cache().stats();
  metrics_.counter("wlm_classify_fragments_total").inc(fragments_seen);
  telemetry::work_tally().fragments.fetch_add(fragments_seen, std::memory_order_relaxed);
  metrics_.counter("wlm_classify_cache_hits_total").inc(cache_after.hits - cache_before.hits);
  metrics_.counter("wlm_classify_cache_misses_total")
      .inc(cache_after.misses - cache_before.misses);
  metrics_.counter("wlm_classify_cache_evictions_total")
      .inc(cache_after.evictions - cache_before.evictions);
  metrics_.counter("wlm_classify_slow_path_total")
      .inc(classifier_.slow_path_calls() - slow_before);

  // Report-index-major so simulated time advances monotonically across the
  // whole shard: the fault schedule fires in order, and with faults enabled
  // the backend polls between reporting periods — that mid-week delivery is
  // what makes a later reboot or outage visible as a reporting gap instead
  // of an invisible reshuffle at harvest. (Clean runs skip the mid-week
  // polls; their store content is identical either way because reports only
  // land at harvest.) Per-AP queue order matches the old AP-major loop, so
  // the store's arrival order is unchanged.
  // One scratch report for the whole loop: its row vectors keep capacity
  // across APs instead of reallocating per report. enqueue_report only
  // reads the report (framing copies the bytes), so reuse is safe.
  wire::ApReport report;
  for (int r = 0; r < reports_per_week; ++r) {
    // One hit per reporting period per shard: `after=N` in a failpoint
    // schedule kills the shard exactly N report-periods into the week.
    failsafe::failpoint("shard.step");
    const std::int64_t t_us =
        (Duration::days(7) / reports_per_week * r + Duration::hours(12)).as_micros();
    for (std::size_t ap_idx = 0; ap_idx < aps_.size(); ++ap_idx) {
      ApRuntime& ap = aps_[ap_idx];
      const auto& rows = rows_by_ap[ap_idx];
      report.usage.clear();
      report.utilization.clear();
      report.neighbors.clear();
      report.links.clear();
      report.clients.clear();
      report.timestamp_us = t_us;
      report.firmware = 2;  // the second 2014 firmware revision
      report.usage.reserve(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        wire::ClientUsage usage;
        usage.client = rows.mac[i];
        usage.app_id = static_cast<std::uint32_t>(rows.app[i]);
        usage.tx_bytes = rows.up[i] / static_cast<std::uint64_t>(reports_per_week);
        const double mult = spikes.empty() ? 1.0 : spike_multiplier(rows.os[i], r);
        usage.rx_bytes = static_cast<std::uint64_t>(
            static_cast<double>(rows.down[i] / static_cast<std::uint64_t>(reports_per_week)) *
            mult);
        report.usage.push_back(usage);
      }
      const auto& cols = ap.clients();
      const auto devices = cols.devices();
      const auto bands = cols.bands();
      const auto rssi = cols.rssi_at_ap_dbm();
      const auto detected = cols.detected_os();
      report.clients.reserve(cols.size());
      for (std::size_t i = 0; i < cols.size(); ++i) {
        wire::ClientSnapshot snap;
        snap.client = devices[i].mac;
        snap.capability_bits = devices[i].caps.bits;
        snap.band = band_code(bands[i]);
        snap.rssi_dbm = rssi[i];
        snap.os_id = static_cast<std::uint8_t>(detected[i]);
        report.clients.push_back(snap);
      }
      enqueue_report(ap, report);
    }
    if (injector_.enabled()) {
      poller_.set_now(t_us);
      poller_.poll_all(64);
    }
  }
  }  // row columns die here ...
  arena_.reset();  // ... so the arena can recycle their memory wholesale
}

void NetworkShard::snapshot_clients(SimTime t) {
  mesh_phase_begin();
  // A real-time snapshot only sees clients currently in a session (the
  // paper's evening snapshot caught ~309 k of the week's 5.58 M clients).
  for (auto& ap : aps_) {
    traffic::SessionModelParams session_params;
    session_params.industry = ap.industry();
    const traffic::SessionModel sessions(session_params, Rng{config_.seed ^ 0xfeed});
    const double presence = sessions.presence_probability(t.hour_of_day());
    wire::ApReport report;
    report.timestamp_us = t.as_micros();
    const auto& cols = ap.clients();
    const auto devices = cols.devices();
    const auto bands = cols.bands();
    const auto rssi = cols.rssi_at_ap_dbm();
    const auto detected = cols.detected_os();
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (!rng_.chance(presence)) continue;
      wire::ClientSnapshot snap;
      snap.client = devices[i].mac;
      snap.capability_bits = devices[i].caps.bits;
      snap.band = band_code(bands[i]);
      snap.rssi_dbm = rssi[i];
      snap.os_id = static_cast<std::uint8_t>(detected[i]);
      report.clients.push_back(snap);
    }
    enqueue_report(ap, report);
  }
  if (injector_.enabled()) {
    poller_.set_now(t.as_micros());
    poller_.poll_all(64);
  }
}

void NetworkShard::run_mr16_interference(SimTime t) {
  mesh_phase_begin();
  const double hour = t.hour_of_day();
  const auto& plan = phy::ChannelPlan::us();
  for (auto& ap : aps_) {
    wire::ApReport report;
    report.timestamp_us = t.as_micros();
    const auto env = ap.environment(hour);
    for (const phy::Band band : {phy::Band::k2_4GHz, phy::Band::k5GHz}) {
      const int number =
          band == phy::Band::k5GHz ? ap.config().channel_5 : ap.config().channel_24;
      const auto channel = plan.find(band, number);
      if (!channel) continue;
      const auto activity = env.activity_on(*channel, hour);
      const auto counters = scan::measure_serving_channel(
          activity, Duration::minutes(5), ap.tx_duty(band, hour), phy::noise_floor(20.0));
      wire::ChannelUtilization util;
      util.band = band_code(band);
      util.channel = number;
      util.cycle_us = static_cast<std::uint64_t>(counters.cycle_us);
      util.busy_us = static_cast<std::uint64_t>(counters.busy_us);
      util.rx_frame_us = static_cast<std::uint64_t>(counters.rx_frame_us);
      util.tx_us = static_cast<std::uint64_t>(counters.tx_us);
      report.utilization.push_back(util);
    }
    report.neighbors = neighbor_records(ap);
    enqueue_report(ap, report);
  }
  if (injector_.enabled()) {
    poller_.set_now(t.as_micros());
    poller_.poll_all(64);
  }
}

void NetworkShard::run_mr18_scan(SimTime t, double hour) {
  mesh_phase_begin();
  const auto scanner = scan::default_mr18_scanner();
  const auto& plan = phy::ChannelPlan::us();
  for (auto& ap : aps_) {
    wire::ApReport report;
    report.timestamp_us = t.as_micros();
    const auto env = ap.environment(hour);
    const auto activities = env.activities_all(plan, hour);
    auto results = scanner.scan_window(activities, phy::noise_floor(20.0), rng_);
    for (const auto& r : results) {
      wire::ChannelUtilization util;
      util.band = band_code(r.channel.band);
      util.channel = r.channel.number;
      util.cycle_us = static_cast<std::uint64_t>(r.counters.cycle_us);
      util.busy_us = static_cast<std::uint64_t>(r.counters.busy_us);
      util.rx_frame_us = static_cast<std::uint64_t>(r.counters.rx_frame_us);
      report.utilization.push_back(util);
    }
    report.neighbors = neighbor_records(ap);
    enqueue_report(ap, report);
  }
  if (injector_.enabled()) {
    poller_.set_now(t.as_micros());
    poller_.poll_all(64);
  }
}

void NetworkShard::run_link_windows(SimTime t) {
  mesh_phase_begin();
  const double hour = t.hour_of_day();
  for (auto& link : links_) {
    auto& receiver = aps_[ap_index_[link.to().value()]];
    ProbeOutcomeModel model;
    model.receiver_utilization = serving_utilization(receiver, link.band(), hour);
    model.hidden_fraction = ProbeOutcomeModel::default_hidden_fraction(link.band());
    const auto window = link.measure_window(model);

    // Feed the receiver's link table probe by probe for its own routing use
    // and attach the wire record to its next report.
    wire::ApReport report;
    report.timestamp_us = t.as_micros();
    wire::LinkProbeWindow rec;
    rec.from_ap = link.from().value();
    rec.band = band_code(link.band());
    rec.channel = link.band() == phy::Band::k5GHz ? receiver.config().channel_5
                                                  : receiver.config().channel_24;
    rec.probes_expected = static_cast<std::uint32_t>(window.expected);
    rec.probes_received = static_cast<std::uint32_t>(window.received);
    report.links.push_back(rec);
    enqueue_report(receiver, report);
  }
  if (injector_.enabled()) {
    poller_.set_now(t.as_micros());
    poller_.poll_all(64);
  }
}

void NetworkShard::harvest_local(HarvestMode mode) {
  const std::int64_t horizon_us = fault::FaultPlan::horizon().as_micros();
  poller_.set_now(horizon_us);
  const std::uint64_t stored_before = poller_.stats().reports_stored;
  if (injector_.enabled()) {
    // Drive every AP's fault schedule to the horizon first; kFinal then
    // reconnects even APs whose outage is still open (§2 catch-up), while
    // kWeekEnd leaves them offline with their backlog in flight.
    for (std::size_t i = 0; i < aps_.size(); ++i) {
      injector_.on_harvest(i, aps_[i].tunnel(), mode == HarvestMode::kFinal);
    }
  } else {
    for (auto& ap : aps_) ap.tunnel().reconnect();
  }
  // Pull-based with a per-cycle budget: loop until every reachable tunnel
  // drained. Backoff is overridden — the final harvest pulls quarantined
  // devices too, so nothing recoverable is stranded by the retry policy.
  for (int cycle = 0; cycle < 1000; ++cycle) {
    bool any = false;
    for (const auto& ap : aps_) {
      if (ap.tunnel().connected() && ap.tunnel().queued() > 0) {
        any = true;
        break;
      }
    }
    if (!any) break;
    poller_.poll_all(64, /*ignore_backoff=*/true);
  }
  recorder_.record({telemetry::SpanKind::kHarvest, net_->id.value(), horizon_us,
                    horizon_us, poller_.stats().reports_stored - stored_before});
  publish_telemetry();
}

void NetworkShard::drain_connected(std::int64_t now_us) {
  poller_.set_now(now_us);
  // Same bounded pull loop as harvest_local, minus the reconnect and the
  // fault-plan fast-forward: only tunnels that are up right now drain, and
  // an AP mid-outage keeps queueing (§2: the backend polls queued data when
  // the connection is reestablished).
  for (int cycle = 0; cycle < 1000; ++cycle) {
    bool any = false;
    for (const auto& ap : aps_) {
      if (ap.tunnel().connected() && ap.tunnel().queued() > 0) {
        any = true;
        break;
      }
    }
    if (!any) break;
    poller_.poll_all(64, /*ignore_backoff=*/true);
  }
}

void NetworkShard::publish_telemetry() {
  const fault::LossLedger ledger = loss_ledger();
  // Gauges, not counters: harvest may run more than once (week-end then
  // final), and the registry must reflect the latest ledger each time.
  // Entity 0 + additive merge turns these per-shard snapshots into fleet
  // totals at harvest, mirroring fault::LossLedger::merge.
  metrics_.gauge("wlm_ledger_generated").set(static_cast<double>(ledger.generated));
  metrics_.gauge("wlm_ledger_delivered").set(static_cast<double>(ledger.delivered));
  metrics_.gauge("wlm_ledger_shed").set(static_cast<double>(ledger.shed));
  metrics_.gauge("wlm_ledger_lost_reboot").set(static_cast<double>(ledger.lost_reboot));
  metrics_.gauge("wlm_ledger_lost_corruption")
      .set(static_cast<double>(ledger.lost_corruption));
  metrics_.gauge("wlm_ledger_in_flight").set(static_cast<double>(ledger.in_flight));
  // Always 0 for a live shard (supervision loss exists only fleet-side, for
  // quarantined shards); published so the key exists for reconciliation.
  metrics_.gauge("wlm_ledger_lost_supervision")
      .set(static_cast<double>(ledger.lost_supervision));
  // Structure gauges keyed by network id stay per-shard after the merge.
  const auto entity = static_cast<std::uint64_t>(net_->id.value());
  metrics_.gauge("wlm_shard_aps", entity).set(static_cast<double>(aps_.size()));
  metrics_.gauge("wlm_shard_clients", entity).set(static_cast<double>(client_count_));
  metrics_.gauge("wlm_shard_mesh_links", entity).set(static_cast<double>(links_.size()));
  if (config_.mesh.enabled()) {
    // Published only on mesh runs, so the mesh-off export stays byte-
    // identical to pre-mesh builds. Entity 0 + additive merge, like the
    // other ledger gauges.
    metrics_.gauge("wlm_ledger_lost_mesh_partition")
        .set(static_cast<double>(ledger.lost_mesh_partition));
    std::uint64_t mesh_aps = 0;
    for (std::size_t i = 0; i < is_mesh_.size(); ++i) mesh_aps += is_mesh_[i] ? 1 : 0;
    metrics_.gauge("wlm_mesh_aps", entity).set(static_cast<double>(mesh_aps));
  }
}

fault::LossLedger NetworkShard::loss_ledger() const {
  fault::LossLedger ledger;
  for (const auto& ap : aps_) {
    const auto& ts = ap.tunnel().stats();
    ledger.generated += ts.frames_queued;
    ledger.shed += ts.frames_dropped;
    ledger.lost_reboot += ts.frames_flushed;
    ledger.in_flight += ap.tunnel().queued();
  }
  // Each frame carries exactly one report (backend::frame_report), so the
  // poller's per-report and per-frame counters add up against the tunnels'.
  const auto& ps = poller_.stats();
  ledger.delivered = ps.reports_stored;
  ledger.lost_corruption = ps.corrupt_frames + ps.malformed_reports;
  // Partition-stranded reports never reach a tunnel; the shard counted them
  // at the drop site, so conservation closes with the mesh bucket.
  ledger.generated += mesh_partition_lost_;
  ledger.lost_mesh_partition = mesh_partition_lost_;
  return ledger;
}

}  // namespace wlm::sim
