// One network's slice of the simulated fleet: its APs, clients, mesh links,
// RNG substream, and a thread-confined backend store.
//
// A shard is the unit of parallelism in the fleet runtime. Everything it
// touches — the RNG, the AP runtimes, the tunnels, the poller, the report
// store — belongs to it alone, so campaigns on different shards can run on
// different worker threads with no synchronization, and the results are
// bit-identical for any thread count (the RNG is a substream keyed by the
// network id, not a shared stream whose consumption order would depend on
// scheduling).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "backend/poller.hpp"
#include "backend/store.hpp"
#include "core/arena.hpp"
#include "classify/verdict_cache.hpp"
#include "deploy/generator.hpp"
#include "fault/injector.hpp"
#include "fault/loss_ledger.hpp"
#include "mac/association.hpp"
#include "mac/mesh.hpp"
#include "mobility/mobility.hpp"
#include "sim/ap.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "traffic/diurnal.hpp"

namespace wlm::sim {

/// Fleet-wide knobs a shard needs; shared verbatim by every shard.
struct ShardConfig {
  deploy::Epoch epoch = deploy::Epoch::kJan2015;
  /// Scales clients per AP (1.0 = the industry-calibrated counts).
  double client_scale = 1.0;
  /// Base seed; each shard draws substream `network id` of it.
  std::uint64_t seed = 7;
  /// Fault scenario; FaultSpec{} (all zeros) runs a clean campaign. The
  /// shard's FaultPlan is drawn from a dedicated substream, so enabling
  /// faults never perturbs the campaign's own draws.
  fault::FaultSpec faults;
  /// Which classification engine APs run. kIndexed is the production fast
  /// path; kReference keeps the linear scan as the differential oracle.
  /// Verdicts (and therefore every report and table) are identical in both.
  classify::ClassifierMode classifier = classify::ClassifierMode::kIndexed;
  /// Per-shard verdict cache bound (flows pinned at once). Any value >= 1
  /// yields the same verdict sequence; only hit/evict counts change.
  std::size_t verdict_cache_capacity = classify::VerdictCache::kDefaultCapacity;
  /// PER evaluation path mesh links use. kTable is the production lookup
  /// fast path; kReference recomputes the scalar PER per probe as the
  /// differential oracle. Probe outcomes are byte-identical in both.
  phy::PerMode per_mode = phy::PerMode::kTable;
  /// Client mobility knobs. Disabled (the default) keeps the legacy
  /// coin-flip roaming and consumes zero extra campaign randomness —
  /// mobility draws come from a dedicated substream (kMobilitySeedSalt),
  /// so mobility-off output is byte-identical to pre-mobility builds.
  mobility::MobilityConfig mobility;
  /// Mesh backhaul knobs. Disabled (mesh_fraction == 0, the default) keeps
  /// every AP on a WAN uplink and consumes zero extra campaign randomness —
  /// mesh draws (gateway selection, per-phase link drift) come from a
  /// dedicated substream (mesh::kMeshSeedSalt), so mesh-off output is
  /// byte-identical to pre-mesh builds.
  mesh::MeshConfig mesh;
};

/// How harvest treats tunnels that are down when the week ends.
enum class HarvestMode {
  /// Reconnect everything and catch up (paper §2: the backend polls for
  /// queued information when the connection is reestablished). After this,
  /// in_flight is zero and no report is stranded.
  kFinal,
  /// Leave tunnels inside a still-open WAN outage disconnected: their
  /// backlog stays in flight and the backend sees those APs as offline —
  /// the view HealthMonitor alerts on.
  kWeekEnd,
};

/// One roaming client's mobility runtime, roster-aligned with its home
/// AP's ClientColumns row. Static clients carry an entry too (walks ==
/// false) so the roster indexes exactly like the columns.
struct MobileClient {
  /// True for devices that walk (deploy::ClientDevice::roams); static
  /// entries never move or hand off.
  bool walks = false;
  bool dual_band = false;
  mobility::MotionState motion;
  /// Index into aps_ of the currently serving AP, plus the serving band.
  std::size_t serving_ap = 0;
  phy::Band serving_band = phy::Band::k2_4GHz;
  /// Pending handoff debounce: the rival must win handoff_settle_steps
  /// consecutive evaluations before the roam commits. 0 = nothing pending.
  std::uint32_t pending_steps = 0;
  std::size_t pending_ap = 0;
  phy::Band pending_band = phy::Band::k2_4GHz;
};

/// Ground truth for the backend's roaming aggregation: the distinct APs
/// whose reports will carry this MAC over the last usage week (visited APs
/// when the device generated flows, plus the home AP, which snapshots pin
/// regardless). The ap_count property test unions these by MAC fleet-wide
/// and compares against backend::UsageAggregator.
struct ClientTrace {
  std::uint64_t mac = 0;
  std::vector<std::uint32_t> ap_ids;  // sorted, distinct
  std::uint32_t roams = 0;            // committed AP changes during the week
};

class NetworkShard {
 public:
  NetworkShard(const deploy::NetworkConfig& net, const ShardConfig& config);

  NetworkShard(const NetworkShard&) = delete;
  NetworkShard& operator=(const NetworkShard&) = delete;

  // --- structure ---
  [[nodiscard]] NetworkId id() const { return net_->id; }
  [[nodiscard]] deploy::Epoch epoch() const { return config_.epoch; }
  [[nodiscard]] const deploy::NetworkConfig& network() const { return *net_; }
  [[nodiscard]] std::vector<ApRuntime>& aps() { return aps_; }
  [[nodiscard]] const std::vector<ApRuntime>& aps() const { return aps_; }
  [[nodiscard]] std::vector<MeshLink>& links() { return links_; }
  [[nodiscard]] const std::vector<MeshLink>& links() const { return links_; }
  [[nodiscard]] backend::ReportStore& store() { return store_; }
  [[nodiscard]] const backend::Poller& poller() const { return poller_; }
  [[nodiscard]] backend::Poller& poller() { return poller_; }
  [[nodiscard]] const fault::FaultInjector& injector() const { return injector_; }
  [[nodiscard]] fault::FaultInjector& injector() { return injector_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Runtime fault draw stream (corruption, skyscraper tables) — a sibling
  /// of the campaign stream; checkpoints capture both.
  [[nodiscard]] Rng& fault_rng() { return fault_rng_; }
  /// Mobility draw stream (waypoints, occupancy, shadowing along the walk).
  /// A sibling of the campaign stream under kMobilitySeedSalt; checkpoints
  /// capture it when mobility is enabled.
  [[nodiscard]] Rng& mobility_rng() { return mobility_rng_; }
  [[nodiscard]] bool mobility_enabled() const { return config_.mobility.enabled; }
  /// Mobility roster, [ap index][client row] aligned with each AP's
  /// ClientColumns. Empty when mobility is disabled. Mutable for checkpoint
  /// restore (motion state is campaign state).
  [[nodiscard]] std::vector<std::vector<MobileClient>>& mobility_roster() {
    return mobility_roster_;
  }
  [[nodiscard]] const std::vector<std::vector<MobileClient>>& mobility_roster() const {
    return mobility_roster_;
  }
  /// Ground-truth roaming traces from the last usage week (mobility runs
  /// only; cleared at the start of each usage week).
  [[nodiscard]] const std::vector<ClientTrace>& mobility_traces() const {
    return mobility_traces_;
  }
  // --- mesh backhaul (empty/zero unless config.mesh.enabled()) ---
  [[nodiscard]] bool mesh_enabled() const { return config_.mesh.enabled(); }
  /// Mesh draw stream (gateway selection, per-phase link drift). A sibling
  /// of the campaign stream under mesh::kMeshSeedSalt; checkpoints capture
  /// it when mesh is enabled.
  [[nodiscard]] Rng& mesh_rng() { return mesh_rng_; }
  /// Which APs (by aps_ index) have no WAN uplink. Drawn once at
  /// construction from mesh_rng_; index 0 is always a gateway.
  [[nodiscard]] const std::vector<bool>& mesh_membership() const { return is_mesh_; }
  /// Current routing table, aps_-indexed. Recomputed at every campaign
  /// phase boundary as shadowing drifts; mutable for checkpoint restore.
  [[nodiscard]] std::vector<mesh::RouteEntry>& mesh_routes() { return mesh_routes_; }
  [[nodiscard]] const std::vector<mesh::RouteEntry>& mesh_routes() const {
    return mesh_routes_;
  }
  /// Per-AP relay-radio busy horizon (store-and-forward queueing state);
  /// mutable for checkpoint restore.
  [[nodiscard]] std::vector<std::int64_t>& mesh_busy_until_us() {
    return mesh_busy_until_us_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& mesh_busy_until_us() const {
    return mesh_busy_until_us_;
  }
  /// Reports stranded by a down relay path (gateway outage or no route).
  [[nodiscard]] std::uint64_t mesh_partition_lost() const { return mesh_partition_lost_; }
  /// Exact overwrite for checkpoint restore (partition drops are shard
  /// campaign state, invisible to tunnels and poller).
  void restore_mesh_partition_lost(std::uint64_t n) { mesh_partition_lost_ = n; }
  /// Ground truth for the hop-count property test: reports enqueued per hop
  /// count (index 0 = direct/wired), counted at tunnel-enqueue time. Test
  /// state only — never serialized.
  [[nodiscard]] const std::vector<std::uint64_t>& mesh_enqueued_by_hops() const {
    return mesh_enqueued_by_hops_;
  }
  [[nodiscard]] std::size_t client_count() const { return client_count_; }
  [[nodiscard]] ApRuntime* find_ap(ApId id);
  /// Shard-confined telemetry sinks: the poller and injector write here too.
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] const telemetry::FlightRecorder& recorder() const { return recorder_; }
  [[nodiscard]] telemetry::FlightRecorder& recorder() { return recorder_; }

  /// Exact overwrite for checkpoint restore (classification tallies are
  /// shard campaign state, not derivable from the store).
  void restore_flow_counters(std::uint64_t classified, std::uint64_t misclassified) {
    flows_classified_ = classified;
    flows_misclassified_ = misclassified;
  }

  /// The AP-side two-tier classifier (slow path + verdict cache). Exposed
  /// mutably so checkpoints can capture and restore the cache contents.
  [[nodiscard]] classify::TwoTierClassifier& classifier() { return classifier_; }
  [[nodiscard]] const classify::TwoTierClassifier& classifier() const { return classifier_; }

  // --- campaigns: each enqueues reports into this shard's AP tunnels ---
  // (Semantics documented on sim::FleetRunner, which fans them out.)
  void run_usage_week(int reports_per_week, const std::vector<traffic::UpdateSpike>& spikes);
  void snapshot_clients(SimTime t);
  void run_mr16_interference(SimTime t);
  void run_mr18_scan(SimTime t, double hour);
  void run_link_windows(SimTime t);

  /// Drains this shard's tunnels into the shard-local store. kFinal
  /// reconnects every tunnel first (queued reports survive a WAN outage, per
  /// the paper's §2 queue-and-catch-up design); kWeekEnd leaves APs inside a
  /// still-open outage offline, backlog in flight.
  void harvest_local(HarvestMode mode = HarvestMode::kFinal);

  /// Incremental-harvest drain: pulls whatever the connected tunnels have
  /// queued at `now_us` into the shard store, without touching fault
  /// schedules (no injector on_harvest — that drives plans to the horizon
  /// and belongs to the final harvest only), reconnecting anything, or
  /// republishing telemetry. APs inside an outage keep their backlog in
  /// flight. Shard-confined, so phase-boundary drains on different shards
  /// parallelize like campaigns do.
  void drain_connected(std::int64_t now_us);

  // --- pipeline statistics ---
  [[nodiscard]] std::uint64_t flows_classified() const { return flows_classified_; }
  [[nodiscard]] std::uint64_t flows_misclassified() const { return flows_misclassified_; }
  /// End-to-end loss accounting, derived from this shard's tunnel and poller
  /// statistics (see fault::LossLedger for the conservation invariant).
  [[nodiscard]] fault::LossLedger loss_ledger() const;

 private:
  const deploy::NetworkConfig* net_;
  ShardConfig config_;
  Rng rng_;
  /// Runtime fault draws (corruption, skyscraper tables). A sibling of the
  /// plan's substream, so faults never consume campaign randomness.
  Rng fault_rng_;
  /// Mobility draws (waypoints, occupancy, walk shadowing). A sibling of
  /// the campaign stream, so mobility never consumes campaign randomness.
  Rng mobility_rng_;
  /// Mesh draws (gateway selection, per-phase link drift). A sibling of the
  /// campaign stream, so mesh never consumes campaign randomness.
  Rng mesh_rng_;
  std::vector<std::vector<MobileClient>> mobility_roster_;
  std::vector<ClientTrace> mobility_traces_;
  std::vector<bool> is_mesh_;
  std::vector<mesh::RouteEntry> mesh_routes_;
  std::vector<std::int64_t> mesh_busy_until_us_;
  std::uint64_t mesh_partition_lost_ = 0;
  std::vector<std::uint64_t> mesh_enqueued_by_hops_;
  fault::FaultInjector injector_;
  phy::PathLossModel pathloss_;
  std::vector<ApRuntime> aps_;
  std::unordered_map<std::uint32_t, std::size_t> ap_index_;
  std::vector<MeshLink> links_;
  backend::ReportStore store_;
  backend::Poller poller_;
  telemetry::MetricsRegistry metrics_;
  telemetry::FlightRecorder recorder_;
  classify::TwoTierClassifier classifier_;
  /// Scratch arena for the usage-week row columns; reset once the rows have
  /// been folded into reports, so every week reruns in recycled memory.
  core::Arena arena_;
  std::size_t client_count_ = 0;
  std::uint64_t flows_classified_ = 0;
  std::uint64_t flows_misclassified_ = 0;

  void build_clients();
  void build_duties_and_peers();
  void build_links();
  /// Per-step mobility counters accumulated while walking a usage week,
  /// folded into wlm_mobility_* metrics once per week (mobility runs only,
  /// so mobility-off telemetry exports stay byte-identical).
  struct MobilityWeekStats {
    std::uint64_t active_steps = 0;
    std::uint64_t roams = 0;
    std::uint64_t handoffs_armed = 0;
    std::uint64_t handoffs_aborted = 0;
    std::uint64_t band_switches = 0;
  };
  /// Walks one client through the simulated week: advances its waypoint
  /// motion under the occupancy wave, evaluates hysteresis handoffs per
  /// step, and appends the distinct serving-AP indices to `visited`
  /// (serving AP at week start first). Draws only from mobility_rng_.
  /// Returns the client's committed AP changes (its roam count).
  std::uint32_t walk_client_week(MobileClient& entry, std::vector<std::size_t>& visited,
                                 std::vector<mac::BssCandidate>& scan_scratch,
                                 MobilityWeekStats& stats);
  /// RSSI of every in-network BSS at `pos`, with walk shadowing drawn from
  /// mobility_rng_. Same propagation math as build_clients.
  void mobility_candidates(const phy::Position& pos,
                           std::vector<mac::BssCandidate>& out);
  /// Frames and queues one report. The report is read (and, with faults
  /// enabled, mutated by the injector) but never consumed, so callers can
  /// reuse one scratch report across calls. On a WAN-less AP the frame is
  /// relayed hop by hop into its gateway's tunnel; a down relay path
  /// (gateway outage, no route) strands the report in lost_mesh_partition.
  void enqueue_report(ApRuntime& ap, wire::ApReport& report);
  /// Relay path for a mesh AP's report: walks the route accumulating
  /// store-and-forward airtime + queueing, stamps mesh_hops/mesh_relay_us,
  /// and enqueues into the gateway's tunnel (ap_id stays the origin).
  /// Returns false when the relay path is down — the report is stranded.
  bool enqueue_via_mesh(std::size_t idx, ApRuntime& origin, wire::ApReport& report);
  /// Folds one successful enqueue into the hop histogram and the per-hop
  /// wlm_mesh_* counters (mesh runs only).
  void record_mesh_hops(std::uint32_t hops, std::uint64_t relay_us);
  /// Campaign phase boundary: redraws per-link shadowing drift from
  /// mesh_rng_, recomputes the routing table over the drifted link budget
  /// graph, and resets the relay queue horizons. No-op when mesh is off.
  void mesh_phase_begin();
  void record_enqueue(const ApRuntime& ap, std::int64_t t_us, std::size_t frame_bytes);
  /// Refreshes the ledger and shard gauges from current state (set, not
  /// add: calling it twice must not double-count).
  void publish_telemetry();
  [[nodiscard]] std::vector<wire::NeighborBss> neighbor_records(const ApRuntime& ap) const;
};

/// Busy fraction on an AP's serving channel (used as collision exposure for
/// its incoming probes). Pure function of the AP's environment and duty.
[[nodiscard]] double serving_utilization(const ApRuntime& ap, phy::Band band, double hour);

}  // namespace wlm::sim
