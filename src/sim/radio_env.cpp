#include "sim/radio_env.hpp"

#include <cmath>

#include "mac/beacon.hpp"
#include "phy/modulation.hpp"
#include "phy/propagation.hpp"

namespace wlm::sim {

bool is_daytime(double hour) { return hour >= 8.0 && hour < 18.0; }

double neighbor_beacon_duty(const deploy::NeighborInfo& n) {
  const double per_beacon = static_cast<double>(mac::beacon_airtime_us(n.legacy_11b));
  return per_beacon * static_cast<double>(n.ssid_count) /
         static_cast<double>(mac::kBeaconIntervalUs);
}

RadioEnvironment::RadioEnvironment(const deploy::NeighborEnvironment* env,
                                   std::vector<FleetPeer> peers)
    : env_(env), peers_(std::move(peers)) {}

scan::ChannelActivity RadioEnvironment::activity_on(const phy::Channel& channel,
                                                    double hour) const {
  scan::ChannelActivity activity;
  activity.channel = channel;
  const bool day = is_daytime(hour);
  const auto& plan = phy::ChannelPlan::us();

  for (const auto& n : env_->neighbors) {
    if (n.band != channel.band) continue;
    const auto n_channel = plan.find(n.band, n.channel);
    if (!n_channel) continue;
    const double rejection = phy::adjacent_channel_rejection_db(channel, *n_channel);
    if (rejection >= 200.0) continue;  // disjoint
    const PowerDbm rx = PowerDbm{n.rssi_dbm} - rejection;

    // Two sources per neighbor: the steady beacon cadence, and its data
    // traffic, which is bursty over 3-minute windows (a network is either
    // pushing a download during the window or idle).
    mac::ActivitySource beacons;
    beacons.rx_power = rx;
    beacons.duty_cycle = neighbor_beacon_duty(n);
    mac::ActivitySource data;
    data.rx_power = rx;
    data.duty_cycle = day ? n.day_duty : n.night_duty;
    data.window_active_prob = 0.15;
    const double overlap = phy::channel_overlap(channel, *n_channel);
    if (rejection == 0.0) {
      // Co-channel: frames decodable if the preamble survives.
      const double sinr = rx - phy::noise_floor(channel.width_mhz());
      const double plcp = phy::plcp_decode_probability(sinr);
      beacons.kind = mac::SourceKind::kWifi;
      beacons.plcp_decode_prob = plcp;
      data.kind = mac::SourceKind::kWifi;
      data.plcp_decode_prob = plcp;
    } else if (overlap >= 0.7) {
      // One channel off (5 MHz): the robustly-modulated preamble often
      // still locks in the receiver's filter skirt.
      const double sinr = rx - phy::noise_floor(channel.width_mhz());
      const double plcp = 0.5 * phy::plcp_decode_probability(sinr);
      beacons.kind = mac::SourceKind::kWifi;
      beacons.plcp_decode_prob = plcp;
      data.kind = mac::SourceKind::kWifi;
      data.plcp_decode_prob = plcp;
    } else {
      // Deeper partial overlap: energy only, headers never decode.
      beacons.kind = mac::SourceKind::kWifiCorrupt;
      data.kind = mac::SourceKind::kWifiCorrupt;
    }
    activity.sources.push_back(beacons);
    if (data.duty_cycle > 0.0) activity.sources.push_back(data);
    if (rejection == 0.0 && n.rssi_dbm >= kBeaconDecodeFloorDbm) {
      ++activity.neighbor_count;
    }
  }

  for (const auto& peer : peers_) {
    const int peer_channel =
        channel.band == phy::Band::k2_4GHz ? peer.channel_24 : peer.channel_5;
    const auto pc = plan.find(channel.band, peer_channel);
    if (!pc) continue;
    const double rejection = phy::adjacent_channel_rejection_db(channel, *pc);
    if (rejection >= 200.0) continue;
    const double rx_dbm = channel.band == phy::Band::k2_4GHz ? peer.rx_power_24_dbm
                                                             : peer.rx_power_5_dbm;
    mac::ActivitySource src;
    src.rx_power = PowerDbm{rx_dbm} - rejection;
    // Fleet beacons: one SSID, OFDM format; plus its client traffic.
    const double peer_duty =
        channel.band == phy::Band::k2_4GHz ? peer.tx_duty_24 : peer.tx_duty_5;
    src.duty_cycle = static_cast<double>(mac::beacon_airtime_us(false)) /
                         static_cast<double>(mac::kBeaconIntervalUs) +
                     peer_duty;
    if (rejection == 0.0) {
      src.kind = mac::SourceKind::kWifi;
      const double sinr = src.rx_power - phy::noise_floor(channel.width_mhz());
      src.plcp_decode_prob = phy::plcp_decode_probability(sinr);
    } else {
      src.kind = mac::SourceKind::kWifiCorrupt;
    }
    activity.sources.push_back(src);
  }

  for (const auto& i : env_->interferers) {
    if (i.band != channel.band) continue;
    // Non-WiFi energy is broadband-ish: count it on nearby channels with
    // distance-dependent rolloff (Bluetooth hops across the whole band).
    const int spread = std::abs(i.channel - channel.number);
    if (channel.band == phy::Band::k2_4GHz && spread > 4) continue;
    if (channel.band == phy::Band::k5GHz && spread > 0) continue;
    mac::ActivitySource src;
    src.kind = mac::SourceKind::kNonWifi;
    src.rx_power = PowerDbm{i.rssi_dbm} - static_cast<double>(spread) * 2.0;
    src.duty_cycle = is_daytime(hour) ? i.day_duty : i.night_duty;
    activity.sources.push_back(src);
  }
  return activity;
}

std::vector<scan::ChannelActivity> RadioEnvironment::activities_all(
    const phy::ChannelPlan& plan, double hour) const {
  std::vector<scan::ChannelActivity> out;
  out.reserve(plan.channels().size());
  for (const auto& channel : plan.channels()) {
    out.push_back(activity_on(channel, hour));
  }
  return out;
}

int RadioEnvironment::audible_neighbors(phy::Band band) const {
  int count = 0;
  for (const auto& n : env_->neighbors) {
    if (n.band == band && n.rssi_dbm >= kBeaconDecodeFloorDbm) ++count;
  }
  return count;
}

int RadioEnvironment::audible_hotspots(phy::Band band) const {
  int count = 0;
  for (const auto& n : env_->neighbors) {
    if (n.band == band && n.is_hotspot && n.rssi_dbm >= kBeaconDecodeFloorDbm) ++count;
  }
  return count;
}

}  // namespace wlm::sim
