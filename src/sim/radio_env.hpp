// Builds the per-channel activity picture seen by one access point's radios
// at a given hour: foreign neighbors (beacons + data, with adjacent-channel
// rejection), same-site fleet APs, non-WiFi interferers, and the AP's own
// offered load.
#pragma once

#include <vector>

#include "deploy/generator.hpp"
#include "mac/medium.hpp"
#include "phy/channel.hpp"
#include "scan/scanner.hpp"

namespace wlm::sim {

/// A same-site fleet AP as an interference source.
struct FleetPeer {
  int channel_24 = 1;
  int channel_5 = 36;
  double rx_power_24_dbm = -70.0;  // at the observing AP
  double rx_power_5_dbm = -75.0;
  double tx_duty_24 = 0.0;  // data + broadcast traffic it carries, 2.4 GHz
  double tx_duty_5 = 0.0;
};

class RadioEnvironment {
 public:
  RadioEnvironment(const deploy::NeighborEnvironment* env, std::vector<FleetPeer> peers);

  /// Activity on `channel` at hour-of-day `hour`. `day` selects the day/
  /// night duty for foreign sources (true for business hours).
  [[nodiscard]] scan::ChannelActivity activity_on(const phy::Channel& channel,
                                                  double hour) const;

  /// Activities for every channel in the plan (the MR18 scan list).
  [[nodiscard]] std::vector<scan::ChannelActivity> activities_all(
      const phy::ChannelPlan& plan, double hour) const;

  /// Count of foreign networks audible per band (for Table 7): everything
  /// whose beacons decode at the AP, regardless of channel.
  [[nodiscard]] int audible_neighbors(phy::Band band) const;
  [[nodiscard]] int audible_hotspots(phy::Band band) const;

 private:
  const deploy::NeighborEnvironment* env_;
  std::vector<FleetPeer> peers_;
};

/// Whether `hour` counts as daytime for foreign-network duty purposes.
[[nodiscard]] bool is_daytime(double hour);

/// Duty cycle of one foreign network's beacons (all SSIDs).
[[nodiscard]] double neighbor_beacon_duty(const deploy::NeighborInfo& n);

/// Minimum RSSI for a beacon to be decodable and enter the neighbor table.
inline constexpr double kBeaconDecodeFloorDbm = -92.0;

}  // namespace wlm::sim
