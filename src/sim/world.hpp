// The world model, now a thin facade over the sharded fleet runtime.
//
// Historically World owned every AP, client, link, and the RNG stream for
// the whole fleet in one monolith. That state now lives in per-network
// sim::NetworkShard instances driven by sim::FleetRunner; World keeps the
// original construction-and-campaign API (and its default serial behavior)
// so existing callers and tests are untouched. Set WorldConfig::threads > 1
// to run campaigns on a worker pool — output is bit-identical either way.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fleet_runner.hpp"

namespace wlm::sim {

class World {
 public:
  explicit World(WorldConfig config)
      : runner_(std::move(config)), rng_(runner_.config().seed) {}

  // --- structure ---
  [[nodiscard]] deploy::Epoch epoch() const { return runner_.epoch(); }
  [[nodiscard]] const deploy::Fleet& fleet() const { return runner_.fleet(); }
  [[nodiscard]] PtrSpan<ApRuntime> aps() { return runner_.aps(); }
  [[nodiscard]] PtrSpan<const ApRuntime> aps() const { return runner_.aps(); }
  [[nodiscard]] PtrSpan<MeshLink> mesh_links() { return runner_.mesh_links(); }
  [[nodiscard]] backend::ReportStore& store() { return runner_.store(); }
  /// Columnar read path: the harvested fleet straight from the tsdb segment
  /// vault (same canonical order as store(), one network resident at a
  /// time). Analyses should prefer this.
  [[nodiscard]] const backend::ReportSource& reports() const { return runner_.reports(); }
  /// Facade-level auxiliary stream (simulation state draws from per-shard
  /// substreams instead; see NetworkShard).
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::size_t client_count() const { return runner_.client_count(); }
  /// The underlying runtime, for callers that want the sharded API.
  [[nodiscard]] FleetRunner& runner() { return runner_; }

  // --- campaigns (see FleetRunner for semantics) ---
  void run_usage_week(int reports_per_week = 7,
                      const std::vector<traffic::UpdateSpike>& spikes = {}) {
    runner_.run_usage_week(reports_per_week, spikes);
  }
  void snapshot_clients(SimTime t) { runner_.snapshot_clients(t); }
  void run_mr16_interference(SimTime t) { runner_.run_mr16_interference(t); }
  void run_mr18_scan(SimTime t, double hour) { runner_.run_mr18_scan(t, hour); }
  void run_link_windows(SimTime t) { runner_.run_link_windows(t); }
  void harvest(HarvestMode mode = HarvestMode::kFinal) { runner_.harvest(mode); }

  using SeriesPoint = sim::SeriesPoint;
  [[nodiscard]] std::vector<SeriesPoint> link_week_series(std::size_t link_index,
                                                          Duration step) {
    return runner_.link_week_series(link_index, step);
  }

  // --- pipeline statistics ---
  [[nodiscard]] std::uint64_t flows_classified() const { return runner_.flows_classified(); }
  [[nodiscard]] std::uint64_t flows_misclassified() const {
    return runner_.flows_misclassified();
  }
  [[nodiscard]] double mean_report_bytes_per_ap() const {
    return runner_.mean_report_bytes_per_ap();
  }
  [[nodiscard]] fault::LossLedger loss_ledger() const { return runner_.loss_ledger(); }
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return runner_.metrics();
  }
  [[nodiscard]] const std::vector<telemetry::TraceSpan>& trace() const {
    return runner_.trace();
  }
  [[nodiscard]] double serving_utilization(const ApRuntime& ap, phy::Band band,
                                           double hour) const {
    return sim::serving_utilization(ap, band, hour);
  }

 private:
  FleetRunner runner_;
  Rng rng_;
};

}  // namespace wlm::sim
