// The world model: a generated fleet brought to life — APs with runtime
// state, associated clients, mesh links, and campaign runners that push
// telemetry through the full pipeline (encode -> tunnel -> poll -> store).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "backend/poller.hpp"
#include "backend/store.hpp"
#include "deploy/generator.hpp"
#include "sim/ap.hpp"
#include "sim/link.hpp"
#include "traffic/diurnal.hpp"

namespace wlm::sim {

struct WorldConfig {
  deploy::FleetConfig fleet;
  /// Scales clients per AP (1.0 = the industry-calibrated counts).
  double client_scale = 1.0;
  std::uint64_t seed = 7;
  /// Fraction of tunnels that experience a WAN flap during a campaign.
  double wan_flap_fraction = 0.0;
};

class World {
 public:
  explicit World(WorldConfig config);

  // --- structure ---
  [[nodiscard]] deploy::Epoch epoch() const { return config_.fleet.epoch; }
  [[nodiscard]] const deploy::Fleet& fleet() const { return fleet_; }
  [[nodiscard]] std::vector<ApRuntime>& aps() { return aps_; }
  [[nodiscard]] const std::vector<ApRuntime>& aps() const { return aps_; }
  [[nodiscard]] std::vector<MeshLink>& mesh_links() { return links_; }
  [[nodiscard]] backend::ReportStore& store() { return store_; }
  [[nodiscard]] const backend::Poller& poller() const { return poller_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::size_t client_count() const { return client_count_; }

  // --- campaigns: each enqueues reports into the AP tunnels ---

  /// The one-week usage study (Tables 3/5/6): generates each client's
  /// weekly workload, classifies its flows AT THE AP with the real parsers
  /// and rule engine, and emits `reports_per_week` usage reports per AP.
  /// `spikes` injects fleet-wide software-update events (paper §6.2):
  /// affected platforms multiply their download traffic during the event,
  /// skewing that day's reports.
  void run_usage_week(int reports_per_week = 7,
                      const std::vector<traffic::UpdateSpike>& spikes = {});

  /// Associated-client snapshot (Figure 1 / Table 4): capabilities + RSSI.
  void snapshot_clients(SimTime t);

  /// MR16-style interference measurement: serving-channel utilization plus
  /// the neighbor scan table (Figures 2/6, Table 7).
  void run_mr16_interference(SimTime t);

  /// MR18-style dedicated-radio scan window across all channels
  /// (Figures 7/8/9/10). `hour` selects day/night activity.
  void run_mr18_scan(SimTime t, double hour);

  /// Link-probe windows for every mesh link, recorded at the receiver and
  /// reported (Figure 3).
  void run_link_windows(SimTime t);

  /// Polls every tunnel into the store (reconnecting flapped tunnels first:
  /// queued reports must survive, per the paper's §2 design).
  void harvest();

  /// Delivery-ratio time series for one link across a simulated week
  /// (Figures 4/5). `step` is the reporting cadence.
  struct SeriesPoint {
    double hour_of_week = 0.0;
    double ratio = 0.0;
  };
  [[nodiscard]] std::vector<SeriesPoint> link_week_series(std::size_t link_index,
                                                          Duration step);

  // --- pipeline statistics ---
  [[nodiscard]] std::uint64_t flows_classified() const { return flows_classified_; }
  [[nodiscard]] std::uint64_t flows_misclassified() const { return flows_misclassified_; }
  /// Total framed bytes enqueued per AP over the last usage campaign, for
  /// the ~1 kbit/s overhead claim.
  [[nodiscard]] double mean_report_bytes_per_ap() const;

  /// Busy fraction on an AP's serving channel (used as collision exposure
  /// for its incoming probes).
  [[nodiscard]] double serving_utilization(const ApRuntime& ap, phy::Band band,
                                           double hour) const;

 private:
  WorldConfig config_;
  Rng rng_;
  deploy::Fleet fleet_;
  std::vector<ApRuntime> aps_;
  std::unordered_map<std::uint32_t, std::size_t> ap_index_;
  std::vector<MeshLink> links_;
  backend::ReportStore store_;
  backend::Poller poller_;
  phy::PathLossModel pathloss_;
  std::size_t client_count_ = 0;
  std::uint64_t flows_classified_ = 0;
  std::uint64_t flows_misclassified_ = 0;

  void build_clients(const deploy::NetworkConfig& net, std::vector<ApRuntime*>& net_aps);
  void build_links(const deploy::NetworkConfig& net, const std::vector<ApRuntime*>& net_aps);
  void enqueue_report(ApRuntime& ap, wire::ApReport report);
  [[nodiscard]] std::vector<wire::NeighborBss> neighbor_records(const ApRuntime& ap) const;
};

}  // namespace wlm::sim
