#include "telemetry/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>

namespace wlm::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_labels(std::string& out, std::uint64_t entity) {
  if (entity == 0) return;
  out += "{ap=\"";
  out += std::to_string(entity);
  out += "\"}";
}

void append_bucket_label(std::string& out, std::uint64_t entity, const std::string& le) {
  out += "{le=\"";
  out += le;
  out += "\"";
  if (entity != 0) {
    out += ",ap=\"";
    out += std::to_string(entity);
    out += "\"";
  }
  out += "}";
}

void type_header(std::string& out, std::string* last_typed, const std::string& name,
                 const char* type) {
  if (*last_typed == name) return;
  *last_typed = name;
  out += "# TYPE ";
  out += name;
  out += " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  std::string last_typed;
  registry.for_each_counter([&](const MetricKey& key, const Counter& c) {
    type_header(out, &last_typed, key.name, "counter");
    out += key.name;
    append_labels(out, key.entity);
    out += " ";
    out += std::to_string(c.value());
    out += "\n";
  });
  last_typed.clear();
  registry.for_each_gauge([&](const MetricKey& key, const Gauge& g) {
    type_header(out, &last_typed, key.name, "gauge");
    out += key.name;
    append_labels(out, key.entity);
    out += " ";
    out += fmt_double(g.value());
    out += "\n";
  });
  last_typed.clear();
  registry.for_each_histogram([&](const MetricKey& key, const Histogram& h) {
    type_header(out, &last_typed, key.name, "histogram");
    std::uint64_t cumulative = 0;
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += key.name;
      out += "_bucket";
      append_bucket_label(out, key.entity,
                          i < bounds.size() ? fmt_double(bounds[i]) : "+Inf");
      out += " ";
      out += std::to_string(cumulative);
      out += "\n";
    }
    out += key.name;
    out += "_sum";
    append_labels(out, key.entity);
    out += " ";
    out += fmt_double(h.sum());
    out += "\n";
    out += key.name;
    out += "_count";
    append_labels(out, key.entity);
    out += " ";
    out += std::to_string(h.count());
    out += "\n";
  });
  return out;
}

std::string to_json_lines(const MetricsRegistry& registry) {
  std::string out;
  registry.for_each_counter([&](const MetricKey& key, const Counter& c) {
    out += "{\"kind\":\"counter\",\"name\":\"";
    out += key.name;
    out += "\",\"entity\":";
    out += std::to_string(key.entity);
    out += ",\"value\":";
    out += std::to_string(c.value());
    out += "}\n";
  });
  registry.for_each_gauge([&](const MetricKey& key, const Gauge& g) {
    out += "{\"kind\":\"gauge\",\"name\":\"";
    out += key.name;
    out += "\",\"entity\":";
    out += std::to_string(key.entity);
    out += ",\"value\":";
    out += fmt_double(g.value());
    out += "}\n";
  });
  registry.for_each_histogram([&](const MetricKey& key, const Histogram& h) {
    out += "{\"kind\":\"histogram\",\"name\":\"";
    out += key.name;
    out += "\",\"entity\":";
    out += std::to_string(key.entity);
    out += ",\"bounds\":[";
    const auto& bounds = h.bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) out += ",";
      out += fmt_double(bounds[i]);
    }
    out += "],\"counts\":[";
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    out += fmt_double(h.sum());
    out += "}\n";
  });
  return out;
}

std::string spans_to_json_lines(const std::vector<TraceSpan>& spans) {
  std::string out;
  for (const auto& span : spans) {
    out += "{\"span\":\"";
    out += span_kind_name(span.kind);
    out += "\",\"entity\":";
    out += std::to_string(span.entity);
    out += ",\"start_us\":";
    out += std::to_string(span.start_us);
    out += ",\"end_us\":";
    out += std::to_string(span.end_us);
    out += ",\"detail\":";
    out += std::to_string(span.detail);
    out += "}\n";
  }
  return out;
}

}  // namespace wlm::telemetry
