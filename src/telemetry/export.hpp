// Exporters for the telemetry layer: Prometheus-style text and JSON-lines.
//
// Both formats are deterministic renderings of deterministic inputs: metric
// iteration is sorted (name, then entity), doubles print with %.17g (every
// value we record is an integral count well under 2^53, so the rendering is
// exact and platform-stable), and no wall-clock timestamp ever appears.
// Byte-identical registries therefore export byte-identical text — the
// property `wlmctl stats --jobs N` leans on.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wlm::telemetry {

/// Prometheus exposition-format text: `# TYPE` headers, `{ap="N"}` labels
/// for per-entity metrics, `_bucket{le=...}` / `_sum` / `_count` series for
/// histograms.
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// One JSON object per line, one line per metric instance:
///   {"kind":"counter","name":...,"entity":N,"value":N}
///   {"kind":"gauge",...}
///   {"kind":"histogram","name":...,"bounds":[...],"counts":[...],...}
[[nodiscard]] std::string to_json_lines(const MetricsRegistry& registry);

/// One JSON object per line, one line per span, in the order given:
///   {"span":"poll","entity":N,"start_us":N,"end_us":N,"detail":N}
[[nodiscard]] std::string spans_to_json_lines(const std::vector<TraceSpan>& spans);

}  // namespace wlm::telemetry
