#include "telemetry/metrics.hpp"

#include <algorithm>

namespace wlm::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  if (counts_.empty()) counts_.assign(1, 0);  // default-constructed: overflow only
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  if (bounds_ != other.bounds_ || counts_.size() != other.counts_.size()) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

namespace {
MetricKey make_key(std::string_view name, std::uint64_t entity) {
  return MetricKey{std::string(name), entity};
}
}  // namespace

Counter& MetricsRegistry::counter(std::string_view name, std::uint64_t entity) {
  return counters_[make_key(name, entity)];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::uint64_t entity) {
  return gauges_[make_key(name, entity)];
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      std::uint64_t entity) {
  const auto key = make_key(name, entity);
  const auto it = histograms_.find(key);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(key, Histogram(std::move(bounds))).first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name,
                                             std::uint64_t entity) const {
  const auto it = counters_.find(make_key(name, entity));
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name, std::uint64_t entity) const {
  const auto it = gauges_.find(make_key(name, entity));
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name,
                                                 std::uint64_t entity) const {
  const auto it = histograms_.find(make_key(name, entity));
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, c] : other.counters_) counters_[key].inc(c.value());
  for (const auto& [key, g] : other.gauges_) gauges_[key].add(g.value());
  for (const auto& [key, h] : other.histograms_) histograms_[key].merge(h);
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const MetricKey&, const Counter&)>& fn) const {
  for (const auto& [key, c] : counters_) fn(key, c);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const MetricKey&, const Gauge&)>& fn) const {
  for (const auto& [key, g] : gauges_) fn(key, g);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const MetricKey&, const Histogram&)>& fn) const {
  for (const auto& [key, h] : histograms_) fn(key, h);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace wlm::telemetry
