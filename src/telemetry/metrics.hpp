// Fleet-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// The paper's pipeline only worked at 10,000-AP scale because the collectors
// themselves were instrumented — per-AP counters and backend health rolled up
// in the cloud (§6.1: "measure and instrument the system at large scale").
// This registry is that layer for the reproduction.
//
// Concurrency model: "lock-free-ish" by confinement, not by atomics. Every
// MetricsRegistry instance belongs to exactly one shard (or to the harvest
// thread), the same ownership discipline as backend::ReportStore, so updates
// are plain integer increments with no synchronization. At harvest the
// fleet runtime merges shard registries in fixed fleet order — additive for
// every metric kind — which keeps the merged snapshot bit-identical for any
// worker-pool size (see sim::FleetRunner's determinism contract).
//
// Determinism rules for anything stored here:
//   1. values derive from simulated state only — never wall-clock time
//      (wall-clock self-profiling lives in telemetry/profile.hpp instead);
//   2. storage is sorted (std::map keyed by name+entity), so iteration and
//      the exporters in telemetry/export.hpp are order-stable;
//   3. merge is commutative addition, so shard merge order only matters for
//      key creation, which the sorted map erases.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wlm::telemetry {

/// Identifies one metric instance: a metric name plus an optional entity
/// (AP id, network id — the caller composes it; 0 means fleet-wide). The
/// same shape as backend::SeriesKey, for the same reason: per-device
/// attribution is what fleet totals cannot give.
struct MetricKey {
  std::string name;
  std::uint64_t entity = 0;

  bool operator<(const MetricKey& o) const {
    return name < o.name || (name == o.name && entity < o.entity);
  }
  bool operator==(const MetricKey&) const = default;
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Shard gauges are additive contributions (ledger
/// buckets, queue depths), so merging sums them into fleet totals.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; one
/// overflow bucket catches everything above the last bound. Bounds are set
/// at creation and never change, so shard histograms merge bucket-wise.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Adds `other`'s buckets into this one. Requires identical bounds;
  /// mismatched shapes are ignored (a merge must never corrupt counts).
  void merge(const Histogram& other);

  /// Exact overwrite for checkpoint restore. Returns false (and changes
  /// nothing) unless `counts` matches this histogram's bucket shape —
  /// restore must never leave a half-valid histogram behind.
  bool restore(const std::vector<std::uint64_t>& counts, std::uint64_t count, double sum) {
    if (counts.size() != bounds_.size() + 1) return false;
    counts_ = counts;
    count_ = count;
    sum_ = sum;
    return true;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates. References stay valid for the registry's lifetime
  /// (node-based map), so hot paths can cache the handle.
  Counter& counter(std::string_view name, std::uint64_t entity = 0);
  Gauge& gauge(std::string_view name, std::uint64_t entity = 0);
  /// `bounds` applies only on first creation of the key.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::uint64_t entity = 0);

  /// Value lookups for tests and reconciliation; 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            std::uint64_t entity = 0) const;
  [[nodiscard]] double gauge_value(std::string_view name, std::uint64_t entity = 0) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name,
                                                std::uint64_t entity = 0) const;

  /// Adds every metric of `other` into this registry: counters and gauges
  /// sum, histograms merge bucket-wise, missing keys are created. Callers
  /// needing bit-stable fleet snapshots merge shards in fixed fleet order,
  /// like backend::ReportStore::merge (sorted storage makes even that
  /// requirement soft — see file comment).
  void merge(const MetricsRegistry& other);

  /// Sorted-key visitation (the exporters' iteration order).
  void for_each_counter(
      const std::function<void(const MetricKey&, const Counter&)>& fn) const;
  void for_each_gauge(const std::function<void(const MetricKey&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const MetricKey&, const Histogram&)>& fn) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void clear();

 private:
  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
};

}  // namespace wlm::telemetry
