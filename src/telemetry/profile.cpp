#include "telemetry/profile.hpp"

#include <cstdio>

namespace wlm::telemetry {

void PhaseProfiler::record(std::string_view phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& stats = phases_[std::string(phase)];
  stats.seconds += seconds;
  ++stats.count;
}

std::vector<std::pair<std::string, PhaseStats>> PhaseProfiler::phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {phases_.begin(), phases_.end()};
}

std::string PhaseProfiler::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"phases\":[";
  bool first = true;
  for (const auto& [name, stats] : phases_) {
    if (!first) out += ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", stats.seconds);
    out += "{\"name\":\"";
    out += name;
    out += "\",\"seconds\":";
    out += buf;
    out += ",\"count\":";
    out += std::to_string(stats.count);
    out += "}";
  }
  out += "]}";
  return out;
}

void PhaseProfiler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
}

PhaseProfiler& global_profiler() {
  // Intentionally leaked: bench Timers with static storage duration record
  // into this from their destructors, which can run after a function-local
  // static would already be gone.
  static PhaseProfiler* profiler = new PhaseProfiler();
  return *profiler;
}

void reset_global_profiler() { global_profiler().clear(); }

WorkTally& work_tally() {
  // Leaked for the same reason as global_profiler(): the bench JSON writer
  // runs from an atexit hook, after function-local statics may be gone.
  static WorkTally* tally = new WorkTally();
  return *tally;
}

}  // namespace wlm::telemetry
