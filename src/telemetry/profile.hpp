// Wall-clock self-profiling, deliberately quarantined from the metrics
// registry. Phase timers answer "where do the cycles go" for the bench
// harness and the fleet runtime; their values are real elapsed seconds and
// therefore nondeterministic, so they must NEVER feed anything that claims
// bit-identity across runs or `--jobs` values. The split is structural:
// MetricsRegistry holds sim-time facts, PhaseProfiler holds wall-clock
// facts, and the exporters for one never see the other.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wlm::telemetry {

/// Simple steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void restart() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct PhaseStats {
  double seconds = 0.0;
  std::uint64_t count = 0;
};

/// Accumulates named wall-clock phases. Mutex-protected because the bench
/// harness and worker threads may record concurrently; contention is nil
/// (phases are recorded once per campaign stage, not per event).
class PhaseProfiler {
 public:
  void record(std::string_view phase, double seconds);

  /// Sorted by phase name.
  [[nodiscard]] std::vector<std::pair<std::string, PhaseStats>> phases() const;

  /// JSON fragment: {"phases":[{"name":...,"seconds":...,"count":N},...]}
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, PhaseStats> phases_;
};

/// RAII helper: records the elapsed time into `profiler` at scope exit.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler& profiler, std::string phase)
      : profiler_(profiler), phase_(std::move(phase)) {}
  ~ScopedPhase() { profiler_.record(phase_, watch_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler& profiler_;
  std::string phase_;
  Stopwatch watch_;
};

/// Process-wide profiler the bench harness serializes into BENCH_*.json.
/// FleetRunner mirrors its phase timings here so standalone tools get the
/// breakdown for free.
PhaseProfiler& global_profiler();

/// Zeroes the process-wide profiler. The singleton object itself stays
/// alive for the whole process (static-duration bench Timers record into it
/// from destructors, so it is deliberately never destroyed), but phases it
/// accumulated are dropped — call between bench repetitions so one rep's
/// timings never bleed into the next rep's BENCH_*.json.
void reset_global_profiler();

/// Process-wide tally of simulation work items, used by the bench harness to
/// report throughput as work/second. The counts themselves are sim-determined
/// (fragments classified, report frames harvested) and therefore identical
/// across runs and `--jobs` values — only the division by wall-clock seconds
/// is nondeterministic, and that happens in the bench JSON writer, never in
/// anything that claims bit-identity. Atomics because shards on worker
/// threads bump them concurrently; integer addition commutes, so thread
/// interleaving cannot change the totals.
struct WorkTally {
  std::atomic<std::uint64_t> fragments{0};
  std::atomic<std::uint64_t> frames{0};

  void reset() {
    fragments.store(0, std::memory_order_relaxed);
    frames.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide tally (never destroyed, same lifetime story as
/// global_profiler()).
WorkTally& work_tally();

}  // namespace wlm::telemetry
