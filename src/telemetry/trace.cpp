#include "telemetry/trace.hpp"

#include <algorithm>

namespace wlm::telemetry {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kPoll: return "poll";
    case SpanKind::kHarvest: return "harvest";
    case SpanKind::kOutage: return "outage";
    case SpanKind::kReboot: return "reboot";
    case SpanKind::kQuarantine: return "quarantine";
    case SpanKind::kShardRetry: return "shard_retry";
    case SpanKind::kShardQuarantine: return "shard_quarantine";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const TraceSpan& span) {
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[recorded_ % capacity_] = span;
  }
  ++recorded_;
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

std::uint64_t FlightRecorder::dropped() const {
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

std::vector<TraceSpan> FlightRecorder::snapshot() const {
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  if (recorded_ <= capacity_) {
    out = ring_;
    return out;
  }
  // The ring wrapped: the oldest retained span sits at the write cursor.
  const std::size_t head = static_cast<std::size_t>(recorded_ % capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

void FlightRecorder::clear() {
  ring_.clear();
  recorded_ = 0;
}

bool FlightRecorder::restore(const std::vector<TraceSpan>& spans, std::uint64_t recorded) {
  const std::size_t expect =
      recorded < capacity_ ? static_cast<std::size_t>(recorded) : capacity_;
  if (spans.size() != expect) return false;
  ring_.clear();
  if (recorded <= capacity_) {
    ring_ = spans;
  } else {
    // Invert snapshot(): span k goes back to slot (head + k) mod capacity so
    // the write cursor resumes exactly where the saved recorder left it.
    ring_.resize(capacity_);
    const std::size_t head = static_cast<std::size_t>(recorded % capacity_);
    for (std::size_t k = 0; k < capacity_; ++k) ring_[(head + k) % capacity_] = spans[k];
  }
  recorded_ = recorded;
  return true;
}

}  // namespace wlm::telemetry
