// Sim-time trace spans and the per-shard flight recorder.
//
// A span marks one stage of a report's life (enqueue at the AP, a poll
// cycle, the harvest drain) or one disruption window (WAN outage, reboot,
// poller quarantine) in *simulated* time — never wall-clock, so recorded
// traces are part of the deterministic output and replay bit-identically
// for any worker-pool size.
//
// The recorder is a bounded ring buffer, one per shard, like a crash-cart
// flight recorder: always on, O(1) per record, and when campaigns emit more
// spans than it holds the oldest are overwritten (the `dropped()` count
// says how many). Shard-confined like everything else a campaign touches,
// so recording takes no locks.
#pragma once

#include <cstdint>
#include <vector>

namespace wlm::telemetry {

enum class SpanKind : std::uint8_t {
  kEnqueue,     // report framed and queued on its AP tunnel
  kPoll,        // one backend poll cycle over a shard's tunnels
  kHarvest,     // harvest drain of a shard
  kOutage,      // WAN outage window (start..end in sim time)
  kReboot,      // device restart instant (queued telemetry flushed)
  kQuarantine,  // poller backoff reached the quarantine level
  kShardRetry,       // supervisor restored a failed shard and re-ran a phase
  kShardQuarantine,  // supervisor exhausted retries; shard excluded
};

[[nodiscard]] const char* span_kind_name(SpanKind kind);

struct TraceSpan {
  SpanKind kind = SpanKind::kEnqueue;
  /// AP id for device-side spans, network id for shard-level ones, 0 when
  /// the event has no single owner (a whole-shard poll cycle).
  std::uint64_t entity = 0;
  std::int64_t start_us = 0;
  /// == start_us for instantaneous events (enqueue, reboot).
  std::int64_t end_us = 0;
  /// Kind-specific magnitude: frame bytes (enqueue), frames pulled (poll,
  /// harvest), frames lost (reboot), backoff level (quarantine).
  std::uint64_t detail = 0;

  bool operator==(const TraceSpan&) const = default;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const TraceSpan& span);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Spans overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Retained spans, oldest first (recording order — sim-time order as long
  /// as the producer advances monotonically, which shard campaigns do).
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;

  void clear();

  /// Exact overwrite for checkpoint restore: `spans` is a snapshot() (oldest
  /// first, at most capacity entries) and `recorded` the lifetime total.
  /// Returns false (changing nothing) on an inconsistent pair. The ring is
  /// laid out exactly as organic recording would have left it, so future
  /// record() calls overwrite the same slots in the same order.
  bool restore(const std::vector<TraceSpan>& spans, std::uint64_t recorded);

 private:
  std::size_t capacity_;
  std::vector<TraceSpan> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace wlm::telemetry
