#include "traffic/broadcast.hpp"

namespace wlm::traffic {

BroadcastLoad broadcast_load(int clients, const BroadcastProfile& profile,
                             phy::Modulation basic_rate) {
  BroadcastLoad load;
  if (clients <= 0) return load;
  const double per_client_fps = (profile.arp_per_min + profile.mdns_per_min +
                                 profile.ssdp_per_min + profile.dhcp_per_min) /
                                60.0;
  load.frames_per_second = per_client_fps * clients;

  // Airtime per second: each class at its size, all at the basic rate.
  const double airtime_us_per_client_s =
      (profile.arp_per_min * static_cast<double>(phy::airtime_us(basic_rate, profile.arp_bytes)) +
       profile.mdns_per_min * static_cast<double>(phy::airtime_us(basic_rate, profile.mdns_bytes)) +
       profile.ssdp_per_min * static_cast<double>(phy::airtime_us(basic_rate, profile.ssdp_bytes)) +
       profile.dhcp_per_min * static_cast<double>(phy::airtime_us(basic_rate, profile.dhcp_bytes))) /
      60.0;
  load.airtime_duty = airtime_us_per_client_s * clients / 1e6;
  if (load.airtime_duty > 1.0) load.airtime_duty = 1.0;
  return load;
}

int broadcast_client_limit(const BroadcastProfile& profile, phy::Modulation basic_rate,
                           double duty_budget) {
  const BroadcastLoad one = broadcast_load(1, profile, basic_rate);
  if (one.airtime_duty <= 0.0) return INT32_MAX;
  return static_cast<int>(duty_budget / one.airtime_duty);
}

BroadcastProfile with_mdns_suppression(BroadcastProfile profile) {
  profile.mdns_per_min = 0.0;
  profile.ssdp_per_min = 0.0;
  return profile;
}

}  // namespace wlm::traffic
