// Broadcast/multicast overhead at campus scale.
//
// Paper §6.3 lists "protocols like multicast DNS, which work in home
// environments but cause broadcast issues at campus scale" among the
// common non-wireless problems. The mechanism: broadcast frames must be
// transmitted at a basic (low) rate so every associated client can decode
// them, so per-client chatter that is negligible at home multiplies into
// real airtime across a large flat L2 domain.
#pragma once

#include <cstdint>

#include "core/time.hpp"
#include "phy/modulation.hpp"

namespace wlm::traffic {

struct BroadcastProfile {
  /// Frames per client per minute of each chatter class.
  double arp_per_min = 1.0;
  double mdns_per_min = 0.8;   // Bonjour service discovery
  double ssdp_per_min = 0.3;   // UPnP
  double dhcp_per_min = 0.05;  // renewals
  /// Typical frame sizes on air, bytes.
  int arp_bytes = 60;
  int mdns_bytes = 300;
  int ssdp_bytes = 350;
  int dhcp_bytes = 350;
};

struct BroadcastLoad {
  double frames_per_second = 0.0;
  double airtime_duty = 0.0;  // fraction of channel time consumed
};

/// Airtime consumed by broadcast chatter from `clients` devices sharing one
/// L2 broadcast domain, as seen on one AP's channel. Broadcasts go out at
/// `basic_rate` (1 Mb/s on legacy-compatible 2.4 GHz networks).
[[nodiscard]] BroadcastLoad broadcast_load(int clients, const BroadcastProfile& profile,
                                           phy::Modulation basic_rate);

/// Clients at which broadcast chatter alone crosses `duty_budget` of the
/// channel (the "works at home, melts the campus" threshold).
[[nodiscard]] int broadcast_client_limit(const BroadcastProfile& profile,
                                         phy::Modulation basic_rate,
                                         double duty_budget = 0.10);

/// Mitigation model: mDNS/SSDP suppression (proxying at the AP, as
/// enterprise gear does) leaves only ARP + DHCP on air.
[[nodiscard]] BroadcastProfile with_mdns_suppression(BroadcastProfile profile);

}  // namespace wlm::traffic
