#include "traffic/diurnal.hpp"

#include <cmath>

namespace wlm::traffic {

double diurnal_multiplier(double hour, deploy::Industry industry) {
  // Two archetype curves blended by vertical:
  //  - office: ramp 8am, peak 10am-4pm, quiet nights
  //  - evening: hospitality/restaurants peak 6-10pm
  auto bump = [](double h, double center, double width) {
    const double d = std::remainder(h - center, 24.0);
    return std::exp(-(d * d) / (2.0 * width * width));
  };
  const double office = 0.25 + 1.9 * bump(hour, 12.5, 3.5);
  const double evening = 0.35 + 1.7 * bump(hour, 19.5, 3.0);

  switch (industry) {
    case deploy::Industry::kHospitality:
    case deploy::Industry::kRestaurants:
      return evening;
    case deploy::Industry::kRetail:
      return 0.5 * office + 0.5 * evening;
    default:
      return office;
  }
}

std::vector<UpdateSpike> sample_update_spikes(Rng& rng) {
  std::vector<UpdateSpike> spikes;
  // Roughly one vendor release lands inside any given week (§6.2: "software
  // updates from Apple and Microsoft would drive large downloads").
  if (rng.chance(0.5)) {
    UpdateSpike s;
    s.start = SimTime::epoch() +
              Duration::hours(rng.uniform_int(24, 5 * 24)) + Duration::minutes(rng.uniform_int(0, 59));
    s.affects_apple = rng.chance(0.6);
    s.affects_windows = !s.affects_apple;
    s.download_multiplier = rng.uniform(5.0, 12.0);
    spikes.push_back(s);
  }
  return spikes;
}

}  // namespace wlm::traffic
