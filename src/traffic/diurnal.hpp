// Diurnal activity model.
//
// Business deployments (the bulk of Table 2's verticals) peak in working
// hours; Figure 9's day/night comparison (10 a.m. vs 10 p.m.) rides on this
// curve. Software-update releases add fleet-wide spikes (paper §6.2).
#pragma once

#include "core/rng.hpp"
#include "core/time.hpp"
#include "deploy/industry.hpp"

namespace wlm::traffic {

/// Relative activity multiplier at an hour of day in [0, 24); averages ~1
/// over the day. Industry selects the curve (offices vs hospitality).
[[nodiscard]] double diurnal_multiplier(double hour, deploy::Industry industry);

/// The two reference hours the paper samples (Pacific time).
inline constexpr double kDayHour = 10.0;    // 10 a.m.
inline constexpr double kNightHour = 22.0;  // 10 p.m.

/// A fleet-wide software-update event: for `duration`, devices of the
/// affected platform multiply their download traffic.
struct UpdateSpike {
  SimTime start;
  Duration duration = Duration::hours(6);
  bool affects_apple = false;
  bool affects_windows = false;
  double download_multiplier = 8.0;

  [[nodiscard]] bool active(SimTime t) const {
    return t >= start && t < start + duration;
  }
};

/// Samples zero or more update spikes across a simulated week.
[[nodiscard]] std::vector<UpdateSpike> sample_update_spikes(Rng& rng);

}  // namespace wlm::traffic
