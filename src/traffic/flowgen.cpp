#include "traffic/flowgen.hpp"

#include <algorithm>

#include "classify/dns.hpp"
#include "classify/http.hpp"
#include "classify/tls.hpp"
#include "classify/user_agent.hpp"

namespace wlm::traffic {

namespace {

using classify::AppId;
using classify::Category;

/// Apps that run over TLS (SNI evidence) vs plain HTTP vs raw sockets.
enum class WireStyle {
  kTls,
  kTlsOddPort,
  kHttp,
  kHttpVideo,
  kHttpAudio,
  kRawTcp,
  kRawUdp,
  kEncryptedTcp
};

WireStyle wire_style(const classify::AppInfo& info, Rng& rng) {
  switch (info.id) {
    case AppId::kMiscWeb:
      return WireStyle::kHttp;
    case AppId::kMiscSecureWeb:
      return WireStyle::kTls;
    case AppId::kEncryptedTcp:
      return WireStyle::kTlsOddPort;  // SSL on a non-web port
    case AppId::kMiscVideo:
      return WireStyle::kHttpVideo;
    case AppId::kMiscAudio:
      return WireStyle::kHttpAudio;
    case AppId::kNonWebTcp:
    case AppId::kRtmp:
    case AppId::kRemoteDesktop:
    case AppId::kWindowsFileSharing:
    case AppId::kAppleFileSharing:
    case AppId::kSteam:
      return WireStyle::kRawTcp;
    case AppId::kUdp:
      return WireStyle::kRawUdp;
    case AppId::kSkype:  // media over UDP more often than not
      return rng.chance(0.7) ? WireStyle::kRawUdp : WireStyle::kTls;
    case AppId::kBitTorrent:
      return WireStyle::kRawTcp;
    case AppId::kEncryptedP2p:
      return WireStyle::kEncryptedTcp;
    default:
      // Named web services: mostly HTTPS by 2015, some still plain HTTP.
      if (!info.domains.empty()) return rng.chance(0.7) ? WireStyle::kTls : WireStyle::kHttp;
      return WireStyle::kRawTcp;
  }
}

}  // namespace

void FlowGenerator::pick_domain_into(const classify::AppInfo& info, std::string& out) {
  out.clear();
  if (info.domains.empty()) return;
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(info.domains.size()) - 1));
  out = info.domains[idx];
  // Real clients resolve host names under the service domain.
  if (rng_.chance(0.4) && !out.starts_with("www.")) {
    static const char* kPrefixes[] = {"www", "api", "cdn", "edge", "static"};
    out.insert(0, 1, '.');
    out.insert(0, kPrefixes[rng_.uniform_int(0, 4)]);
  }
}

GeneratedFlow FlowGenerator::make_flow(classify::AppId app, classify::OsType os,
                                       std::uint64_t up_bytes, std::uint64_t down_bytes) {
  GeneratedFlow flow;
  make_flow_into(app, os, up_bytes, down_bytes, flow);
  return flow;
}

void FlowGenerator::make_flow_into(classify::AppId app, classify::OsType os,
                                   std::uint64_t up_bytes, std::uint64_t down_bytes,
                                   GeneratedFlow& out) {
  const auto& info = classify::app_info(app);
  out.truth = app;
  out.upstream_bytes = up_bytes;
  out.downstream_bytes = down_bytes;

  const WireStyle style = wire_style(info, rng_);
  pick_domain_into(info, domain_scratch_);
  const std::string& domain = domain_scratch_;
  const std::string_view ua =
      classify::canonical_user_agent_view(os, static_cast<unsigned>(rng_.next_u64() & 3));

  auto& s = out.sample;
  // The DNS lookup that preceded the flow: present for anything hostname-
  // based, unless the client cached it (paper: DNS is only one signal).
  s.dns_packet.clear();
  if (!domain.empty() && rng_.chance(0.8)) {
    classify::encode_dns_query_into(static_cast<std::uint16_t>(rng_.next_u64()), domain,
                                    s.dns_packet);
  }

  switch (style) {
    case WireStyle::kTls:
      s.transport = classify::Transport::kTcp;
      s.dst_port = 443;
      classify::build_client_hello_into(domain, rng_.next_u64(), s.first_payload);
      break;
    case WireStyle::kTlsOddPort:
      s.transport = classify::Transport::kTcp;
      s.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(8400, 9000));
      classify::build_client_hello_into(domain, rng_.next_u64(), s.first_payload);
      break;
    case WireStyle::kHttp:
    case WireStyle::kHttpVideo:
    case WireStyle::kHttpAudio: {
      s.transport = classify::Transport::kTcp;
      s.dst_port = 80;
      const char* content_type = style == WireStyle::kHttpVideo  ? "video/mp4"
                                 : style == WireStyle::kHttpAudio ? "audio/mpeg"
                                                                  : "";
      if (domain.empty()) {
        host_scratch_ = "site-";
        host_scratch_ += std::to_string(rng_.next_u64() % 100000);
        host_scratch_ += ".example";
      } else {
        host_scratch_ = domain;
      }
      classify::build_http_request_into("GET", host_scratch_, "/", ua, content_type,
                                        http_scratch_);
      s.first_payload.assign(http_scratch_.begin(), http_scratch_.end());
      break;
    }
    case WireStyle::kRawTcp: {
      s.transport = classify::Transport::kTcp;
      if (!info.tcp_ports.empty()) {
        s.dst_port = info.tcp_ports[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(info.tcp_ports.size()) - 1))];
      } else {
        s.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(1024, 65000));
      }
      // Low-entropy binary preamble (protocol magic + zeros).
      s.first_payload.assign(96, 0);
      s.first_payload[0] = 0x13;
      break;
    }
    case WireStyle::kRawUdp: {
      s.transport = classify::Transport::kUdp;
      if (!info.udp_ports.empty()) {
        s.dst_port = info.udp_ports[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(info.udp_ports.size()) - 1))];
      } else {
        s.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(1024, 65000));
      }
      s.first_payload.assign(64, 0xAB);
      break;
    }
    case WireStyle::kEncryptedTcp: {
      s.transport = classify::Transport::kTcp;
      s.dst_port = static_cast<std::uint16_t>(rng_.uniform_int(20000, 65000));
      // High-entropy payload: every byte pseudo-random.
      s.first_payload.resize(256);
      for (auto& b : s.first_payload) b = static_cast<std::uint8_t>(rng_.next_u64());
      break;
    }
  }

  out.src_port = next_src_port_;
  next_src_port_ = next_src_port_ == 65535 ? 49152 : static_cast<std::uint16_t>(next_src_port_ + 1);
  // FNV-1a over the destination name, salted with port and transport so
  // port-only flows still get distinct server addresses.
  std::uint32_t host_hash = 2166136261u;
  for (const char c : domain) host_hash = (host_hash ^ static_cast<std::uint8_t>(c)) * 16777619u;
  host_hash ^= (static_cast<std::uint32_t>(s.dst_port) << 16) |
               (s.transport == classify::Transport::kUdp ? 1u : 0u);
  out.dst_host = host_hash;
  // One slow-path observation per 2 MiB of volume models the flow's later
  // packets hitting the AP after the verdict is pinned; capped so a single
  // giant flow cannot dominate a shard's classification work.
  out.fragments = static_cast<std::uint16_t>(
      1 + std::min<std::uint64_t>(6, (up_bytes + down_bytes) >> 21));
}

}  // namespace wlm::traffic
