// Flow generation: renders an (application, device) pair into the actual
// packets the classifier's slow path will inspect — a DNS query, then an
// HTTP request head or TLS ClientHello (or opaque payload for P2P and
// non-web traffic). The generator and the classifier share no tables beyond
// the app catalog, so classification is a real test, not a tautology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "classify/apps.hpp"
#include "classify/classifier.hpp"
#include "classify/os.hpp"
#include "core/rng.hpp"

namespace wlm::traffic {

/// One generated flow: classifier input plus ground truth and byte volume.
/// The connection identifiers (src_port, dst_host) and the fragment count
/// are pure functions of values the generator already draws — adding them
/// consumed no extra RNG, so every downstream random stream is unchanged.
struct GeneratedFlow {
  classify::FlowSample sample;
  classify::AppId truth = classify::AppId::kUnclassified;
  std::uint64_t upstream_bytes = 0;
  std::uint64_t downstream_bytes = 0;
  std::uint16_t src_port = 0;   // client ephemeral port (generator counter)
  std::uint32_t dst_host = 0;   // stand-in server address (domain/port hash)
  std::uint16_t fragments = 1;  // slow-path observations of this flow (>= 1)
};

class FlowGenerator {
 public:
  explicit FlowGenerator(Rng rng) : rng_(rng) {}

  /// Builds the wire evidence for a flow of `app` from a device running
  /// `os`, carrying the given byte volume.
  [[nodiscard]] GeneratedFlow make_flow(classify::AppId app, classify::OsType os,
                                        std::uint64_t up_bytes, std::uint64_t down_bytes);

  /// Same flow written into a caller-owned slot. The slot's payload buffers
  /// (and the generator's internal string scratch) keep their capacity
  /// across calls, so a fleet run's millions of flows reuse a handful of
  /// allocations instead of making fresh ones per flow. Draws exactly the
  /// RNG sequence make_flow draws; every field of `out` is overwritten.
  void make_flow_into(classify::AppId app, classify::OsType os, std::uint64_t up_bytes,
                      std::uint64_t down_bytes, GeneratedFlow& out);

 private:
  Rng rng_;
  std::uint16_t next_src_port_ = 49152;  // IANA ephemeral range, wraps

  void pick_domain_into(const classify::AppInfo& info, std::string& out);

  // Scratch buffers reused across make_flow_into calls.
  std::string domain_scratch_;
  std::string host_scratch_;
  std::string http_scratch_;
};

}  // namespace wlm::traffic
