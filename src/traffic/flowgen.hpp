// Flow generation: renders an (application, device) pair into the actual
// packets the classifier's slow path will inspect — a DNS query, then an
// HTTP request head or TLS ClientHello (or opaque payload for P2P and
// non-web traffic). The generator and the classifier share no tables beyond
// the app catalog, so classification is a real test, not a tautology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "classify/apps.hpp"
#include "classify/classifier.hpp"
#include "classify/os.hpp"
#include "core/rng.hpp"

namespace wlm::traffic {

/// One generated flow: classifier input plus ground truth and byte volume.
struct GeneratedFlow {
  classify::FlowSample sample;
  classify::AppId truth = classify::AppId::kUnclassified;
  std::uint64_t upstream_bytes = 0;
  std::uint64_t downstream_bytes = 0;
};

class FlowGenerator {
 public:
  explicit FlowGenerator(Rng rng) : rng_(rng) {}

  /// Builds the wire evidence for a flow of `app` from a device running
  /// `os`, carrying the given byte volume.
  [[nodiscard]] GeneratedFlow make_flow(classify::AppId app, classify::OsType os,
                                        std::uint64_t up_bytes, std::uint64_t down_bytes);

 private:
  Rng rng_;

  [[nodiscard]] std::string pick_domain(const classify::AppInfo& info);
};

}  // namespace wlm::traffic
