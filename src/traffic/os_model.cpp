#include "traffic/os_model.hpp"

#include <array>
#include <cmath>

namespace wlm::traffic {

namespace {

using classify::AppId;
using classify::Category;
using classify::OsType;

struct Row {
  OsType os;
  double mb_2015;
  double mb_increase;
  double download_frac;
};

// Table 3 "MB / client", its "% increase", and "% download" columns.
constexpr std::array<Row, 11> kRows = {{
    {OsType::kWindows, 751, 0.12, 0.83},
    {OsType::kAppleIos, 224, 0.44, 0.88},
    {OsType::kMacOsX, 1487, 0.17, 0.75},
    {OsType::kAndroid, 121, 0.69, 0.89},
    {OsType::kUnknown, 357, -0.0036, 0.45},
    {OsType::kChromeOs, 366, 0.16, 0.91},
    {OsType::kOther, 1951, 1.68, 0.78},
    {OsType::kPlaystation, 5319, 0.77, 0.96},
    {OsType::kLinux, 1393, 1.69, 0.68},
    {OsType::kBlackberry, 11, -0.19, 0.94},
    {OsType::kWindowsMobile, 26, 0.13, 0.91},
}};

}  // namespace

OsUsageProfile os_usage(OsType os, deploy::Epoch epoch) {
  for (const auto& row : kRows) {
    if (row.os != os) continue;
    OsUsageProfile p;
    p.download_frac = row.download_frac;
    switch (epoch) {
      case deploy::Epoch::kJan2015:
        p.mb_per_client = row.mb_2015;
        break;
      case deploy::Epoch::kJan2014:
        p.mb_per_client = row.mb_2015 / (1.0 + row.mb_increase);
        break;
      case deploy::Epoch::kJul2014:
        p.mb_per_client = (row.mb_2015 + row.mb_2015 / (1.0 + row.mb_increase)) / 2.0;
        break;
    }
    return p;
  }
  return OsUsageProfile{100.0, 0.8};  // Xbox etc.: modest default
}

double sample_weekly_bytes(OsType os, deploy::Epoch epoch, Rng& rng) {
  const OsUsageProfile profile = os_usage(os, epoch);
  // Lognormal with sigma 1.6: the top decile of clients dominates usage,
  // matching the paper's "a subset of clients driving most of the usage".
  const double sigma = 1.6;
  const double mean_bytes = profile.mb_per_client * 1e6;
  const double mu = std::log(std::max(mean_bytes, 1.0)) - sigma * sigma / 2.0;
  return rng.lognormal(mu, sigma);
}

double app_affinity(OsType os, AppId app) {
  const auto& info = classify::app_info(app);
  const auto dc = classify::device_class(os);
  const bool is_apple = os == OsType::kAppleIos || os == OsType::kMacOsX;
  const bool is_mobile = dc == classify::DeviceClass::kMobile;
  const bool is_desktop = dc == classify::DeviceClass::kDesktop;
  const bool is_console = dc == classify::DeviceClass::kConsole;

  switch (app) {
    // Platform-exclusive applications.
    case AppId::kAppleFileSharing:
      return is_apple ? (os == OsType::kMacOsX ? 6.0 : 0.3) : 0.0;
    case AppId::kITunes:
    case AppId::kAppleCom:
      return is_apple ? 1.6 : (os == OsType::kWindows ? 0.4 : 0.0);
    case AppId::kWindowsFileSharing:
      return os == OsType::kWindows ? 2.0 : (os == OsType::kMacOsX ? 0.3 : 0.0);
    case AppId::kSkydrive:
    case AppId::kMicrosoftCom:
      return os == OsType::kWindows || os == OsType::kWindowsMobile ? 1.6 : 0.2;
    case AppId::kDropcam:
      return os == OsType::kOther ? 30.0 : 0.0;
    case AppId::kXboxLive:
      return os == OsType::kXbox ? 50.0 : 0.0;

    // Desktop-leaning traffic.
    case AppId::kBitTorrent:
    case AppId::kEncryptedP2p:
      return is_desktop ? 2.0 : 0.0;
    case AppId::kRemoteDesktop:
      return is_desktop ? 1.2 : 0.0;
    case AppId::kSteam:
      return os == OsType::kWindows ? 2.0 : (is_desktop ? 0.5 : 0.0);
    case AppId::kOnlineBackup:
      return is_desktop ? 2.5 : 0.0;
    case AppId::kSoftwareUpdates:
      return is_desktop ? 1.4 : (is_mobile ? 0.7 : 0.3);

    // Mobile-leaning traffic.
    case AppId::kInstagram:
      return is_mobile ? 1.7 : 0.3;
    case AppId::kFacebook:
    case AppId::kTwitter:
      return is_mobile ? 1.8 : 0.8;

    // Consoles: streaming video and gaming, nothing else.
    default:
      if (is_console) {
        return info.category == Category::kVideoMusic || info.category == Category::kGaming
                   ? 2.5
                   : 0.05;
      }
      return 1.0;
  }
}

}  // namespace wlm::traffic
