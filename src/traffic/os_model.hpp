// Per-OS usage calibration (the paper's Table 3) and the OS x application
// affinity matrix that shapes which applications each device type uses.
#pragma once

#include "classify/apps.hpp"
#include "classify/os.hpp"
#include "core/rng.hpp"
#include "deploy/epoch.hpp"

namespace wlm::traffic {

struct OsUsageProfile {
  double mb_per_client = 0.0;   // mean weekly bytes per client, MB
  double download_frac = 0.8;   // share of bytes that are downstream
};

/// Table 3 calibration for an epoch (2014 derived from the increases).
[[nodiscard]] OsUsageProfile os_usage(classify::OsType os, deploy::Epoch epoch);

/// Samples a device's weekly byte total: lognormal around the OS mean
/// (usage across clients is uneven, paper §6.2 — a subset of clients drives
/// most of the usage).
[[nodiscard]] double sample_weekly_bytes(classify::OsType os, deploy::Epoch epoch, Rng& rng);

/// Relative propensity of an OS to use an application (1 = neutral,
/// 0 = never: e.g. Apple file sharing never appears on Android).
[[nodiscard]] double app_affinity(classify::OsType os, classify::AppId app);

}  // namespace wlm::traffic
