#include "traffic/pcap.hpp"

#include <cstdio>

namespace wlm::traffic {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

namespace {

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16be(out, static_cast<std::uint16_t>(v >> 16));
  put_u16be(out, static_cast<std::uint16_t>(v));
}

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16le(out, static_cast<std::uint16_t>(v));
  put_u16le(out, static_cast<std::uint16_t>(v >> 16));
}

}  // namespace

std::vector<std::uint8_t> encapsulate(const PacketEndpoints& endpoints,
                                      classify::Transport transport,
                                      std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  const std::size_t l4_header = transport == classify::Transport::kTcp ? 20 : 8;
  out.reserve(14 + 20 + l4_header + payload.size());

  // Ethernet II.
  for (auto o : endpoints.dst_mac.octets()) out.push_back(o);
  for (auto o : endpoints.src_mac.octets()) out.push_back(o);
  put_u16be(out, 0x0800);  // IPv4

  // IPv4 header (no options).
  const auto total_len = static_cast<std::uint16_t>(20 + l4_header + payload.size());
  const std::size_t ip_start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0x00);  // DSCP/ECN
  put_u16be(out, total_len);
  put_u16be(out, 0x1234);  // identification
  put_u16be(out, 0x4000);  // DF, fragment offset 0
  out.push_back(64);       // TTL
  out.push_back(transport == classify::Transport::kTcp ? 6 : 17);
  put_u16be(out, 0);  // checksum placeholder
  put_u32be(out, endpoints.src_ip);
  put_u32be(out, endpoints.dst_ip);
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + ip_start, 20));
  out[ip_start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[ip_start + 11] = static_cast<std::uint8_t>(csum);

  if (transport == classify::Transport::kTcp) {
    put_u16be(out, endpoints.src_port);
    put_u16be(out, endpoints.dst_port);
    put_u32be(out, 0x10000001);  // sequence
    put_u32be(out, 0x20000001);  // ack
    out.push_back(0x50);         // data offset 5
    out.push_back(0x18);         // PSH|ACK
    put_u16be(out, 0xFFFF);      // window
    put_u16be(out, 0);           // checksum left zero (optional on capture)
    put_u16be(out, 0);           // urgent
  } else {
    put_u16be(out, endpoints.src_port);
    put_u16be(out, endpoints.dst_port);
    put_u16be(out, static_cast<std::uint16_t>(8 + payload.size()));
    put_u16be(out, 0);  // checksum optional for IPv4 UDP
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

PcapWriter::PcapWriter() {
  // Classic pcap global header, microsecond timestamps, little-endian.
  put_u32le(buf_, 0xA1B2C3D4);
  put_u16le(buf_, 2);   // major
  put_u16le(buf_, 4);   // minor
  put_u32le(buf_, 0);   // thiszone
  put_u32le(buf_, 0);   // sigfigs
  put_u32le(buf_, 65535);  // snaplen
  put_u32le(buf_, 1);   // LINKTYPE_ETHERNET
}

void PcapWriter::add_packet(SimTime t, std::span<const std::uint8_t> frame) {
  const auto us = t.as_micros();
  put_u32le(buf_, static_cast<std::uint32_t>(us / 1'000'000));
  put_u32le(buf_, static_cast<std::uint32_t>(us % 1'000'000));
  put_u32le(buf_, static_cast<std::uint32_t>(frame.size()));
  put_u32le(buf_, static_cast<std::uint32_t>(frame.size()));
  buf_.insert(buf_.end(), frame.begin(), frame.end());
  ++packets_;
}

void PcapWriter::add_flow(SimTime t, const GeneratedFlow& flow,
                          const PacketEndpoints& endpoints) {
  if (!flow.sample.dns_packet.empty()) {
    PacketEndpoints dns = endpoints;
    dns.dst_port = 53;
    add_packet(t, encapsulate(dns, classify::Transport::kUdp, flow.sample.dns_packet));
    t += Duration::millis(20);  // resolve latency before the data flow opens
  }
  if (!flow.sample.first_payload.empty()) {
    PacketEndpoints data = endpoints;
    data.dst_port = flow.sample.dst_port;
    add_packet(t, encapsulate(data, flow.sample.transport, flow.sample.first_payload));
  }
}

bool PcapWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size();
  return std::fclose(f) == 0 && ok;
}

std::vector<std::size_t> parse_pcap_lengths(std::span<const std::uint8_t> capture) {
  std::vector<std::size_t> lengths;
  if (capture.size() < 24) return lengths;
  const std::uint32_t magic = static_cast<std::uint32_t>(capture[0]) |
                              (static_cast<std::uint32_t>(capture[1]) << 8) |
                              (static_cast<std::uint32_t>(capture[2]) << 16) |
                              (static_cast<std::uint32_t>(capture[3]) << 24);
  if (magic != 0xA1B2C3D4) return lengths;
  std::size_t pos = 24;
  while (pos + 16 <= capture.size()) {
    const std::uint32_t incl = static_cast<std::uint32_t>(capture[pos + 8]) |
                               (static_cast<std::uint32_t>(capture[pos + 9]) << 8) |
                               (static_cast<std::uint32_t>(capture[pos + 10]) << 16) |
                               (static_cast<std::uint32_t>(capture[pos + 11]) << 24);
    pos += 16;
    if (pos + incl > capture.size()) break;  // truncated record
    lengths.push_back(incl);
    pos += incl;
  }
  return lengths;
}

}  // namespace wlm::traffic
