// PCAP export of generated flows.
//
// Wraps the flow generator's application payloads in real Ethernet/IPv4/
// TCP|UDP headers (correct lengths and IP header checksums) and writes a
// classic libpcap capture — so a generated workload can be opened in
// Wireshark or replayed through third-party classifiers for comparison
// against our rule engine.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "traffic/flowgen.hpp"

namespace wlm::traffic {

/// Internet checksum (RFC 1071) over a byte span, as used by IPv4 headers.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

struct PacketEndpoints {
  MacAddress src_mac;
  MacAddress dst_mac;
  std::uint32_t src_ip = 0x0A000002;  // 10.0.0.2
  std::uint32_t dst_ip = 0xC0A80001;  // arbitrary remote
  std::uint16_t src_port = 49152;
  std::uint16_t dst_port = 80;
};

/// Ethernet II + IPv4 + TCP|UDP + payload. TCP segments carry PSH|ACK with
/// plausible sequence numbers; UDP length fields are set correctly.
[[nodiscard]] std::vector<std::uint8_t> encapsulate(const PacketEndpoints& endpoints,
                                                    classify::Transport transport,
                                                    std::span<const std::uint8_t> payload);

/// In-memory classic pcap writer (magic 0xa1b2c3d4, LINKTYPE_ETHERNET).
class PcapWriter {
 public:
  PcapWriter();

  /// Appends one frame with a capture timestamp.
  void add_packet(SimTime t, std::span<const std::uint8_t> frame);

  /// Appends a generated flow's observable packets: the DNS query (as UDP
  /// port 53) and the first data packet, from the device toward the server.
  void add_flow(SimTime t, const GeneratedFlow& flow, const PacketEndpoints& endpoints);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::size_t packet_count() const { return packets_; }

  /// Writes the capture to a file; returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t packets_ = 0;
};

/// Parses the writer's own output (header check + record walk); used by
/// tests and sanity checks. Returns per-record payload sizes.
[[nodiscard]] std::vector<std::size_t> parse_pcap_lengths(
    std::span<const std::uint8_t> capture);

}  // namespace wlm::traffic
