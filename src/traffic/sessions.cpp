#include "traffic/sessions.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/diurnal.hpp"

namespace wlm::traffic {

SessionModel::SessionModel(SessionModelParams params, Rng rng)
    : params_(params), rng_(rng) {}

std::vector<Session> SessionModel::sample_week(Duration span) {
  std::vector<Session> sessions;
  // Thinning: candidate arrivals at the peak rate, accepted with
  // probability diurnal(t)/peak.
  double peak = 0.0;
  for (int h = 0; h < 24; ++h) {
    peak = std::max(peak, diurnal_multiplier(h + 0.5, params_.industry));
  }
  const double base_per_us = params_.sessions_per_day / 24.0 / 3.6e9;
  const double peak_rate = base_per_us * peak;

  const double mu = std::log(params_.duration_median_min * 60.0 * 1e6);  // us
  SimTime t;
  const SimTime horizon = SimTime::epoch() + span;
  while (true) {
    const double gap = rng_.exponential(peak_rate);
    t += Duration::micros(static_cast<std::int64_t>(gap));
    if (t >= horizon) break;
    const double accept =
        diurnal_multiplier(t.hour_of_day(), params_.industry) / peak;
    if (!rng_.chance(accept)) continue;
    // Arrivals during an ongoing session extend engagement, not overlap.
    if (!sessions.empty() && sessions.back().active_at(t)) continue;
    Session s;
    s.start = t;
    s.duration = Duration::micros(static_cast<std::int64_t>(
        std::min(rng_.lognormal(mu, params_.duration_sigma), 12.0 * 3.6e9)));
    if (s.end() > horizon) s.duration = horizon - s.start;
    sessions.push_back(s);
  }
  return sessions;
}

double SessionModel::presence_probability(double hour_of_day) const {
  // Mean of lognormal(mu, sigma) = median * exp(sigma^2/2).
  const double mean_duration_days =
      params_.duration_median_min * std::exp(params_.duration_sigma *
                                             params_.duration_sigma / 2.0) /
      60.0 / 24.0;
  const double rate_per_day = params_.sessions_per_day *
                              diurnal_multiplier(hour_of_day, params_.industry);
  return std::clamp(rate_per_day * mean_duration_days, 0.0, 0.95);
}

}  // namespace wlm::traffic
