// Client session model.
//
// The paper's real-time snapshot (§3.1) caught ~309,000 of the week's 5.58 M
// clients online at one evening instant: clients come and go in sessions.
// Related work the paper builds on (Ghosh et al.) models hotspot usage as
// session arrivals and durations; this module provides that structure —
// non-homogeneous Poisson arrivals shaped by the diurnal curve, with
// heavy-tailed session durations.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "deploy/industry.hpp"

namespace wlm::traffic {

struct Session {
  SimTime start;
  Duration duration;

  [[nodiscard]] SimTime end() const { return start + duration; }
  [[nodiscard]] bool active_at(SimTime t) const { return t >= start && t < end(); }
};

struct SessionModelParams {
  /// Mean sessions per device per day (arrivals scale with the diurnal
  /// multiplier around this average).
  double sessions_per_day = 3.0;
  /// Lognormal duration: median ~25 minutes with a heavy tail, in line with
  /// the hotspot literature.
  double duration_median_min = 25.0;
  double duration_sigma = 1.1;
  deploy::Industry industry = deploy::Industry::kTech;
};

class SessionModel {
 public:
  SessionModel(SessionModelParams params, Rng rng);

  /// Samples one device's sessions across [0, span). Sessions are pruned to
  /// the span and never overlap (a device has one association at a time).
  [[nodiscard]] std::vector<Session> sample_week(Duration span = Duration::days(7));

  /// Probability a device with this model is online at the given hour
  /// (analytic approximation: arrival intensity x mean duration, capped).
  [[nodiscard]] double presence_probability(double hour_of_day) const;

 private:
  SessionModelParams params_;
  Rng rng_;
};

}  // namespace wlm::traffic
