#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/os_model.hpp"

namespace wlm::traffic {

namespace {

using classify::AppId;

}  // namespace

std::uint64_t DeviceWeek::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& u : usages) total += u.total();
  return total;
}

WorkloadModel::WorkloadModel(deploy::Epoch epoch, Rng rng)
    : epoch_(epoch), rng_(rng), flowgen_(rng_.fork()) {
  pick_cache_.resize(static_cast<std::size_t>(classify::kOsTypeCount));
}

const std::vector<WorkloadModel::AppPick>& WorkloadModel::picks_for(classify::OsType os) {
  auto& cached = pick_cache_[static_cast<std::size_t>(os)];
  if (!cached.empty()) return cached;

  const bool y2014 = epoch_ == deploy::Epoch::kJan2014;
  const double total = y2014 ? deploy::total_clients(deploy::Epoch::kJan2014)
                             : deploy::total_clients(deploy::Epoch::kJan2015);
  for (const auto& info : classify::app_catalog()) {
    if (info.id == AppId::kUnclassified) continue;
    const auto& stats = y2014 ? info.y2014 : info.y2015;
    const double affinity = app_affinity(os, info.id);
    if (affinity <= 0.0 || stats.clients <= 0.0) continue;
    AppPick pick;
    pick.app = info.id;
    pick.use_probability = std::clamp(stats.clients / total * affinity, 0.0, 1.0);
    // Relative byte share reflects the app's mean per-client appetite.
    // Affinity must NOT be applied here too: it already shaped selection.
    pick.byte_weight = stats.terabytes * 1e6 / std::max(stats.clients, 1.0);
    cached.push_back(pick);
  }
  return cached;
}

DeviceWeek WorkloadModel::generate_week(const deploy::ClientDevice& device) {
  DeviceWeek week;
  generate_week(device, week);
  return week;
}

void WorkloadModel::generate_week(const deploy::ClientDevice& device, DeviceWeek& out) {
  out.usages.clear();
  const double budget = sample_weekly_bytes(device.os, epoch_, rng_);
  const OsUsageProfile profile = os_usage(device.os, epoch_);

  // Select this week's app set.
  auto& selected = selected_scratch_;
  selected.clear();
  const double os_mean = profile.mb_per_client * 1e6;
  // Heavy users disproportionately subscribe to byte-heavy services
  // (Netflix's 1.2 GB/week clients are not average clients), so selection
  // probability for high-appetite apps is coupled to the device's budget.
  const double budget_ratio = std::clamp(budget / std::max(os_mean, 1.0), 0.3, 3.0);
  for (const auto& pick : picks_for(device.os)) {
    double p = pick.use_probability;
    if (pick.byte_weight > 150e6) p = std::clamp(p * budget_ratio, 0.0, 1.0);
    if (!rng_.chance(p)) continue;
    // Jitter the weight: two users of the same app differ wildly.
    selected.push_back(Selected{pick.app, pick.byte_weight * rng_.lognormal(0.0, 0.8)});
  }
  if (selected.empty()) {
    selected.push_back(Selected{AppId::kMiscWeb, 1.0});
  }
  double weight_sum = 0.0;
  for (const auto& s : selected) weight_sum += s.weight;

  // Allocate bytes; correct the device's download fraction toward the OS
  // profile by scaling each app's split around its catalog value. Flow
  // slots already present in `out` are overwritten in place so their
  // payload buffers keep their capacity; surplus slots are trimmed.
  std::size_t flow_count = 0;
  for (const auto& s : selected) {
    const double bytes = budget * s.weight / weight_sum;
    if (bytes < 1.0) continue;
    const auto& info = classify::app_info(s.app);
    const auto& stats = epoch_ == deploy::Epoch::kJan2014 ? info.y2014 : info.y2015;
    // Blend app and OS download propensities.
    const double down_frac = std::clamp(0.75 * stats.download_frac + 0.25 * profile.download_frac,
                                        0.0, 1.0);
    AppUsage usage;
    usage.app = s.app;
    usage.downstream_bytes = static_cast<std::uint64_t>(bytes * down_frac);
    usage.upstream_bytes = static_cast<std::uint64_t>(bytes * (1.0 - down_frac));
    if (flow_count == out.flows.size()) out.flows.emplace_back();
    flowgen_.make_flow_into(s.app, device.os, usage.upstream_bytes, usage.downstream_bytes,
                            out.flows[flow_count]);
    ++flow_count;
    out.usages.push_back(usage);
  }
  if (out.flows.size() > flow_count) out.flows.resize(flow_count);
}

}  // namespace wlm::traffic
