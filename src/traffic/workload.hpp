// Weekly workload synthesis: which applications a device uses during the
// study week and how its OS-calibrated byte budget is split among them.
#pragma once

#include <vector>

#include "classify/apps.hpp"
#include "core/rng.hpp"
#include "deploy/epoch.hpp"
#include "deploy/population.hpp"
#include "traffic/flowgen.hpp"

namespace wlm::traffic {

/// One device's use of one application over the week.
struct AppUsage {
  classify::AppId app = classify::AppId::kUnclassified;
  std::uint64_t upstream_bytes = 0;
  std::uint64_t downstream_bytes = 0;

  [[nodiscard]] std::uint64_t total() const { return upstream_bytes + downstream_bytes; }
};

/// A device's full week: app usages plus one representative flow per app
/// (what the slow path actually inspects; byte counters then attach to the
/// classified application, exactly as in the paper's data path).
struct DeviceWeek {
  std::vector<AppUsage> usages;
  std::vector<GeneratedFlow> flows;

  [[nodiscard]] std::uint64_t total_bytes() const;
};

class WorkloadModel {
 public:
  WorkloadModel(deploy::Epoch epoch, Rng rng);

  /// Samples a device's week. Total bytes follow the OS model; the split
  /// across apps follows catalog client-shares x OS affinity; per-app
  /// up/down split follows the catalog's download fractions.
  [[nodiscard]] DeviceWeek generate_week(const deploy::ClientDevice& device);

  /// Same sampling into a caller-owned week. Flow slots (and the payload
  /// buffers inside them) are reused across calls: the shard loop passes
  /// one scratch DeviceWeek for its whole device sweep, turning millions of
  /// per-flow allocations into a handful of steady-state buffers. Draws the
  /// same RNG sequence as the by-value overload; `out` is fully rewritten.
  void generate_week(const deploy::ClientDevice& device, DeviceWeek& out);

 private:
  deploy::Epoch epoch_;
  Rng rng_;
  FlowGenerator flowgen_;

  struct Selected {
    classify::AppId app;
    double weight;
  };
  std::vector<Selected> selected_scratch_;  // reused across generate_week calls

  struct AppPick {
    classify::AppId app;
    double use_probability;  // chance the device touches the app this week
    double byte_weight;      // relative byte share when used
  };
  /// Per-OS pick table, built lazily and cached.
  [[nodiscard]] const std::vector<AppPick>& picks_for(classify::OsType os);
  std::vector<std::vector<AppPick>> pick_cache_;
};

}  // namespace wlm::traffic
