#include "tsdb/fleet_store.hpp"

#include <algorithm>
#include <cstdio>
#include <sys/stat.h>

#include "ckpt/container.hpp"
#include "wire/varint.hpp"

namespace wlm::tsdb {

namespace {

/// Walks a finished ckpt container and records each section payload's byte
/// offset. The container layout is fixed ([tag varint][len varint][crc 4B]
/// [payload]), so offsets computed here match what a later seek+read finds.
bool section_offsets(std::span<const std::uint8_t> container,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
  std::size_t pos = 8 + 4 + 4;  // magic + version + section count
  if (container.size() < pos) return false;
  while (pos < container.size()) {
    const auto tag = wire::get_varint(container.subspan(pos));
    if (!tag) return false;
    pos += tag->consumed;
    const auto len = wire::get_varint(container.subspan(pos));
    if (!len) return false;
    pos += len->consumed + 4;  // skip the crc word
    if (pos + len->value > container.size()) return false;
    out.emplace_back(pos, len->value);
    pos += len->value;
  }
  return true;
}

Error write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return {Status::kIo, "cannot open " + tmp};
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return {Status::kIo, "short write to " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {Status::kIo, "cannot rename " + tmp};
  }
  return {};
}

}  // namespace

void FleetStore::append_store(std::uint32_t network_id, backend::ReportStore&& store) {
  if (store.report_count() == 0) return;
  Network& net = networks_[network_id];
  SegmentWriter writer(network_id, net.next_batch_seq);
  store.for_each([&writer](const wire::ApReport& r) { writer.add(r); });
  const std::vector<std::uint32_t> seg_aps = writer.ap_ids();
  Segment seg;
  seg.network_id = network_id;
  seg.batch_seq = net.next_batch_seq;
  seg.n_reports = writer.report_count();
  stats_.raw_wire_bytes += writer.raw_wire_bytes();
  seg.bytes = writer.seal();
  seg.size = seg.bytes.size();
  index_segment(std::move(seg), seg_aps);
  store = backend::ReportStore{};
}

Error FleetStore::adopt_segment(std::vector<std::uint8_t> bytes) {
  if (auto err = SegmentReader::validate(bytes)) return err;
  SegmentHeader hdr;
  if (auto err = SegmentReader::read_header(bytes, hdr)) return err;
  std::vector<std::uint32_t> seg_aps;
  if (auto err = SegmentReader::ap_ids(bytes, seg_aps)) return err;
  Segment seg;
  seg.network_id = hdr.network_id;
  seg.batch_seq = hdr.batch_seq;
  seg.n_reports = hdr.n_reports;
  seg.size = bytes.size();
  seg.bytes = std::move(bytes);
  stats_.raw_wire_bytes += hdr.raw_wire_bytes;
  index_segment(std::move(seg), seg_aps);
  return {};
}

void FleetStore::index_segment(Segment seg, const std::vector<std::uint32_t>& seg_aps) {
  Network& net = networks_[seg.network_id];
  net.next_batch_seq = std::max(net.next_batch_seq, seg.batch_seq + 1);
  net.segment_idx.push_back(segments_.size());
  net.reports += seg.n_reports;
  std::vector<std::uint32_t> merged;
  merged.reserve(net.ap_ids.size() + seg_aps.size());
  std::set_union(net.ap_ids.begin(), net.ap_ids.end(), seg_aps.begin(), seg_aps.end(),
                 std::back_inserter(merged));
  net.ap_ids = std::move(merged);
  stats_.segments_sealed += 1;
  stats_.resident_bytes += seg.size;
  stats_.reports += seg.n_reports;
  segments_.push_back(std::move(seg));
}

void FleetStore::drop_network(std::uint32_t network_id) {
  const auto it = networks_.find(network_id);
  if (it == networks_.end()) return;
  for (const std::size_t i : it->second.segment_idx) {
    Segment& seg = segments_[i];
    stats_.reports -= seg.n_reports;
    if (seg.spill_file.empty()) {
      stats_.resident_bytes -= seg.size;
    } else {
      stats_.spilled_bytes -= seg.size;
    }
    // The segment record stays (spill offsets of later segments must not
    // shift) but is orphaned: no network indexes it any more.
    seg.bytes = {};
    seg.n_reports = 0;
    seg.size = 0;
  }
  networks_.erase(it);
}

Error FleetStore::maybe_spill() {
  if (mem_ceiling_bytes_ == 0) return {};
  // Sealed segments get a quarter of the ceiling; the live shards still
  // simulating own the rest.
  if (stats_.resident_bytes <= mem_ceiling_bytes_ / 4) return {};

  std::vector<std::size_t> resident;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].spill_file.empty() && !segments_[i].bytes.empty()) resident.push_back(i);
  }
  if (resident.empty()) return {};

  char name[64];
  std::snprintf(name, sizeof name, "tsdb_spill_%06llu.ckpt",
                static_cast<unsigned long long>(next_spill_seq_));
  ::mkdir(spill_dir_.c_str(), 0777);  // best effort; the write below reports failures
  const std::string path = spill_dir_ + "/" + name;

  ckpt::Writer writer;
  for (const std::size_t i : resident) {
    writer.add_section(ckpt::SectionTag::kTsdbSegments, segments_[i].bytes);
  }
  const std::vector<std::uint8_t> container = writer.finish();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> offsets;
  if (!section_offsets(container, offsets) || offsets.size() != resident.size()) {
    return {Status::kMalformed, "spill container self-walk failed"};
  }
  if (auto err = write_file_atomic(path, container)) return err;

  for (std::size_t k = 0; k < resident.size(); ++k) {
    Segment& seg = segments_[resident[k]];
    seg.spill_file = path;
    seg.spill_offset = offsets[k].first;
    seg.bytes = {};
    stats_.resident_bytes -= seg.size;
    stats_.spilled_bytes += seg.size;
    stats_.segments_spilled += 1;
  }
  stats_.spill_files += 1;
  next_spill_seq_ += 1;
  return {};
}

void FleetStore::clear() {
  segments_.clear();
  networks_.clear();
  stats_ = {};
  next_spill_seq_ = 0;
  last_error_ = {};
}

FleetStore::SegmentInfo FleetStore::info(std::size_t i) const {
  const Segment& seg = segments_[i];
  return SegmentInfo{seg.network_id, seg.batch_seq, seg.n_reports, seg.size,
                     !seg.spill_file.empty()};
}

Error FleetStore::segment_bytes(std::size_t i, std::vector<std::uint8_t>& out) const {
  return load_segment(segments_[i], out);
}

Error FleetStore::load_segment(const Segment& seg, std::vector<std::uint8_t>& out) const {
  if (seg.spill_file.empty()) {
    out = seg.bytes;
    return {};
  }
  std::FILE* f = std::fopen(seg.spill_file.c_str(), "rb");
  if (f == nullptr) return {Status::kIo, "cannot open spill file " + seg.spill_file};
  out.resize(seg.size);
  // fseeko, not fseek: spill files at paper scale run past 2 GiB, where a
  // `long` offset truncates on 32-bit/LLP64 targets.
  const bool sought = ::fseeko(f, static_cast<off_t>(seg.spill_offset), SEEK_SET) == 0;
  const std::size_t got = sought ? std::fread(out.data(), 1, out.size(), f) : 0;
  std::fclose(f);
  if (got != out.size()) {
    return {Status::kIo, "short read from spill file " + seg.spill_file};
  }
  // The segment guards itself (block CRCs + trailer CRC); a stale or
  // corrupt spill range cannot decode silently.
  return {};
}

bool FleetStore::materialize(const Network& net, backend::ReportStore& out) const {
  std::vector<std::uint8_t> scratch;
  for (const std::size_t i : net.segment_idx) {
    const Segment& seg = segments_[i];
    if (seg.n_reports == 0) continue;
    std::span<const std::uint8_t> bytes = seg.bytes;
    if (!seg.spill_file.empty()) {
      if (auto err = load_segment(seg, scratch)) {
        if (last_error_.ok()) last_error_ = err;
        return false;
      }
      bytes = scratch;
    }
    const auto err =
        SegmentReader::for_each(bytes, [&out](wire::ApReport&& r) { out.add(std::move(r)); });
    if (err.status != Status::kOk) {
      if (last_error_.ok()) last_error_ = err;
      return false;
    }
  }
  return true;
}

std::size_t FleetStore::ap_count() const {
  std::size_t n = 0;
  for (const auto& [id, net] : networks_) n += net.ap_ids.size();
  return n;
}

void FleetStore::for_each(const std::function<void(const wire::ApReport&)>& fn) const {
  for (const auto& [id, net] : networks_) {
    backend::ReportStore scratch;
    if (!materialize(net, scratch)) return;
    scratch.for_each(fn);
  }
}

void FleetStore::for_each_in(SimTime from, SimTime to,
                             const std::function<void(const wire::ApReport&)>& fn) const {
  for (const auto& [id, net] : networks_) {
    backend::ReportStore scratch;
    if (!materialize(net, scratch)) return;
    scratch.for_each_in(from, to, fn);
  }
}

void FleetStore::for_each_ap(
    const std::function<void(ApId, const std::vector<wire::ApReport>&)>& fn) const {
  for (const auto& [id, net] : networks_) {
    backend::ReportStore scratch;
    if (!materialize(net, scratch)) return;
    scratch.for_each_ap(fn);
  }
}

}  // namespace wlm::tsdb
